"""Perf-harness smoke tests: BENCH_*.json schema and observability.

Runs the kernel microbenchmarks at a tiny size and asserts the
``bench/v3`` document shape: schema tag, bench rows with positive
timings, paired speedup fields, the host fingerprint, the per-phase
breakdown, and a registry/trace section populated by the run.
"""

import json

import pytest

from repro.bench.perf_report import (
    SCHEMA,
    PerfReport,
    build_payload,
    run_kernel_micro,
    write_report,
)


@pytest.fixture(scope="module")
def payload():
    report = PerfReport()
    run_kernel_micro(report, n_a=20, n_b=40)
    return build_payload(report)


class TestBenchSchema:
    def test_schema_tag_and_sections(self, payload):
        assert payload["schema"] == SCHEMA == "bench/v3"
        assert set(payload) == {"schema", "benches", "speedups",
                                "host", "phases", "metrics", "traces"}

    def test_host_fingerprint_recorded(self, payload):
        host = payload["host"]
        assert {"cpus", "cpus_available", "platform",
                "python"} <= set(host)
        assert host["cpus"] >= 1

    def test_phase_breakdown_covers_every_bench(self, payload):
        # One leaf phase per bench, keyed "<scale>;<bench name>", with
        # the bench's elementary-call count as its work counter.
        leaves = {key: row for key, row in payload["phases"].items()
                  if ";" in key}
        assert set(leaves) == {
            name.replace("/", ";") for name in payload["benches"]}
        for key, row in leaves.items():
            assert row["calls"] == 1, key
            bench = payload["benches"][key.replace(";", "/", 1)]
            assert row["work"]["calls"] == bench["calls"], key

    def test_bench_rows_have_required_keys(self, payload):
        assert payload["benches"], "no benches recorded"
        for name, row in payload["benches"].items():
            assert {"wall_s", "calls", "scale"} <= set(row), name
            assert row["wall_s"] > 0, name
            assert row["calls"] > 0, name
            assert name.startswith(f"{row['scale']}/"), name

    def test_paired_benches_produce_speedups(self, payload):
        assert set(payload["speedups"]) == {
            "micro/haversine_matrix", "micro/peering_penalty"}
        for base, speedup in payload["speedups"].items():
            assert speedup > 0, base

    def test_registry_populated_by_run(self, payload):
        metrics = payload["metrics"]
        n_benches = len(payload["benches"])
        assert metrics["counters"]["bench.runs"] == n_benches
        wall = metrics["histograms"]["bench.wall_s"]
        assert wall["count"] == n_benches
        assert wall["mean"] > 0

    def test_traces_cover_every_bench(self, payload):
        assert len(payload["traces"]) == len(payload["benches"])
        for trace in payload["traces"]:
            assert trace["name"] == "bench"
            assert trace["attrs"]["wall_s"] > 0
            assert trace["attrs"]["calls"] > 0

    def test_write_report_round_trips(self, tmp_path):
        report = PerfReport()
        report.bench("noop", "micro", lambda: 1)
        out = tmp_path / "bench.json"
        written = write_report(report, str(out))
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(written))
