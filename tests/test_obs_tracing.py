"""Unit tests for the per-query span tracer (repro.obs.tracing)."""

import json

import pytest

from repro.obs.tracing import NULL_SPAN, QueryTracer, Span


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        tracer = QueryTracer()
        with tracer.trace("session", who="client") as root:
            with tracer.span("dns") as dns:
                tracer.event("stub.hop", rtt_ms=0.8)
                with tracer.span("recursive"):
                    pass
            dns.set(dns_ms=12.5)
        assert len(tracer.traces) == 1
        assert root.name == "session"
        assert [child.name for child in root.children] == ["dns"]
        assert [c.name for c in root.children[0].children] == [
            "stub.hop", "recursive"]
        assert root.children[0].attrs["dns_ms"] == 12.5

    def test_span_ids_sequential_per_trace(self):
        tracer = QueryTracer()
        for _ in range(2):
            with tracer.trace("t"):
                with tracer.span("a"):
                    tracer.event("b")
        for trace in tracer.traces:
            assert [span.span_id for span in trace.walk()] == [0, 1, 2]

    def test_walk_find_first(self):
        root = Span(0, "root", {})
        child = Span(1, "hop", {"rtt_ms": 1.0})
        grandchild = Span(2, "hop", {"rtt_ms": 2.0})
        root.children.append(child)
        child.children.append(grandchild)
        assert [s.span_id for s in root.walk()] == [0, 1, 2]
        assert len(root.find("hop")) == 2
        assert root.first("hop") is child
        assert root.first("missing") is None

    def test_to_dict_sorts_attrs_and_rounds_floats(self):
        span = Span(0, "s", {"b": 1.23456789, "a": "x"})
        exported = span.to_dict()
        assert list(exported["attrs"]) == ["a", "b"]
        assert exported["attrs"]["b"] == 1.234568


class TestTracerLifecycle:
    def test_span_without_active_trace_is_noop(self):
        tracer = QueryTracer()
        assert tracer.span("orphan") is NULL_SPAN
        assert tracer.event("orphan") is NULL_SPAN
        assert tracer.current() is None
        assert not tracer.active
        assert tracer.traces == []

    def test_disabled_tracer_records_nothing(self):
        tracer = QueryTracer(enabled=False)
        with tracer.trace("t"):
            with tracer.span("child"):
                pass
        assert tracer.started == 0
        assert tracer.traces == []

    def test_null_span_absorbs_writes(self):
        with NULL_SPAN as span:
            assert span.set(anything=1) is NULL_SPAN

    def test_sampling_records_every_nth(self):
        tracer = QueryTracer(sample_every=3)
        for index in range(9):
            with tracer.trace("t", index=index):
                tracer.event("e")
        assert tracer.started == 9
        assert tracer.sampled == 3
        assert [t.attrs["index"] for t in tracer.traces] == [0, 3, 6]

    def test_ring_buffer_keeps_newest(self):
        tracer = QueryTracer(max_traces=4)
        for index in range(10):
            with tracer.trace("t", index=index):
                pass
        assert len(tracer.traces) == 4
        assert tracer.dropped == 6
        assert [t.attrs["index"] for t in tracer.traces] == [6, 7, 8, 9]

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryTracer(max_traces=0)
        with pytest.raises(ValueError):
            QueryTracer(sample_every=0)

    def test_clear_resets_counters_and_traces(self):
        tracer = QueryTracer()
        with tracer.trace("t"):
            pass
        tracer.clear()
        assert tracer.traces == []
        assert tracer.started == tracer.sampled == tracer.dropped == 0


class TestExportDeterminism:
    @staticmethod
    def _record(tracer):
        with tracer.trace("session", block="1.2.3.0/24"):
            with tracer.span("dns", resolver="r1") as dns:
                tracer.event("stub.hop", rtt_ms=0.8123456789)
                dns.set(dns_ms=42.0)

    def test_identical_recordings_export_identical_json(self):
        a, b = QueryTracer(), QueryTracer()
        self._record(a)
        self._record(b)
        assert a.to_json() == b.to_json()
        assert json.loads(a.to_json())[0]["name"] == "session"

    def test_export_does_not_mutate_state(self):
        tracer = QueryTracer()
        self._record(tracer)
        first = tracer.to_json()
        assert tracer.to_json() == first
        assert len(tracer.traces) == 1
