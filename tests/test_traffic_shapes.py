"""The surge-traffic scenario library and the load-feedback loop.

Pins the declarative half (shape validation, target grammar, envelope
math, JSON round-trips through every kind, the deterministic soak
generator) and the runtime half: an empty schedule reproduces the
legacy demand draw bit-for-bit, content surges consume no extra draw
when inactive, and per-day server-load decay keeps a multi-day run's
utilization at a plateau instead of integrating forever.
"""

import math
import random

import pytest

from repro.api import ScenarioSpec
from repro.core.loadfeedback import LoadFeedbackConfig
from repro.core.mapmaker import MapMakerConfig
from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.topology.traffic import (CONTINENTS, DayTraffic, ShapeKind,
                                    TrafficSchedule, TrafficShape,
                                    day_weight, generate_surges)


def _shape(**overrides):
    base = dict(start_day=3, duration_days=4, target="continent:NA",
                kind=ShapeKind.FLASH_CROWD, magnitude=3.0)
    base.update(overrides)
    return TrafficShape(**base)


ONE_OF_EACH = (
    _shape(),
    _shape(start_day=9, kind=ShapeKind.REGIONAL_EVENT,
           target="country:DE", magnitude=4.0),
    _shape(start_day=1, duration_days=10, kind=ShapeKind.DIURNAL_WAVE,
           target="*", magnitude=1.5, period_days=5),
    _shape(start_day=5, kind=ShapeKind.CONTENT_SURGE,
           target="provider:provider1", magnitude=6.0),
)


class TestShapeValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown traffic shape"):
            _shape(kind="tsunami")

    @pytest.mark.parametrize("magnitude",
                             (1.0, 0.5, -2.0, float("nan"),
                              float("inf")))
    def test_rejects_non_surge_magnitudes(self, magnitude):
        with pytest.raises(ValueError, match="magnitude"):
            _shape(magnitude=magnitude)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="start_day"):
            _shape(start_day=-1)
        with pytest.raises(ValueError, match="duration_days"):
            _shape(duration_days=0)

    def test_period_only_for_diurnal(self):
        with pytest.raises(ValueError, match="period_days"):
            _shape(period_days=5)
        with pytest.raises(ValueError, match="period_days"):
            _shape(kind=ShapeKind.DIURNAL_WAVE, target="*",
                   period_days=0)

    @pytest.mark.parametrize("kind,target", (
        (ShapeKind.FLASH_CROWD, "provider:provider0"),
        (ShapeKind.FLASH_CROWD, "*"),
        (ShapeKind.FLASH_CROWD, "continent:"),
        (ShapeKind.DIURNAL_WAVE, "continent:NA"),
        (ShapeKind.CONTENT_SURGE, "country:US"),
        (ShapeKind.REGIONAL_EVENT, "NA"),
    ))
    def test_grammar_rejects_mismatched_targets(self, kind, target):
        period = 5 if kind == ShapeKind.DIURNAL_WAVE else 0
        schedule = TrafficSchedule((_shape(
            kind=kind, target=target, period_days=period),))
        with pytest.raises(ValueError):
            schedule.validate()

    def test_same_target_overlap_rejected(self):
        schedule = TrafficSchedule((
            _shape(start_day=3, duration_days=4),
            _shape(start_day=5, duration_days=2)))
        with pytest.raises(ValueError, match="overlapping"):
            schedule.validate()

    def test_distinct_targets_overlap_freely(self):
        schedule = TrafficSchedule((
            _shape(start_day=3),
            _shape(start_day=3, target="continent:EU"),
            _shape(start_day=3, kind=ShapeKind.CONTENT_SURGE,
                   target="provider:provider0")))
        assert len(schedule.validate()) == 3


class TestEnvelopes:
    def test_flash_crowd_is_a_step(self):
        shape = _shape(magnitude=5.0)
        assert shape.factor(2) == 1.0
        assert all(shape.factor(day) == 5.0 for day in range(3, 7))
        assert shape.factor(7) == 1.0

    def test_regional_event_is_triangular(self):
        shape = _shape(kind=ShapeKind.REGIONAL_EVENT, start_day=0,
                       duration_days=4, magnitude=9.0)
        factors = [shape.factor(day) for day in range(4)]
        # Symmetric ramp peaking mid-window, never hitting baseline
        # inside the window.
        assert factors == pytest.approx(
            [factors[3], factors[2], factors[2], factors[3]][::-1])
        assert factors[1] == factors[2] == max(factors)
        assert min(factors) > 1.0

    def test_one_day_event_peaks_at_magnitude(self):
        shape = _shape(kind=ShapeKind.REGIONAL_EVENT, duration_days=1,
                       magnitude=4.0)
        assert shape.factor(shape.start_day) == pytest.approx(4.0)

    def test_diurnal_wave_cycles_between_baseline_and_peak(self):
        shape = _shape(kind=ShapeKind.DIURNAL_WAVE, target="*",
                       start_day=0, duration_days=20, magnitude=2.0,
                       period_days=4)
        assert shape.factor(0) == pytest.approx(1.0)
        assert shape.factor(2) == pytest.approx(2.0)  # half period
        assert shape.factor(4) == pytest.approx(1.0)  # full period
        for day in range(20):
            assert 1.0 <= shape.factor(day) <= 2.0 + 1e-12


class TestRoundTrip:
    @pytest.mark.parametrize("shape", ONE_OF_EACH,
                             ids=[s.kind for s in ONE_OF_EACH])
    def test_every_kind_round_trips(self, shape):
        assert TrafficShape.from_dict(shape.to_dict()) == shape

    def test_schedule_round_trips_through_json(self):
        schedule = TrafficSchedule(ONE_OF_EACH).validate()
        assert TrafficSchedule.from_json(schedule.to_json()) == schedule

    def test_period_days_omitted_when_zero(self):
        assert "period_days" not in _shape().to_dict()

    def test_unknown_shape_field_rejected(self):
        doc = _shape().to_dict()
        doc["ramp"] = "linear"
        with pytest.raises(ValueError, match="unknown traffic shape"):
            TrafficShape.from_dict(doc)

    def test_schedule_must_be_a_list(self):
        with pytest.raises(ValueError, match="JSON list"):
            TrafficSchedule.from_json('{"kind": "flash_crowd"}')

    def test_from_dict_validates_grammar(self):
        doc = _shape(target="continent:NA").to_dict()
        doc["target"] = "cluster:3"
        with pytest.raises(ValueError, match="bad flash_crowd target"):
            TrafficSchedule.from_dict([doc])

    def test_scenario_spec_round_trips_with_traffic_and_feedback(self):
        spec = ScenarioSpec(
            faults=FaultSchedule((FaultEvent(
                start_day=2, duration_days=3, target="cluster:0",
                kind=FaultKind.CLUSTER_OUTAGE),)),
            control_plane=MapMakerConfig(publish_interval_days=2),
            traffic=TrafficSchedule(ONE_OF_EACH),
            load_feedback=LoadFeedbackConfig(overload_threshold=1.5))
        thawed = ScenarioSpec.from_json(spec.to_json())
        assert thawed == spec
        assert thawed.to_json() == spec.to_json()

    def test_scenario_spec_describe_flags_new_features(self):
        plain = ScenarioSpec().describe()
        assert "traffic" not in plain and "load_feedback" not in plain
        rich = ScenarioSpec(traffic=TrafficSchedule(ONE_OF_EACH),
                            load_feedback=LoadFeedbackConfig())
        doc = rich.describe()
        assert doc["traffic"] == len(ONE_OF_EACH)
        assert doc["load_feedback"] is True

    def test_load_feedback_config_rejects_unknown_keys(self):
        doc = LoadFeedbackConfig().to_dict()
        doc["boost"] = 2.0
        with pytest.raises(ValueError, match="unknown"):
            LoadFeedbackConfig.from_dict(doc)


class TestGenerator:
    @pytest.mark.parametrize("seed", range(25))
    def test_deterministic_and_valid(self, seed):
        from repro.faults import SplitMix64

        n_days = 14
        first = generate_surges(SplitMix64(seed), n_days)
        again = generate_surges(SplitMix64(seed), n_days)
        assert first == again
        assert 1 <= len(first) <= 3
        for shape in first.shapes:
            assert 1 <= shape.start_day
            assert shape.end_day <= n_days - 1
            assert shape.kind in ShapeKind.ALL
        # validate() already ran inside the generator; idempotent.
        assert first.validate() == first

    def test_needs_room_for_a_surge(self):
        with pytest.raises(ValueError, match="at least 4 days"):
            generate_surges(random.Random(1), 3)


@pytest.fixture(scope="module")
def tiny_world():
    from repro.api import build_world
    from repro.simulation.world import WorldConfig

    return build_world(WorldConfig.tiny())


class TestDayTraffic:
    def test_empty_schedule_matches_legacy_pick(self, tiny_world):
        """The byte-identity contract: with no active shape, the
        surge-weighted pick is the same single draw and bisect as
        ``Internet.pick_block``."""
        internet = tiny_world.internet
        empty = DayTraffic(TrafficSchedule(), day=0,
                           blocks=internet.blocks)
        assert empty.volume_multiplier == pytest.approx(1.0)
        legacy_rng, surge_rng = random.Random(42), random.Random(42)
        for _ in range(300):
            assert (empty.pick_block(surge_rng).prefix
                    == internet.pick_block(legacy_rng).prefix)
        assert legacy_rng.getstate() == surge_rng.getstate()

    def test_inactive_day_matches_legacy_pick(self, tiny_world):
        schedule = TrafficSchedule((_shape(start_day=5),)).validate()
        view = DayTraffic(schedule, day=0,
                          blocks=tiny_world.internet.blocks)
        legacy_rng, surge_rng = random.Random(7), random.Random(7)
        for _ in range(100):
            assert (view.pick_block(surge_rng).prefix
                    == tiny_world.internet.pick_block(legacy_rng).prefix)

    def test_flash_crowd_skews_picks_and_volume(self, tiny_world):
        blocks = tiny_world.internet.blocks
        schedule = TrafficSchedule((_shape(
            start_day=0, duration_days=2, magnitude=5.0),)).validate()
        view = DayTraffic(schedule, day=0, blocks=blocks)
        assert view.volume_multiplier > 1.0
        rng = random.Random(3)
        base_rng = random.Random(3)
        surged = sum(view.pick_block(rng).continent == "NA"
                     for _ in range(600))
        baseline = sum(
            tiny_world.internet.pick_block(base_rng).continent == "NA"
            for _ in range(600))
        assert surged > baseline

    def test_pick_provider_draws_nothing_when_inactive(self, tiny_world):
        view = DayTraffic(TrafficSchedule(), day=0,
                          blocks=tiny_world.internet.blocks)
        rng = random.Random(11)
        before = rng.getstate()
        assert view.pick_provider(rng, tiny_world.catalog) is None
        assert rng.getstate() == before

    def test_content_surge_biases_provider(self, tiny_world):
        providers = tiny_world.catalog.providers
        target = providers[-1].name
        schedule = TrafficSchedule((_shape(
            start_day=0, duration_days=2, kind=ShapeKind.CONTENT_SURGE,
            target=f"provider:{target}", magnitude=6.0),)).validate()
        view = DayTraffic(schedule, day=0,
                          blocks=tiny_world.internet.blocks)
        # Volume and geographic shares are untouched by content surges.
        assert view.volume_multiplier == pytest.approx(1.0)
        rng = random.Random(5)
        picks = [view.pick_provider(rng, tiny_world.catalog)
                 for _ in range(400)]
        share = sum(p.name == target for p in picks) / len(picks)
        popularity = providers[-1].popularity / sum(
            p.popularity for p in providers)
        assert share > popularity

    def test_day_weight_tracks_active_surges(self, tiny_world):
        blocks = tiny_world.internet.blocks
        schedule = TrafficSchedule((_shape(
            start_day=0, duration_days=2, magnitude=3.0),)).validate()
        base = sum(block.demand for block in blocks)
        na = sum(block.demand for block in blocks
                 if block.continent == "NA")
        assert day_weight(schedule, 0, blocks) == pytest.approx(
            base + 2.0 * na)
        assert day_weight(schedule, 5, blocks) == pytest.approx(base)

    def test_diurnal_wave_moves_volume_not_shares(self, tiny_world):
        schedule = TrafficSchedule((_shape(
            start_day=0, duration_days=10, kind=ShapeKind.DIURNAL_WAVE,
            target="*", magnitude=2.0, period_days=4),)).validate()
        blocks = tiny_world.internet.blocks
        peak = DayTraffic(schedule, day=2, blocks=blocks)
        assert peak.volume_multiplier == pytest.approx(2.0)
        assert day_weight(schedule, 2, blocks) == pytest.approx(
            sum(block.demand for block in blocks))
        legacy_rng, surge_rng = random.Random(9), random.Random(9)
        for _ in range(100):
            assert (peak.pick_block(surge_rng).prefix
                    == tiny_world.internet.pick_block(legacy_rng).prefix)


class TestLoadDecay:
    def test_decay_halves_every_server(self):
        from repro.cdn.server import DAILY_LOAD_RETENTION, EdgeServer

        server = EdgeServer(ip=1, cluster_id=0, capacity_rps=10.0)
        server.add_load(8.0)
        server.decay_load(DAILY_LOAD_RETENTION)
        assert server.load_rps == pytest.approx(
            8.0 * DAILY_LOAD_RETENTION)

    def test_ten_day_run_reaches_a_load_plateau(self):
        """Regression: server load once integrated forever across a
        run (``add_load`` with no decay), so utilization on day N grew
        linearly with N.  With the overnight decay in the day loop, a
        constant workload must plateau at the geometric-series level
        rather than keep climbing."""
        import datetime

        from repro.simulation.rollout import RolloutConfig, _run_rollout
        from repro.simulation.world import WorldConfig, _build_world

        class LoadProbe:
            def __init__(self):
                self.total_by_day = {}

            def on_day(self, day, world, result):
                self.total_by_day[day] = sum(
                    cluster.load_rps
                    for cluster in world.deployments.live_clusters())

        world = _build_world(config=WorldConfig.tiny())
        probe = LoadProbe()
        _run_rollout(world, config=RolloutConfig(
            start_date=datetime.date(2014, 3, 1),
            end_date=datetime.date(2014, 3, 10),
            rollout_start=datetime.date(2014, 3, 2),
            rollout_end=datetime.date(2014, 3, 3),
            sessions_per_day=40, seed=5), observer=probe)
        totals = probe.total_by_day
        assert sorted(totals) == list(range(10))
        assert all(value > 0 for value in totals.values())
        # Without decay day 9 carries ~10 days of load (~2x day 4's 5);
        # with 0.5 retention the steady state is ~2x one day's input,
        # so late days sit within a whisker of the mid-run level.
        assert totals[9] < 1.5 * totals[4]
        # And the plateau is a plateau, not a slow ramp: the last
        # three days stay within 25% of each other.
        late = [totals[day] for day in (7, 8, 9)]
        assert max(late) < 1.25 * min(late)
