"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import weighted_quantiles
from repro.obs.metrics import (
    EXPORT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(7)
        assert gauge.value == 7.0
        gauge.inc(0.5)
        assert gauge.value == 7.5
        gauge.set(-2)  # gauges may go negative
        assert gauge.value == -2.0


class TestHistogram:
    def test_nan_observation_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Histogram("h").observe(float("nan"))

    def test_inf_observation_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            Histogram("h").observe(float("inf"))
        with pytest.raises(ValueError, match="non-finite"):
            Histogram("h").observe(float("-inf"))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative weight"):
            Histogram("h").observe(1.0, weight=-1.0)

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match="non-finite weight"):
            Histogram("h").observe(1.0, weight=float("nan"))

    def test_inf_weight_rejected(self):
        with pytest.raises(ValueError, match="non-finite weight"):
            Histogram("h").observe(1.0, weight=float("inf"))

    def test_rejected_observation_leaves_state_untouched(self):
        hist = Histogram("h")
        hist.observe(5.0, weight=2.0)
        for value, weight in ((float("nan"), 1.0), (1.0, float("nan")),
                              (1.0, -1.0), (float("inf"), 1.0)):
            with pytest.raises(ValueError):
                hist.observe(value, weight=weight)
        assert hist.count == 1
        assert hist.weight_total == 2.0
        assert hist.mean == 5.0

    def test_quantiles_match_canonical_implementation(self):
        hist = Histogram("h")
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        weights = [1.0, 2.0, 1.0, 4.0, 2.0]
        for v, w in zip(values, weights):
            hist.observe(v, w)
        assert hist.quantiles() == weighted_quantiles(
            values, weights, EXPORT_QUANTILES)

    def test_empty_histogram_exports_zeros(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0
        assert snap["mean"] == 0.0

    def test_mean_is_weighted(self):
        hist = Histogram("h")
        hist.observe(10.0, weight=3.0)
        hist.observe(0.0, weight=1.0)
        assert hist.mean == pytest.approx(7.5)

    def test_compaction_preserves_count_weight_and_mean(self):
        hist = Histogram("h", max_samples=8)
        for i in range(100):
            hist.observe(float(i % 17), weight=1.0 + (i % 3))
        assert hist.count == 100
        assert len(hist._values) <= 8
        expected_weight = sum(1.0 + (i % 3) for i in range(100))
        assert hist.weight_total == pytest.approx(expected_weight)
        expected_mean = sum(
            (i % 17) * (1.0 + (i % 3)) for i in range(100)
        ) / expected_weight
        assert hist.mean == pytest.approx(expected_mean)

    def test_compaction_keeps_quantiles_close(self):
        exact = Histogram("exact")
        compact = Histogram("compact", max_samples=64)
        for i in range(2000):
            value = float((i * 37) % 500)
            exact.observe(value)
            compact.observe(value)
        for q_exact, q_compact in zip(exact.quantiles(),
                                      compact.quantiles()):
            assert abs(q_exact - q_compact) <= 25.0  # 5% of the range

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_compaction_deterministic(self, values):
        a = Histogram("a", max_samples=16)
        b = Histogram("b", max_samples=16)
        for v in values:
            a.observe(v)
            b.observe(v)
        assert a.snapshot() == b.snapshot()


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_kind_name_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError, match="different instrument kind"):
            registry.gauge("metric")
        with pytest.raises(ValueError, match="different instrument kind"):
            registry.histogram("metric")

    def test_value_reads_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        assert registry.value("c") == 4
        assert registry.value("g") == 2.5
        assert registry.value("missing", default=-1.0) == -1.0

    def test_collector_runs_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.register_collector(
            lambda reg: reg.gauge("live").set(state["n"]))
        state["n"] = 42
        assert registry.snapshot()["gauges"]["live"] == 42.0
        state["n"] = 43
        assert registry.snapshot()["gauges"]["live"] == 43.0

    def test_snapshot_sorted_and_json_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc(2)
        registry.gauge("mid").set(1)
        registry.histogram("hist").observe(3.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["alpha", "zeta"]
        first = registry.to_json()
        second = registry.to_json()
        assert first == second
        assert json.loads(first)["counters"]["alpha"] == 2

    def test_render_lines_covers_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        lines = registry.render_lines()
        kinds = [line.split()[0] for line in lines]
        assert kinds == ["counter", "gauge", "histogram"]

    def test_render_prom_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("dns.queries", help="auth queries").inc(3)
        registry.gauge("rollout.day").set(12)
        hist = registry.histogram("rtt.ms", help="session RTT")
        hist.observe(10.0)
        hist.observe(30.0)
        lines = registry.render_prom()
        assert "# HELP dns_queries_total auth queries" in lines
        assert "# TYPE dns_queries_total counter" in lines
        assert "dns_queries_total 3" in lines
        assert "# TYPE rollout_day gauge" in lines
        assert "rollout_day 12" in lines
        assert "# TYPE rtt_ms summary" in lines
        assert 'rtt_ms{quantile="0.5"} 10' in lines
        assert "rtt_ms_sum 40" in lines
        assert "rtt_ms_count 2" in lines

    def test_render_prom_deterministic_and_sorted(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("zeta").inc()
            registry.counter("alpha").inc()
            registry.gauge("mid").set(1.5)
            return registry.render_prom()

        first, second = build(), build()
        assert first == second
        counter_lines = [line for line in first
                         if line.startswith("# TYPE") and "counter" in line]
        assert counter_lines == ["# TYPE alpha_total counter",
                                 "# TYPE zeta_total counter"]

    def test_render_prom_runs_collectors(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda reg: reg.gauge("live").set(7))
        assert "live 7" in registry.render_prom()

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.register_collector(lambda reg: reg.gauge("g").set(1))
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
