"""Integration tests: world builder, session model, roll-out, DNS load."""

import datetime
import random

import pytest

from repro.core.policies import EUMappingPolicy, NSMappingPolicy
from repro.clock import SimClock
from repro.api import build_world, run_rollout
from repro.simulation import (
    RolloutConfig,
    WorldConfig,
    simulate_session,
)
from repro.simulation.dnsload import DnsLoadConfig, drive_dns_load
from repro.simulation.rollout import classify_expectation_groups


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig.tiny())


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(10)
        assert clock.now() == 10
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to(self):
        clock = SimClock(5)
        clock.advance_to(20)
        assert clock.now() == 20
        with pytest.raises(ValueError):
            clock.advance_to(1)

    def test_dates(self):
        clock = SimClock(start_date=datetime.date(2014, 1, 1))
        clock.advance(86400 * 31)
        assert clock.date == datetime.date(2014, 2, 1)
        assert clock.seconds_for_date(datetime.date(2014, 1, 2)) == 86400

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1)


class TestWorldBuilder:
    def test_components_wired(self, world):
        assert len(world.nameservers) == world.config.n_nameservers
        assert len(world.ldns_registry) == len(world.internet.resolvers)
        assert len(world.origins) == len(world.catalog.providers)
        assert len(world.deployments) == world.config.n_deployments

    def test_nameservers_answer_cdn_zone(self, world):
        ns = world.nameservers[0]
        assert ns.zone_for("e1000.cdn.example") is world.mapping

    def test_directory_covers_provider_zones(self, world):
        provider = world.catalog.providers[0]
        assert world.directory.authority_for(provider.domain) is not None
        assert world.directory.authority_for("e1000.cdn.example") is not None

    def test_ecs_flipping(self, world):
        world.disable_all_ecs()
        assert world.ecs_enabled_ids() == []
        public = world.public_ldns_ids()
        flipped = world.enable_ecs(public)
        assert flipped == len(public)
        assert sorted(world.ecs_enabled_ids()) == sorted(public)
        # Second call is a no-op.
        assert world.enable_ecs(public) == 0
        world.disable_all_ecs()

    def test_isp_resolvers_never_flip(self, world):
        isp_ids = [rid for rid in world.ldns_registry
                   if rid not in set(world.public_ldns_ids())]
        assert world.enable_ecs(isp_ids[:5]) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(n_deployments=2, n_nameservers=5)


class TestSessionModel:
    def test_session_end_to_end(self, world):
        rng = random.Random(1)
        block = world.internet.pick_block(rng)
        session = simulate_session(world, block, now=0.0, rng=rng)
        assert session.dns_ms > 0
        assert session.rtt_ms > 0
        assert session.ttfb_ms > session.rtt_ms  # includes server time
        assert session.download_ms > 0
        assert session.requests >= 2
        assert session.mapping_distance_miles >= 0
        assert session.cluster_id in world.deployments.clusters

    def test_page_load_composition(self, world):
        rng = random.Random(2)
        block = world.internet.pick_block(rng)
        session = simulate_session(world, block, now=0.0, rng=rng)
        assert session.page_load_ms == pytest.approx(
            session.dns_ms + session.connect_ms + session.ttfb_ms
            + session.download_ms)

    def test_repeat_sessions_hit_edge_cache(self, world):
        rng = random.Random(3)
        block = world.internet.pick_block(rng)
        provider = world.catalog.providers[0]
        page = next(p for p in provider.pages if p.objects)
        first = simulate_session(world, block, 0.0, rng, provider, page)
        second = simulate_session(world, block, 1.0, rng, provider, page)
        assert second.edge_cache_hits >= first.edge_cache_hits
        assert second.download_ms <= first.download_ms

    def test_dns_caching_between_sessions(self, world):
        rng = random.Random(4)
        # Use a single-LDNS block so both sessions share one resolver
        # cache deterministically.
        block = next(b for b in world.internet.blocks
                     if len(b.ldns) == 1)
        provider = world.catalog.providers[1]
        simulate_session(world, block, 0.0, rng, provider)
        repeat = simulate_session(world, block, 5.0, rng, provider)
        assert repeat.upstream_dns_queries == 0

    def test_far_client_sees_higher_rtt(self, world):
        rng = random.Random(5)
        results = []
        for block in world.internet.blocks[:40]:
            session = simulate_session(world, block, 0.0, rng,
                                       world.catalog.providers[0])
            results.append(session)
        by_distance = sorted(results,
                             key=lambda s: s.mapping_distance_miles)
        near_rtt = sum(s.rtt_ms for s in by_distance[:5]) / 5
        far_rtt = sum(s.rtt_ms for s in by_distance[-5:]) / 5
        assert far_rtt > near_rtt


class TestExpectationClassification:
    def test_medians_positive(self, world):
        medians = classify_expectation_groups(world)
        assert medians
        assert all(m >= 0 for m in medians.values())

    def test_known_split_tendency(self, world):
        """Countries the paper flags as high-expectation should have
        larger medians than the well-served ones when both present."""
        medians = classify_expectation_groups(world)
        high_side = [medians[c] for c in ("IN", "BR", "AR")
                     if c in medians]
        low_side = [medians[c] for c in ("GB", "DE", "NL", "FR")
                    if c in medians]
        if high_side and low_side:
            assert max(high_side) > min(low_side)


class TestRollout:
    @pytest.fixture(scope="class")
    def result(self):
        world = build_world(WorldConfig.tiny())
        config = RolloutConfig(
            start_date=datetime.date(2014, 3, 20),
            end_date=datetime.date(2014, 4, 25),
            rollout_start=datetime.date(2014, 3, 28),
            rollout_end=datetime.date(2014, 4, 15),
            sessions_per_day=80,
            seed=5,
        )
        return run_rollout(world, config), world

    def test_beacons_recorded_every_day(self, result):
        rollout, _ = result
        days = {b.day for b in rollout.rum.beacons}
        assert days == set(range(rollout.config.n_days))

    def test_ecs_ramp(self, result):
        rollout, world = result
        series = rollout.ecs_resolvers_per_day
        n_public = len(world.public_ldns_ids())
        start = rollout.config.day_index(rollout.config.rollout_start)
        end = rollout.config.day_index(rollout.config.rollout_end)
        assert series[0] == 0
        assert series[start] == 0 or series[start] < n_public // 2
        assert series[end] == n_public
        values = [series[d] for d in sorted(series)]
        assert values == sorted(values)

    def test_mapping_distance_improves_for_public_users(self, result):
        rollout, _ = result
        before = rollout.rum.metric_values(
            "mapping_distance_miles", via_public=True,
            day_range=rollout.before_window)
        after = rollout.rum.metric_values(
            "mapping_distance_miles", via_public=True,
            day_range=rollout.after_window)
        assert before and after
        assert (sum(after) / len(after)) < 0.6 * (sum(before) / len(before))

    def test_isp_users_unaffected(self, result):
        rollout, _ = result
        before = rollout.rum.metric_values(
            "mapping_distance_miles", via_public=False,
            day_range=rollout.before_window)
        after = rollout.rum.metric_values(
            "mapping_distance_miles", via_public=False,
            day_range=rollout.after_window)
        mean_before = sum(before) / len(before)
        mean_after = sum(after) / len(after)
        assert 0.5 < mean_after / mean_before < 2.0

    def test_requests_exceed_sessions(self, result):
        rollout, _ = result
        for day, sessions in rollout.sessions_per_day.items():
            assert rollout.requests_per_day[day] > sessions

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RolloutConfig(start_date=datetime.date(2014, 5, 1),
                          rollout_start=datetime.date(2014, 4, 1))
        with pytest.raises(ValueError):
            RolloutConfig(sessions_per_day=0)

    def test_rollout_fraction(self):
        config = RolloutConfig()
        assert config.rollout_fraction(0) == 0.0
        assert config.rollout_fraction(config.n_days - 1) == 1.0
        mid = config.day_index(config.rollout_start) + 9
        assert 0.0 < config.rollout_fraction(mid) < 1.0


class TestDnsLoad:
    def test_inflation_mechanism(self):
        """ECS must raise authoritative query rate from public LDNSes."""
        world = build_world(WorldConfig(
            internet=world_internet(), n_deployments=30, n_providers=6,
            n_nameservers=3, dns_ttl=1200))
        world.disable_all_ecs()
        config = DnsLoadConfig(lookups_per_day=15000, n_days=1,
                               start_day=0, seed=1)
        drive_dns_load(world, config)
        before = world.query_log.rate_in(0, 86400, public_only=True)
        world.enable_ecs(world.public_ldns_ids())
        config2 = DnsLoadConfig(lookups_per_day=15000, n_days=1,
                                start_day=2, seed=2)
        drive_dns_load(world, config2)
        after = world.query_log.rate_in(2 * 86400, 3 * 86400,
                                        public_only=True)
        assert after > 1.2 * before

    def test_counters_consistent(self, world):
        world.disable_all_ecs()
        result = drive_dns_load(world, DnsLoadConfig(
            lookups_per_day=500, n_days=2, start_day=10, seed=3))
        assert result.lookups == 1000
        assert result.cache_hits + result.upstream_queries >= (
            result.lookups - result.upstream_queries)
        assert result.client_requests > result.lookups
        assert sorted(result.lookups_per_day_series) == [10, 11]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            DnsLoadConfig(lookups_per_day=0)


def world_internet():
    from repro.topology import InternetConfig
    return InternetConfig.tiny()
