"""End-to-end tests for the monitored roll-out and its CLIs.

Runs the seeded tiny roll-out once under a
:class:`~repro.obs.monitor.RolloutMonitor` and pins:

* the Figure 13 event -- a ``mapping_distance_drop`` alert fires for
  the high-expectation cohort *during* the roll-out window, with the
  distance effect vs the before window several-fold;
* determinism -- two identical CLI invocations emit byte-identical
  reports;
* the discrete golden projection (series names, alert transitions,
  window layout) against a checked-in fixture, regenerated with::

      REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
          tests/test_obs_monitor_cli.py

Also covers the obs.dump satellites: the text-mode scenario/trace
header and the Prometheus exposition format.
"""

import difflib
import json
import math
import os
import pathlib

import pytest

from repro.obs.monitor import cli as monitor_cli
from repro.obs import dump as obs_dump

GOLDEN_PATH = (pathlib.Path(__file__).parent / "data"
               / "golden_monitor.json")

SCENARIO = {"scale": "tiny", "seed": 7}


@pytest.fixture(scope="module")
def monitored():
    world, monitor, result = monitor_cli.run_monitored_rollout(**SCENARIO)
    scenario = dict(SCENARIO,
                    sessions_per_day=result.config.sessions_per_day)
    return monitor, result, monitor.report(scenario)


class TestRolloutMonitoring:
    def test_observer_sees_every_day(self, monitored):
        monitor, result, report = monitored
        assert monitor.days_observed == result.config.n_days
        assert report["days_observed"] == result.config.n_days

    def test_windows_partition_the_timeline(self, monitored):
        _, result, report = monitored
        windows = report["windows"]
        assert windows["before"][0] == 0
        assert windows["before"][1] == windows["during"][0]
        assert windows["during"][1] == windows["after"][0]
        assert windows["after"][1] == result.config.n_days

    def test_mapping_distance_drop_fires_during_rollout(self, monitored):
        """The acceptance event: the high-expectation cohort's mapping
        distance collapses vs its pre-roll-out baseline and the alert
        fires inside the roll-out window."""
        _, _, report = monitored
        lo, hi = report["windows"]["during"]
        fired = [event for event in report["alerts"]["log"]
                 if event["rule"] == "mapping_distance_drop"
                 and event["kind"] == "fired"]
        assert fired, "mapping_distance_drop never fired"
        assert any(lo <= event["step"] < hi for event in fired)
        # The event does not flap back: still firing at end of run.
        assert "mapping_distance_drop" in report["alerts"]["firing"]

    def test_fig13_effect_magnitude(self, monitored):
        """The after-vs-before mapping-distance ratio for the high
        group lands in the several-fold range the paper reports."""
        _, _, report = monitored
        effect = (report["cohorts"]["effects_vs_before"]["after"]
                  ["high_expectation"]["mapping_distance_miles"])
        assert effect["ratio"] > 4.0
        assert effect["baseline_mean"] > effect["treatment_mean"]
        assert effect["cohens_d"] > 1.0

    def test_guard_rules_stay_silent(self, monitored):
        """A healthy roll-out must not trip the regression guards."""
        _, _, report = monitored
        guard_rules = {"ttfb_regression", "sessions_flatline",
                       "edge_cache_hit_rate_low"}
        tripped = {event["rule"] for event in report["alerts"]["log"]}
        assert not (tripped & guard_rules)

    def test_series_cover_registry_and_cohorts(self, monitored):
        _, _, report = monitored
        names = set(report["series"])
        assert "rollout.sessions" in names
        assert "dns.qps_public" in names
        assert "cohort.high_expectation.mapping_distance_miles" in names
        assert ("cohort.high_expectation.mapping_distance_miles:ewma"
                in names)
        assert "rollout.sessions:delta" in report["derived"]

    def test_report_is_json_clean(self, monitored):
        _, _, report = monitored
        text = json.dumps(report, sort_keys=True)
        assert "NaN" not in text and "Infinity" not in text
        assert json.loads(text) == report

    def test_render_text_summary(self, monitored):
        _, _, report = monitored
        text = monitor_cli.render_text(report)
        assert "rollout monitor" in text
        assert "mapping_distance_drop" in text
        assert "still firing: mapping_distance_drop" in text


def _golden_projection(report: dict) -> dict:
    """Discrete, platform-stable projection of one monitor report."""
    effects = report["cohorts"]["effects_vs_before"]["after"]

    def ratio_floor(cohort, metric):
        ratio = effects[cohort][metric]["ratio"]
        return None if ratio is None else int(math.floor(ratio))

    return {
        "schema": report["schema"],
        "scenario": report["scenario"],
        "days_observed": report["days_observed"],
        "windows": report["windows"],
        "series_points": {name: len(doc["steps"])
                          for name, doc in report["series"].items()},
        "derived": sorted(report["derived"]),
        "alerts": [[event["step"], event["rule"], event["kind"],
                    event["severity"]]
                   for event in report["alerts"]["log"]],
        "firing": report["alerts"]["firing"],
        "cohorts": {cohort: sorted(metrics) for cohort, metrics
                    in report["cohorts"]["daily_mean"].items()},
        "effect_ratio_floors": {
            cohort: {metric: ratio_floor(cohort, metric)
                     for metric in sorted(effects[cohort])}
            for cohort in sorted(effects)
        },
    }


class TestGoldenReport:
    def test_projection_matches_fixture(self, monitored):
        _, _, report = monitored
        rendered = json.dumps(_golden_projection(report), indent=2,
                              sort_keys=True) + "\n"
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(rendered)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing fixture {GOLDEN_PATH}; run with REGEN_GOLDEN=1 "
            "to create it")
        expected = GOLDEN_PATH.read_text()
        if rendered != expected:
            diff = "".join(difflib.unified_diff(
                expected.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile="golden_monitor.json (checked in)",
                tofile="golden_monitor.json (this run)",
            ))
            pytest.fail(
                "golden monitor report drifted; if intentional, "
                f"regenerate with REGEN_GOLDEN=1 and review.\n{diff}")


class TestMonitorCliDeterminism:
    def test_two_runs_byte_identical(self, tmp_path, capsys):
        """The acceptance property: same arguments, same bytes."""
        args = ["--seed", "7", "--sessions-per-day", "40",
                "--format", "json"]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert monitor_cli.main(args + ["--out", str(first)]) == 0
        assert monitor_cli.main(args + ["--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        report = json.loads(first.read_text())
        assert report["schema"] == "monitor/v1"
        assert report["scenario"]["sessions_per_day"] == 40

    def test_text_format_smoke(self, capsys):
        assert monitor_cli.main(
            ["--seed", "7", "--sessions-per-day", "40",
             "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert "rollout monitor" in out
        assert "alerts" in out

    def test_bad_sessions_per_day_rejected(self):
        with pytest.raises(SystemExit):
            monitor_cli.main(["--sessions-per-day", "0"])


class TestDumpCliSatellites:
    def test_text_header_shows_scenario_and_trace_counts(self, capsys):
        assert obs_dump.main(["--sessions", "5", "--format", "text"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("scenario   scale=tiny sessions=5 "
                                   "seed=7 ecs=True")
        assert lines[1].startswith("traces     retained=5 sampled=5 "
                                   "dropped=0")

    def test_prom_format_exposition(self, capsys):
        assert obs_dump.main(["--sessions", "5", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sessions_completed_total counter" in out
        assert "# HELP" in out
        assert 'quantile="0.5"' in out
        # No un-translated metric names leak through.
        for line in out.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split(" ")[0].split("{")[0]
