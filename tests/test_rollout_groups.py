"""Edge cases of the Section 4.1.1 expectation-group classification.

Exercises the pure core factored out of
``repro.simulation.rollout.classify_expectation_groups``:
per-country weighted medians from pairing observations, then the
high/low split at the 1000-mile threshold.
"""

from collections import namedtuple

from repro.simulation.rollout import (
    median_public_distances,
    split_expectation_groups,
)

Obs = namedtuple("Obs", "resolver_id block distance_miles demand")


def _medians(observations, public_ids, block_country):
    return median_public_distances(observations, public_ids, block_country)


class TestMedianPublicDistances:
    def test_empty_dataset_yields_no_medians(self):
        assert _medians([], {"pub-1"}, {}) == {}

    def test_non_public_resolvers_ignored(self):
        observations = [
            Obs("isp-1", "10.0.0.0/24", 5000.0, 1.0),
            Obs("pub-1", "10.0.1.0/24", 200.0, 1.0),
        ]
        block_country = {"10.0.0.0/24": "US", "10.0.1.0/24": "US"}
        medians = _medians(observations, {"pub-1"}, block_country)
        # Only the public-resolver observation counts: the ISP client
        # 5000 miles away must not drag the US median up.
        assert medians == {"US": 200.0}

    def test_median_is_demand_weighted(self):
        observations = [
            Obs("pub-1", "b1", 100.0, 1.0),
            Obs("pub-1", "b1", 4000.0, 10.0),  # demand dominates
        ]
        medians = _medians(observations, {"pub-1"}, {"b1": "IN"})
        assert medians["IN"] == 4000.0


class TestSplitExpectationGroups:
    def test_empty_medians_split_into_empty_groups(self):
        assert split_expectation_groups({}) == (set(), set())

    def test_all_countries_one_group(self):
        far = {"IN": 3000.0, "BR": 2500.0}
        near = {"US": 100.0, "DE": 50.0}
        assert split_expectation_groups(far) == ({"IN", "BR"}, set())
        assert split_expectation_groups(near) == (set(), {"US", "DE"})

    def test_tie_exactly_at_threshold_classifies_low(self):
        medians = {"AT": 1000.0, "JP": 1000.0000001, "NL": 999.9}
        high, low = split_expectation_groups(medians, 1000.0)
        # High expectation requires strictly above the threshold, so a
        # median exactly at 1000 miles lands in the low group.
        assert high == {"JP"}
        assert low == {"AT", "NL"}

    def test_custom_threshold(self):
        medians = {"A": 10.0, "B": 30.0}
        assert split_expectation_groups(medians, 20.0) == ({"B"}, {"A"})

    def test_groups_partition_the_input(self):
        medians = {"A": 1.0, "B": 1000.0, "C": 1001.0, "D": 99999.0}
        high, low = split_expectation_groups(medians)
        assert high | low == set(medians)
        assert high & low == set()
