"""Tests for the mapping system core: measurement, scoring, LB, policies."""

import math

import pytest

from repro.cdn import build_catalog, build_deployments
from repro.core import (
    CANSMappingPolicy,
    ClientClusterIndex,
    EUMappingPolicy,
    GlobalLoadBalancer,
    LoadBalancerConfig,
    LocalLoadBalancer,
    MappingSystem,
    MeasurementService,
    NSMappingPolicy,
    Scorer,
    ScoringWeights,
    TrafficClass,
    build_ping_targets,
    build_units,
)
from repro.core.units import demand_coverage_curve, units_needed_for_share
from repro.core.policies import MapTarget, ResolutionContext
from repro.core.loadbalancer import spread_load
from repro.dnsproto.edns import ClientSubnetOption
from repro.dnsproto.types import QType, Rcode
from repro.net.geometry import great_circle_miles
from repro.net.ipv4 import Prefix
from repro.topology import InternetConfig, build_internet


@pytest.fixture(scope="module")
def net():
    return build_internet(InternetConfig.tiny(), seed=5)


@pytest.fixture(scope="module")
def plan(net):
    return build_deployments(50, net.geodb, seed=2,
                             host_ases=list(net.ases.values()))


@pytest.fixture(scope="module")
def measurement(net):
    return MeasurementService(net.geodb)


@pytest.fixture(scope="module")
def scorer(measurement):
    return Scorer(measurement)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(10, seed=3)


def target_for_block(net, block):
    return MapTarget(geo=block.geo, asn=block.asn)


class TestMeasurementService:
    def test_rtt_memoized_and_deterministic(self, net, plan, measurement):
        cluster = next(iter(plan.clusters.values()))
        block = net.blocks[0]
        a = measurement.rtt_cluster_to_prefix(cluster, block.prefix)
        b = measurement.rtt_cluster_to_prefix(cluster, block.prefix)
        assert a == b and a > 0

    def test_rtt_unknown_prefix_none(self, plan, measurement):
        cluster = next(iter(plan.clusters.values()))
        assert measurement.rtt_cluster_to_prefix(
            cluster, Prefix.parse("250.250.250.0/24")) is None

    def test_noise_frozen_per_pair(self, net, plan):
        noisy = MeasurementService(net.geodb, measurement_noise=0.3, seed=1)
        cluster = next(iter(plan.clusters.values()))
        block = net.blocks[0]
        assert noisy.rtt_cluster_to_prefix(
            cluster, block.prefix) == noisy.rtt_cluster_to_prefix(
            cluster, block.prefix)

    def test_liveness_snapshot(self, plan, measurement):
        snapshot = measurement.liveness_snapshot(plan)
        assert len(snapshot) == len(plan)
        report = next(iter(snapshot.values()))
        assert report.alive and report.live_servers > 0

    def test_flush_clears_cache(self, net, plan, measurement):
        cluster = next(iter(plan.clusters.values()))
        measurement.rtt_cluster_to_prefix(cluster, net.blocks[0].prefix)
        measurement.flush()
        assert measurement.rtt_cluster_to_prefix(
            cluster, net.blocks[0].prefix) is not None


class TestPingTargets:
    def test_target_count_and_assignment(self, net):
        targets, assignment = build_ping_targets(net, 100)
        assert len(targets) == 100
        assert len(assignment) == len(net.blocks)
        assert set(assignment.values()) <= {t.target_id for t in targets}

    def test_blocks_map_to_nearby_target(self, net):
        targets, assignment = build_ping_targets(net, 200)
        by_id = {t.target_id: t for t in targets}
        # Spot-check: assigned target must be within a plausible radius
        # of the block (not across the planet).
        for block in net.blocks[:100]:
            target = by_id[assignment[block.prefix]]
            assert great_circle_miles(block.geo, target.geo) < 2000

    def test_targets_prefer_high_demand(self, net):
        targets, _ = build_ping_targets(net, 50)
        mean_target_demand = sum(t.demand for t in targets) / len(targets)
        mean_block_demand = sum(b.demand for b in net.blocks) / len(
            net.blocks)
        assert mean_target_demand > mean_block_demand

    def test_rejects_zero_targets(self, net):
        with pytest.raises(ValueError):
            build_ping_targets(net, 0)


class TestScoring:
    def test_closer_cluster_scores_better(self, net, plan, scorer):
        block = max(net.blocks, key=lambda b: b.demand)
        target = target_for_block(net, block)
        clusters = list(plan.clusters.values())
        near = min(clusters,
                   key=lambda c: great_circle_miles(c.geo, block.geo))
        far = max(clusters,
                  key=lambda c: great_circle_miles(c.geo, block.geo))
        assert scorer.score(near, target) < scorer.score(far, target)

    def test_traffic_classes_differ(self, measurement):
        web = ScoringWeights.for_class(TrafficClass.WEB)
        video = ScoringWeights.for_class(TrafficClass.VIDEO)
        assert video.throughput_sensitivity > web.throughput_sensitivity

    def test_loss_grows_with_rtt(self, scorer):
        assert scorer.expected_loss_pct(200) > scorer.expected_loss_pct(10)

    def test_weighted_score_between_extremes(self, net, plan, scorer):
        blocks = net.blocks[:2]
        cluster = next(iter(plan.clusters.values()))
        t1, t2 = (target_for_block(net, b) for b in blocks)
        s1 = scorer.score(cluster, t1)
        s2 = scorer.score(cluster, t2)
        weighted = scorer.score_weighted(cluster, [(t1, 1.0), (t2, 1.0)])
        assert min(s1, s2) - 1e-9 <= weighted <= max(s1, s2) + 1e-9

    def test_weighted_score_rejects_zero_weight(self, net, plan, scorer):
        cluster = next(iter(plan.clusters.values()))
        with pytest.raises(ValueError):
            scorer.score_weighted(cluster, [])


class TestGlobalLoadBalancer:
    def test_picks_nearby_cluster(self, net, plan, scorer):
        glb = GlobalLoadBalancer(plan, scorer)
        block = max(net.blocks, key=lambda b: b.demand)
        cluster = glb.pick_cluster(target_for_block(net, block))
        assert cluster is not None
        distance = great_circle_miles(cluster.geo, block.geo)
        nearest = min(great_circle_miles(c.geo, block.geo)
                      for c in plan.clusters.values())
        # Chosen cluster should be near-optimal geographically (peering
        # penalties can justify a modest detour).
        assert distance <= nearest + 1500

    def test_spillover_on_overload(self, net, plan, scorer):
        glb = GlobalLoadBalancer(plan, scorer)
        block = net.blocks[0]
        target = target_for_block(net, block)
        first = glb.pick_cluster(target)
        for server in first.servers:
            server.add_load(server.capacity_rps * 2)
        second = glb.pick_cluster(target)
        assert second is not first
        assert glb.spillovers >= 1
        for server in first.servers:
            server.reset_load()

    def test_dead_cluster_skipped(self, net, plan, scorer):
        glb = GlobalLoadBalancer(plan, scorer)
        block = net.blocks[1]
        target = target_for_block(net, block)
        first = glb.pick_cluster(target)
        for server in first.servers:
            server.fail()
        second = glb.pick_cluster(target)
        assert second is not first and second.alive
        for server in first.servers:
            server.recover()

    def test_all_overloaded_degrades_gracefully(self, net, plan, scorer):
        glb = GlobalLoadBalancer(plan, scorer,
                                 LoadBalancerConfig(candidate_limit=3))
        target = target_for_block(net, net.blocks[2])
        for cluster in plan.clusters.values():
            for server in cluster.servers:
                server.add_load(server.capacity_rps * 2)
        cluster = glb.pick_cluster(target)
        assert cluster is not None
        for c in plan.clusters.values():
            c.reset_load()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadBalancerConfig(utilization_ceiling=0)
        with pytest.raises(ValueError):
            LoadBalancerConfig(servers_per_answer=0)


class TestLocalLoadBalancer:
    def test_returns_requested_count(self, plan):
        llb = LocalLoadBalancer(LoadBalancerConfig(servers_per_answer=2))
        cluster = next(iter(plan.clusters.values()))
        servers = llb.pick_servers(cluster, "provider0")
        assert len(servers) == 2

    def test_stable_per_provider(self, plan):
        llb = LocalLoadBalancer()
        cluster = next(iter(plan.clusters.values()))
        a = [s.ip for s in llb.pick_servers(cluster, "provider0")]
        b = [s.ip for s in llb.pick_servers(cluster, "provider0")]
        assert a == b

    def test_different_providers_spread(self, plan):
        llb = LocalLoadBalancer(LoadBalancerConfig(servers_per_answer=1))
        cluster = next(c for c in plan.clusters.values()
                       if len(c.servers) >= 4)
        picks = {llb.pick_servers(cluster, f"provider{i}")[0].ip
                 for i in range(30)}
        assert len(picks) >= 2  # load spread across servers

    def test_dead_server_excluded_with_minimal_reshuffle(self, plan):
        llb = LocalLoadBalancer(LoadBalancerConfig(servers_per_answer=2))
        cluster = next(c for c in plan.clusters.values()
                       if len(c.servers) >= 4)
        before = llb.pick_servers(cluster, "providerX")
        before[0].fail()
        after = llb.pick_servers(cluster, "providerX")
        assert before[0] not in after
        assert before[1] in after  # survivor keeps its assignment
        before[0].recover()

    def test_empty_cluster_returns_nothing(self, plan):
        llb = LocalLoadBalancer()
        cluster = next(iter(plan.clusters.values()))
        for server in cluster.servers:
            server.fail()
        assert llb.pick_servers(cluster, "p") == []
        for server in cluster.servers:
            server.recover()

    def test_spread_load(self, plan):
        cluster = next(iter(plan.clusters.values()))
        servers = cluster.servers[:2]
        spread_load(servers, 10)
        assert all(s.load_rps == pytest.approx(5) for s in servers)
        for s in servers:
            s.reset_load()


class TestPolicies:
    def test_ns_policy_targets_ldns(self, net):
        policy = NSMappingPolicy(net.geodb)
        resolver = next(iter(net.resolvers.values()))
        context = ResolutionContext("e1.cdn.example", resolver.ip, None)
        target = policy.target(context)
        assert great_circle_miles(target.geo, resolver.geo) < 1
        assert policy.scope_for(context) == 0

    def test_eu_policy_targets_client_block(self, net):
        policy = EUMappingPolicy(net.geodb)
        block = net.blocks[0]
        resolver = next(iter(net.resolvers.values()))
        ecs = ClientSubnetOption(block.prefix)
        context = ResolutionContext("e1.cdn.example", resolver.ip, ecs)
        target = policy.target(context)
        assert great_circle_miles(target.geo, block.geo) < 1
        assert policy.scope_for(context) == 24

    def test_eu_policy_falls_back_without_ecs(self, net):
        policy = EUMappingPolicy(net.geodb)
        resolver = next(iter(net.resolvers.values()))
        context = ResolutionContext("e1.cdn.example", resolver.ip, None)
        target = policy.target(context)
        assert great_circle_miles(target.geo, resolver.geo) < 1
        assert policy.scope_for(context) == 0

    def test_eu_scope_clamped_to_source(self, net):
        policy = EUMappingPolicy(net.geodb, scope_prefix_len=24)
        block = net.blocks[0]
        ecs = ClientSubnetOption(block.prefix.supernet(20))
        context = ResolutionContext("x", 1, ecs)
        assert policy.scope_for(context) == 20

    def test_eu_rejects_bad_scope(self, net):
        with pytest.raises(ValueError):
            EUMappingPolicy(net.geodb, scope_prefix_len=0)

    def test_cans_policy_uses_cluster(self, net):
        index = ClientClusterIndex(net.geodb)
        resolver = next(iter(net.resolvers.values()))
        for block in net.blocks[:5]:
            index.observe(resolver.ip, block.prefix, block.demand)
        policy = CANSMappingPolicy(net.geodb, index)
        context = ResolutionContext("x", resolver.ip, None)
        target = policy.target(context)
        assert target.is_aggregate
        assert len(target.members) == 5
        assert policy.scope_for(context) == 0

    def test_cans_falls_back_without_data(self, net):
        index = ClientClusterIndex(net.geodb)
        policy = CANSMappingPolicy(net.geodb, index)
        resolver = next(iter(net.resolvers.values()))
        target = policy.target(ResolutionContext("x", resolver.ip, None))
        assert target is not None and not target.is_aggregate

    def test_cluster_index_truncates(self, net):
        index = ClientClusterIndex(net.geodb, max_members=3)
        resolver = next(iter(net.resolvers.values()))
        for block in net.blocks[:10]:
            index.observe(resolver.ip, block.prefix, block.demand)
        target = index.cluster_for(resolver.ip)
        assert len(target.members) == 3


class TestMapUnits:
    def test_ldns_units_match_resolver_population(self, net):
        units = build_units("ldns", net)
        used = {rid for b in net.blocks for rid, _ in b.ldns}
        assert {u.key for u in units} == used

    def test_block_units_partition_demand(self, net):
        units = build_units("block", net, prefix_len=24)
        assert sum(u.demand for u in units) == pytest.approx(
            net.total_demand)
        assert len(units) == len(net.blocks)

    def test_fewer_units_at_coarser_prefix(self, net):
        counts = [len(build_units("block", net, prefix_len=x)) for x in (24, 20, 16, 12)]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] < counts[0]

    def test_radius_grows_with_coarseness(self, net):
        def mean_radius(units):
            big = [u for u in units if len(u.members) >= 1]
            return sum(u.radius_miles() * u.demand for u in big) / sum(
                u.demand for u in big)
        fine = mean_radius(build_units("block", net, prefix_len=24))
        coarse = mean_radius(build_units("block", net, prefix_len=10))
        assert coarse > fine

    def test_bgp_merge_reduces_units(self, net):
        fine = build_units("block", net, prefix_len=24)
        merged = build_units("bgp_merged", net, prefix_len=24)
        assert len(merged) < len(fine)
        assert sum(u.demand for u in merged) == pytest.approx(
            net.total_demand)

    def test_coverage_curve_monotone(self, net):
        units = build_units("ldns", net)
        curve = demand_coverage_curve(units)
        shares = [share for _, share in curve]
        assert shares == sorted(shares)
        assert shares[-1] == pytest.approx(1.0)

    def test_units_needed_concentration(self, net):
        """Top units cover demand disproportionately (Figure 21)."""
        units = build_units("ldns", net)
        n50 = units_needed_for_share(units, 0.5)
        n95 = units_needed_for_share(units, 0.95)
        assert n50 < n95 <= len(units)
        assert n50 < 0.25 * len(units)

    def test_rejects_bad_params(self, net):
        with pytest.raises(ValueError):
            build_units("block", net, prefix_len=0)
        with pytest.raises(ValueError):
            units_needed_for_share(build_units("ldns", net), 0)


class TestMappingSystem:
    @pytest.fixture()
    def system(self, net, plan, scorer, catalog):
        return MappingSystem(plan, catalog, EUMappingPolicy(net.geodb),
                             scorer)

    def test_answers_a_queries(self, net, catalog, system):
        provider = catalog.providers[0]
        resolver = next(iter(net.resolvers.values()))
        answer = system.answer(provider.cdn_hostname, QType.A, None,
                               resolver.ip, now=0)
        assert answer.rcode == Rcode.NOERROR
        assert len(answer.records) == 2  # footnote 2: >= 2 servers
        assert answer.scope_prefix_len == 0

    def test_ecs_answer_has_scope(self, net, catalog, system):
        provider = catalog.providers[0]
        resolver = next(iter(net.resolvers.values()))
        ecs = ClientSubnetOption(net.blocks[0].prefix)
        answer = system.answer(provider.cdn_hostname, QType.A, ecs,
                               resolver.ip, now=0)
        assert answer.scope_prefix_len == 24
        assert system.stats.ecs_resolutions == 1

    def test_unknown_hostname_nxdomain(self, net, system):
        resolver = next(iter(net.resolvers.values()))
        answer = system.answer("nope.cdn.example", QType.A, None,
                               resolver.ip, now=0)
        assert answer.rcode == Rcode.NXDOMAIN

    def test_non_a_type_nodata(self, net, catalog, system):
        provider = catalog.providers[0]
        resolver = next(iter(net.resolvers.values()))
        answer = system.answer(provider.cdn_hostname, QType.TXT, None,
                               resolver.ip, now=0)
        assert answer.rcode == Rcode.NOERROR
        assert answer.records == ()

    def test_decision_cache_respects_ttl(self, net, catalog, system):
        provider = catalog.providers[0]
        resolver = next(iter(net.resolvers.values()))
        system.answer(provider.cdn_hostname, QType.A, None, resolver.ip, 0)
        system.answer(provider.cdn_hostname, QType.A, None, resolver.ip, 1)
        assert system.stats.decision_cache_hits == 1
        system.answer(provider.cdn_hostname, QType.A, None, resolver.ip,
                      system.decision_ttl + 2)
        assert system.stats.decision_cache_misses == 2

    def test_eu_maps_closer_than_ns_for_far_ldns(self, net, plan, scorer,
                                                 catalog):
        """The paper's core claim at unit level: for a client whose
        LDNS is far away, EU mapping picks a closer cluster."""
        ns = MappingSystem(plan, catalog, NSMappingPolicy(net.geodb),
                           scorer)
        eu = MappingSystem(plan, catalog, EUMappingPolicy(net.geodb),
                           scorer)
        pub = net.public_resolver_ids()
        candidates = [
            (b, net.resolvers[rid])
            for b in net.blocks
            for rid, _ in b.ldns if rid in pub
        ]
        block, resolver = max(
            candidates,
            key=lambda pair: great_circle_miles(pair[0].geo, pair[1].geo))
        provider = catalog.providers[0]
        ecs = ClientSubnetOption(block.prefix)
        ns_answer = ns.answer(provider.cdn_hostname, QType.A, ecs,
                              resolver.ip, 0)
        eu_answer = eu.answer(provider.cdn_hostname, QType.A, ecs,
                              resolver.ip, 0)
        def mapping_distance(answer):
            server_ip = answer.records[0].rdata.address
            cluster = plan.cluster_of_server(server_ip)
            return great_circle_miles(cluster.geo, block.geo)
        assert mapping_distance(eu_answer) < mapping_distance(ns_answer)

    def test_set_policy_flushes_decisions(self, net, plan, scorer, catalog,
                                          system):
        provider = catalog.providers[0]
        resolver = next(iter(net.resolvers.values()))
        system.answer(provider.cdn_hostname, QType.A, None, resolver.ip, 0)
        system.set_policy(NSMappingPolicy(net.geodb))
        system.answer(provider.cdn_hostname, QType.A, None, resolver.ip, 1)
        assert system.stats.decision_cache_hits == 0

    def test_assign_direct_api(self, net, plan, scorer, catalog, system):
        block = net.blocks[0]
        cluster, server_ips = system.assign(
            MapTarget(geo=block.geo, asn=block.asn), "provider0", now=0)
        assert cluster is not None
        assert len(server_ips) == 2
        assert all(plan.cluster_of_server(ip) is cluster
                   for ip in server_ips)
