"""Resolver robustness: failover, TCP fallback, negative caching."""

import pytest

from repro.dnsproto.message import ResourceRecord
from repro.dnsproto.rdata import ARdata, TXTRdata
from repro.dnsproto.types import QType, Rcode
from repro.dnssrv import (
    AuthoritativeServer,
    AuthorityDirectory,
    Network,
    RecursiveResolver,
    StaticZone,
    ZoneAnswer,
)
from repro.geo.cities import city_index
from repro.geo.database import GeoDatabase, GeoRecord
from repro.net.ipv4 import Prefix, parse_ipv4

CLIENT = parse_ipv4("10.0.0.5")
LDNS_IP = parse_ipv4("20.0.0.1")
AUTH_NEAR = parse_ipv4("30.0.0.1")
AUTH_FAR = parse_ipv4("30.0.1.1")


def geo(city_name, asn):
    city = city_index()[city_name]
    return GeoRecord(geo=city.geo, city=city.name, country=city.country,
                     continent=city.continent, asn=asn)


@pytest.fixture
def world():
    geodb = GeoDatabase()
    geodb.register(Prefix.parse("10.0.0.0/24"), geo("New York", 100))
    geodb.register(Prefix.parse("20.0.0.0/24"), geo("New York", 100))
    geodb.register(Prefix.parse("30.0.0.0/24"), geo("New York", 200))
    geodb.register(Prefix.parse("30.0.1.0/24"), geo("London", 200))
    network = Network(geodb)
    directory = AuthorityDirectory()
    zone = StaticZone().add(ResourceRecord(
        "a.cdn.example", QType.A, 60, ARdata(parse_ipv4("5.5.5.5"))))
    near = AuthoritativeServer(AUTH_NEAR)
    far = AuthoritativeServer(AUTH_FAR)
    for server in (near, far):
        server.attach_zone("cdn.example", zone)
        network.register(server)
    directory.delegate("cdn.example", [AUTH_NEAR, AUTH_FAR])
    ldns = RecursiveResolver(LDNS_IP, network, directory)
    return network, ldns, near, far


class TestFailover:
    def test_failover_to_second_authority(self, world):
        _network, ldns, near, far = world
        near.fail()
        result = ldns.resolve("a.cdn.example", QType.A, CLIENT, now=0)
        assert result.rcode == Rcode.NOERROR
        assert result.addresses == [parse_ipv4("5.5.5.5")]
        assert ldns.failovers == 1
        assert far.queries_received == 1
        # The failed attempt costs the timeout penalty.
        assert result.upstream_rtt_ms > 400

    def test_all_dead_servfail(self, world):
        _network, ldns, near, far = world
        near.fail()
        far.fail()
        result = ldns.resolve("a.cdn.example", QType.A, CLIENT, now=0)
        assert result.rcode == Rcode.SERVFAIL
        assert ldns.failovers == 2

    def test_recovery_restores_service(self, world):
        _network, ldns, near, _far = world
        near.fail()
        near.recover()
        result = ldns.resolve("a.cdn.example", QType.A, CLIENT, now=0)
        assert result.rcode == Rcode.NOERROR
        assert ldns.failovers == 0


class BigAnswerSource:
    """Answer source producing a response too large for UDP."""

    def answer(self, qname, qtype, ecs, src_ip, now):
        texts = [f"filler-{i:04d}-" + "x" * 40 for i in range(120)]
        record = ResourceRecord(qname, QType.TXT, 60,
                                TXTRdata.from_text(*texts))
        return ZoneAnswer(records=(record,))


class TestTcpFallback:
    def test_truncated_then_tcp(self, world):
        network, ldns, near, _far = world
        near.attach_zone("big.cdn.example", BigAnswerSource())
        result = ldns.resolve("big.cdn.example", QType.TXT, CLIENT,
                              now=0)
        assert result.rcode == Rcode.NOERROR
        assert result.records  # full answer arrived over TCP
        assert ldns.tcp_retries == 1
        assert near.truncated_count == 1
        assert near.tcp_queries == 1

    def test_tcp_retry_costs_extra_rtt(self, world):
        network, ldns, near, _far = world
        near.attach_zone("big.cdn.example", BigAnswerSource())
        small = ldns.resolve("a.cdn.example", QType.A, CLIENT, now=0)
        big = ldns.resolve("big.cdn.example", QType.TXT, CLIENT, now=0)
        # UDP attempt (1 RTT) + TCP handshake and exchange (2 RTT).
        assert big.upstream_rtt_ms == pytest.approx(
            3 * small.upstream_rtt_ms)

    def test_small_answers_stay_udp(self, world):
        _network, ldns, near, _far = world
        ldns.resolve("a.cdn.example", QType.A, CLIENT, now=0)
        assert near.truncated_count == 0
        assert ldns.tcp_retries == 0


class TestNegativeCaching:
    def test_nxdomain_cached(self, world):
        _network, ldns, near, _far = world
        first = ldns.resolve("missing.cdn.example", QType.A, CLIENT, 0)
        second = ldns.resolve("missing.cdn.example", QType.A, CLIENT, 5)
        assert first.rcode == Rcode.NXDOMAIN
        assert second.rcode == Rcode.NXDOMAIN
        assert second.cache_hit
        assert near.queries_received == 1

    def test_negative_entry_expires(self, world):
        _network, ldns, near, _far = world
        ldns.resolve("missing.cdn.example", QType.A, CLIENT, 0)
        later = ldns.resolve("missing.cdn.example", QType.A, CLIENT, 60)
        assert not later.cache_hit
        assert near.queries_received == 2

    def test_nodata_cached(self, world):
        _network, ldns, near, _far = world
        # Name exists (A record) but has no TXT data -> NODATA.
        first = ldns.resolve("a.cdn.example", QType.TXT, CLIENT, 0)
        second = ldns.resolve("a.cdn.example", QType.TXT, CLIENT, 5)
        assert first.rcode == Rcode.NOERROR and not first.records
        assert second.cache_hit
        assert near.queries_received == 1

    def test_servfail_not_cached(self, world):
        _network, ldns, near, far = world
        near.fail()
        far.fail()
        ldns.resolve("a.cdn.example", QType.A, CLIENT, 0)
        near.recover()
        far.recover()
        result = ldns.resolve("a.cdn.example", QType.A, CLIENT, 1)
        assert result.rcode == Rcode.NOERROR
