"""The resolver plane: anycast PoP fleets, ECS policy matrix, and
resolver-plane fault injection.

Covers the fleet data model (policy validation, deterministic
routing), the two-level ``public:<provider>[:<city>]`` target grammar
and its parse-time conflict rules, injector apply/revert exactness for
the three resolver-plane kinds, catchment-shift edge cases (all PoPs
down, cold caches at the outage boundary, exact recovery), and the
end-to-end PoP-outage acceptance scenario with its golden fixture
(regenerated with ``REGEN_GOLDEN=1``) plus 1-vs-4-worker byte
identity through the sharded engine.
"""

import datetime
import difflib
import json
import os
import pathlib
import random

import pytest

from repro.api import ScenarioSpec, run
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
)
from repro.faults.chaos import world_restored
from repro.simulation.session import simulate_session
from repro.simulation.world import WorldConfig, _build_world
from repro.topology.resolvers import (
    EcsPolicy,
    ResolverFleets,
    ResolverPolicySet,
    anycast_catchment,
)

GOLDEN_PATH = (pathlib.Path(__file__).parent / "data"
               / "golden_resolver_faults.json")


def _event(**overrides):
    base = dict(start_day=2, duration_days=3,
                target="public:GloboDNS:dallas",
                kind=FaultKind.POP_OUTAGE)
    base.update(overrides)
    return FaultEvent(**base)


@pytest.fixture(scope="module")
def fleet_world():
    return _build_world(WorldConfig.tiny(),
                        resolver_policies=ResolverPolicySet())


class TestEcsPolicy:
    def test_defaults_reproduce_prefleet_behaviour(self):
        policy = EcsPolicy()
        assert policy.whitelist_enabled and policy.scope_ceiling == 32

    @pytest.mark.parametrize("ceiling", [0, -4, 33])
    def test_bad_ceiling_rejected(self, ceiling):
        with pytest.raises(ValueError, match="scope_ceiling"):
            EcsPolicy(scope_ceiling=ceiling)

    def test_dict_roundtrip_and_unknown_keys(self):
        policy = EcsPolicy(whitelist_enabled=False, scope_ceiling=20)
        assert EcsPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ValueError, match="unknown ECS policy"):
            EcsPolicy.from_dict({"scope_celing": 20})

    def test_policy_set_sorts_and_rejects_duplicates(self):
        policies = ResolverPolicySet((
            ("OpenFast", EcsPolicy(scope_ceiling=24)),
            ("GloboDNS", EcsPolicy(whitelist_enabled=False)),
        ))
        assert [name for name, _ in policies.policies] == [
            "GloboDNS", "OpenFast"]
        assert not policies.policy_for("GloboDNS").whitelist_enabled
        assert policies.policy_for("elsewhere") == EcsPolicy()
        with pytest.raises(ValueError, match="duplicate provider"):
            ResolverPolicySet((("X", EcsPolicy()), ("X", EcsPolicy())))

    def test_policy_set_wire_format(self):
        policies = ResolverPolicySet((
            ("GloboDNS", EcsPolicy(scope_ceiling=20)),))
        assert ResolverPolicySet.from_dict(
            policies.to_dict()) == policies
        with pytest.raises(ValueError, match="object keyed by provider"):
            ResolverPolicySet.from_dict(["GloboDNS"])


class TestResolverTargetGrammar:
    """Satellite: the two-level ``public:<provider>[:<city>]`` grammar
    and the pop_outage/ldns_blackout conflict rule, at parse time."""

    def _schedule(self, *rows):
        return FaultSchedule.from_dict(
            [dict(start_day=1, duration_days=2, **row) for row in rows])

    @pytest.mark.parametrize("kind", [
        FaultKind.POP_OUTAGE, FaultKind.ANYCAST_FLAP,
        FaultKind.ECS_WHITELIST_REVOKE,
    ])
    def test_provider_and_city_targets_accepted(self, kind):
        schedule = self._schedule(
            dict(kind=kind, target="public:GloboDNS"),
            dict(kind=kind, target="public:OpenFast:chicago"),
            dict(kind=kind, target="public:*"),
            dict(kind=kind, target="public:0"),
        )
        assert len(schedule) == 4

    @pytest.mark.parametrize("target", [
        "public:GloboDNS:dallas:extra",   # three levels deep
        "public:",                        # empty suffix
        "public::dallas",                 # empty provider
        "public:GloboDNS:",               # empty city
    ])
    def test_malformed_provider_targets_rejected(self, target):
        with pytest.raises(ValueError, match="public: takes|empty"):
            self._schedule(dict(kind=FaultKind.POP_OUTAGE,
                                target=target))

    @pytest.mark.parametrize("kind,target", [
        (FaultKind.POP_OUTAGE, "ns:0"),
        (FaultKind.ANYCAST_FLAP, "isp:0"),
        (FaultKind.ECS_WHITELIST_REVOKE, "mapmaker:primary"),
    ])
    def test_non_public_heads_rejected(self, kind, target):
        with pytest.raises(ValueError, match="unknown prefix"):
            self._schedule(dict(kind=kind, target=target))

    def test_overlapping_outage_and_blackout_conflict(self):
        with pytest.raises(ValueError, match="conflicting"):
            self._schedule(
                dict(kind=FaultKind.POP_OUTAGE,
                     target="public:GloboDNS"),
                dict(kind=FaultKind.LDNS_BLACKOUT,
                     target="public:GloboDNS"),
            )

    def test_city_level_conflict_on_same_provider(self):
        with pytest.raises(ValueError, match="conflicting"):
            self._schedule(
                dict(kind=FaultKind.POP_OUTAGE,
                     target="public:GloboDNS:dallas"),
                dict(kind=FaultKind.LDNS_BLACKOUT,
                     target="public:GloboDNS:london"),
            )

    def test_index_blackouts_never_conflict(self):
        # Exact-string doctrine: only explicitly *named* providers can
        # conflict, so the chaos menu's index/wildcard blackout
        # spellings always stay schedulable alongside PoP outages.
        schedule = self._schedule(
            dict(kind=FaultKind.POP_OUTAGE, target="public:GloboDNS"),
            dict(kind=FaultKind.LDNS_BLACKOUT, target="public:0"),
            dict(kind=FaultKind.LDNS_BLACKOUT, target="*"),
        )
        assert len(schedule) == 3

    def test_disjoint_windows_do_not_conflict(self):
        schedule = FaultSchedule.from_dict([
            dict(start_day=1, duration_days=2,
                 kind=FaultKind.POP_OUTAGE, target="public:GloboDNS"),
            dict(start_day=3, duration_days=2,
                 kind=FaultKind.LDNS_BLACKOUT,
                 target="public:GloboDNS"),
        ])
        assert len(schedule) == 2

    def test_new_kinds_roundtrip(self):
        schedule = FaultSchedule((
            _event(),
            _event(start_day=6, kind=FaultKind.ANYCAST_FLAP,
                   target="public:OpenFast"),
            _event(start_day=10, kind=FaultKind.ECS_WHITELIST_REVOKE,
                   target="public:*"),
        ))
        assert FaultSchedule.from_json(schedule.to_json()) == schedule


class TestFleetRouting:
    def _fleets(self, world):
        return ResolverFleets.from_providers(world.internet.providers)

    def _block_for(self, world, resolver_id):
        return next(b for b in world.internet.blocks
                    if any(rid == resolver_id for rid, _w in b.ldns))

    def test_healthy_fleet_is_identity(self, fleet_world):
        fleets = self._fleets(fleet_world)
        block = fleet_world.internet.blocks[0]
        for rid in sorted(fleets.pops):
            assert fleets.route(rid, block) == rid

    def test_non_pop_ids_pass_through(self, fleet_world):
        fleets = self._fleets(fleet_world)
        block = fleet_world.internet.blocks[0]
        assert fleets.route("isp-0-nowhere", block) == "isp-0-nowhere"

    def test_withdrawn_pop_rehomes_to_nearest_sibling(self, fleet_world):
        fleets = self._fleets(fleet_world)
        rid = "pub-GloboDNS-dallas"
        block = self._block_for(fleet_world, rid)
        fleets.withdraw(rid)
        target = fleets.route(rid, block)
        assert target != rid and target is not None
        assert fleets.pops[target].resolver.provider == "GloboDNS"
        assert fleets.pops[target].healthy
        fleets.restore(rid)
        assert fleets.route(rid, block) == rid
        assert fleets.all_healthy()

    def test_flap_moves_odd_blocks_only(self, fleet_world):
        fleets = self._fleets(fleet_world)
        fleets.flapping.add("GloboDNS")
        rid = "pub-GloboDNS-dallas"
        odd = next(b for b in fleet_world.internet.blocks
                   if (b.prefix.network >> 8) & 1 == 1)
        even = next(b for b in fleet_world.internet.blocks
                    if (b.prefix.network >> 8) & 1 == 0)
        assert fleets.route(rid, even) == rid
        assert fleets.route(rid, odd) != rid

    def test_fleet_dark_returns_none(self, fleet_world):
        fleets = self._fleets(fleet_world)
        block = fleet_world.internet.blocks[0]
        for pop in fleets.by_provider["UltraLevel"]:
            fleets.withdraw(pop.resolver_id)
        assert fleets.route("pub-UltraLevel-dallas", block) is None
        assert fleets.pops_down == len(fleets.by_provider["UltraLevel"])

    def test_single_pop_catchment_still_draws(self, fleet_world):
        # Satellite: a fleet shrunk to one PoP must keep the RNG
        # stream aligned with the healthy world's -- the trivial pick
        # still consumes its misroute draw.
        deployment = fleet_world.internet.providers[0].deployments[0]
        block = fleet_world.internet.blocks[0]
        picked_rng = random.Random(5)
        parallel_rng = random.Random(5)
        picked = anycast_catchment(block.geo, [deployment], picked_rng)
        assert picked is deployment
        parallel_rng.random()
        assert picked_rng.getstate() == parallel_rng.getstate()


class TestResolverInjector:
    def test_city_outage_applies_and_reverts(self, fleet_world):
        schedule = FaultSchedule((_event(start_day=1, duration_days=2),))
        injector = FaultInjector(fleet_world, schedule)
        fleets = fleet_world.resolver_fleets
        injector.step(0)
        assert fleets.all_healthy()
        injector.step(1)
        assert not fleets.pops["pub-GloboDNS-dallas"].healthy
        assert fleets.pops_down == 1
        injector.step(3)
        assert fleets.all_healthy()

    def test_provider_outage_takes_whole_fleet(self, fleet_world):
        schedule = FaultSchedule((_event(
            start_day=0, duration_days=1, target="public:UltraLevel"),))
        injector = FaultInjector(fleet_world, schedule)
        fleets = fleet_world.resolver_fleets
        injector.step(0)
        assert not any(p.healthy
                       for p in fleets.by_provider["UltraLevel"])
        assert all(p.healthy for p in fleets.by_provider["GloboDNS"])
        injector.finish()
        assert fleets.all_healthy()

    def test_anycast_flap_applies_and_reverts(self, fleet_world):
        schedule = FaultSchedule((_event(
            start_day=0, duration_days=1, kind=FaultKind.ANYCAST_FLAP,
            target="public:OpenFast"),))
        injector = FaultInjector(fleet_world, schedule)
        injector.step(0)
        assert fleet_world.resolver_fleets.flapping == {"OpenFast"}
        injector.finish()
        assert not fleet_world.resolver_fleets.flapping

    def test_whitelist_revoke_applies_and_reverts(self, fleet_world):
        schedule = FaultSchedule((_event(
            start_day=0, duration_days=1,
            kind=FaultKind.ECS_WHITELIST_REVOKE, target="public:*"),))
        injector = FaultInjector(fleet_world, schedule)
        public = set(fleet_world.public_ldns_ids())
        injector.step(0)
        for rid, ldns in fleet_world.ldns_registry.items():
            assert ldns.ecs_whitelisted == (rid not in public)
        injector.finish()
        assert all(ldns.ecs_whitelisted
                   for ldns in fleet_world.ldns_registry.values())

    def test_resolver_faults_need_the_fleet_model(self):
        plain = _build_world(WorldConfig.tiny())
        schedule = FaultSchedule((_event(start_day=0, duration_days=1),))
        injector = FaultInjector(plain, schedule)
        with pytest.raises(KeyError, match="PoP fleet model"):
            injector.step(0)

    @pytest.mark.parametrize("target,hint", [
        ("public:NoSuchDNS", "unknown public provider"),
        ("public:GloboDNS:atlantis", "no PoP in city"),
    ])
    def test_unknown_provider_or_city_raise(self, fleet_world, target,
                                            hint):
        schedule = FaultSchedule((_event(
            start_day=0, duration_days=1, target=target),))
        injector = FaultInjector(fleet_world, schedule)
        with pytest.raises(KeyError, match=hint):
            injector.step(0)


class TestCatchmentEdgeCases:
    """Satellite: all PoPs down, cold caches at the boundary, and
    byte-exact recovery."""

    def _session_for(self, world, resolver_id, now, seed=11):
        rng = random.Random(seed)
        block = next(b for b in world.internet.blocks
                     if b.ldns[0][0] == resolver_id
                     and len(b.ldns) == 1)
        provider = world.catalog.providers[0]
        return simulate_session(world, block, now, rng,
                                provider=provider), block

    def test_all_pops_down_falls_back_past_the_fleet(self):
        world = _build_world(WorldConfig.tiny(),
                             resolver_policies=ResolverPolicySet())
        fleets = world.resolver_fleets
        for rid in sorted(fleets.pops):
            fleets.withdraw(rid)
        result, _ = self._session_for(world, "pub-GloboDNS-dallas",
                                      now=100.0)
        # The whole public plane is dark: the stub burns its timeout,
        # then fails over to an ISP/enterprise resolver -- never to
        # another (equally dark) public PoP.
        assert not result.failed
        assert result.degraded
        assert not result.resolver_id.startswith("pub-")
        assert not result.catchment_shifted

    def test_cold_cache_only_at_the_outage_boundary(self):
        world = _build_world(WorldConfig.tiny(),
                             resolver_policies=ResolverPolicySet())
        world.resolver_fleets.withdraw("pub-GloboDNS-dallas")
        first, block = self._session_for(world, "pub-GloboDNS-dallas",
                                         now=100.0)
        assert first.catchment_shifted
        assert first.cold_cache_miss
        # Same client population, same domain, well inside the TTL:
        # the failover PoP's cache is warm now, so the session is
        # still shifted but no longer a cold miss.
        second, _ = self._session_for(world, "pub-GloboDNS-dallas",
                                      now=110.0)
        assert second.resolver_id == first.resolver_id
        assert second.catchment_shifted
        assert not second.cold_cache_miss
        snapshot = world.obs.registry.snapshot()
        assert snapshot["counters"]["resolver.pop_failovers"] == 2.0
        assert snapshot["counters"]["resolver.cold_cache_misses"] == 1.0

    def test_outage_then_recovery_restores_catchments_exactly(self):
        world = _build_world(WorldConfig.tiny(),
                             resolver_policies=ResolverPolicySet())
        fleets = world.resolver_fleets
        block = next(b for b in world.internet.blocks
                     if b.ldns[0][0] == "pub-GloboDNS-dallas")
        before = {rid: fleets.route(rid, block)
                  for rid in sorted(fleets.pops)}
        schedule = FaultSchedule((_event(start_day=1, duration_days=2),))
        injector = FaultInjector(world, schedule)
        injector.step(1)
        assert fleets.route("pub-GloboDNS-dallas", block) != (
            "pub-GloboDNS-dallas")
        injector.finish()
        after = {rid: fleets.route(rid, block)
                 for rid in sorted(fleets.pops)}
        assert before == after
        assert fleets.all_healthy()
        assert not world_restored(world)


def _scenario_spec(seed=42):
    """The PR's acceptance scenario: one PoP withdrawn mid-run over a
    monitored roll-out, recovering with days to spare."""
    from repro.simulation.rollout import RolloutConfig
    rollout = RolloutConfig(
        start_date=datetime.date(2014, 3, 1),
        end_date=datetime.date(2014, 3, 14),
        rollout_start=datetime.date(2014, 3, 2),
        rollout_end=datetime.date(2014, 3, 5),
        sessions_per_day=250,
        seed=seed,
    )
    faults = FaultSchedule((
        FaultEvent(start_day=3, duration_days=5,
                   target="public:GloboDNS:washington",
                   kind=FaultKind.POP_OUTAGE),
    ))
    return ScenarioSpec(world=WorldConfig.tiny(), rollout=rollout,
                        faults=faults)


@pytest.fixture(scope="module")
def outage_scenario():
    outcome = run(_scenario_spec())
    return outcome, outcome.report()


class TestPopOutageScenario:
    def test_fleets_activate_from_fault_kinds_alone(self,
                                                    outage_scenario):
        outcome, _ = outage_scenario
        assert outcome.world.resolver_fleets is not None
        assert outcome.spec.resolver_policies is None

    def test_cohort_shifts_and_pays_cold_caches(self, outage_scenario):
        outcome, _ = outage_scenario
        shifted = outcome.result.catchment_shifted_per_day
        outage_days = {day for day, count in shifted.items() if count}
        assert outage_days, "the outage never re-homed a session"
        assert all(3 <= day < 8 for day in outage_days)
        counters = outcome.world.obs.registry.snapshot()["counters"]
        assert counters["resolver.pop_failovers"] == sum(
            shifted.values())
        assert counters["resolver.cold_cache_misses"] > 0

    def test_outage_alert_fires_and_resolves(self, outage_scenario):
        outcome, _ = outage_scenario
        kinds = [alert.kind for alert in outcome.monitor.engine.log
                 if alert.rule == "resolver_pop_outage"]
        assert "fired" in kinds and "resolved" in kinds
        assert "resolver_pop_outage" not in (
            outcome.monitor.engine.firing())

    def test_availability_floor_holds(self, outage_scenario):
        outcome, _ = outage_scenario
        failed = sum(outcome.result.failed_sessions_per_day.values())
        completed = len(outcome.result.rum)
        assert completed / (completed + failed) > 0.99

    def test_degradation_counters_stay_monotone(self, outage_scenario):
        outcome, _ = outage_scenario
        series = outcome.monitor.store.get(
            "resolver.pop_failovers_today")
        assert series is not None
        assert all(value >= 0 for value in series.values)
        shifted = outcome.result.catchment_shifted_per_day
        assert sum(series.values) == sum(shifted.values())

    def test_recovers_exactly(self, outage_scenario):
        outcome, _ = outage_scenario
        assert outcome.world.resolver_fleets.all_healthy()
        assert not world_restored(outcome.world)
        tail_days = [day for day, count
                     in outcome.result.catchment_shifted_per_day.items()
                     if day >= 8 and count]
        assert not tail_days

    def test_same_seed_runs_are_byte_identical(self, outage_scenario):
        _, first = outage_scenario
        second = run(_scenario_spec()).report()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_golden_projection(self, outage_scenario):
        outcome, report = outage_scenario
        shifted = outcome.result.catchment_shifted_per_day
        counters = outcome.world.obs.registry.snapshot()["counters"]
        share = outcome.monitor.store.get(
            "mapping.catchment_shift_share")
        projection = {
            "days_observed": report["days_observed"],
            "events_applied": outcome.injector.events_applied,
            "failed_sessions": sum(
                outcome.result.failed_sessions_per_day.values()),
            "shifted_sessions": sum(shifted.values()),
            "shifted_days": sorted(day for day, count
                                   in shifted.items() if count),
            "cold_cache_misses": counters.get(
                "resolver.cold_cache_misses", 0.0),
            "alerts": [[e["step"], e["rule"], e["kind"]]
                       for e in report["alerts"]["log"]],
            "firing": report["alerts"]["firing"],
            "shift_share_days": [
                step for step, value
                in zip(share.steps, share.values) if value > 0],
            "resolver_series_present": sorted(
                name for name in report["series"]
                if name.startswith(("resolver.", "mapping.catchment"))),
        }
        rendered = json.dumps(projection, indent=2, sort_keys=True) + "\n"
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(rendered)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing fixture {GOLDEN_PATH}; run with REGEN_GOLDEN=1 "
            "to create it")
        expected = GOLDEN_PATH.read_text()
        if rendered != expected:
            diff = "".join(difflib.unified_diff(
                expected.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile="golden_resolver_faults.json (checked in)",
                tofile="golden_resolver_faults.json (this run)",
            ))
            pytest.fail(
                "golden resolver-fault scenario drifted; if "
                "intentional, regenerate with REGEN_GOLDEN=1 and "
                f"review.\n{diff}")


class TestResolverSoakMenu:
    """``soak --resolver`` widens the fault menu opt-in: base-mode
    draws are pinned by checked-in fixtures (golden_shard_fault.json
    replays soak scenario 0), so the resolver-plane entries must not
    re-deal them."""

    def test_base_menu_never_draws_resolver_kinds(self):
        from repro.faults.chaos import SoakConfig, _scenario_spec
        for index in range(8):
            spec = _scenario_spec(SoakConfig(), index)
            assert not any(e.kind in FaultKind.RESOLVER_PLANE
                           for e in spec.faults.events)

    def test_resolver_mode_draws_resolver_kinds(self):
        from repro.api import _resolver_policies_for
        from repro.faults.chaos import SoakConfig, _scenario_spec
        config = SoakConfig(resolver=True)
        drawn = set()
        for index in range(16):
            spec = _scenario_spec(config, index)
            drawn.update(e.kind for e in spec.faults.events)
            if any(e.kind in FaultKind.RESOLVER_PLANE
                   for e in spec.faults.events):
                assert _resolver_policies_for(spec) is not None
        assert drawn & set(FaultKind.RESOLVER_PLANE)

    def test_resolver_mode_is_part_of_the_resume_identity(self):
        from repro.faults.chaos import SoakConfig
        plain = SoakConfig().identity()
        resolver = SoakConfig(resolver=True).identity()
        assert plain["resolver"] is False
        assert resolver["resolver"] is True

    def test_resolver_menu_targets_parse(self):
        from repro.faults.chaos import _RESOLVER_MENU
        schedule = FaultSchedule.from_dict([
            dict(start_day=1, duration_days=2, kind=kind,
                 target=targets[0])
            for kind, targets in _RESOLVER_MENU])
        assert len(schedule) == len(_RESOLVER_MENU)


class TestScenarioSpecResolverPolicies:
    def test_spec_roundtrips_with_policies(self):
        spec = ScenarioSpec(
            world=WorldConfig.tiny(),
            resolver_policies=ResolverPolicySet((
                ("GloboDNS", EcsPolicy(whitelist_enabled=False)),
                ("OpenFast", EcsPolicy(scope_ceiling=20)),
            )))
        parsed = ScenarioSpec.from_json(spec.to_json())
        assert parsed.resolver_policies == spec.resolver_policies
        assert parsed.describe()["resolver_policies"] is True

    def test_unset_policies_stay_off_the_wire(self):
        doc = ScenarioSpec(world=WorldConfig.tiny()).to_dict()
        assert "resolver_policies" not in doc
        parsed = ScenarioSpec.from_dict(doc)
        assert parsed.resolver_policies is None

    def test_bad_policy_document_rejected(self):
        doc = ScenarioSpec(world=WorldConfig.tiny()).to_dict()
        doc["resolver_policies"] = {"GloboDNS": {"scope_celing": 8}}
        with pytest.raises(ValueError, match="unknown ECS policy"):
            ScenarioSpec.from_dict(doc)


class TestShardedResolverParity:
    def test_pop_outage_reports_match_across_worker_counts(self):
        spec = _scenario_spec()
        reports = {}
        for workers in (1, 4):
            sharded = run(spec, workers=workers, shards=4)
            reports[workers] = json.dumps(sharded.report(),
                                          sort_keys=True)
        assert reports[1] == reports[4]
