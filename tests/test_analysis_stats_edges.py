"""Edge-case coverage for the canonical weighted statistics.

Every metric export (histogram snapshots, figures, reports) routes
through ``repro.analysis.stats``; these tests pin its behaviour at the
boundaries: degenerate weights, single samples, the q=0/q=1 endpoints,
and NaN rejection.
"""

import math

import pytest

from repro.analysis.stats import (
    box_stats,
    weighted_cdf,
    weighted_mean,
    weighted_quantile,
    weighted_quantiles,
)


class TestDegenerateWeights:
    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="total weight"):
            weighted_quantiles([1.0, 2.0, 3.0], [0.0, 0.0, 0.0], [0.5])
        with pytest.raises(ValueError, match="total weight"):
            weighted_mean([1.0, 2.0], [0.0, 0.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            weighted_quantile([1.0, 2.0], [1.0, -0.5], 0.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            weighted_quantile([], [], 0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            weighted_quantile([1.0, 2.0], [1.0], 0.5)

    def test_zero_weight_samples_never_selected(self):
        # A zero-weight outlier must not surface at any quantile.
        values = [1.0, 2.0, 1000.0]
        weights = [1.0, 1.0, 0.0]
        assert weighted_quantile(values, weights, 1.0) == 2.0


class TestSingleSample:
    def test_every_quantile_is_the_sample(self):
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert weighted_quantile([42.0], [3.0], q) == 42.0

    def test_box_stats_collapse(self):
        box = box_stats([7.0], [1.0])
        assert box.as_tuple() == (7.0,) * 5


class TestQuantileEndpoints:
    def test_q0_is_minimum_and_q1_is_maximum(self):
        values = [9.0, 1.0, 5.0, 3.0]
        weights = [1.0, 2.0, 1.0, 1.0]
        assert weighted_quantile(values, weights, 0.0) == 1.0
        assert weighted_quantile(values, weights, 1.0) == 9.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            weighted_quantile([1.0], [1.0], -0.01)
        with pytest.raises(ValueError, match="out of range"):
            weighted_quantile([1.0], [1.0], 1.01)

    def test_batch_order_matches_scalar(self):
        values = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]
        weights = [1.0, 1.0, 2.0, 3.0, 1.0, 1.0]
        qs = [0.0, 0.1, 0.5, 0.9, 1.0]
        batch = weighted_quantiles(values, weights, qs)
        assert batch == [weighted_quantile(values, weights, q)
                         for q in qs]
        assert batch == sorted(batch)


class TestNanRejection:
    def test_nan_value_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            weighted_quantile([1.0, float("nan")], [1.0, 1.0], 0.5)

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            weighted_mean([1.0, 2.0], [1.0, float("nan")])

    def test_nan_rejected_by_cdf_too(self):
        with pytest.raises(ValueError, match="NaN"):
            weighted_cdf([math.nan], [1.0], [0.0, 1.0])

    def test_infinities_still_allowed(self):
        # Infinite values sort correctly; only NaN poisons ordering.
        assert weighted_quantile([math.inf, 1.0], [1.0, 1.0], 0.0) == 1.0
        assert math.isinf(
            weighted_quantile([math.inf, 1.0], [1.0, 1.0], 1.0))
