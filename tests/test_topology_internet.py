"""Tests for the synthetic Internet builder.

These are structural/statistical assertions: the builder must produce a
world whose population statistics have the properties the paper's
analyses rely on (heavy-tailed demand, proximal ISP resolvers, distant
public resolvers, meaningful BGP aggregation, deterministic output).
"""

import random

import pytest

from repro.net.geometry import great_circle_miles
from repro.topology import (
    InternetConfig,
    ResolverStrategy,
    build_internet,
)
from repro.topology.ases import demand_shares
from repro.topology.demand import (
    lognormal_weights,
    normalize,
    pareto_weights,
    zipf_weights,
)


@pytest.fixture(scope="module")
def net():
    return build_internet(InternetConfig.tiny(), seed=42)


class TestDemandHelpers:
    def test_pareto_heavy_tail(self):
        rng = random.Random(1)
        weights = pareto_weights(2000, rng, alpha=1.1)
        weights.sort(reverse=True)
        top_share = sum(weights[:20]) / sum(weights)
        assert top_share > 0.25  # top 1% carries a big share

    def test_normalize(self):
        out = normalize([1.0, 3.0], total=8.0)
        assert out == [2.0, 6.0]
        with pytest.raises(ValueError):
            normalize([0.0, 0.0])

    def test_zipf_decreasing(self):
        weights = zipf_weights(10)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_lognormal_positive(self):
        rng = random.Random(2)
        assert all(w > 0 for w in lognormal_weights(100, rng))

    @pytest.mark.parametrize("fn", [pareto_weights, lognormal_weights])
    def test_rejects_zero_n(self, fn):
        with pytest.raises(ValueError):
            fn(0, random.Random(0))


class TestBuilderStructure:
    def test_deterministic(self):
        a = build_internet(InternetConfig.tiny(), seed=7)
        b = build_internet(InternetConfig.tiny(), seed=7)
        assert [blk.prefix for blk in a.blocks] == [
            blk.prefix for blk in b.blocks]
        assert [blk.ldns for blk in a.blocks] == [
            blk.ldns for blk in b.blocks]

    def test_seed_changes_world(self):
        a = build_internet(InternetConfig.tiny(), seed=7)
        b = build_internet(InternetConfig.tiny(), seed=8)
        assert [blk.ldns for blk in a.blocks] != [
            blk.ldns for blk in b.blocks]

    def test_block_count_near_target(self, net):
        target = net.config.n_client_blocks
        assert 0.9 * target <= len(net.blocks) <= 1.3 * target

    def test_blocks_are_slash24(self, net):
        assert all(b.prefix.length == 24 for b in net.blocks)

    def test_block_prefixes_unique(self, net):
        prefixes = [b.prefix for b in net.blocks]
        assert len(prefixes) == len(set(prefixes))

    def test_every_block_has_ldns(self, net):
        for block in net.blocks:
            assert block.ldns
            total = sum(w for _, w in block.ldns)
            assert total == pytest.approx(1.0)
            for resolver_id, _ in block.ldns:
                assert resolver_id in net.resolvers

    def test_geodb_covers_blocks_and_resolvers(self, net):
        for block in net.blocks[:200]:
            rec = net.geodb.lookup_prefix(block.prefix)
            assert rec is not None
            assert rec.asn == block.asn
            assert rec.country == block.country
        for resolver in list(net.resolvers.values())[:100]:
            rec = net.geodb.lookup(resolver.ip)
            assert rec is not None
            assert rec.asn == resolver.asn

    def test_bgp_covers_blocks(self, net):
        for block in net.blocks[:200]:
            assert net.bgp.origin_asn(block.prefix.network) == block.asn
            cidr = net.bgp.covering_cidr(block.prefix)
            assert cidr is not None and cidr.covers(block.prefix)

    def test_bgp_aggregates(self, net):
        # There must be meaningfully fewer routed CIDRs than /24 blocks
        # (the Section 5.1 mapping-unit merge depends on this).
        assert len(net.bgp) < 0.7 * len(net.blocks)

    def test_demand_positive_and_normalized(self, net):
        assert all(b.demand > 0 for b in net.blocks)
        assert net.total_demand == pytest.approx(
            net.config.total_demand, rel=0.05)

    def test_demand_heavy_tailed(self, net):
        # AS demand is skewed: the top decile of ASes carries several
        # times its proportional share, and the single largest AS is a
        # meaningful fraction of the world (paper Figure 10's x-axis
        # spans shares up to 2^-1).
        shares = demand_shares(list(net.ases.values()))
        top_decile = shares[: max(1, len(shares) // 10)]
        assert sum(s for _, s in top_decile) > 0.25
        assert shares[0][1] > 0.03

    def test_block_demand_heavy_tailed(self, net):
        # Block-level demand drives Figure 21: the top 10% of blocks
        # must carry the majority of demand.
        ranked = sorted((b.demand for b in net.blocks), reverse=True)
        top = ranked[: max(1, len(ranked) // 10)]
        assert sum(top) > 0.40 * sum(ranked)


class TestResolverPopulation:
    def test_public_resolvers_support_ecs(self, net):
        for rid in net.public_resolver_ids():
            assert net.resolvers[rid].supports_ecs

    def test_isp_resolvers_do_not_support_ecs(self, net):
        for rid, res in net.resolvers.items():
            if not res.is_public:
                assert not res.supports_ecs

    def test_provider_deployments_match_config(self, net):
        for provider in net.providers:
            assert len(provider.deployments) == len(
                provider.deployment_cities)
            for dep in provider.deployments:
                assert dep.resolver_id in net.resolvers

    def test_public_share_plausible(self, net):
        # Paper: ~8% worldwide; accept a broad band at tiny scale.
        share = net.public_demand_share()
        assert 0.04 <= share <= 0.25

    def test_outsourced_ases_have_no_resolvers(self, net):
        for as_obj in net.ases.values():
            if as_obj.strategy == ResolverStrategy.OUTSOURCED_PUBLIC:
                own = [r for r in net.resolvers.values()
                       if r.asn == as_obj.asn and not r.is_public]
                assert own == []


class TestDistanceStructure:
    """The core statistical facts the paper's Section 3 needs."""

    @staticmethod
    def _weighted_median(samples):
        samples.sort(key=lambda pair: pair[0])
        total = sum(w for _, w in samples)
        acc = 0.0
        for value, weight in samples:
            acc += weight
            if acc >= total / 2:
                return value
        return samples[-1][0]

    def _distances(self, net, public):
        pub = net.public_resolver_ids()
        out = []
        for block in net.blocks:
            for rid, w in block.ldns:
                if (rid in pub) != public:
                    continue
                resolver = net.resolvers[rid]
                out.append((great_circle_miles(block.geo, resolver.geo),
                            block.demand * w))
        return out

    def test_public_users_much_farther_than_isp_users(self, net):
        isp_median = self._weighted_median(self._distances(net, False))
        pub_median = self._weighted_median(self._distances(net, True))
        assert pub_median > 4 * isp_median
        assert pub_median > 500  # paper: 1028 miles

    def test_korea_closer_than_india(self, net):
        by_country = net.blocks_by_country()
        def median_for(code):
            samples = []
            for block in by_country.get(code, []):
                for rid, w in block.ldns:
                    resolver = net.resolvers[rid]
                    samples.append(
                        (great_circle_miles(block.geo, resolver.geo),
                         block.demand * w))
            return self._weighted_median(samples) if samples else None
        kr = median_for("KR")
        india = median_for("IN")
        if kr is not None and india is not None:
            assert india > kr

    def test_pick_block_weighted(self, net):
        rng = random.Random(5)
        counts = {}
        for _ in range(3000):
            block = net.pick_block(rng)
            counts[block.prefix] = counts.get(block.prefix, 0) + 1
        # The most-demanded block should be sampled far more often than
        # a uniform draw would suggest.
        top_block = max(net.blocks, key=lambda b: b.demand)
        expected_uniform = 3000 / len(net.blocks)
        assert counts.get(top_block.prefix, 0) > 3 * expected_uniform


class TestConfig:
    def test_rejects_more_ases_than_blocks(self):
        with pytest.raises(ValueError):
            InternetConfig(n_client_blocks=50, n_ases=60)

    def test_rejects_too_few_ases(self):
        with pytest.raises(ValueError):
            InternetConfig(n_client_blocks=100, n_ases=10)

    def test_scales_are_ordered(self):
        assert (InternetConfig.tiny().n_client_blocks
                < InternetConfig.small().n_client_blocks
                < InternetConfig.paper().n_client_blocks)
