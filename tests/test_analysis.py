"""Tests for weighted statistics and cluster geometry analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    box_stats,
    ldns_cluster_stats,
    log_histogram,
    weighted_cdf,
    weighted_mean,
    weighted_quantile,
)
from repro.analysis.clusters import filter_public
from repro.analysis.stats import linear_grid, log_grid
from repro.topology import InternetConfig, build_internet

samples = st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
              st.floats(min_value=0.01, max_value=100, allow_nan=False)),
    min_size=1, max_size=50)


class TestWeightedStats:
    def test_mean_matches_hand_computation(self):
        assert weighted_mean([1, 3], [1, 3]) == pytest.approx(2.5)

    def test_median_weighted(self):
        # 90% of weight on value 10.
        assert weighted_quantile([1, 10], [1, 9], 0.5) == 10

    def test_quantile_extremes(self):
        values, weights = [5, 1, 9], [1, 1, 1]
        assert weighted_quantile(values, weights, 0.0) == 1
        assert weighted_quantile(values, weights, 1.0) == 9

    def test_equal_weights_match_unweighted(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        weights = [1] * len(values)
        assert weighted_quantile(values, weights, 0.5) in values

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])
        with pytest.raises(ValueError):
            weighted_mean([1], [1, 2])
        with pytest.raises(ValueError):
            weighted_mean([1], [-1])
        with pytest.raises(ValueError):
            weighted_quantile([1], [1], 1.5)

    @given(samples, st.floats(min_value=0, max_value=1))
    def test_quantile_within_range(self, pairs, q):
        values = [v for v, _ in pairs]
        weights = [w for _, w in pairs]
        result = weighted_quantile(values, weights, q)
        assert min(values) <= result <= max(values)

    @given(samples)
    def test_quantiles_monotone(self, pairs):
        values = [v for v, _ in pairs]
        weights = [w for _, w in pairs]
        qs = [weighted_quantile(values, weights, q)
              for q in (0.1, 0.5, 0.9)]
        assert qs == sorted(qs)


class TestBoxStats:
    def test_ordering(self):
        stats = box_stats(list(range(100)), [1] * 100)
        p5, p25, p50, p75, p95 = stats.as_tuple()
        assert p5 <= p25 <= p50 <= p75 <= p95

    def test_known_values(self):
        stats = box_stats([0, 100], [1, 1])
        assert stats.p5 == 0 and stats.p95 == 100


class TestCdfAndHistogram:
    def test_cdf_monotone_and_bounded(self):
        cdf = weighted_cdf([10, 20, 30], [1, 1, 1], grid=[5, 15, 25, 35])
        shares = [s for _, s in cdf]
        assert shares == sorted(shares)
        assert shares[0] == 0.0 and shares[-1] == 1.0

    def test_cdf_values(self):
        cdf = weighted_cdf([10, 20], [3, 1], grid=[10, 20])
        assert cdf[0][1] == pytest.approx(0.75)
        assert cdf[1][1] == pytest.approx(1.0)

    def test_histogram_shares_sum_to_one(self):
        hist = log_histogram([5, 50, 500, 5000], [1, 2, 3, 4])
        assert sum(share for _, share in hist) == pytest.approx(1.0)

    def test_histogram_clips_out_of_range(self):
        hist = log_histogram([0.01, 1e9], [1, 1], lo=1, hi=1000)
        assert sum(share for _, share in hist) == pytest.approx(1.0)
        assert hist[0][1] == pytest.approx(0.5)
        assert hist[-1][1] == pytest.approx(0.5)

    def test_histogram_rejects_bad_range(self):
        with pytest.raises(ValueError):
            log_histogram([1], [1], lo=10, hi=5)

    def test_grids(self):
        grid = log_grid(1, 1000, 4)
        assert grid[0] == pytest.approx(1) and grid[-1] == pytest.approx(
            1000)
        lin = linear_grid(0, 10, 11)
        assert lin[1] == pytest.approx(1)
        with pytest.raises(ValueError):
            log_grid(0, 10)
        with pytest.raises(ValueError):
            linear_grid(5, 5)


class TestLdnsClusterStats:
    @pytest.fixture(scope="class")
    def net(self):
        return build_internet(InternetConfig.tiny(), seed=13)

    @pytest.fixture(scope="class")
    def stats(self, net):
        return ldns_cluster_stats(net)

    def test_covers_used_resolvers(self, net, stats):
        used = {rid for b in net.blocks for rid, _ in b.ldns}
        assert {s.resolver_id for s in stats} == used

    def test_demand_accounting(self, net, stats):
        assert sum(s.demand for s in stats) == pytest.approx(
            net.total_demand)

    def test_public_clusters_bigger(self, net, stats):
        """Paper Figure 11: public resolvers have larger radii and
        larger client distances than the general population."""
        public = filter_public(stats, True)
        isp = filter_public(stats, False)
        assert public and isp

        def wmean(rows, attr):
            total = sum(r.demand for r in rows)
            return sum(getattr(r, attr) * r.demand for r in rows) / total

        assert wmean(public, "radius_miles") > 3 * wmean(
            isp, "radius_miles")
        assert wmean(public, "mean_client_distance_miles") > 3 * wmean(
            isp, "mean_client_distance_miles")

    def test_public_ldns_not_centrally_placed(self, stats):
        """Figure 11's second observation: for public resolvers the
        mean client distance exceeds the cluster radius (the LDNS is
        not at the centroid)."""
        public = filter_public(stats, True)
        total = sum(s.demand for s in public)
        mean_distance = sum(
            s.mean_client_distance_miles * s.demand for s in public) / total
        mean_radius = sum(
            s.radius_miles * s.demand for s in public) / total
        assert mean_distance > mean_radius

    def test_min_blocks_filter(self, net):
        all_stats = ldns_cluster_stats(net, min_blocks=1)
        multi = ldns_cluster_stats(net, min_blocks=2)
        assert len(multi) < len(all_stats)
        assert all(s.n_blocks >= 2 for s in multi)

    def test_filter_public_none_is_identity(self, stats):
        assert filter_public(stats, None) == list(stats)
