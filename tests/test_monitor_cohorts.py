"""Unit tests for the A/B cohort comparator (repro.obs.monitor.cohorts)."""

import json

import pytest

from repro.obs.monitor.cohorts import CohortComparator, WindowStats


def _fill(comparator, cohort, metric, per_step):
    """per_step: {step: [values]}"""
    for step, values in per_step.items():
        for value in values:
            comparator.observe(step, cohort, metric, value)


class TestObserve:
    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            CohortComparator().observe(0, "a", "m", float("nan"))

    def test_cohorts_and_metrics_sorted(self):
        comparator = CohortComparator()
        comparator.observe(0, "zeta", "rtt", 1.0)
        comparator.observe(0, "alpha", "dist", 2.0)
        assert comparator.cohorts() == ["alpha", "zeta"]
        assert comparator.metrics() == ["dist", "rtt"]


class TestAggregations:
    def test_daily_mean_sorted_by_step(self):
        comparator = CohortComparator()
        _fill(comparator, "a", "m", {2: [4.0, 6.0], 0: [1.0]})
        assert comparator.daily_mean("a", "m") == [(0, 1.0), (2, 5.0)]

    def test_window_stats_pools_across_steps(self):
        comparator = CohortComparator()
        _fill(comparator, "a", "m", {0: [2.0, 4.0], 1: [6.0], 5: [100.0]})
        stats = comparator.window_stats("a", "m", 0, 2)
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.variance == pytest.approx(8.0 / 3.0)
        assert stats.std == pytest.approx((8.0 / 3.0) ** 0.5)

    def test_window_stats_empty_window(self):
        stats = CohortComparator().window_stats("a", "m", 0, 10)
        assert stats == WindowStats(count=0, mean=0.0, variance=0.0)

    def test_effect_ratio_is_baseline_over_treatment(self):
        comparator = CohortComparator()
        # The fig13 shape: distance collapses 8x after the roll-out.
        _fill(comparator, "high", "dist", {0: [3200.0, 3200.0]})
        _fill(comparator, "high", "dist", {10: [400.0, 400.0]})
        effect = comparator.effect("dist", "high", (0, 5), (10, 15))
        assert effect.ratio == pytest.approx(8.0)
        # Zero within-window variance -> pooled std 0 -> d defined as 0.
        assert effect.cohens_d == 0.0

    def test_effect_cohens_d_uses_pooled_std(self):
        comparator = CohortComparator()
        _fill(comparator, "c", "m", {0: [9.0, 11.0]})   # mean 10, var 1
        _fill(comparator, "c", "m", {10: [4.0, 6.0]})   # mean 5, var 1
        effect = comparator.effect("m", "c", (0, 1), (10, 11))
        assert effect.cohens_d == pytest.approx(5.0)

    def test_effect_zero_treatment_mean(self):
        comparator = CohortComparator()
        _fill(comparator, "c", "m", {0: [10.0]})
        _fill(comparator, "c", "m", {10: [0.0]})
        effect = comparator.effect("m", "c", (0, 1), (10, 11))
        assert effect.ratio == float("inf")
        comparator_empty = CohortComparator()
        _fill(comparator_empty, "c", "m", {0: [0.0]})
        effect = comparator_empty.effect("m", "c", (0, 1), (10, 11))
        assert effect.ratio == 1.0

    def test_compare_side_by_side(self):
        comparator = CohortComparator()
        _fill(comparator, "ecs_on", "rtt", {0: [20.0]})
        _fill(comparator, "control", "rtt", {0: [40.0]})
        row = comparator.compare("rtt", "ecs_on", "control", (0, 1))
        assert row["ecs_on"] == 20.0
        assert row["control"] == 40.0
        assert row["window"] == [0, 1]


class TestExport:
    def _comparator(self):
        comparator = CohortComparator()
        _fill(comparator, "high", "dist", {0: [3000.0], 1: [3000.0],
                                           10: [300.0]})
        return comparator

    def test_to_dict_without_windows_is_daily_only(self):
        doc = self._comparator().to_dict()
        assert set(doc) == {"daily_mean"}
        assert doc["daily_mean"]["high"]["dist"] == [
            [0, 3000.0], [1, 3000.0], [10, 300.0]]

    def test_to_dict_with_before_window_exports_effects(self):
        windows = {"before": (0, 2), "after": (10, 11)}
        doc = self._comparator().to_dict(windows)
        effect = doc["effects_vs_before"]["after"]["high"]["dist"]
        assert effect["ratio"] == pytest.approx(10.0)
        assert effect["baseline_mean"] == pytest.approx(3000.0)
        assert "before" not in doc["effects_vs_before"]

    def test_non_finite_ratio_exports_as_none(self):
        comparator = CohortComparator()
        _fill(comparator, "c", "m", {0: [10.0], 10: [0.0]})
        windows = {"before": (0, 1), "after": (10, 11)}
        doc = comparator.to_dict(windows)
        row = doc["effects_vs_before"]["after"]["c"]["m"]
        assert row["ratio"] is None
        json.dumps(doc)  # must be valid JSON end to end
