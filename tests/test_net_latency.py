"""Tests for the latency model."""

import random

import pytest

from repro.net.geometry import GeoPoint, great_circle_miles
from repro.net.latency import FIBER_MILES_PER_MS, LatencyModel, LatencyParams

NYC = GeoPoint(40.71, -74.01)
LONDON = GeoPoint(51.51, -0.13)
BOSTON = GeoPoint(42.36, -71.06)
TOKYO = GeoPoint(35.68, 139.69)


@pytest.fixture
def model():
    return LatencyModel()


class TestInflation:
    def test_short_paths_more_inflated(self, model):
        assert model.inflation(10) > model.inflation(1000) > model.inflation(
            8000)

    def test_clamped_at_regime_edges(self, model):
        p = model.params
        assert model.inflation(1) == p.short_inflation
        assert model.inflation(50000) == p.long_inflation

    def test_monotone_nonincreasing(self, model):
        values = [model.inflation(d) for d in (1, 10, 100, 1000, 5000, 9000)]
        assert values == sorted(values, reverse=True)


class TestPeering:
    def test_same_as_free(self, model):
        assert model.peering_penalty_ms(100, 100) == 0.0

    def test_symmetric_and_deterministic(self, model):
        a = model.peering_penalty_ms(100, 200)
        b = model.peering_penalty_ms(200, 100)
        assert a == b
        assert model.peering_penalty_ms(100, 200) == a

    def test_bounded(self, model):
        for asn in range(1, 200):
            penalty = model.peering_penalty_ms(1, asn)
            assert 0 <= penalty <= model.params.peering_penalty_max_ms

    def test_varies_across_pairs(self, model):
        penalties = {round(model.peering_penalty_ms(1, asn), 4)
                     for asn in range(2, 50)}
        assert len(penalties) > 10


class TestRTT:
    def test_floor_for_colocated(self, model):
        rtt = model.base_rtt_ms(NYC, 1, NYC, 1)
        assert rtt == model.params.same_as_floor_ms

    def test_speed_of_light_lower_bound(self, model):
        dist = great_circle_miles(NYC, TOKYO)
        rtt = model.base_rtt_ms(NYC, 1, TOKYO, 1)
        assert rtt >= 2 * dist / FIBER_MILES_PER_MS

    def test_longer_distance_longer_rtt(self, model):
        assert model.base_rtt_ms(NYC, 1, TOKYO, 1) > model.base_rtt_ms(
            NYC, 1, LONDON, 1) > model.base_rtt_ms(NYC, 1, BOSTON, 1)

    def test_last_mile_added(self, model):
        base = model.base_rtt_ms(NYC, 1, LONDON, 1)
        assert model.base_rtt_ms(NYC, 1, LONDON, 1, last_mile_ms=30) == (
            pytest.approx(base + 30))

    def test_deterministic_without_rng(self, model):
        assert model.rtt_ms(NYC, 1, LONDON, 2) == model.rtt_ms(
            NYC, 1, LONDON, 2)

    def test_noise_is_mean_preserving(self, model):
        rng = random.Random(7)
        base = model.base_rtt_ms(NYC, 1, LONDON, 2)
        samples = [model.rtt_ms(NYC, 1, LONDON, 2, rng=rng)
                   for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(base, rel=0.03)
        assert min(samples) < base < max(samples)

    def test_realistic_transatlantic(self, model):
        # NYC-London RTT should land in the real-world 60-110 ms band.
        rtt = model.base_rtt_ms(NYC, 1, LONDON, 1)
        assert 55 <= rtt <= 120


class TestParams:
    def test_rejects_bad_inflation(self):
        with pytest.raises(ValueError):
            LatencyParams(short_inflation=0.5)

    def test_rejects_inverted_regimes(self):
        with pytest.raises(ValueError):
            LatencyParams(short_miles=5000, long_miles=100)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            LatencyParams(congestion_sigma=-1)

    def test_zero_sigma_disables_noise(self):
        model = LatencyModel(LatencyParams(congestion_sigma=0.0))
        rng = random.Random(1)
        assert model.rtt_ms(NYC, 1, LONDON, 2, rng=rng) == model.base_rtt_ms(
            NYC, 1, LONDON, 2)
