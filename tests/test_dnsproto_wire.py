"""Tests for the byte-level wire reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnsproto.wire import WireFormatError, WireReader, WireWriter


class TestWireWriter:
    def test_big_endian_layout(self):
        w = WireWriter()
        w.u8(0x01)
        w.u16(0x0203)
        w.u32(0x04050607)
        w.write(b"\xff")
        assert w.getvalue() == b"\x01\x02\x03\x04\x05\x06\x07\xff"

    def test_offset_tracks_writes(self):
        w = WireWriter()
        assert w.offset == 0
        w.u16(0)
        assert w.offset == 2

    def test_patch_u16(self):
        w = WireWriter()
        w.u16(0)
        w.u8(9)
        w.patch_u16(0, 0xBEEF)
        assert w.getvalue() == b"\xbe\xef\x09"

    @pytest.mark.parametrize("method,value", [
        ("u8", -1), ("u8", 256), ("u16", -1), ("u16", 1 << 16),
        ("u32", -1), ("u32", 1 << 32),
    ])
    def test_range_checks(self, method, value):
        w = WireWriter()
        with pytest.raises(WireFormatError):
            getattr(w, method)(value)

    def test_patch_out_of_bounds(self):
        w = WireWriter()
        w.u8(1)
        with pytest.raises(WireFormatError):
            w.patch_u16(0, 5)


class TestWireReader:
    def test_sequential_reads(self):
        r = WireReader(b"\x01\x02\x03\x04\x05\x06\x07")
        assert r.u8() == 0x01
        assert r.u16() == 0x0203
        assert r.u32() == 0x04050607
        assert r.remaining == 0

    def test_truncation_raises(self):
        r = WireReader(b"\x01")
        with pytest.raises(WireFormatError):
            r.u16()

    def test_read_bytes(self):
        r = WireReader(b"hello")
        assert r.read(5) == b"hello"
        with pytest.raises(WireFormatError):
            r.read(1)

    def test_negative_read(self):
        with pytest.raises(WireFormatError):
            WireReader(b"x").read(-1)

    def test_seek(self):
        r = WireReader(b"\x01\x02\x03")
        r.read(3)
        r.seek(1)
        assert r.u8() == 0x02
        with pytest.raises(WireFormatError):
            r.seek(4)

    @given(st.binary(max_size=64))
    def test_writer_reader_roundtrip(self, payload):
        w = WireWriter()
        w.u16(len(payload))
        w.write(payload)
        r = WireReader(w.getvalue())
        assert r.read(r.u16()) == payload
        assert r.remaining == 0

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_u32_roundtrip(self, value):
        w = WireWriter()
        w.u32(value)
        assert WireReader(w.getvalue()).u32() == value
