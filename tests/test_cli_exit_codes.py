"""The ``python -m repro`` exit-code contract.

Every subcommand follows one convention (documented in
``repro.__main__``): 0 for success, 1 for a failed gate, 2 for usage
errors.  CI and shell scripts branch on these numbers, so the contract
is pinned here for the dispatcher itself and for each subcommand's
cheap paths (``--help`` and flag errors run no simulation; the
expensive success/failure paths are covered per-subsystem --
``tests/test_chaos_soak.py`` pins soak's 0-and-1,
``tests/test_experiments.py`` degradation's).
"""

import contextlib
import io

import pytest

from repro.__main__ import _SUBCOMMANDS, main


def _run(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        try:
            code = main(argv)
        except SystemExit as exit_:  # argparse raises on --help / errors
            code = int(exit_.code or 0)
    return code, out.getvalue(), err.getvalue()


class TestDispatcher:
    def test_bare_invocation_is_a_usage_error(self):
        code, out, _ = _run([])
        assert code == 2
        assert "usage:" in out

    def test_help_exits_zero_and_lists_everything(self):
        code, out, _ = _run(["--help"])
        assert code == 0
        for name in _SUBCOMMANDS:
            assert name in out

    def test_unknown_subcommand_exits_two(self):
        code, _, err = _run(["frobnicate"])
        assert code == 2
        assert "unknown subcommand" in err

    def test_soak_is_registered(self):
        assert _SUBCOMMANDS["soak"][0] == "repro.faults.chaos"


class TestSubcommandConventions:
    @pytest.mark.parametrize("name", sorted(_SUBCOMMANDS))
    def test_help_exits_zero(self, name):
        code, out, _ = _run([name, "--help"])
        assert code == 0, f"{name} --help exited {code}"
        assert out, f"{name} --help printed nothing"

    @pytest.mark.parametrize("name", sorted(_SUBCOMMANDS))
    def test_bad_flag_exits_two(self, name):
        code, _, _ = _run([name, "--no-such-flag"])
        assert code == 2, f"{name} bad flag exited {code}"


class TestWorkersValidation:
    """``--workers`` / ``--shards`` follow the usage-error contract:
    anything but a strictly positive integer exits 2 before any
    simulation starts (these are pure argparse paths)."""

    @pytest.mark.parametrize("value", ["0", "-3", "1.5", "abc", ""])
    def test_sim_rollout_rejects_bad_workers(self, value):
        code, _, err = _run(["sim", "rollout", "--workers", value])
        assert code == 2
        assert "positive integer" in err

    @pytest.mark.parametrize("value", ["0", "-1", "2.5"])
    def test_sim_rollout_rejects_bad_shards(self, value):
        code, _, err = _run(["sim", "rollout", "--shards", value])
        assert code == 2
        assert "positive integer" in err

    @pytest.mark.parametrize("value", ["0", "-4", "0.5", "four"])
    def test_soak_rejects_bad_workers(self, value):
        code, _, err = _run(["soak", "--workers", value])
        assert code == 2
        assert "positive integer" in err

    def test_workers_flag_is_advertised(self):
        code, out, _ = _run(["sim", "rollout", "--help"])
        assert code == 0
        assert "--workers" in out
        code, out, _ = _run(["soak", "--help"])
        assert code == 0
        assert "--workers" in out


class TestTrafficValidation:
    """``--traffic`` parses and grammar-validates before any world is
    built, so every malformed schedule is a usage error (exit 2), not
    a mid-run stack trace."""

    @pytest.mark.parametrize("value", [
        "not json",
        '{"kind": "flash_crowd"}',          # object, not a list
        '[{"kind": "flash_crowd"}]',        # missing required fields
        '[{"start_day": 0, "duration_days": 2, "target": "cluster:0",'
        ' "kind": "flash_crowd", "magnitude": 3.0}]',  # bad grammar
        '[{"start_day": 0, "duration_days": 2, "target":'
        ' "continent:NA", "kind": "flash_crowd", "magnitude": 0.5}]',
        '[{"start_day": 0, "duration_days": 2, "target":'
        ' "continent:NA", "kind": "flash_crowd", "magnitude": 3.0,'
        ' "ramp": "linear"}]',              # unknown field
    ], ids=["not-json", "not-a-list", "missing-fields", "bad-target",
            "bad-magnitude", "unknown-field"])
    def test_sim_rollout_rejects_malformed_traffic(self, value):
        code, _, err = _run(["sim", "rollout", "--traffic", value])
        assert code == 2
        assert "traffic schedule" in err

    def test_unreadable_traffic_file_exits_two(self):
        code, _, err = _run(["sim", "rollout", "--traffic",
                             "@/no/such/traffic.json"])
        assert code == 2
        assert "cannot read traffic schedule" in err

    def test_overlapping_same_target_shapes_exit_two(self):
        shapes = ('[{"start_day": 0, "duration_days": 4, "target":'
                  ' "continent:NA", "kind": "flash_crowd",'
                  ' "magnitude": 2.0},'
                  ' {"start_day": 2, "duration_days": 4, "target":'
                  ' "continent:NA", "kind": "flash_crowd",'
                  ' "magnitude": 3.0}]')
        code, _, err = _run(["sim", "rollout", "--traffic", shapes])
        assert code == 2
        assert "overlapping" in err

    def test_surge_flags_are_advertised(self):
        code, out, _ = _run(["sim", "rollout", "--help"])
        assert code == 0
        assert "--traffic" in out
        assert "--load-feedback" in out
        code, out, _ = _run(["soak", "--help"])
        assert code == 0
        assert "--surge" in out


class TestUnitSchemeValidation:
    """``--unit-scheme`` joins the usage-error contract: an unknown
    scheme, a malformed ``:k`` suffix, or a scheme without the split
    control plane all exit 2 before any world is built."""

    @pytest.mark.parametrize("value", ["nope", "ldns:4", ""])
    def test_unknown_scheme_exits_two(self, value):
        code, _, err = _run(["sim", "rollout", "--control-plane",
                             "--unit-scheme", value])
        assert code == 2
        assert "bad unit scheme" in err

    @pytest.mark.parametrize("value", ["routing_aware:x",
                                       "routing_aware:0",
                                       "routing_aware:-5"])
    def test_bad_unit_count_exits_two(self, value):
        code, _, err = _run(["sim", "rollout", "--control-plane",
                             "--unit-scheme", value])
        assert code == 2
        assert "bad unit scheme" in err

    def test_scheme_without_control_plane_exits_two(self):
        code, _, err = _run(["sim", "rollout",
                             "--unit-scheme", "geo_as"])
        assert code == 2
        assert "requires --control-plane" in err

    def test_unit_scheme_flag_is_advertised(self):
        code, out, _ = _run(["sim", "rollout", "--help"])
        assert code == 0
        assert "--unit-scheme" in out
        assert "--control-plane" in out


class TestResolverFaultsValidation:
    """``--resolver-faults`` joins the usage-error contract: malformed
    JSON, bad target grammar, unreadable ``@file`` paths, and
    non-resolver-plane kinds all exit 2 before any world is built."""

    @pytest.mark.parametrize("value", [
        "not json",
        '{"kind": "pop_outage"}',           # object, not a list
        '[{"kind": "pop_outage"}]',         # missing required fields
        '[{"start_day": 0, "duration_days": 2, "target": "ns:0",'
        ' "kind": "pop_outage"}]',          # wrong target head
        '[{"start_day": 0, "duration_days": 2, "target":'
        ' "public:GloboDNS:dallas:extra", "kind": "pop_outage"}]',
        '[{"start_day": 0, "duration_days": 2, "target": "public:",'
        ' "kind": "anycast_flap"}]',        # empty suffix
    ], ids=["not-json", "not-a-list", "missing-fields", "bad-head",
            "three-level-target", "empty-suffix"])
    def test_sim_rollout_rejects_malformed_schedules(self, value):
        code, _, err = _run(["sim", "rollout",
                             "--resolver-faults", value])
        assert code == 2
        assert "resolver faults" in err

    def test_non_resolver_plane_kinds_exit_two(self):
        schedule = ('[{"start_day": 0, "duration_days": 2, "target":'
                    ' "ns:0", "kind": "auth_outage"}]')
        code, _, err = _run(["sim", "rollout",
                             "--resolver-faults", schedule])
        assert code == 2
        assert "non-resolver-plane" in err

    def test_unreadable_faults_file_exits_two(self):
        code, _, err = _run(["sim", "rollout", "--resolver-faults",
                             "@/no/such/faults.json"])
        assert code == 2
        assert "cannot read resolver faults" in err

    def test_conflicting_outage_and_blackout_exit_two(self):
        schedule = ('[{"start_day": 0, "duration_days": 4, "target":'
                    ' "public:GloboDNS", "kind": "pop_outage"},'
                    ' {"start_day": 2, "duration_days": 4, "target":'
                    ' "public:GloboDNS", "kind": "ldns_blackout"}]')
        code, _, err = _run(["sim", "rollout",
                             "--resolver-faults", schedule])
        assert code == 2
        assert "bad resolver faults" in err

    def test_resolver_faults_flag_is_advertised(self):
        code, out, _ = _run(["sim", "rollout", "--help"])
        assert code == 0
        assert "--resolver-faults" in out
        code, out, _ = _run(["soak", "--help"])
        assert code == 0
        assert "--resolver" in out


class TestProfileValidation:
    """``python -m repro profile`` and every ``--profile`` flag join
    the usage-error contract: unknown scenarios, malformed profiler
    configs, and bad formats all exit 2 before any world is built."""

    def test_profile_is_registered(self):
        assert _SUBCOMMANDS["profile"][0] == "repro.obs.profile"

    def test_unknown_scenario_exits_two(self):
        code, _, err = _run(["profile", "galactic"])
        assert code == 2
        assert "unknown scenario" in err

    @pytest.mark.parametrize("value", [
        "not json",
        "[1, 2]",                       # array, not an object
        '{"hotspotz": 3}',              # unknown field
        '{"hotspots": "many"}',         # non-integer value
        '{"max_depth": 0}',             # out of range
        '{"hotspots": 0}',
    ], ids=["not-json", "not-an-object", "unknown-field",
            "non-integer", "bad-max-depth", "bad-hotspots"])
    def test_profile_cli_rejects_malformed_config(self, value):
        code, _, err = _run(["profile", "tiny", "--profile", value])
        assert code == 2
        assert "bad profile config" in err

    @pytest.mark.parametrize("value", ["not json", '{"hotspotz": 1}',
                                       '{"max_depth": -2}'])
    def test_sim_rollout_rejects_malformed_profile(self, value):
        code, _, err = _run(["sim", "rollout", "--profile", value])
        assert code == 2
        assert "bad profile config" in err

    @pytest.mark.parametrize("value", ["not json", '{"hotspots": 0}'])
    def test_dump_rejects_malformed_profile(self, value):
        code, _, err = _run(["dump", "--profile", value])
        assert code == 2
        assert "bad profile config" in err

    def test_bad_format_exits_two(self):
        code, _, err = _run(["profile", "tiny", "--format", "svg"])
        assert code == 2
        assert "invalid choice" in err

    @pytest.mark.parametrize("value", ["0", "-2", "abc"])
    def test_bad_workers_exit_two(self, value):
        code, _, err = _run(["profile", "tiny", "--workers", value])
        assert code == 2
        assert "positive integer" in err

    def test_profile_flags_are_advertised(self):
        code, out, _ = _run(["profile", "--help"])
        assert code == 0
        for flag in ("--workers", "--shards", "--sessions",
                     "--profile", "--format", "--out"):
            assert flag in out, flag
        assert "collapsed" in out
        code, out, _ = _run(["sim", "rollout", "--help"])
        assert code == 0
        assert "--profile" in out
        code, out, _ = _run(["dump", "--help"])
        assert code == 0
        assert "--profile" in out
