"""Tests for the experiment harness, registry, CLI, and cheap figures.

The expensive figures (roll-out, DNS-load) are exercised end-to-end by
the benchmark suite; here we cover the harness machinery plus the
figures that run in well under a second at tiny scale.
"""

import io

import pytest

from repro.experiments import (
    all_experiments,
    get_experiment,
    get_scale,
    render_result,
)
from repro.experiments.base import Check, ExperimentResult, render_table
from repro.experiments.cli import main as cli_main
from repro.experiments.registry import experiment_ids
from repro.experiments.scales import scale_names
from repro.experiments import shared

ALL_FIGURES = [
    "fig02", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
    "fig25", "ext-adoption", "degradation", "load_tradeoff",
    "unit_scaling", "resolver_matrix",
]

CHEAP_FIGURES = ["fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
                 "fig11", "fig21", "fig22", "fig25"]


class TestRegistry:
    def test_all_figures_registered(self):
        assert experiment_ids() == ALL_FIGURES

    def test_get_experiment(self):
        module = get_experiment("fig05")
        assert module.EXPERIMENT_ID == "fig05"
        assert module.TITLE and module.PAPER_CLAIM

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_modules_expose_contract(self):
        for module in all_experiments():
            assert hasattr(module, "run")
            assert isinstance(module.EXPERIMENT_ID, str)
            assert isinstance(module.PAPER_CLAIM, str)


class TestScales:
    def test_known_scales(self):
        assert scale_names() == ["large", "paper", "small", "tiny"]

    def test_large_is_a_volume_scale(self):
        large = get_scale("large")
        assert large.rollout.sessions_per_day >= 1_000_000
        assert large.rollout.n_days == 1

    def test_scales_ordered_by_size(self):
        tiny = get_scale("tiny")
        small = get_scale("small")
        paper = get_scale("paper")
        assert (tiny.internet.n_client_blocks
                < small.internet.n_client_blocks
                < paper.internet.n_client_blocks)
        assert tiny.fig25.universe_size < paper.fig25.universe_size

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")


class TestResultAndRendering:
    def make_result(self):
        result = ExperimentResult(
            experiment_id="figXX", title="Test", scale="tiny",
            paper_claim="claim",
            rows=[{"a": 1, "b": 2.5}, {"a": 2, "b": 12345.6}])
        result.check("always", True, "fine")
        return result

    def test_passed_aggregation(self):
        result = self.make_result()
        assert result.passed
        result.check("broken", False, "nope")
        assert not result.passed

    def test_render_contains_everything(self):
        result = self.make_result()
        result.summary["key"] = 3.14
        text = render_result(result)
        assert "figXX" in text and "claim" in text
        assert "[PASS] always" in text
        assert "key" in text
        assert "overall: PASS" in text

    def test_render_table_truncates(self):
        rows = [{"x": i} for i in range(200)]
        text = render_table(rows, max_rows=10)
        assert "..." in text
        assert text.count("\n") < 20

    def test_render_empty(self):
        assert render_table([]) == "(no rows)"

    def test_check_str(self):
        assert "FAIL" in str(Check("n", False, "d"))


class TestSharedCaches:
    def test_internet_memoized(self):
        shared.clear_caches()
        a = shared.get_internet("tiny")
        b = shared.get_internet("tiny")
        assert a is b

    def test_clear_caches(self):
        a = shared.get_internet("tiny")
        shared.clear_caches()
        b = shared.get_internet("tiny")
        assert a is not b

    def test_deterministic_rng_stable(self):
        r1 = shared.deterministic_rng("t", "tiny").random()
        r2 = shared.deterministic_rng("t", "tiny").random()
        assert r1 == r2
        r3 = shared.deterministic_rng("other", "tiny").random()
        assert r1 != r3


@pytest.mark.parametrize("experiment_id", CHEAP_FIGURES)
def test_cheap_experiments_pass_at_tiny(experiment_id):
    """Every Section 3/5/6 figure runs and passes its shape checks."""
    result = get_experiment(experiment_id).run("tiny")
    assert result.scale == "tiny"
    assert result.rows, "experiment produced no rows"
    failed = [str(c) for c in result.checks if not c.passed]
    assert result.passed, "\n".join(failed)


def test_load_tradeoff_experiment_passes_at_tiny():
    """The load-feedback trade: a flash crowd with feedback on must
    relieve overload (fewer all-candidates-over-ceiling picks, a
    flatter peak p95 utilization) at a bounded distance cost, and the
    load-aware run must shard deterministically (workers=1 == 4)."""
    result = get_experiment("load_tradeoff").run("tiny")
    failed = [str(c) for c in result.checks if not c.passed]
    assert result.passed, "\n".join(failed)
    by_arm = {row["arm"]: row for row in result.rows}
    assert (by_arm["load_aware"]["overloaded_picks"]
            < by_arm["distance_only"]["overloaded_picks"])
    assert by_arm["load_aware"]["demoted_share"] > 0.0
    assert 1.0 <= result.summary["distance_ratio"] <= 2.25


def test_unit_scaling_experiment_passes_at_tiny():
    """The Section 5 axes over the pluggable unit API: routing-aware
    clustering must reach near-geo_as ECS-cohort accuracy from an
    ldns-scale unit budget, beat ldns at the matched count, and shard
    deterministically (workers=1 == 4)."""
    result = get_experiment("unit_scaling").run("tiny")
    failed = [str(c) for c in result.checks if not c.passed]
    assert result.passed, "\n".join(failed)
    by_scheme = {row["scheme"]: row for row in result.rows}
    matched = result.summary["matched_units"]
    routing = by_scheme[f"routing_aware:{matched}"]
    assert routing["units"] < by_scheme["geo_as"]["units"]
    assert routing["dist_ecs_mean"] < by_scheme["ldns"]["dist_ecs_mean"]
    assert result.summary["unit_reduction"] > 2.0
    assert result.summary["accuracy_ratio"] <= 1.25


class TestMarkdownRendering:
    def test_render_markdown(self):
        from repro.experiments.cli import render_markdown
        result = ExperimentResult(
            experiment_id="figXX", title="T", scale="tiny",
            paper_claim="the claim")
        result.summary = {"metric": 3.14159, "count": 7}
        result.check("good", True, "detail-a")
        result.check("bad", False, "detail-b")
        text = render_markdown([result], "tiny")
        assert "### figXX — T" in text
        assert "*Paper:* the claim" in text
        assert "| metric | 3.14 |" in text
        assert "- [x] good: detail-a" in text
        assert "- [ ] bad: detail-b" in text
        assert "0/1 experiments pass" in text


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "fig25" in out

    def test_run_single(self, capsys):
        assert cli_main(["run", "fig05", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "overall: PASS" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            cli_main(["run", "fig99", "--scale", "tiny"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "fig05", "--scale", "galactic"])
