"""Unit and property tests for repro.net.ipv4."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import Prefix, format_ipv4, mask_of, parse_ipv4, prefix_of

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ipv4("1.2.3.4") == 0x01020304

    def test_parse_extremes(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == (1 << 32) - 1

    def test_format_basic(self):
        assert format_ipv4(0x01020304) == "1.2.3.4"

    @pytest.mark.parametrize("bad", [
        "1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "1.2.3.-1",
        "01.2.3.4", "", "1..2.3",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)

    @pytest.mark.parametrize("bad", [-1, 1 << 32])
    def test_format_rejects(self, bad):
        with pytest.raises(ValueError):
            format_ipv4(bad)

    @given(addresses)
    def test_roundtrip(self, addr):
        assert parse_ipv4(format_ipv4(addr)) == addr


class TestMask:
    def test_mask_values(self):
        assert mask_of(0) == 0
        assert mask_of(24) == 0xFFFFFF00
        assert mask_of(32) == 0xFFFFFFFF

    @pytest.mark.parametrize("bad", [-1, 33])
    def test_mask_rejects(self, bad):
        with pytest.raises(ValueError):
            mask_of(bad)


class TestPrefix:
    def test_parse_cidr(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.network == 0x0A000000
        assert p.length == 8

    def test_parse_bare_address_is_host(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix(parse_ipv4("10.0.0.1"), 24)

    def test_contains_and_bounds(self):
        p = Prefix.parse("192.168.1.0/24")
        assert p.first == parse_ipv4("192.168.1.0")
        assert p.last == parse_ipv4("192.168.1.255")
        assert p.contains(parse_ipv4("192.168.1.77"))
        assert not p.contains(parse_ipv4("192.168.2.0"))

    def test_covers(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.42.0.0/16")
        assert outer.covers(inner)
        assert outer.covers(outer)
        assert not inner.covers(outer)

    def test_supernet(self):
        p = Prefix.parse("10.42.7.0/24")
        assert p.supernet(16) == Prefix.parse("10.42.0.0/16")
        with pytest.raises(ValueError):
            p.supernet(28)

    def test_subnets(self):
        p = Prefix.parse("10.0.0.0/22")
        subs = list(p.subnets(24))
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("10.0.0.0/24")
        assert subs[-1] == Prefix.parse("10.0.3.0/24")
        with pytest.raises(ValueError):
            list(p.subnets(20))

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_ordering_is_total(self):
        prefixes = [Prefix.parse(s) for s in
                    ["10.0.0.0/8", "10.0.0.0/16", "9.0.0.0/8"]]
        ordered = sorted(prefixes)
        assert str(ordered[0]) == "9.0.0.0/8"

    @given(addresses, prefix_lengths)
    def test_prefix_of_contains_addr(self, addr, length):
        p = prefix_of(addr, length)
        assert p.contains(addr)
        assert p.length == length

    @given(addresses, prefix_lengths, prefix_lengths)
    def test_supernet_nesting(self, addr, len_a, len_b):
        longer, shorter = max(len_a, len_b), min(len_a, len_b)
        inner = prefix_of(addr, longer)
        outer = prefix_of(addr, shorter)
        assert inner.supernet(shorter) == outer
        assert outer.covers(inner)

    @given(addresses)
    def test_slash24_block_size(self, addr):
        assert prefix_of(addr, 24).num_addresses == 256
