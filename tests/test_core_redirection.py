"""Tests for the pre-ECS redirection mapping mechanisms (Section 7)."""

import math

import pytest

from repro.core import GlobalLoadBalancer, LocalLoadBalancer, \
    MeasurementService, Scorer
from repro.core.redirection import (
    RedirectionKind,
    RedirectionMapper,
    breakeven_transfer_bytes,
)
from repro.net.geometry import great_circle_miles
from repro.api import build_world
from repro.simulation import WorldConfig


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig.tiny())


@pytest.fixture(scope="module")
def mapper_pair(world):
    measurement = MeasurementService(world.internet.geodb)
    scorer = Scorer(measurement)
    glb = GlobalLoadBalancer(world.deployments, scorer)
    llb = LocalLoadBalancer()
    http = RedirectionMapper(world.deployments, glb, llb,
                             world.internet.geodb,
                             RedirectionKind.HTTP)
    metafile = RedirectionMapper(world.deployments, glb, llb,
                                 world.internet.geodb,
                                 RedirectionKind.METAFILE)
    return http, metafile


def far_public_client(world):
    public = world.internet.public_resolver_ids()
    block = max(
        (b for b in world.internet.blocks if b.primary_ldns in public),
        key=lambda b: great_circle_miles(
            b.geo, world.internet.resolvers[b.primary_ldns].geo))
    resolver = world.internet.resolvers[block.primary_ldns]
    return block, resolver


class TestHttpRedirection:
    def test_final_cluster_is_client_optimal(self, world, mapper_pair):
        http, _ = mapper_pair
        block, resolver = far_public_client(world)
        out = http.assign(block.prefix.network | 4, resolver.ip,
                          "provider0", world.network.rtt_ms)
        assert out is not None
        final_distance = great_circle_miles(block.geo,
                                            out.final_cluster.geo)
        first_distance = great_circle_miles(block.geo,
                                            out.first_cluster.geo)
        # The redirect lands the client much closer than the NS hop.
        assert final_distance < 0.5 * first_distance

    def test_penalty_reflects_bad_first_hop(self, world, mapper_pair):
        http, _ = mapper_pair
        block, resolver = far_public_client(world)
        out = http.assign(block.prefix.network | 4, resolver.ip,
                          "provider0", world.network.rtt_ms)
        # Penalty = 2 RTTs to the (distant) first server: tens of ms.
        assert out.penalty_ms > 10

    def test_unknown_client_returns_none(self, world, mapper_pair):
        http, _ = mapper_pair
        out = http.assign(0xF0000001, 0xF0000002, "provider0",
                          world.network.rtt_ms)
        assert out is None


class TestMetafileRedirection:
    def test_no_first_cluster(self, world, mapper_pair):
        _, metafile = mapper_pair
        block, resolver = far_public_client(world)
        out = metafile.assign(block.prefix.network | 4, resolver.ip,
                              "provider0", world.network.rtt_ms)
        assert out.first_cluster is None
        assert out.server_ips

    def test_penalty_cheaper_than_http_for_far_client(self, world,
                                                      mapper_pair):
        http, metafile = mapper_pair
        block, resolver = far_public_client(world)
        client_ip = block.prefix.network | 4
        h = http.assign(client_ip, resolver.ip, "provider0",
                        world.network.rtt_ms)
        m = metafile.assign(client_ip, resolver.ip, "provider0",
                            world.network.rtt_ms)
        # The metafile fetch goes to the *good* server; HTTP redirect
        # pays two RTTs to the bad one.
        assert m.penalty_ms <= h.penalty_ms


class TestBreakeven:
    def test_redirection_wins_for_large_transfers(self):
        size = breakeven_transfer_bytes(
            penalty_ms=200, direct_rtt_ms=150, redirected_rtt_ms=30)
        # Above the break-even size, redirect + fast path is faster.
        assert 0 < size < math.inf
        window = 64 * 1024
        direct_time = size / (window / 150)
        redirected_time = 200 + size / (window / 30)
        assert direct_time == pytest.approx(redirected_time, rel=1e-6)

    def test_never_wins_when_already_proximal(self):
        assert breakeven_transfer_bytes(50, 30, 30) == math.inf
        assert breakeven_transfer_bytes(50, 20, 30) == math.inf

    def test_small_web_pages_do_not_justify_redirect(self):
        """Paper: the penalty 'is acceptable only for larger downloads
        such as media files and software downloads'."""
        size = breakeven_transfer_bytes(
            penalty_ms=120, direct_rtt_ms=90, redirected_rtt_ms=35)
        assert size > 100_000  # typical base page is tens of KB
