"""The ``repro.api`` scenario facade and the unified CLI.

Pins the API-redesign contracts:

* the legacy ``repro.simulation`` spellings of ``build_world`` /
  ``run_rollout`` are keyword-only shims that warn but produce results
  identical to the canonical ``repro.api`` spellings (byte-for-byte at
  the monitor-report level);
* :class:`repro.api.ScenarioSpec` + :func:`repro.api.run` compose
  world, roll-out, faults, and monitoring into one entrypoint;
* ``python -m repro <subcommand>`` dispatches to every legacy CLI, and
  the legacy ``python -m repro.<module>`` spellings keep working with a
  stderr pointer while their stdout stays byte-identical.
"""

import datetime
import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro.__main__ as repro_main
from repro.api import ScenarioSpec, build_world, run, run_rollout
from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.obs.monitor import RolloutMonitor
from repro.simulation import rollout as rollout_mod
from repro.simulation import world as world_mod
from repro.simulation.rollout import RolloutConfig
from repro.simulation.world import WorldConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

SHORT = RolloutConfig(
    start_date=datetime.date(2014, 3, 1),
    end_date=datetime.date(2014, 3, 21),
    rollout_start=datetime.date(2014, 3, 8),
    rollout_end=datetime.date(2014, 3, 15),
    sessions_per_day=20,
    seed=11,
)


class TestDeprecatedShims:
    def test_build_world_shim_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            world_mod.build_world(config=WorldConfig.tiny())

    def test_run_rollout_shim_warns(self):
        world = build_world(WorldConfig.tiny())
        with pytest.warns(DeprecationWarning, match="repro.api"):
            rollout_mod.run_rollout(world=world, config=SHORT)

    def test_shims_are_keyword_only(self):
        with pytest.raises(TypeError):
            world_mod.build_world(WorldConfig.tiny())
        world = build_world(WorldConfig.tiny())
        with pytest.raises(TypeError):
            rollout_mod.run_rollout(world, SHORT)

    def test_canonical_spellings_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            world = build_world(WorldConfig.tiny())
            run_rollout(world, SHORT)

    def test_legacy_and_api_paths_byte_identical(self):
        """The acceptance property: old spelling, new spelling, same
        bytes out of the monitor."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            world = world_mod.build_world(config=WorldConfig.tiny())
            monitor = RolloutMonitor.for_config(SHORT)
            legacy = rollout_mod.run_rollout(world=world, config=SHORT,
                                             observer=monitor)
        legacy_report = monitor.report({"path": "legacy"})

        outcome = run(ScenarioSpec(world=WorldConfig.tiny(),
                                   rollout=SHORT))
        api_report = outcome.report({"path": "legacy"})

        assert len(legacy.rum) == len(outcome.result.rum)
        assert (json.dumps(legacy_report, sort_keys=True)
                == json.dumps(api_report, sort_keys=True))


class TestScenarioSpec:
    def test_describe_is_deterministic_and_minimal(self):
        spec = ScenarioSpec(world=WorldConfig.tiny(), rollout=SHORT)
        assert spec.describe() == {
            "seed": 11,
            "world_seed": WorldConfig.tiny().seed,
            "sessions_per_day": 20,
        }
        assert spec.describe() == spec.describe()

    def test_describe_counts_faults(self):
        faults = FaultSchedule((FaultEvent(
            start_day=1, duration_days=2, target="ns:0",
            kind=FaultKind.AUTH_OUTAGE),))
        spec = ScenarioSpec(world=WorldConfig.tiny(), rollout=SHORT,
                            faults=faults)
        assert spec.describe()["faults"] == 1

    def test_run_without_monitor(self):
        outcome = run(ScenarioSpec(world=WorldConfig.tiny(),
                                   rollout=SHORT, monitor=False))
        assert outcome.monitor is None and outcome.injector is None
        assert len(outcome.result.rum) > 0
        with pytest.raises(ValueError):
            outcome.report()


class TestUnifiedCli:
    def test_no_args_prints_usage_and_fails(self, capsys):
        assert repro_main.main([]) == 2
        out = capsys.readouterr().out
        assert "usage: python -m repro" in out
        for name in ("sim", "experiment", "dump", "monitor",
                     "degradation"):
            assert name in out

    def test_help_is_success(self, capsys):
        assert repro_main.main(["--help"]) == 0
        assert "subcommands" in capsys.readouterr().out

    def test_unknown_subcommand(self, capsys):
        assert repro_main.main(["bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_dispatches_dump(self, tmp_path, capsys):
        out = tmp_path / "dump.json"
        rc = repro_main.main(["dump", "--sessions", "2", "--traces",
                              "0", "--out", str(out)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["scenario"]["sessions"] == 2

    def test_dispatches_experiment_list(self, capsys):
        rc = repro_main.main(["experiment", "list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "degradation" in out and "fig12" in out


def _spawn(module_args, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", *module_args],
        capture_output=True, text=True, timeout=timeout,
        cwd=REPO_ROOT, env={"PYTHONPATH": "src", "PATH": "/usr/bin"})


class TestLegacyEntrypoints:
    def test_bare_module_prints_usage(self):
        proc = _spawn(["repro"])
        assert proc.returncode == 2
        assert "usage: python -m repro" in proc.stdout

    def test_legacy_dump_points_to_new_spelling(self):
        """Old spelling still works, stderr points forward, stdout is
        byte-identical to the canonical spelling."""
        args = ["--sessions", "2", "--traces", "0", "--seed", "5"]
        legacy = _spawn(["repro.obs.dump", *args])
        unified = _spawn(["repro", "dump", *args])
        assert legacy.returncode == 0 and unified.returncode == 0
        assert "deprecated" in legacy.stderr
        assert "python -m repro dump" in legacy.stderr
        assert "deprecated" not in unified.stderr
        assert legacy.stdout == unified.stdout
