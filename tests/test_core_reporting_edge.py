"""Edge-case tests for reporting helpers on an idle world."""

import pytest

from repro.core.reporting import StatusReport, build_status_report
from repro.api import build_world
from repro.simulation import WorldConfig


class TestIdleWorldReport:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(WorldConfig.tiny())

    def test_zero_division_free(self, world):
        """An untouched world must report zeros, not crash."""
        report = build_status_report(world)
        assert report.mapping_resolutions == 0
        assert report.mapping_ecs_share == 0.0
        assert report.decision_cache_hit_rate == 0.0
        assert report.ldns_cache_hit_rate == 0.0
        assert report.authoritative_queries == 0

    def test_lines_on_empty(self, world):
        lines = build_status_report(world).lines()
        assert any("resolutions" in line for line in lines)


class TestStatusReportDefaults:
    def test_default_construction(self):
        report = StatusReport()
        assert report.mapping_resolutions == 0
        assert report.hottest_clusters == []
        assert report.lines()
