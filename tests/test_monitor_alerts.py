"""Unit tests for the alerting engine (repro.obs.monitor.alerts)."""

import pytest

from repro.obs.monitor.alerts import (
    AlertEngine,
    RegressionRule,
    StuckRule,
    ThresholdRule,
)
from repro.obs.monitor.series import TimeSeriesStore


def _store(name, values, start=0):
    store = TimeSeriesStore()
    for offset, value in enumerate(values):
        store.record(start + offset, name, value)
    return store


class TestRuleValidation:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            ThresholdRule("r", "s", op="gt", threshold=1.0,
                          severity="fatal")

    def test_bad_threshold_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            ThresholdRule("r", "s", op="ge", threshold=1.0)

    def test_regression_factor_and_window_validated(self):
        with pytest.raises(ValueError, match="factor"):
            RegressionRule("r", "s", baseline_window=(0, 5), factor=1.0)
        with pytest.raises(ValueError, match="baseline"):
            RegressionRule("r", "s", baseline_window=(5, 5), factor=2.0)
        with pytest.raises(ValueError, match="direction"):
            RegressionRule("r", "s", baseline_window=(0, 5), factor=2.0,
                           direction="sideways")

    def test_stuck_min_steps_validated(self):
        with pytest.raises(ValueError, match="min_steps"):
            StuckRule("r", "s", min_steps=1)

    def test_duplicate_rule_names_rejected(self):
        rules = [ThresholdRule("same", "a", op="gt", threshold=1.0),
                 StuckRule("same", "b")]
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine(rules)


class TestThresholdRule:
    def test_missing_series_not_evaluable(self):
        rule = ThresholdRule("r", "missing", op="gt", threshold=1.0)
        assert rule.check(0, TimeSeriesStore()) is None

    def test_gt_and_lt(self):
        store = _store("s", [5.0])
        gt = ThresholdRule("g", "s", op="gt", threshold=4.0)
        lt = ThresholdRule("l", "s", op="lt", threshold=4.0)
        assert gt.check(0, store)[0] is True
        assert lt.check(0, store)[0] is False


class TestRegressionRule:
    def test_silent_until_baseline_complete(self):
        rule = RegressionRule("r", "s", baseline_window=(0, 3),
                              factor=2.0, direction="drop")
        store = _store("s", [10.0, 10.0, 10.0])
        assert rule.check(2, store) is None  # day 2 still in baseline

    def test_drop_detection(self):
        rule = RegressionRule("r", "s", baseline_window=(0, 3),
                              factor=2.0, direction="drop")
        store = _store("s", [10.0, 10.0, 10.0, 4.0])
        breached, value, reference, detail = rule.check(3, store)
        assert breached is True
        assert value == 4.0
        assert reference == pytest.approx(5.0)  # baseline 10 / factor 2
        assert "dropped" in detail

    def test_rise_detection(self):
        rule = RegressionRule("r", "s", baseline_window=(0, 3),
                              factor=2.0, direction="rise")
        store = _store("s", [10.0, 10.0, 10.0, 25.0])
        breached, value, reference, _ = rule.check(3, store)
        assert breached is True
        assert reference == pytest.approx(20.0)

    def test_within_bounds_not_breached(self):
        rule = RegressionRule("r", "s", baseline_window=(0, 3),
                              factor=2.0, direction="drop")
        store = _store("s", [10.0, 10.0, 10.0, 8.0])
        assert rule.check(3, store)[0] is False


class TestStuckRule:
    def test_needs_min_steps_of_history(self):
        rule = StuckRule("r", "s", min_steps=3)
        assert rule.check(1, _store("s", [1.0, 1.0])) is None

    def test_flat_tail_breaches_moving_tail_does_not(self):
        rule = StuckRule("r", "s", min_steps=3)
        assert rule.check(3, _store("s", [5.0, 2.0, 2.0, 2.0]))[0] is True
        assert rule.check(3, _store("s", [2.0, 2.0, 2.0, 3.0]))[0] is False


class TestAlertEngineHysteresis:
    def _engine(self, for_steps):
        rule = ThresholdRule("over", "s", op="gt", threshold=10.0,
                             severity="warning", for_steps=for_steps)
        return AlertEngine([rule])

    def test_fires_only_after_consecutive_breaches(self):
        engine = self._engine(for_steps=2)
        store = TimeSeriesStore()
        values = [20.0, 5.0, 20.0, 20.0]  # breach, ok, breach, breach
        fired_steps = []
        for step, value in enumerate(values):
            store.record(step, "s", value)
            for alert in engine.evaluate(step, store):
                if alert.kind == "fired":
                    fired_steps.append(alert.step)
        # The isolated breach at step 0 never fires; the streak at
        # steps 2-3 fires on its second consecutive breach.
        assert fired_steps == [3]
        assert engine.firing() == ["over"]

    def test_resolves_only_after_consecutive_oks(self):
        engine = self._engine(for_steps=2)
        store = TimeSeriesStore()
        values = [20.0, 20.0, 5.0, 20.0, 5.0, 5.0]
        kinds = []
        for step, value in enumerate(values):
            store.record(step, "s", value)
            kinds.extend((alert.step, alert.kind)
                         for alert in engine.evaluate(step, store))
        assert kinds == [(1, "fired"), (5, "resolved")]
        assert engine.firing() == []

    def test_log_ordered_and_rules_sorted_by_name(self):
        rules = [
            ThresholdRule("zeta", "s", op="gt", threshold=1.0),
            ThresholdRule("alpha", "s", op="gt", threshold=1.0),
        ]
        engine = AlertEngine(rules)
        store = _store("s", [5.0])
        engine.evaluate(0, store)
        assert [rule.name for rule in engine.rules] == ["alpha", "zeta"]
        assert [alert.rule for alert in engine.log] == ["alpha", "zeta"]

    def test_to_dict_shape(self):
        engine = self._engine(for_steps=1)
        store = _store("s", [20.0])
        engine.evaluate(0, store)
        doc = engine.to_dict()
        assert doc["firing"] == ["over"]
        assert doc["rules"][0]["kind"] == "ThresholdRule"
        event = doc["log"][0]
        assert event["kind"] == "fired"
        assert event["severity"] == "warning"
        assert event["step"] == 0
