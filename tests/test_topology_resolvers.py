"""Tests for resolver deployments, anycast catchment, and profiles."""

import random
from collections import Counter

import pytest

from repro.geo.cities import city_index
from repro.net.geometry import GeoPoint, great_circle_miles
from repro.topology.profiles import (
    CountryProfile,
    DEFAULT_PROFILE,
    profile_for,
)
from repro.topology.resolvers import (
    DEFAULT_PUBLIC_PROVIDERS,
    Resolver,
    ResolverKind,
    anycast_catchment,
    nearest_deployment,
    pick_provider,
    providers_by_name,
)


def deployment(name, city_name, ip):
    city = city_index()[city_name]
    return Resolver(
        resolver_id=name, ip=ip, geo=city.geo, city=city.name,
        country=city.country, asn=99, kind=ResolverKind.PUBLIC,
        provider="test", supports_ecs=True)


@pytest.fixture
def deployments():
    return [
        deployment("ny", "New York", 1),
        deployment("lon", "London", 2),
        deployment("sg", "Singapore", 3),
        deployment("tyo", "Tokyo", 4),
    ]


class TestAnycastCatchment:
    def test_zero_misroute_always_nearest(self, deployments):
        rng = random.Random(1)
        boston = GeoPoint(42.36, -71.06)
        for _ in range(50):
            chosen = anycast_catchment(boston, deployments, rng,
                                       misroute_rate=0.0)
            assert chosen.resolver_id == "ny"

    def test_misroute_statistics(self, deployments):
        rng = random.Random(2)
        boston = GeoPoint(42.36, -71.06)
        counts = Counter(
            anycast_catchment(boston, deployments, rng,
                              misroute_rate=0.3).resolver_id
            for _ in range(3000))
        share_nearest = counts["ny"] / 3000
        assert 0.62 <= share_nearest <= 0.78  # ~1 - misroute_rate
        # Misroutes prefer nearer alternates (London over Tokyo/SG).
        assert counts["lon"] > counts["sg"]

    def test_single_deployment_trivial(self, deployments):
        rng = random.Random(3)
        out = anycast_catchment(GeoPoint(0, 0), deployments[:1], rng,
                                misroute_rate=1.0)
        assert out.resolver_id == deployments[0].resolver_id

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            anycast_catchment(GeoPoint(0, 0), [], random.Random(0))


class TestProviderHelpers:
    def test_pick_provider_by_popularity(self):
        rng = random.Random(4)
        counts = Counter(pick_provider(DEFAULT_PUBLIC_PROVIDERS,
                                       rng).name
                         for _ in range(4000))
        assert counts["GloboDNS"] > counts["OpenFast"] > counts[
            "UltraLevel"]

    def test_pick_provider_empty(self):
        with pytest.raises(ValueError):
            pick_provider([], random.Random(0))

    def test_providers_by_name(self):
        index = providers_by_name(DEFAULT_PUBLIC_PROVIDERS)
        assert set(index) == {"GloboDNS", "OpenFast", "UltraLevel"}

    def test_nearest_deployment(self, deployments):
        boston = GeoPoint(42.36, -71.06)
        assert nearest_deployment(boston, deployments).resolver_id == "ny"
        assert nearest_deployment(boston, []) is None

    def test_no_south_america_deployments(self):
        """The paper's Figure 8 mechanism requires public providers to
        have no deployments in South America circa 2014."""
        sa_countries = {"BR", "AR", "CL", "CO", "PE", "VE", "EC", "UY"}
        index = city_index()
        for provider in DEFAULT_PUBLIC_PROVIDERS:
            for city_name in provider.deployment_cities:
                assert index[city_name].country not in sa_countries


class TestCountryProfiles:
    def test_default_for_unknown(self):
        assert profile_for("ZZ") is DEFAULT_PROFILE

    def test_validation(self):
        with pytest.raises(ValueError):
            CountryProfile(1.5, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            CountryProfile(0.5, 0, 0, 0, 0, internet_penetration=0.0)
        with pytest.raises(ValueError):
            CountryProfile(0.5, 0, 0, 0, 0, foreign_hub_rate=0.5)
        with pytest.raises(ValueError):
            CountryProfile(0.5, 0, 0, 0, 0, foreign_hub="Miami",
                           foreign_hub_rate=1.5)

    def test_foreign_hubs_exist_in_gazetteer(self):
        from repro.topology.profiles import _PROFILES
        index = city_index()
        for code, profile in _PROFILES.items():
            if profile.foreign_hub:
                assert profile.foreign_hub in index, (
                    f"{code}: unknown hub {profile.foreign_hub}")

    def test_paper_country_ordering_encoded(self):
        """The calibration must encode the paper's qualitative
        orderings: KR denser than IN, VN heavier public use than KR."""
        assert profile_for("KR").local_infra > profile_for(
            "IN").local_infra
        assert profile_for("VN").public_adoption > profile_for(
            "KR").public_adoption
        assert profile_for("IN").internet_penetration < profile_for(
            "US").internet_penetration
