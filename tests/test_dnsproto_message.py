"""Tests for DNS message framing, rdata, EDNS0, and ECS."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnsproto import (
    ARdata,
    CNAMERdata,
    ClientSubnetOption,
    EdnsOptions,
    Flags,
    Message,
    NSRdata,
    OptRecord,
    Question,
    Rcode,
    ResourceRecord,
    SOARdata,
    TXTRdata,
    WireFormatError,
    make_query,
    make_response,
)
from repro.dnsproto.rdata import OpaqueRdata, decode_rdata
from repro.dnsproto.types import QType
from repro.dnsproto.wire import WireReader, WireWriter
from repro.net.ipv4 import Prefix, parse_ipv4, prefix_of

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


def a_record(name="foo.net", addr="4.5.6.7", ttl=60):
    return ResourceRecord(name, QType.A, ttl, ARdata(parse_ipv4(addr)))


class TestFlags:
    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans(),
           st.booleans(), st.integers(min_value=0, max_value=15))
    def test_roundtrip(self, qr, aa, tc, rd, ra, rcode):
        flags = Flags(qr=qr, aa=aa, tc=tc, rd=rd, ra=ra, rcode=rcode)
        assert Flags.decode(flags.encode()) == flags

    def test_known_encoding(self):
        # Standard recursive query: RD only.
        assert Flags().encode() == 0x0100
        # Authoritative response.
        assert Flags(qr=True, aa=True, rd=True).encode() == 0x8500


class TestRdata:
    def test_a_rdata_roundtrip(self):
        w = WireWriter()
        ARdata(parse_ipv4("9.8.7.6")).encode(w, None)
        out = decode_rdata(WireReader(w.getvalue()), QType.A, 4)
        assert str(out) == "9.8.7.6"

    def test_a_rdata_rejects_bad_length(self):
        with pytest.raises(WireFormatError):
            decode_rdata(WireReader(b"\x01\x02\x03"), QType.A, 3)

    def test_txt_roundtrip(self):
        txt = TXTRdata.from_text("hello", "world")
        w = WireWriter()
        txt.encode(w, None)
        data = w.getvalue()
        out = decode_rdata(WireReader(data), QType.TXT, len(data))
        assert out == txt

    def test_txt_rejects_long_chunk(self):
        with pytest.raises(WireFormatError):
            TXTRdata((b"x" * 256,)).encode(WireWriter(), None)

    def test_soa_roundtrip(self):
        soa = SOARdata("ns1.foo.net", "admin.foo.net", 1, 2, 3, 4, 5)
        w = WireWriter()
        soa.encode(w, None)
        data = w.getvalue()
        out = decode_rdata(WireReader(data), QType.SOA, len(data))
        assert out == soa

    def test_unknown_type_is_opaque(self):
        out = decode_rdata(WireReader(b"\xde\xad"), 99, 2)
        assert isinstance(out, OpaqueRdata)
        assert out.payload == b"\xde\xad"
        assert out.type_code == 99

    def test_rdata_length_mismatch_detected(self):
        # SOA rdata truncated relative to declared length.
        w = WireWriter()
        SOARdata("a", "b", 1, 2, 3, 4, 5).encode(w, None)
        data = w.getvalue()
        with pytest.raises(WireFormatError):
            decode_rdata(WireReader(data), QType.SOA, len(data) + 4)


class TestClientSubnetOption:
    def test_encode_layout_slash24(self):
        ecs = ClientSubnetOption(Prefix.parse("1.2.3.0/24"))
        assert ecs.encode() == b"\x00\x01\x18\x00\x01\x02\x03"

    def test_decode_roundtrip(self):
        ecs = ClientSubnetOption(Prefix.parse("10.20.0.0/20"), 14)
        out = ClientSubnetOption.decode(ecs.encode())
        assert out == ecs

    def test_address_truncated_to_bytes(self):
        # /20 needs 3 address bytes only.
        ecs = ClientSubnetOption(Prefix.parse("10.20.16.0/20"))
        assert len(ecs.encode()) == 2 + 1 + 1 + 3

    def test_rejects_nonzero_trailing_bits(self):
        # /16 with a third address byte set: RFC 7871 FORMERR case.
        raw = b"\x00\x01\x10\x00\x01\x02\x03"
        with pytest.raises(WireFormatError):
            ClientSubnetOption.decode(raw)

    def test_rejects_ipv6_family(self):
        raw = b"\x00\x02\x18\x00\x01\x02\x03"
        with pytest.raises(WireFormatError):
            ClientSubnetOption.decode(raw)

    def test_rejects_bad_source_length(self):
        raw = b"\x00\x01\x40\x00" + b"\x00" * 4
        with pytest.raises(WireFormatError):
            ClientSubnetOption.decode(raw)

    def test_scope_prefix(self):
        ecs = ClientSubnetOption(Prefix.parse("1.2.3.0/24"), 20)
        assert ecs.scope_prefix == Prefix.parse("1.2.0.0/20")

    def test_scope_wider_than_source_clamped(self):
        ecs = ClientSubnetOption(Prefix.parse("1.2.3.0/24"), 28)
        assert ecs.scope_prefix.length == 24

    def test_for_response_preserves_source(self):
        query = ClientSubnetOption(Prefix.parse("1.2.3.0/24"))
        resp = query.for_response(20)
        assert resp.prefix == query.prefix
        assert resp.scope_prefix_len == 20

    @given(addresses, st.integers(min_value=0, max_value=32),
           st.integers(min_value=0, max_value=32))
    def test_roundtrip_property(self, addr, source, scope):
        ecs = ClientSubnetOption(prefix_of(addr, source), scope)
        assert ClientSubnetOption.decode(ecs.encode()) == ecs


class TestMessageCodec:
    def test_query_roundtrip(self):
        query = make_query("www.foo.net", msg_id=77)
        out = Message.decode(query.encode())
        assert out.msg_id == 77
        assert out.question.name == "www.foo.net"
        assert out.question.qtype == QType.A
        assert not out.flags.qr
        assert out.opt is not None

    def test_query_with_ecs_roundtrip(self):
        ecs = ClientSubnetOption(Prefix.parse("9.9.9.0/24"))
        query = make_query("foo.net", ecs=ecs, msg_id=3)
        out = Message.decode(query.encode())
        assert out.client_subnet == ecs

    def test_response_roundtrip(self):
        query = make_query("foo.net", msg_id=5)
        response = make_response(query, [a_record(), a_record(
            addr="4.5.6.8")])
        out = Message.decode(response.encode())
        assert out.flags.qr and out.flags.aa
        assert out.msg_id == 5
        assert [str(r.rdata) for r in out.answers] == ["4.5.6.7", "4.5.6.8"]
        assert out.questions == query.questions

    def test_response_echoes_ecs_with_scope(self):
        ecs = ClientSubnetOption(Prefix.parse("9.9.9.0/24"))
        query = make_query("foo.net", ecs=ecs)
        response = make_response(query, [a_record()], scope_prefix_len=20)
        out = Message.decode(response.encode())
        assert out.client_subnet.prefix == ecs.prefix
        assert out.client_subnet.scope_prefix_len == 20

    def test_response_without_query_ecs_has_no_ecs(self):
        query = make_query("foo.net")
        response = make_response(query, [a_record()])
        out = Message.decode(response.encode())
        assert out.client_subnet is None

    def test_cname_chain_roundtrip(self):
        query = make_query("www.provider.com")
        chain = [
            ResourceRecord("www.provider.com", QType.CNAME, 300,
                           CNAMERdata("e123.cdn.net")),
            a_record("e123.cdn.net"),
        ]
        out = Message.decode(make_response(query, chain).encode())
        assert isinstance(out.answers[0].rdata, CNAMERdata)
        assert out.answers[0].rdata.target == "e123.cdn.net"
        assert str(out.answers[1].rdata) == "4.5.6.7"

    def test_ns_records_in_authority(self):
        query = make_query("foo.net")
        response = make_response(
            query,
            authorities=[ResourceRecord("foo.net", QType.NS, 600,
                                        NSRdata("ns1.cdn.net"))],
            additionals=[a_record("ns1.cdn.net", "1.1.1.1")],
        )
        out = Message.decode(response.encode())
        assert out.authorities[0].rdata.nsdname == "ns1.cdn.net"
        assert str(out.additionals[0].rdata) == "1.1.1.1"

    def test_nxdomain_response(self):
        query = make_query("nope.example")
        out = Message.decode(
            make_response(query, rcode=Rcode.NXDOMAIN).encode())
        assert out.flags.rcode == Rcode.NXDOMAIN
        assert not out.answers

    def test_compression_shrinks_messages(self):
        query = make_query("www.really-long-domain-name.example.com")
        records = [a_record("www.really-long-domain-name.example.com",
                            f"1.2.3.{i}") for i in range(4)]
        encoded = make_response(query, records).encode()
        # Name appears 5 times; without compression that alone is
        # ~5 * 42 bytes.  With compression the message must be small.
        assert len(encoded) < 180

    def test_trailing_garbage_rejected(self):
        data = make_query("foo.net").encode() + b"\x00"
        with pytest.raises(WireFormatError):
            Message.decode(data)

    def test_truncated_message_rejected(self):
        data = make_query("foo.net").encode()
        with pytest.raises(WireFormatError):
            Message.decode(data[:-3])

    def test_duplicate_opt_rejected(self):
        message = make_query("foo.net")
        # Hand-craft two OPT records.
        writer = WireWriter()
        writer.u16(1)
        writer.u16(Flags().encode())
        writer.u16(0)
        writer.u16(0)
        writer.u16(0)
        writer.u16(2)
        OptRecord().encode(writer)
        OptRecord().encode(writer)
        with pytest.raises(WireFormatError):
            Message.decode(writer.getvalue())
        del message

    def test_opt_with_nonroot_name_rejected(self):
        writer = WireWriter()
        writer.u16(1)
        writer.u16(0)
        writer.u16(0)
        writer.u16(0)
        writer.u16(0)
        writer.u16(1)
        # Non-root owner name followed by OPT type.
        writer.u8(1)
        writer.write(b"x")
        writer.u8(0)
        writer.u16(QType.OPT)
        writer.u16(4096)
        writer.u32(0)
        writer.u16(0)
        with pytest.raises(WireFormatError):
            Message.decode(writer.getvalue())

    def test_question_accessor_requires_question(self):
        with pytest.raises(WireFormatError):
            Message().question

    def test_str_renders(self):
        ecs = ClientSubnetOption(Prefix.parse("9.9.9.0/24"))
        query = make_query("foo.net", ecs=ecs)
        text = str(make_response(query, [a_record()], scope_prefix_len=16))
        assert "foo.net" in text and "ECS" in text

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.lists(addresses, min_size=0, max_size=5),
           st.integers(min_value=0, max_value=86400))
    def test_roundtrip_property(self, msg_id, addrs, ttl):
        query = make_query("a.b.example", msg_id=msg_id)
        records = [ResourceRecord("a.b.example", QType.A, ttl,
                                  ARdata(addr)) for addr in addrs]
        response = make_response(query, records)
        out = Message.decode(response.encode())
        assert out.msg_id == msg_id
        assert [r.rdata for r in out.answers] == [r.rdata for r in records]
        assert all(r.ttl == ttl for r in out.answers)


class TestEdnsOptions:
    def test_unknown_options_roundtrip(self):
        opt = OptRecord(EdnsOptions(
            payload_size=1232,
            unknown_options=((65001, b"\x01\x02"),),
        ))
        message = Message(msg_id=1, questions=[Question("x.y")], opt=opt)
        out = Message.decode(message.encode())
        assert out.opt.options.payload_size == 1232
        assert out.opt.options.unknown_options == ((65001, b"\x01\x02"),)

    def test_dnssec_ok_flag(self):
        opt = OptRecord(EdnsOptions(dnssec_ok=True))
        message = Message(msg_id=1, questions=[Question("x.y")], opt=opt)
        out = Message.decode(message.encode())
        assert out.opt.options.dnssec_ok

    def test_ttl_out_of_range_rejected(self):
        with pytest.raises(WireFormatError):
            ResourceRecord("x", QType.A, -1, ARdata(1))
