"""Tests for NetSession, RUM, and query-log measurement systems."""

import datetime

import pytest

from repro.dnsproto.edns import ClientSubnetOption
from repro.dnsproto.message import make_query
from repro.measurement import (
    NetSessionCollector,
    PairKey,
    QueryLog,
    RumBeacon,
    RumCollector,
)
from repro.measurement.querylog import inflation_by_popularity
from repro.measurement.rum import expectation_splitter
from repro.net.ipv4 import Prefix
from repro.api import build_world
from repro.simulation import WorldConfig
from repro.topology import InternetConfig, build_internet


@pytest.fixture(scope="module")
def net():
    return build_internet(InternetConfig.tiny(), seed=21)


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig.tiny())


class TestNetSessionGroundTruth:
    def test_covers_all_blocks(self, net):
        dataset = NetSessionCollector(net).collect_ground_truth()
        assert dataset.blocks_covered() == len(net.blocks)
        assert dataset.total_demand() == pytest.approx(net.total_demand)

    def test_frequencies_normalized_per_block(self, net):
        dataset = NetSessionCollector(net).collect_ground_truth()
        per_block = {}
        for obs in dataset.observations:
            per_block[obs.block] = per_block.get(obs.block, 0) + (
                obs.frequency)
        assert all(total == pytest.approx(1.0)
                   for total in per_block.values())

    def test_sampling_reduces_coverage(self, net):
        full = NetSessionCollector(net).collect_ground_truth()
        half = NetSessionCollector(net).collect_ground_truth(
            sample_fraction=0.5)
        assert 0 < half.blocks_covered() < full.blocks_covered()

    def test_filter_by_resolver_population(self, net):
        dataset = NetSessionCollector(net).collect_ground_truth()
        public = net.public_resolver_ids()
        pub_ds = dataset.filtered(public, keep=True)
        isp_ds = dataset.filtered(public, keep=False)
        assert len(pub_ds) + len(isp_ds) == len(dataset)
        assert all(o.resolver_id in public for o in pub_ds.observations)

    def test_distance_samples_parallel(self, net):
        dataset = NetSessionCollector(net).collect_ground_truth()
        distances, weights = dataset.distance_samples()
        assert len(distances) == len(weights) == len(dataset)

    def test_rejects_bad_fraction(self, net):
        with pytest.raises(ValueError):
            NetSessionCollector(net).collect_ground_truth(0)


class TestNetSessionViaDns:
    def test_dns_collection_matches_ground_truth(self, world):
        """The whoami-dig pipeline must discover the same pairings the
        topology assigned (modulo sampling of secondary LDNSes)."""
        collector = NetSessionCollector(world.internet)
        blocks = world.internet.blocks[:20]
        dataset = collector.collect_via_dns(
            world.network, world.ldns_registry, blocks=blocks,
            digs_per_block=6)
        assert dataset.blocks_covered() == len(blocks)
        truth = {b.prefix: {rid for rid, _ in b.ldns} for b in blocks}
        for obs in dataset.observations:
            assert obs.resolver_id in truth[obs.block]

    def test_dns_collection_distances_positive(self, world):
        collector = NetSessionCollector(world.internet)
        dataset = collector.collect_via_dns(
            world.network, world.ldns_registry,
            blocks=world.internet.blocks[:5], digs_per_block=3)
        assert all(o.distance_miles >= 0 for o in dataset.observations)


def beacon(day=0, high=True, public=True, rtt=100.0, distance=1000.0,
           ttfb=800.0, download=200.0):
    return RumBeacon(
        day=day, block=Prefix.parse("1.2.3.0/24"), country="IN",
        domain="www.p.example", high_expectation=high,
        via_public_resolver=public, dns_ms=30.0, rtt_ms=rtt,
        ttfb_ms=ttfb, download_ms=download,
        mapping_distance_miles=distance, server_ip=1, ecs_used=False)


class TestRumCollector:
    def test_daily_mean_series(self):
        rum = RumCollector()
        rum.record(beacon(day=0, rtt=100))
        rum.record(beacon(day=0, rtt=200))
        rum.record(beacon(day=1, rtt=50))
        series = rum.daily_mean("rtt_ms", high_expectation=True)
        assert series == [(0, 150.0), (1, 50.0)]

    def test_subset_filters(self):
        rum = RumCollector()
        rum.record(beacon(high=True, public=True))
        rum.record(beacon(high=False, public=True))
        rum.record(beacon(high=True, public=False))
        assert len(rum.subset(high_expectation=True, via_public=True)) == 1
        assert len(rum.subset(via_public=True)) == 2
        assert len(rum.subset()) == 3

    def test_day_range_half_open(self):
        rum = RumCollector()
        for day in range(5):
            rum.record(beacon(day=day))
        assert len(rum.subset(day_range=(1, 3))) == 2

    def test_percentile_and_cdf(self):
        rum = RumCollector()
        for rtt in (10, 20, 30, 40):
            rum.record(beacon(rtt=rtt))
        assert rum.percentile("rtt_ms", 0.5) in (20, 30)
        cdf = rum.cdf("rtt_ms", grid=[15, 45])
        assert cdf[0][1] == pytest.approx(0.25)
        assert cdf[1][1] == pytest.approx(1.0)

    def test_monthly_counts(self):
        rum = RumCollector()
        rum.record(beacon(day=0))
        rum.record(beacon(day=40, high=False))
        counts = rum.monthly_counts(datetime.date(2014, 1, 1))
        assert counts[("2014-01", True)] == 1
        assert counts[("2014-02", False)] == 1

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            RumCollector().percentile("rtt_ms", 0.5)

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            beacon().metric("bogus")

    def test_expectation_splitter(self):
        is_high = expectation_splitter({"IN": 2500.0, "KR": 30.0})
        assert is_high("IN") and not is_high("KR")
        assert not is_high("ZZ")  # unknown defaults to low


class TestQueryLog:
    def make_log(self):
        return QueryLog(authoritative_ips={100}, public_resolver_ips={50},
                        bucket_seconds=10.0)

    def test_counts_only_authoritative_destinations(self):
        log = self.make_log()
        query = make_query("a.cdn.example")
        log.record_query(0.0, 100, 50, query)
        log.record_query(0.0, 999, 50, query)
        assert log.total_queries == 1

    def test_public_split(self):
        log = self.make_log()
        query = make_query("a.cdn.example")
        log.record_query(0.0, 100, 50, query)   # public resolver
        log.record_query(0.0, 100, 60, query)   # other
        assert log.rate_in(0, 10) == pytest.approx(0.2)
        assert log.rate_in(0, 10, public_only=True) == pytest.approx(0.1)

    def test_ecs_counted(self):
        log = self.make_log()
        plain = make_query("a.cdn.example")
        with_ecs = make_query("a.cdn.example", ecs=ClientSubnetOption(
            Prefix.parse("9.9.9.0/24")))
        log.record_query(0.0, 100, 50, plain)
        log.record_query(0.0, 100, 50, with_ecs)
        assert log.ecs_queries == 1

    def test_series_buckets(self):
        log = self.make_log()
        query = make_query("a.cdn.example")
        log.record_query(5.0, 100, 50, query)
        log.record_query(15.0, 100, 50, query)
        log.record_query(16.0, 100, 50, query)
        assert log.series() == [(0, 0.1), (1, 0.2)]

    def test_pair_tracking(self):
        log = self.make_log()
        log.enable_pair_tracking()
        query = make_query("a.cdn.example")
        log.record_query(1.0, 100, 50, query)
        log.record_query(2.0, 100, 50, query)
        log.record_query(99.0, 100, 50, query)
        pairs = log.pair_counts(0, 10)
        assert pairs == {PairKey("a.cdn.example", 50): 2}

    def test_rate_in_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            self.make_log().rate_in(5, 5)

    def test_reset(self):
        log = self.make_log()
        log.record_query(0.0, 100, 50, make_query("a.cdn.example"))
        log.reset()
        assert log.total_queries == 0
        assert log.series() == []


class TestInflationByPopularity:
    def test_basic_factors(self):
        key_hot = PairKey("hot.cdn.example", 1)
        key_cold = PairKey("cold.cdn.example", 1)
        before = {key_hot: 10, key_cold: 10}
        after = {key_hot: 80, key_cold: 12}
        rows = inflation_by_popularity(
            before, after,
            queries_per_ttl_before={key_hot: 0.95, key_cold: 0.05},
            n_buckets=10)
        assert len(rows) == 10
        top_bucket = rows[-1]
        bottom_bucket = rows[0]
        assert top_bucket[1] == pytest.approx(8.0)
        assert bottom_bucket[1] == pytest.approx(1.2)

    def test_missing_after_counts_as_zero(self):
        key = PairKey("gone.cdn.example", 1)
        rows = inflation_by_popularity({key: 5}, {},
                                       queries_per_ttl_before={key: 1.0})
        assert rows[-1][1] == 0.0

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            inflation_by_popularity({}, {}, n_buckets=0)
