"""Tests for the ops status report and the eum-sim CLI."""

import random

import pytest

from repro.core.reporting import build_status_report, cluster_health
from repro.api import build_world
from repro.simulation import WorldConfig, simulate_session
from repro.simulation.cli import main as sim_main


@pytest.fixture(scope="module")
def exercised_world():
    world = build_world(WorldConfig.tiny())
    world.enable_ecs(world.public_ldns_ids())
    rng = random.Random(3)
    for index in range(40):
        block = world.internet.pick_block(rng)
        simulate_session(world, block, now=index * 3.0, rng=rng)
    return world


class TestStatusReport:
    def test_counters_populated(self, exercised_world):
        report = build_status_report(exercised_world)
        assert report.mapping_resolutions > 0
        assert report.lb_decisions > 0
        assert report.clusters_alive == report.clusters_total
        assert report.authoritative_queries > 0
        assert 0 <= report.ldns_cache_hit_rate <= 1
        assert 0 <= report.decision_cache_hit_rate <= 1

    def test_ecs_share_visible(self, exercised_world):
        report = build_status_report(exercised_world)
        assert 0 < report.mapping_ecs_share <= 1

    def test_lines_render(self, exercised_world):
        lines = build_status_report(exercised_world).lines()
        text = "\n".join(lines)
        assert "mapping system status" in text
        assert "clusters" in text

    def test_cluster_health_ordering(self, exercised_world):
        rows = cluster_health(exercised_world.deployments, top=10)
        utils = [r.utilization for r in rows if r.alive]
        assert utils == sorted(utils, reverse=True)

    def test_dead_cluster_reported(self, exercised_world):
        cluster = next(iter(
            exercised_world.deployments.clusters.values()))
        for server in cluster.servers:
            server.fail()
        report = build_status_report(exercised_world)
        assert report.clusters_alive == report.clusters_total - 1
        for server in cluster.servers:
            server.recover()


class TestSimCli:
    def test_world_info(self, capsys):
        assert sim_main(["world-info", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "client /24 blocks" in out
        assert "CDN locations" in out

    def test_dnsload(self, capsys):
        assert sim_main(["dnsload", "--scale", "tiny",
                         "--lookups", "300", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "lookups" in out and "authoritative qps" in out

    def test_dnsload_with_ecs(self, capsys):
        assert sim_main(["dnsload", "--scale", "tiny",
                         "--lookups", "300", "--ecs"]) == 0
        out = capsys.readouterr().out
        assert "ECS queries" in out

    def test_status(self, capsys):
        assert sim_main(["status", "--scale", "tiny",
                         "--sessions", "20"]) == 0
        out = capsys.readouterr().out
        assert "mapping system status" in out

    def test_rollout(self, capsys):
        assert sim_main(["rollout", "--scale", "tiny", "--days", "9",
                         "--sessions", "30"]) == 0
        out = capsys.readouterr().out
        assert "RUM beacons" in out
        assert "mapping_distance_miles" in out

    def test_bad_scale(self):
        with pytest.raises(SystemExit):
            sim_main(["world-info", "--scale", "nope"])
