"""Tests for topology discovery (candidate index) and its LB wiring."""

import pytest

from repro.cdn import build_deployments
from repro.core import (
    CandidateIndex,
    GlobalLoadBalancer,
    MeasurementService,
    Scorer,
    nearest_cluster,
)
from repro.core.policies import MapTarget
from repro.net.geometry import great_circle_miles
from repro.topology import InternetConfig, build_internet


@pytest.fixture(scope="module")
def net():
    return build_internet(InternetConfig.tiny(), seed=9)


@pytest.fixture(scope="module")
def plan(net):
    return build_deployments(80, net.geodb, seed=4,
                             host_ases=list(net.ases.values()))


@pytest.fixture(scope="module")
def index(plan):
    return CandidateIndex(plan, k_nearest=8)


def target_for(block):
    return MapTarget(geo=block.geo, asn=block.asn)


class TestCandidateIndex:
    def test_returns_at_least_k(self, net, plan, index):
        for block in net.blocks[:50]:
            candidates = index.candidates(target_for(block))
            assert len(candidates) >= min(8, len(plan))

    def test_candidates_include_true_nearest(self, net, plan, index):
        for block in net.blocks[:50]:
            target = target_for(block)
            best = nearest_cluster(plan, target.geo)
            ids = {c.cluster_id for c in index.candidates(target)}
            assert best.cluster_id in ids

    def test_candidates_are_nearby(self, net, plan, index):
        block = max(net.blocks, key=lambda b: b.demand)
        target = target_for(block)
        candidates = index.candidates(target)[:8]
        worst = max(great_circle_miles(target.geo, c.geo)
                    for c in candidates)
        all_sorted = sorted(
            great_circle_miles(target.geo, c.geo)
            for c in plan.clusters.values())
        # The 8 returned must be within a small factor of the true
        # 8-nearest radius.
        assert worst <= 3 * all_sorted[7] + 50

    def test_same_as_clusters_appended(self, net, plan, index):
        in_network = [c for c in plan.clusters.values()
                      if c.asn != 20940]
        if not in_network:
            pytest.skip("no in-ISP clusters in this plan")
        cluster = in_network[0]
        target = MapTarget(geo=cluster.geo, asn=cluster.asn)
        ids = {c.cluster_id for c in index.candidates(target)}
        same_as = {c.cluster_id for c in plan.clusters.values()
                   if c.asn == cluster.asn}
        assert same_as <= ids

    def test_small_universe_returns_all(self, net):
        small_plan = build_deployments(5, net.geodb, seed=6)
        small_index = CandidateIndex(small_plan, k_nearest=16)
        target = MapTarget(geo=net.blocks[0].geo, asn=net.blocks[0].asn)
        assert len(small_index.candidates(target)) == 5

    def test_rejects_bad_k(self, plan):
        with pytest.raises(ValueError):
            CandidateIndex(plan, k_nearest=0)

    def test_coverage_report(self, index, plan):
        report = index.coverage_report()
        assert report["clusters"] == len(plan)
        assert report["cells"] >= 1


class TestLoadBalancerWithIndex:
    def test_same_choice_as_full_scan_for_typical_targets(self, net,
                                                          plan, index):
        measurement = MeasurementService(net.geodb)
        scorer = Scorer(measurement)
        full = GlobalLoadBalancer(plan, scorer)
        pruned = GlobalLoadBalancer(plan, scorer, candidate_index=index)
        agreements = 0
        checked = 0
        for block in net.blocks[:60]:
            target = target_for(block)
            a = full.pick_cluster(target)
            b = pruned.pick_cluster(target)
            checked += 1
            if a is b:
                agreements += 1
        # The pre-cut may miss a marginally better distant candidate,
        # but must agree for the overwhelming majority of clients.
        assert agreements >= 0.85 * checked

    def test_index_fallback_when_candidates_dead(self, net, plan,
                                                 index):
        measurement = MeasurementService(net.geodb)
        scorer = Scorer(measurement)
        pruned = GlobalLoadBalancer(plan, scorer, candidate_index=index)
        block = net.blocks[0]
        target = target_for(block)
        candidates = index.candidates(target)
        for cluster in candidates:
            for server in cluster.servers:
                server.fail()
        chosen = pruned.pick_cluster(target)
        assert chosen is not None and chosen.alive
        for cluster in candidates:
            for server in cluster.servers:
                server.recover()
