"""Tests for the pluggable unit-construction layer (repro.core.units).

Covers the builder registry and scheme grammar, byte-parity of the
deprecated ``repro.core.mapunits`` shims, determinism of the
routing-aware clustering, coverage/cohesion edge cases, and the
``ru:`` key path through the map maker's compile and the degradation
ladder.
"""

import warnings

import numpy as np
import pytest

from repro.cdn import build_deployments
from repro.core import MeasurementService, Scorer, TrafficClass
from repro.core.mapmaker import (
    MapMakerConfig,
    MapPublicationService,
    compile_entries,
)
from repro.core.units import (
    MapUnit,
    MapUnitScheme,
    available_schemes,
    build_unit_index,
    build_units,
    cohesion_stats,
    demand_coverage_curve,
    get_builder,
    parse_unit_scheme,
    register_builder,
    units_needed_for_share,
)
from repro.core.units.builders import _BUILDERS
from repro.core.units.routing import RoutingAwareUnitBuilder
from repro.topology import InternetConfig, build_internet
from repro.topology.internet import BlockColumns


@pytest.fixture(scope="module")
def net():
    return build_internet(InternetConfig.tiny(), seed=5)


class _SlicedInternet:
    """A duck-typed Internet over a block subset, for edge cases."""

    def __init__(self, internet, n_blocks):
        self.blocks = internet.blocks[:n_blocks]
        self.resolvers = internet.resolvers
        self.bgp = internet.bgp
        self.seed = internet.seed

    def block_columns(self):
        n = len(self.blocks)
        return BlockColumns(
            lat=np.fromiter((b.geo.lat for b in self.blocks),
                            dtype=float, count=n),
            lon=np.fromiter((b.geo.lon for b in self.blocks),
                            dtype=float, count=n),
            asn=np.fromiter((b.asn for b in self.blocks),
                            dtype=np.int64, count=n),
            demand=np.fromiter((b.demand for b in self.blocks),
                               dtype=float, count=n),
            last_mile_ms=np.fromiter(
                (b.last_mile_ms for b in self.blocks),
                dtype=float, count=n),
        )


def _unit_fingerprint(units):
    return sorted((u.key, u.scheme.value, round(u.demand, 9),
                   len(u.members)) for u in units)


class TestRegistry:
    def test_all_schemes_registered(self):
        assert available_schemes() == [
            "bgp_merged", "block", "geo_as", "ldns", "routing_aware"]

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="unknown unit scheme"):
            get_builder("nope")

    def test_builder_must_declare_scheme(self):
        class Anonymous:
            scheme = ""

        with pytest.raises(ValueError, match="scheme name"):
            register_builder(Anonymous())

    def test_custom_builder_round_trips(self, net):
        class OneBigUnit:
            scheme = "one_big_unit"

            def build(self, internet, **params):
                unit = MapUnit(key="all", scheme=MapUnitScheme.BLOCK)
                for block in internet.blocks:
                    unit.add(block.geo, block.demand,
                             prefix=str(block.prefix))
                return [unit]

            def index(self, internet, units):
                return {p: "all" for p in units[0].prefixes}

        register_builder(OneBigUnit())
        try:
            units = build_units("one_big_unit", net)
            assert len(units) == 1
            index = build_unit_index("one_big_unit", net, units)
            assert set(index.values()) == {"all"}
        finally:
            del _BUILDERS["one_big_unit"]


class TestSchemeGrammar:
    @pytest.mark.parametrize("spec,name,params", [
        ("ldns", "ldns", {}),
        ("geo_as", "geo_as", {}),
        ("routing_aware", "routing_aware", {}),
        ("routing_aware:32", "routing_aware", {"n_units": 32}),
    ])
    def test_valid_specs(self, spec, name, params):
        assert parse_unit_scheme(spec) == (name, params)

    @pytest.mark.parametrize("spec", [
        "", "nope", "ldns:4", "geo_as:2", "routing_aware:x",
        "routing_aware:0", "routing_aware:-3", None, 42,
    ])
    def test_invalid_specs(self, spec):
        with pytest.raises(ValueError):
            parse_unit_scheme(spec)


class TestDeprecatedShims:
    def test_ldns_shim_warns_and_matches(self, net):
        from repro.core import mapunits

        with pytest.warns(DeprecationWarning, match="repro.core.units"):
            old = mapunits.build_ldns_units(net)
        new = build_units("ldns", net)
        assert _unit_fingerprint(old) == _unit_fingerprint(new)

    def test_block_shim_warns_and_matches(self, net):
        from repro.core import mapunits

        with pytest.warns(DeprecationWarning, match="repro.core.units"):
            old = mapunits.build_block_units(net, 20)
        new = build_units("block", net, prefix_len=20)
        assert _unit_fingerprint(old) == _unit_fingerprint(new)

    def test_merge_shim_warns_and_matches(self, net):
        from repro.core import mapunits

        with pytest.warns(DeprecationWarning, match="repro.core.units"):
            old = mapunits.merge_units_by_cidr(net, 24)
        new = build_units("bgp_merged", net, prefix_len=24)
        assert _unit_fingerprint(old) == _unit_fingerprint(new)

    def test_canonical_path_does_not_warn(self, net):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_units("ldns", net)
            build_units("block", net, prefix_len=24)
            build_units("bgp_merged", net, prefix_len=24)


class TestBuilders:
    def test_geo_as_is_one_unit_per_block(self, net):
        units = build_units("geo_as", net)
        assert len(units) == len(net.blocks)
        by_key = {u.key: u for u in units}
        block = net.blocks[0]
        unit = by_key[str(block.prefix)]
        assert unit.asn == block.asn
        assert unit.demand == block.demand

    def test_ldns_units_carry_dominant_asn(self, net):
        units = build_units("ldns", net)
        assert all(u.asn is not None for u in units)

    def test_index_covers_every_block(self, net):
        for scheme in available_schemes():
            units = build_units(scheme, net)
            index = build_unit_index(scheme, net, units)
            assert len(index) == len(net.blocks), scheme
            keys = {u.key for u in units}
            assert set(index.values()) <= keys, scheme

    def test_total_demand_is_conserved(self, net):
        expected = sum(b.demand for b in net.blocks)
        for scheme in available_schemes():
            total = sum(u.demand for u in build_units(scheme, net))
            assert total == pytest.approx(expected), scheme


class TestRoutingAware:
    def test_deterministic_across_rebuilds(self):
        nets = [build_internet(InternetConfig.tiny(), seed=5)
                for _ in range(2)]
        first, second = (
            build_units("routing_aware:32", n) for n in nets)
        assert _unit_fingerprint(first) == _unit_fingerprint(second)
        assert [u.cohesion_rtt_ms for u in first] == (
            [u.cohesion_rtt_ms for u in second])

    def test_explicit_unit_count_is_respected(self, net):
        units = build_units("routing_aware:24", net)
        assert 1 <= len(units) <= 24

    def test_count_clamped_to_block_count(self, net):
        small = _SlicedInternet(net, 3)
        units = build_units("routing_aware:50", small)
        assert 1 <= len(units) <= 3

    def test_cohesion_recorded(self, net):
        units = build_units("routing_aware:16", net)
        assert all(u.cohesion_rtt_ms is not None for u in units)
        assert all(u.cohesion_rtt_ms >= 0 for u in units)
        # Fewer, larger clusters are less cohesive in feature space.
        coarse = cohesion_stats(build_units("routing_aware:4", net))
        fine = cohesion_stats(units)
        assert coarse["rtt_ms"] >= fine["rtt_ms"]

    def test_empty_internet_builds_no_units(self, net):
        empty = _SlicedInternet(net, 0)
        assert build_units("routing_aware", empty) == []

    def test_single_block_is_one_unit(self, net):
        single = _SlicedInternet(net, 1)
        units = build_units("routing_aware:8", single)
        assert len(units) == 1
        assert units[0].key == str(net.blocks[0].prefix)
        assert units[0].cohesion_rtt_ms == pytest.approx(0.0)

    def test_landmarks_clamped_to_population(self, net):
        tiny = _SlicedInternet(net, 5)
        builder = RoutingAwareUnitBuilder(n_landmarks=64)
        units = builder.build(tiny, n_units=2)
        assert sum(len(u.members) for u in units) == 5


class TestCoverageEdgeCases:
    def test_empty_internet_edge(self, net):
        empty = _SlicedInternet(net, 0)
        for scheme in available_schemes():
            assert build_units(scheme, empty) == [], scheme
        with pytest.raises(ValueError, match="no demand"):
            demand_coverage_curve([])

    def test_single_block_curve(self, net):
        single = _SlicedInternet(net, 1)
        units = build_units("bgp_merged", single)
        assert len(units) == 1
        assert demand_coverage_curve(units) == [(1, pytest.approx(1.0))]
        assert units_needed_for_share(units, 0.95) == 1

    def test_all_demand_in_one_unit(self):
        from repro.net.geometry import GeoPoint

        hot = MapUnit(key="hot", scheme=MapUnitScheme.BLOCK)
        hot.add(GeoPoint(10.0, 10.0), 100.0)
        cold = MapUnit(key="cold", scheme=MapUnitScheme.BLOCK)
        cold.add(GeoPoint(20.0, 20.0), 0.0)
        curve = demand_coverage_curve([cold, hot])
        assert curve == [(1, pytest.approx(1.0)),
                         (2, pytest.approx(1.0))]
        assert units_needed_for_share([cold, hot], 0.99) == 1

    def test_zero_demand_units_raise(self):
        from repro.net.geometry import GeoPoint

        unit = MapUnit(key="z", scheme=MapUnitScheme.BLOCK)
        unit.add(GeoPoint(0.0, 0.0), 0.0)
        with pytest.raises(ValueError, match="no demand"):
            demand_coverage_curve([unit])

    def test_cohesion_stats_zero_demand(self):
        assert cohesion_stats([]) == {"units": 0, "radius_miles": 0.0}

    def test_cohesion_stats_mixed_schemes(self, net):
        geo = build_units("geo_as", _SlicedInternet(net, 10))
        stats = cohesion_stats(geo)
        assert stats["units"] == 10
        assert "rtt_ms" not in stats


class TestRuCompilePath:
    @pytest.fixture(scope="class")
    def wired(self, net):
        plan = build_deployments(40, net.geodb, seed=2,
                                 host_ases=list(net.ases.values()))
        scorer = Scorer(MeasurementService(net.geodb), TrafficClass.WEB)
        return plan, scorer

    def test_compile_emits_ru_namespace(self, net, wired):
        plan, scorer = wired
        units = build_units("routing_aware:24", net)
        entries = compile_entries(plan, scorer, net, units=units)
        ru_keys = [k for k in entries if k.startswith("ru:")]
        assert len(ru_keys) == len(units)
        assert not any(k.startswith("eu:") for k in entries)
        assert any(k.startswith("ns:") for k in entries)

    def test_compile_without_units_is_untouched(self, net, wired):
        plan, scorer = wired
        entries = compile_entries(plan, scorer, net)
        assert any(k.startswith("eu:") for k in entries)
        assert not any(k.startswith("ru:") for k in entries)

    def test_service_lookup_walks_ru_tiers(self, net, wired):
        plan, scorer = wired
        service = MapPublicationService(
            MapMakerConfig(), deployments=plan, scorer=scorer,
            internet=net, unit_scheme="routing_aware:24")
        prefix = net.blocks[0].prefix
        unit_key = service.unit_key_for(prefix)
        assert unit_key is not None
        ids, tier = service.lookup(f"ru:{unit_key}", "ns:0", day=0)
        assert ids and tier == "fresh_ru"
        stale_day = MapMakerConfig().stale_age_days
        ids, tier = service.lookup(f"ru:{unit_key}", "ns:0",
                                   day=stale_day)
        assert ids and tier == "stale_ru"

    def test_service_without_scheme_has_no_unit_table(self, net, wired):
        plan, scorer = wired
        service = MapPublicationService(
            MapMakerConfig(), deployments=plan, scorer=scorer,
            internet=net)
        assert service.units is None
        assert service.unit_key_for(net.blocks[0].prefix) is None
        assert "unit_scheme" not in service.describe()

    def test_unit_gauges_only_with_scheme(self, net, wired):
        from repro.obs import Observability

        plan, scorer = wired
        for scheme, expected in ((None, False), ("geo_as", True)):
            obs = Observability()
            service = MapPublicationService(
                MapMakerConfig(), deployments=plan, scorer=scorer,
                internet=net, obs=obs, unit_scheme=scheme)
            service.tick(0)
            gauges = obs.registry.snapshot()["gauges"]
            assert ("units.total" in gauges) is expected
