"""Tests for the IPv6 client-subnet option (RFC 7871 family 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnsproto.edns import (
    ClientSubnetV6Option,
    EdnsOptions,
    OptRecord,
)
from repro.dnsproto.message import Message, Question
from repro.dnsproto.wire import WireFormatError

V6_DOC_PREFIX = 0x20010DB8 << 96  # 2001:db8::/32 documentation prefix


def make_option(source_len=56, scope_len=0):
    mask = ((1 << source_len) - 1) << (128 - source_len) if source_len \
        else 0
    return ClientSubnetV6Option(V6_DOC_PREFIX & mask, source_len,
                                scope_len)


class TestV6Option:
    def test_roundtrip(self):
        option = make_option(56, 48)
        assert ClientSubnetV6Option.decode(option.encode()) == option

    def test_encode_length_is_minimal(self):
        option = make_option(56)
        # 2 family + 1 + 1 + ceil(56/8)=7 address bytes
        assert len(option.encode()) == 11

    def test_rejects_host_bits(self):
        with pytest.raises(WireFormatError):
            ClientSubnetV6Option(V6_DOC_PREFIX | 1, 32)

    def test_rejects_bad_lengths(self):
        with pytest.raises(WireFormatError):
            ClientSubnetV6Option(0, 129)
        with pytest.raises(WireFormatError):
            ClientSubnetV6Option(0, 56, 200)

    def test_for_response(self):
        option = make_option(56)
        response = option.for_response(40)
        assert response.scope_prefix_len == 40
        assert response.address == option.address

    def test_decode_rejects_v4_family(self):
        raw = b"\x00\x01\x18\x00\x01\x02\x03"
        with pytest.raises(WireFormatError):
            ClientSubnetV6Option.decode(raw)

    @given(st.integers(min_value=0, max_value=128),
           st.integers(min_value=0, max_value=128),
           st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_roundtrip_property(self, source, scope, raw_addr):
        mask = (((1 << source) - 1) << (128 - source)) if source else 0
        option = ClientSubnetV6Option(raw_addr & mask, source, scope)
        assert ClientSubnetV6Option.decode(option.encode()) == option


class TestV6InMessages:
    def make_message(self, option):
        return Message(
            msg_id=9,
            questions=[Question("a.cdn.example")],
            opt=OptRecord(EdnsOptions(client_subnet_v6=option)),
        )

    def test_message_roundtrip(self):
        option = make_option(56, 0)
        out = Message.decode(self.make_message(option).encode())
        assert out.opt.options.client_subnet_v6 == option
        # The v4 accessor stays empty: the mapping system ignores v6.
        assert out.client_subnet is None

    def test_duplicate_v6_rejected(self):
        option = make_option(56)
        message = self.make_message(option)
        body = option.encode()
        message.opt = OptRecord(EdnsOptions(
            client_subnet_v6=option,
            unknown_options=((8, body),),  # second ECS option, code 8
        ))
        with pytest.raises(WireFormatError):
            Message.decode(message.encode())

    def test_authoritative_ignores_v6_gracefully(self):
        """A v6-ECS query must be answered (scope-0 style), not
        FORMERRed: v6 clients get NS-based mapping."""
        from repro.dnssrv import AuthoritativeServer, StaticZone
        from repro.dnsproto.message import ResourceRecord
        from repro.dnsproto.rdata import ARdata
        from repro.dnsproto.types import QType, Rcode

        zone = StaticZone().add(ResourceRecord(
            "a.cdn.example", QType.A, 60, ARdata(1)))
        server = AuthoritativeServer(1)
        server.attach_zone("cdn.example", zone)
        wire = self.make_message(make_option(56)).encode()
        out = server.handle_query(wire, src_ip=42, now=0.0)
        response = Message.decode(out)
        assert response.flags.rcode == Rcode.NOERROR
        assert response.answers
