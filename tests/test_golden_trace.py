"""Golden-trace regression suite.

Runs one tiny deterministic end-to-end scenario (fixed world seed,
fixed session seed, ECS on) and pins the *discrete* projection of its
trace trees -- span names and nesting, cache hit/miss outcomes, ECS
scopes, chosen clusters -- against a checked-in JSON fixture.  Floats
(RTTs, milestone timings) are excluded from the fixture so it is
insensitive to platform libm noise; full-precision determinism is
covered separately by the byte-identical replay test below.

To regenerate the fixture after an intentional behaviour change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py

and review the fixture diff like any other code change.
"""

import difflib
import json
import os
import pathlib

import pytest

from repro.core.reporting import build_status_report
from repro.obs.dump import build_payload, run_scenario

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_trace.json"

SCENARIO = {"scale": "tiny", "sessions": 10, "seed": 11, "ecs": True,
            "sample_every": 1}
"""Seed 11 is chosen so the sampled sessions cover both the plain and
the ECS resolution paths (two sessions route via an ECS-enabled public
resolver and carry a client-subnet option end to end)."""


@pytest.fixture(scope="module")
def world():
    return run_scenario(**SCENARIO)


def _discrete(span: dict) -> dict:
    """Projection keeping only platform-stable fields of a span tree."""
    return {
        "name": span["name"],
        "attrs": {key: value for key, value in span["attrs"].items()
                  if not isinstance(value, float)},
        "children": [_discrete(child) for child in span["children"]],
    }


def _golden_document(world) -> dict:
    traces = [_discrete(trace) for trace in world.obs.tracer.export()]
    snapshot = world.obs.registry.snapshot()
    return {
        "scenario": SCENARIO,
        "traces": traces,
        # Discrete end-state counters double-check the traces summarize
        # the same run the registry saw.
        "counters": {
            "sessions.completed": snapshot["counters"][
                "sessions.completed"],
            "mapping.resolutions": snapshot["gauges"][
                "mapping.resolutions"],
            "mapping.ecs_resolutions": snapshot["gauges"][
                "mapping.ecs_resolutions"],
            "ldns.cache.lookups": snapshot["gauges"][
                "ldns.cache.lookups"],
        },
    }


def _pretty(document: dict) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


class TestGoldenTrace:
    def test_trace_projection_matches_fixture(self, world):
        document = _golden_document(world)
        rendered = _pretty(document)
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(rendered)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing fixture {GOLDEN_PATH}; run with REGEN_GOLDEN=1 "
            "to create it")
        expected = GOLDEN_PATH.read_text()
        if rendered != expected:
            diff = "".join(difflib.unified_diff(
                expected.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile="golden_trace.json (checked in)",
                tofile="golden_trace.json (this run)",
            ))
            pytest.fail(
                "golden trace drifted; if intentional, regenerate with "
                f"REGEN_GOLDEN=1 and review.\n{diff}")

    def test_every_session_trace_is_complete(self, world):
        traces = world.obs.tracer.export()
        assert len(traces) == SCENARIO["sessions"]
        for trace in traces:
            assert trace["name"] == "session"
            flat = _names(trace)
            # The canonical resolution path appears in every trace.
            assert "dns" in flat
            assert "stub.hop" in flat
            assert "mapping.decision" in flat or _cache_hit(trace)
            assert trace["attrs"]["cluster"].startswith("cl-")

    def test_replay_is_byte_identical(self):
        first = run_scenario(**SCENARIO)
        second = run_scenario(**SCENARIO)
        assert (first.obs.tracer.to_json()
                == second.obs.tracer.to_json())
        assert (first.obs.registry.to_json()
                == second.obs.registry.to_json())
        payload_a = _pretty(build_payload(first, SCENARIO, n_traces=-1))
        payload_b = _pretty(build_payload(second, SCENARIO, n_traces=-1))
        assert payload_a == payload_b

    def test_report_matches_component_internals(self, world):
        """Pins the reporting refactor: registry-backed report equals
        the values computed straight from component internals (the
        pre-refactor formulas)."""
        report = build_status_report(world)
        stats = world.mapping.stats
        assert report.mapping_resolutions == stats.resolutions
        assert report.mapping_ecs_share == (
            stats.ecs_resolutions / stats.resolutions)
        decisions = (stats.decision_cache_hits
                     + stats.decision_cache_misses)
        assert report.decision_cache_hit_rate == (
            stats.decision_cache_hits / decisions)
        assert report.lb_decisions == world.mapping.global_lb.decisions
        assert report.lb_spillovers == world.mapping.global_lb.spillovers
        ldns_hits = sum(ldns.cache.stats.hits
                        for ldns in world.ldns_registry.values())
        ldns_lookups = sum(ldns.cache.stats.lookups
                           for ldns in world.ldns_registry.values())
        assert report.ldns_cache_hit_rate == ldns_hits / ldns_lookups
        assert report.authoritative_queries == sum(
            ns.queries_received for ns in world.nameservers)
        assert report.authoritative_truncations == sum(
            ns.truncated_count for ns in world.nameservers)
        clusters = world.deployments.clusters.values()
        assert report.clusters_total == len(clusters)
        assert report.clusters_alive == sum(
            1 for c in clusters if c.alive)


def _names(trace: dict) -> set:
    names = {trace["name"]}
    for child in trace["children"]:
        names |= _names(child)
    return names


def _cache_hit(trace: dict) -> bool:
    for child in trace["children"]:
        if child["name"] == "dns" and child["attrs"].get("cache_hit"):
            return True
    return False
