"""Property tests for the shard merge algebra, under seeded fuzzing.

``tests/test_metrics_merge.py`` pins the merge semantics on
hand-written cases; this suite drives the same algebra with hundreds
of seeded-random registries, histograms, and query logs and checks the
laws the sharded engine's determinism contract rests on:

* **commutativity** -- merging two shard outputs in either order
  exports the same snapshot (scalar sum/max commute; histogram
  exports depend only on the sample multiset, since both quantiles
  and compaction sort first);
* **associativity** -- grouping does not matter, so a merge tree and
  a left fold agree (all generated values are integral, keeping float
  accumulation exact regardless of grouping);
* **identity** -- an empty registry/log is a two-sided unit;
* **shard split == union** -- a stream of observations split
  round-robin across shards and merged back equals the registry that
  saw the whole stream.

Every test is parametrized over enough seeds that the file runs well
over two hundred generated cases while staying fast (no world builds,
pure in-memory instruments).
"""

import random

import pytest

from repro.measurement.querylog import QueryLog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.parallel.merge import merge_query_logs, merge_registries

#: Name pools with the instrument kind and merge mode fixed per name,
#: as in production: a metric's kind/mode never varies across shards.
_COUNTERS = [("ctr.sum.%d" % i, "sum") for i in range(3)] + [
    ("ctr.max.%d" % i, "max") for i in range(2)]
_GAUGES = [("gauge.sum.%d" % i, "sum") for i in range(3)] + [
    ("gauge.max.%d" % i, "max") for i in range(2)]
_HISTOGRAMS = ["hist.%d" % i for i in range(3)]


def _random_registry(rng: random.Random) -> MetricsRegistry:
    """One shard's worth of instruments; integral values keep float
    accumulation exact under any merge grouping."""
    registry = MetricsRegistry()
    for name, mode in _COUNTERS:
        if rng.random() < 0.7:
            registry.counter(name, merge=mode).inc(rng.randint(0, 1000))
    for name, mode in _GAUGES:
        if rng.random() < 0.7:
            # Max-mode gauges stay non-negative: a missing instrument
            # merges as the zero instrument, so max-merge is only an
            # identity above zero (all replicated gauges -- map
            # version, roll-out day, load shares -- are counts).
            low = 0 if mode == "max" else -50
            registry.gauge(name, merge=mode).set(rng.randint(low, 50))
    for name in _HISTOGRAMS:
        if rng.random() < 0.7:
            hist = registry.histogram(name)
            for _ in range(rng.randint(1, 30)):
                hist.observe(rng.randint(0, 1000), rng.randint(1, 5))
    return registry


@pytest.mark.parametrize("seed", range(60))
def test_merge_commutes(seed):
    rng = random.Random(seed)
    a, b = _random_registry(rng), _random_registry(rng)
    ab = merge_registries([a, b]).snapshot()
    ba = merge_registries([b, a]).snapshot()
    assert ab == ba


@pytest.mark.parametrize("seed", range(60))
def test_merge_associates(seed):
    rng = random.Random(1000 + seed)
    a, b, c = (_random_registry(rng) for _ in range(3))
    left_fold = merge_registries([a, b, c]).snapshot()
    right_tree = MetricsRegistry().merge(a).merge(
        merge_registries([b, c])).snapshot()
    assert left_fold == right_tree


@pytest.mark.parametrize("seed", range(40))
def test_empty_registry_is_two_sided_identity(seed):
    rng = random.Random(2000 + seed)
    registry = _random_registry(rng)
    plain = registry.snapshot()
    assert merge_registries([registry, MetricsRegistry()]
                            ).snapshot() == plain
    assert merge_registries([MetricsRegistry(), registry]
                            ).snapshot() == plain


@pytest.mark.parametrize("seed", range(40))
def test_shard_split_equals_union(seed):
    """The headline determinism property, fuzzed: a stream split
    round-robin across shards then merged equals the union run."""
    rng = random.Random(3000 + seed)
    n_shards = rng.randint(2, 5)
    stream = []
    for _ in range(rng.randint(20, 120)):
        kind = rng.randrange(3)
        if kind == 0:
            # Split activity only makes sense for sum-mode counters;
            # max-mode models state replicated in *every* shard, so
            # those events land on all shards below.
            name = "ctr.sum.%d" % rng.randrange(3)
            stream.append(("counter", name, rng.randint(0, 100)))
        elif kind == 1:
            name = rng.choice(_HISTOGRAMS)
            stream.append(("hist", name, rng.randint(0, 1000),
                           rng.randint(1, 5)))
        else:
            stream.append(("replicated", "gauge.max.0",
                           rng.randint(0, 50)))

    shards = [MetricsRegistry() for _ in range(n_shards)]
    union = MetricsRegistry()
    for index, event in enumerate(stream):
        if event[0] == "replicated":
            _, name, value = event
            targets = shards + [union]
        else:
            targets = [shards[index % n_shards], union]
        for registry in targets:
            if event[0] == "counter":
                _, name, amount = event
                registry.counter(name, merge="sum").inc(amount)
            elif event[0] == "hist":
                _, name, value, weight = event
                registry.histogram(name).observe(value, weight)
            else:
                gauge = registry.gauge(name, merge="max")
                gauge.set(max(gauge.value, value))
    assert merge_registries(shards).snapshot() == union.snapshot()


@pytest.mark.parametrize("seed", range(20))
def test_histogram_compaction_is_order_insensitive(seed):
    """Past ``max_samples`` the retained sample compacts, but the
    compaction sorts first, so the merged export still depends only
    on the observation multiset, not the merge order."""
    rng = random.Random(4000 + seed)
    observations = [(rng.randint(0, 500), rng.randint(1, 3))
                    for _ in range(64)]
    split = rng.randint(1, 63)

    def _merged(first, second):
        a, b = Histogram("h", max_samples=16), Histogram(
            "h", max_samples=16)
        for value, weight in first:
            a.observe(value, weight)
        for value, weight in second:
            b.observe(value, weight)
        a.merge(b)
        return a

    ab = _merged(observations[:split], observations[split:])
    ba = _merged(observations[split:], observations[:split])
    assert len(ab._values) <= 16
    assert ab.snapshot() == ba.snapshot()


def _random_query_log(rng: random.Random,
                      events: int) -> QueryLog:
    log = QueryLog(authoritative_ips={1}, public_resolver_ips={2})
    log.enable_pair_tracking()
    _replay_queries(log, rng, events)
    return log


class _Question:
    def __init__(self, name):
        self.name = name


class _Message:
    """The three attributes ``QueryLog.record_query`` reads."""

    def __init__(self, qname, subnet):
        self.questions = [qname]
        self.question = _Question(qname)
        self.client_subnet = subnet


def _replay_queries(log: QueryLog, rng: random.Random,
                    events: int) -> None:
    for _ in range(events):
        now = rng.randint(0, 9) * 86400.0 + rng.randint(0, 86399)
        src = rng.choice((2, 3))
        subnet = ("10.0.0.0/24",) if rng.random() < 0.5 else None
        log.record_query(now, dst_ip=1, src_ip=src,
                         message=_Message("www.example.com.", subnet))


@pytest.mark.parametrize("seed", range(30))
def test_query_log_merge_commutes_and_sums(seed):
    rng = random.Random(5000 + seed)
    a = _random_query_log(rng, rng.randint(5, 60))
    b = _random_query_log(rng, rng.randint(5, 60))
    ab = merge_query_logs([a, b])
    ba = merge_query_logs([b, a])
    assert ab.total_queries == a.total_queries + b.total_queries
    assert ab.ecs_queries == a.ecs_queries + b.ecs_queries
    assert ab.series() == ba.series()
    assert ab.series(public_only=True) == ba.series(public_only=True)
    for bucket in ab.buckets():
        assert ab.bucket_count(bucket) == (a.bucket_count(bucket)
                                           + b.bucket_count(bucket))
    # Pair rows concatenate; consumers only see per-pair counts.
    window = (0.0, 10 * 86400.0)
    assert ab.pair_counts(*window) == ba.pair_counts(*window)


@pytest.mark.parametrize("seed", range(10))
def test_query_log_empty_is_identity(seed):
    rng = random.Random(6000 + seed)
    log = _random_query_log(rng, rng.randint(5, 40))
    empty = QueryLog(authoritative_ips={1}, public_resolver_ips={2})
    empty.enable_pair_tracking()
    merged = merge_query_logs([log, empty])
    assert merged.total_queries == log.total_queries
    assert merged.series() == log.series()
    assert merge_query_logs([empty, log]).series() == log.series()


@pytest.mark.parametrize("seed", range(10))
def test_query_log_shard_split_equals_union(seed):
    rng = random.Random(7000 + seed)
    n_shards = rng.randint(2, 4)
    events = []
    for _ in range(rng.randint(10, 80)):
        now = rng.randint(0, 9) * 86400.0 + rng.randint(0, 86399)
        src = rng.choice((2, 3))
        subnet = ("10.0.0.0/24",) if rng.random() < 0.5 else None
        events.append((now, src, subnet))

    def _fresh():
        log = QueryLog(authoritative_ips={1}, public_resolver_ips={2})
        log.enable_pair_tracking()
        return log

    shards = [_fresh() for _ in range(n_shards)]
    union = _fresh()
    for index, (now, src, subnet) in enumerate(events):
        for log in (shards[index % n_shards], union):
            log.record_query(now, dst_ip=1, src_ip=src,
                             message=_Message("www.example.com.",
                                              subnet))
    merged = merge_query_logs(shards)
    assert merged.total_queries == union.total_queries
    assert merged.ecs_queries == union.ecs_queries
    assert merged.series() == union.series()
    assert merged.series(public_only=True) == union.series(
        public_only=True)
