"""The registry merge algebra (``MetricsRegistry.merge``).

The sharded engine's correctness reduces to one algebraic property:
merging per-shard registries must equal the registry of a run that saw
the union of observations.  Counters/gauges sum (or take the max, for
state replicated in every shard), histograms merge exactly through
their moment accumulators, and the edge cases -- empty registries as
identity, NaN/inf rejected at the merge door just as ``observe``
rejects them at recording time -- are pinned here.
"""

import math
import pickle

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def _union_equivalent(split_observations, merged_observations):
    """Build (merged-from-parts, observed-as-union) registry pair."""
    parts = []
    for observations in split_observations:
        registry = MetricsRegistry()
        for name, value, weight in observations:
            registry.histogram(name).observe(value, weight)
        parts.append(registry)
    merged = MetricsRegistry()
    for part in parts:
        merged.merge(part)
    union = MetricsRegistry()
    for name, value, weight in merged_observations:
        union.histogram(name).observe(value, weight)
    return merged, union


class TestScalarMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("events").inc(3)
        b.counter("events").inc(4)
        b.counter("only_b").inc(2)
        merged = MetricsRegistry().merge(a).merge(b)
        assert merged.value("events") == 7.0
        assert merged.value("only_b") == 2.0

    def test_gauges_sum_by_default(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("load").set(1.5)
        b.gauge("load").set(2.25)
        merged = MetricsRegistry().merge(a).merge(b)
        assert merged.value("load") == 3.75

    def test_max_mode_for_replicated_state(self):
        """Replicated gauges (map version, roll-out day) must not
        multiply-count across shards."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("map.version", merge="max").set(7)
        b.gauge("map.version", merge="max").set(7)
        a.counter("maps.published", merge="max").inc(3)
        b.counter("maps.published", merge="max").inc(3)
        merged = MetricsRegistry().merge(a).merge(b)
        assert merged.value("map.version") == 7.0
        assert merged.value("maps.published") == 3.0

    def test_merge_mode_travels_with_source(self):
        """A fresh merge target needs no up-front declarations: the
        mode rides in on the source instruments."""
        a = MetricsRegistry()
        a.gauge("replicated", merge="max").set(5)
        merged = MetricsRegistry().merge(a)
        assert merged.gauge("replicated").merge == "max"

    def test_unknown_merge_mode_rejected(self):
        with pytest.raises(ValueError, match="merge mode"):
            MetricsRegistry().gauge("bad", merge="average")

    def test_equals_union_registry(self):
        """The headline property: shard-merged == union-observed."""
        shards = [MetricsRegistry() for _ in range(3)]
        for index, registry in enumerate(shards):
            registry.counter("sessions").inc(10 * (index + 1))
            registry.gauge("rollout.day", merge="max").set(13)
            for value in range(index + 2):
                registry.histogram("latency").observe(value + 0.5,
                                                      weight=2.0)
        merged = MetricsRegistry()
        for registry in shards:
            merged.merge(registry)

        union = MetricsRegistry()
        union.counter("sessions").inc(60)
        union.gauge("rollout.day", merge="max").set(13)
        for index in range(3):
            for value in range(index + 2):
                union.histogram("latency").observe(value + 0.5,
                                                   weight=2.0)
        assert merged.snapshot() == union.snapshot()


class TestHistogramMerge:
    def test_moments_add_exactly(self):
        a = Histogram("h")
        b = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            a.observe(value, weight=2.0)
        for value in (10.0, 20.0):
            b.observe(value, weight=0.5)
        a.merge(b)
        assert a.count == 5
        assert a.weight_total == 7.0
        assert a.total == pytest.approx(2.0 * 6.0 + 0.5 * 30.0)

    def test_merge_equals_union_quantiles(self):
        merged, union = _union_equivalent(
            split_observations=[
                [("h", float(v), 1.0) for v in range(50)],
                [("h", float(v), 3.0) for v in range(50, 90)],
            ],
            merged_observations=(
                [("h", float(v), 1.0) for v in range(50)]
                + [("h", float(v), 3.0) for v in range(50, 90)]),
        )
        assert merged.snapshot() == union.snapshot()

    def test_merge_compacts_past_max_samples(self):
        a = Histogram("h", max_samples=8)
        b = Histogram("h", max_samples=8)
        for value in range(8):
            a.observe(float(value))
            b.observe(float(value) + 0.25)
        a.merge(b)
        assert len(a._values) <= a.max_samples
        assert a.count == 16
        assert a.weight_total == 16.0
        # The weighted mean survives compaction exactly.
        assert a.mean == pytest.approx((sum(range(8)) * 2 + 8 * 0.25) / 16)

    def test_nonfinite_accumulators_rejected(self):
        poisoned = Histogram("h")
        poisoned.total = float("nan")
        target = Histogram("h")
        target.observe(1.0)
        with pytest.raises(ValueError, match="non-finite"):
            target.merge(poisoned)
        assert target.count == 1  # untouched by the failed merge

    def test_inf_weight_total_rejected(self):
        poisoned = Histogram("h")
        poisoned.weight_total = math.inf
        with pytest.raises(ValueError, match="non-finite"):
            Histogram("h").merge(poisoned)

    def test_nan_sample_rejected_before_any_mutation(self):
        poisoned = Histogram("h")
        poisoned.observe(1.0)
        poisoned._values[0] = float("nan")  # bypasses observe's guard
        target = Histogram("h")
        with pytest.raises(ValueError, match="non-finite sample"):
            target.merge(poisoned)
        assert target.count == 0

    def test_negative_weight_total_rejected(self):
        poisoned = Histogram("h")
        poisoned.weight_total = -1.0
        with pytest.raises(ValueError, match="negative"):
            Histogram("h").merge(poisoned)


class TestIdentityAndClone:
    def test_empty_registry_is_merge_identity(self):
        populated = MetricsRegistry()
        populated.counter("c").inc(5)
        populated.gauge("g", merge="max").set(2)
        populated.histogram("h").observe(1.0, 2.0)
        before = populated.to_json()
        populated.merge(MetricsRegistry())
        assert populated.to_json() == before

    def test_merge_into_empty_copies_other(self):
        source = MetricsRegistry()
        source.counter("c").inc(5)
        source.histogram("h").observe(3.0)
        merged = MetricsRegistry().merge(source)
        assert merged.to_json() == source.to_json()

    def test_empty_merge_empty_is_empty(self):
        merged = MetricsRegistry().merge(MetricsRegistry())
        assert merged.snapshot() == {"counters": {}, "gauges": {},
                                     "histograms": {}}

    def test_clone_detaches_state_and_collectors(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.0)
        pulse = {"beats": 0}

        def collector(reg):
            pulse["beats"] += 1
            reg.gauge("live").set(pulse["beats"])

        registry.register_collector(collector)
        clone = registry.clone()
        beats_at_clone = pulse["beats"]
        # Mutating either side never leaks to the other.
        registry.counter("c").inc(10)
        clone.histogram("h").observe(99.0)
        assert clone.value("c") == 2.0
        assert registry._histograms["h"].count == 1
        # The clone captured collector output but not the collector.
        assert clone.value("live") == beats_at_clone
        clone.collect()
        assert pulse["beats"] == beats_at_clone

    def test_pickle_roundtrip_drops_collectors(self):
        registry = MetricsRegistry()
        registry.counter("c", merge="max").inc(4)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0, 3.0)
        registry.register_collector(lambda reg: None)
        registry.collect()
        thawed = pickle.loads(pickle.dumps(registry))
        assert thawed.to_json() == registry.to_json()
        assert thawed._collectors == []
        assert thawed.counter("c").merge == "max"
