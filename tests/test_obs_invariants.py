"""Cross-cutting observability invariants.

Three pinned identities:

* **Cache accounting** -- ``CacheStats.hits + misses == lookups`` holds
  under arbitrary randomized lookup/store/expiry workloads (every
  lookup is classified exactly once).
* **Trace RTT sum** -- a session's reported DNS time equals the stub
  hop RTT plus every upstream hop RTT in its trace, plus each timed-out
  hop's recorded backoff penalty (``penalty_ms``, defaulting to the
  base retry timer ``_TIMEOUT_PENALTY_MS``).
* **ECS share bounds** -- ``StatusReport.mapping_ecs_share`` stays in
  [0, 1], including on a world with zero resolutions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reporting import build_status_report
from repro.dnsproto.message import ResourceRecord
from repro.dnsproto.rdata import ARdata
from repro.dnsproto.types import QType
from repro.dnssrv.cache import EcsAwareCache
from repro.dnssrv.recursive import _TIMEOUT_PENALTY_MS
from repro.dnssrv.stub import StubResolver
from repro.net.ipv4 import parse_ipv4, prefix_of
from repro.obs.dump import run_scenario
from repro.api import build_world
from repro.simulation.world import WorldConfig

names = st.sampled_from(["a.example", "b.example", "c.example"])
clients = st.integers(min_value=0x01000000, max_value=0x01FFFFFF)
scope_lens = st.sampled_from([None, 16, 24])
operations = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), names, clients),
        st.tuples(st.just("store"), names, scope_lens),
    ),
    max_size=150,
)


class TestCacheStatsInvariant:
    @given(operations)
    @settings(max_examples=100, deadline=None)
    def test_hits_plus_misses_equals_lookups(self, ops):
        cache = EcsAwareCache(max_entries=4)
        record = ResourceRecord("x", QType.A, 5,
                                ARdata(parse_ipv4("9.9.9.9")))
        lookups_issued = 0
        now = 0.0
        for op in ops:
            now += 1.7  # entries (ttl 5) expire under sustained load
            if op[0] == "lookup":
                cache.lookup(op[1], QType.A, op[2], now)
                lookups_issued += 1
            else:
                scope = (None if op[2] is None
                         else prefix_of(0x01000000, op[2]))
                cache.store(op[1], QType.A, scope, (record,), 5, now)
            stats = cache.stats.as_dict()
            assert stats["hits"] + stats["misses"] == stats["lookups"]
            assert stats["lookups"] == lookups_issued
            assert all(value >= 0 for value in stats.values())
            assert len(cache) <= cache.max_entries


def _hop_rtt_sum(root) -> float:
    """Reconstruct resolution latency from a trace per the timeout
    accounting convention documented in repro.obs.tracing."""
    total = 0.0
    for stub_hop in root.find("stub.hop"):
        total += stub_hop.attrs["rtt_ms"]
        if stub_hop.attrs.get("timeout"):
            total += stub_hop.attrs.get("penalty_ms", 0.0)
    for hop in root.find("hop"):
        total += hop.attrs["rtt_ms"]
        if hop.attrs.get("timeout"):
            total += hop.attrs.get("penalty_ms", _TIMEOUT_PENALTY_MS)
    return total


class TestTraceRttSum:
    @pytest.fixture(scope="class")
    def world(self):
        return run_scenario(scale="tiny", sessions=10, seed=11,
                            ecs=True)

    def test_session_dns_time_equals_hop_sum(self, world):
        assert world.obs.tracer.traces, "scenario produced no traces"
        for root in world.obs.tracer.traces:
            dns = root.first("dns")
            assert dns is not None
            assert dns.attrs["dns_ms"] == pytest.approx(
                _hop_rtt_sum(root), abs=1e-9)

    def test_recursive_rtt_equals_its_hop_sum(self, world):
        for root in world.obs.tracer.traces:
            for recursive in root.find("recursive"):
                hops = recursive.find("hop")
                expected = sum(h.attrs["rtt_ms"] for h in hops) + sum(
                    h.attrs.get("penalty_ms", _TIMEOUT_PENALTY_MS)
                    for h in hops if h.attrs.get("timeout"))
                assert recursive.attrs["upstream_rtt_ms"] == (
                    pytest.approx(expected, abs=1e-9))

    def test_invariant_holds_across_timeouts(self):
        """Kill the LDNS's preferred CDN authority so the resolution
        path includes a timed-out hop plus a failover."""
        world = build_world(WorldConfig.tiny())
        provider = world.catalog.providers[0]
        resolver_id = sorted(world.ldns_registry)[0]
        ldns = world.ldns_registry[resolver_id]
        preferred = min(
            world.nameservers,
            key=lambda ns: world.network.rtt_ms(ldns.ip, ns.ip))
        preferred.fail()

        client_ip = world.internet.blocks[0].prefix.network | 9
        stub = StubResolver(client_ip, world.network)
        tracer = world.obs.tracer
        with tracer.trace("probe") as root:
            resolution = stub.resolve(provider.domain, ldns, now=0.0)
        assert resolution.ok
        hops = root.find("hop")
        assert any(h.attrs.get("timeout") for h in hops), (
            "expected a timed-out hop after killing the preferred "
            "authority")
        assert ldns.failovers >= 1
        assert resolution.dns_time_ms == pytest.approx(
            _hop_rtt_sum(root), abs=1e-9)


class TestEcsShareBounds:
    def test_zero_resolutions_edge(self):
        world = build_world(WorldConfig.tiny())
        report = build_status_report(world)
        assert report.mapping_resolutions == 0
        assert report.mapping_ecs_share == 0.0
        assert report.decision_cache_hit_rate == 0.0
        assert report.ldns_cache_hit_rate == 0.0

    def test_share_in_unit_interval_after_mixed_traffic(self):
        world = run_scenario(scale="tiny", sessions=6, seed=11,
                             ecs=True)
        report = build_status_report(world)
        assert report.mapping_resolutions > 0
        assert 0.0 <= report.mapping_ecs_share <= 1.0
        assert 0.0 <= report.decision_cache_hit_rate <= 1.0
        assert 0.0 <= report.ldns_cache_hit_rate <= 1.0
