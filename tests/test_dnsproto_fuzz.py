"""Fuzz tests: the codec and servers must never crash on hostile bytes.

A resolver on the open Internet parses attacker-controlled datagrams;
the only acceptable failure mode is :class:`WireFormatError` (servers
translate it to FORMERR).  Hypothesis drives random and
mutated-valid-message inputs through the decoder and the server entry
points.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.dnsproto import (
    ClientSubnetOption,
    Message,
    WireFormatError,
    make_query,
)
from repro.dnssrv import AuthoritativeServer, StaticZone, WhoAmIZone
from repro.net.ipv4 import Prefix


def valid_wire() -> bytes:
    ecs = ClientSubnetOption(Prefix.parse("10.20.30.0/24"))
    return make_query("a.long-ish-name.cdn.example", msg_id=7,
                      ecs=ecs).encode()


class TestDecoderFuzz:
    @given(st.binary(max_size=256))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            Message.decode(data)
        except WireFormatError:
            pass  # the only acceptable exception

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=300)
    def test_single_byte_mutations(self, position, value):
        data = bytearray(valid_wire())
        if position >= len(data):
            position = position % len(data)
        data[position] = value
        try:
            Message.decode(bytes(data))
        except WireFormatError:
            pass

    @given(st.integers(min_value=0, max_value=80))
    @settings(max_examples=100)
    def test_truncations(self, keep):
        data = valid_wire()[:keep]
        try:
            Message.decode(data)
        except WireFormatError:
            pass

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=200)
    def test_appended_garbage_rejected(self, garbage):
        data = valid_wire() + garbage
        with pytest.raises(WireFormatError):
            Message.decode(data)

    @example(b"\xc0\x00" * 8)
    @given(st.binary(max_size=32))
    def test_pointer_bombs_terminate(self, tail):
        # Header + question-section bytes full of compression pointers.
        data = b"\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00" + tail
        try:
            Message.decode(data)
        except WireFormatError:
            pass


class TestServerFuzz:
    @given(st.binary(max_size=128))
    @settings(max_examples=200)
    def test_authoritative_survives_garbage(self, data):
        server = AuthoritativeServer(1)
        server.attach_zone("cdn.example", StaticZone())
        server.attach_zone("whoami.cdn.example", WhoAmIZone())
        out = server.handle_query(data, src_ip=42, now=0.0)
        # Either no reply (undecodable id) or a well-formed message.
        if out is not None:
            Message.decode(out)

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=200)
    def test_authoritative_survives_mutations(self, position, value):
        server = AuthoritativeServer(1)
        server.attach_zone("cdn.example", StaticZone())
        data = bytearray(valid_wire())
        data[position % len(data)] = value
        out = server.handle_query(bytes(data), src_ip=42, now=0.0)
        if out is not None:
            Message.decode(out)
