"""Property-based invariants on core data structures.

Hypothesis drives randomized workloads at the invariants the mapping
system relies on: LRU cache accounting, rendezvous-hash stability, and
ECS cache scope exclusivity.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.server import EdgeServer, LruCache
from repro.core.loadbalancer import LoadBalancerConfig, LocalLoadBalancer
from repro.cdn.deployments import Cluster
from repro.dnsproto.message import ResourceRecord
from repro.dnsproto.rdata import ARdata
from repro.dnsproto.types import QType
from repro.dnssrv.cache import EcsAwareCache
from repro.net.geometry import GeoPoint
from repro.net.ipv4 import prefix_of

keys = st.text(alphabet="abcdef", min_size=1, max_size=4)
sizes = st.integers(min_value=1, max_value=64)


class TestLruInvariants:
    @given(st.lists(st.tuples(keys, sizes), max_size=120))
    @settings(max_examples=150)
    def test_used_bytes_never_exceeds_capacity(self, operations):
        cache = LruCache(128)
        for key, size in operations:
            cache.access(key, size)
            assert 0 <= cache.used_bytes <= cache.capacity_bytes
            assert len(cache) <= cache.capacity_bytes

    @given(st.lists(st.tuples(keys, sizes), max_size=120))
    @settings(max_examples=100)
    def test_accounting_matches_contents(self, operations):
        cache = LruCache(256)
        sizes_seen = {}
        for key, size in operations:
            cache.access(key, size)
            sizes_seen[key] = size
        # used_bytes equals the sum of sizes of the keys still present
        # (each key was always inserted at one fixed size here... sizes
        # may differ across accesses, so recompute from the cache view).
        total = sum(size for key, size in cache._entries.items())
        assert total == cache.used_bytes

    @given(st.lists(st.tuples(keys, sizes), min_size=1, max_size=120))
    @settings(max_examples=100)
    def test_hits_plus_misses_equals_accesses(self, operations):
        cache = LruCache(128)
        for key, size in operations:
            cache.access(key, size)
        assert cache.stats.requests == len(operations)


class TestRendezvousInvariants:
    def make_cluster(self, n_servers):
        cluster = Cluster(cluster_id="c", city="X", country="US",
                          geo=GeoPoint(0, 0), asn=1)
        for i in range(n_servers):
            cluster.servers.append(
                EdgeServer(ip=1000 + i, cluster_id="c"))
        return cluster

    @given(st.integers(min_value=2, max_value=12),
           st.text(alphabet="xyz", min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_choice_subset_of_live(self, n_servers, provider):
        cluster = self.make_cluster(n_servers)
        llb = LocalLoadBalancer(LoadBalancerConfig(servers_per_answer=2))
        chosen = llb.pick_servers(cluster, provider)
        assert len(chosen) == min(2, n_servers)
        assert all(s in cluster.servers for s in chosen)

    @given(st.integers(min_value=3, max_value=12),
           st.text(alphabet="xyz", min_size=1, max_size=6),
           st.integers(min_value=0, max_value=11))
    @settings(max_examples=100)
    def test_minimal_disruption(self, n_servers, provider, kill_index):
        """Killing one server changes at most the slot it occupied."""
        cluster = self.make_cluster(n_servers)
        llb = LocalLoadBalancer(LoadBalancerConfig(servers_per_answer=2))
        before = llb.pick_servers(cluster, provider)
        victim = cluster.servers[kill_index % n_servers]
        victim.fail()
        after = llb.pick_servers(cluster, provider)
        survivors_before = [s for s in before if s is not victim]
        for survivor in survivors_before:
            assert survivor in after
        victim.recover()


class TestEcsCacheInvariants:
    addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)

    @given(st.lists(st.tuples(addresses,
                              st.sampled_from([16, 20, 24])),
                    min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_scoped_lookup_never_crosses_scopes(self, inserts):
        """A lookup for address A must never return an entry whose
        scope does not contain A."""
        cache = EcsAwareCache()
        record = ResourceRecord("x.example", QType.A, 60, ARdata(1))
        for addr, scope_len in inserts:
            cache.store("x.example", QType.A,
                        prefix_of(addr, scope_len), (record,), 60, 0)
        rng = random.Random(1)
        for _ in range(30):
            probe = rng.randrange(1 << 32)
            entry = cache.lookup("x.example", QType.A, probe, now=1)
            if entry is not None and entry.scope is not None:
                assert entry.scope.contains(probe)

    @given(st.lists(st.tuples(addresses,
                              st.sampled_from([16, 20, 24])),
                    min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_size_counts_distinct_scopes(self, inserts):
        cache = EcsAwareCache()
        record = ResourceRecord("x.example", QType.A, 60, ARdata(1))
        scopes = set()
        for addr, scope_len in inserts:
            scope = prefix_of(addr, scope_len)
            scopes.add(scope)
            cache.store("x.example", QType.A, scope, (record,), 60, 0)
        assert len(cache) == len(scopes)
