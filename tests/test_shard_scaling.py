"""Unit tests for the worker-scaling bench (repro.bench.shard_scaling)."""

import json

from repro.bench.shard_scaling import (
    build_payload,
    host_fingerprint,
    run_curve,
    scaling_spec,
)


def _row(workers, wall_s):
    return {"wall_s": wall_s, "calls": 1000, "scale": "large",
            "workers": workers, "n_shards": 8,
            "sessions_per_s": round(1000 / wall_s, 1)}


class TestPayload:
    def test_schema_and_scaling_ratios(self):
        payload = build_payload({1: _row(1, 10.0), 2: _row(2, 5.0),
                                 4: _row(4, 4.0)})
        assert payload["schema"] == "bench/v2"
        assert sorted(payload["benches"]) == [
            "large/shard_day_loop_w1", "large/shard_day_loop_w2",
            "large/shard_day_loop_w4"]
        assert payload["speedups"] == {"large/shard_scaling_w2": 2.0,
                                       "large/shard_scaling_w4": 2.5}
        assert payload["host"]["cpus"] == host_fingerprint()["cpus"]

    def test_no_serial_baseline_means_no_ratios(self):
        payload = build_payload({2: _row(2, 5.0)})
        assert payload["speedups"] == {}

    def test_scaling_spec_defaults_to_the_large_scale(self):
        spec = scaling_spec()
        assert spec.rollout.sessions_per_day >= 1_000_000
        assert spec.rollout.n_days == 1
        assert spec.monitor is False

    def test_scaling_spec_sessions_override(self):
        assert scaling_spec(500).rollout.sessions_per_day == 500


class TestSmoke:
    def test_single_worker_curve_runs(self):
        curve = run_curve(scaling_spec(64), [1], n_shards=4)
        assert curve[1]["calls"] == 64
        assert curve[1]["wall_s"] > 0
        assert curve[1]["n_shards"] == 4


class TestCheckedInSnapshot:
    def test_bench_pr6_records_the_large_curve(self):
        with open("BENCH_PR6.json") as handle:
            doc = json.load(handle)
        assert doc["schema"] == "bench/v2"
        serial = doc["benches"]["large/shard_day_loop_w1"]
        assert serial["calls"] >= 1_000_000
        assert {"cpus", "platform", "python"} <= set(doc["host"])
        for workers in (2, 4):
            assert f"large/shard_day_loop_w{workers}" in doc["benches"]
            assert f"large/shard_scaling_w{workers}" in doc["speedups"]
