"""Unit tests for the worker-scaling bench (repro.bench.shard_scaling)."""

import json

from repro.bench.shard_scaling import (
    attribution_pass,
    build_payload,
    host_fingerprint,
    run_curve,
    scaling_spec,
)


def _row(workers, wall_s):
    return {"wall_s": wall_s, "calls": 1000, "scale": "large",
            "workers": workers, "n_shards": 8,
            "sessions_per_s": round(1000 / wall_s, 1)}


class TestPayload:
    def test_schema_and_scaling_ratios(self):
        payload = build_payload({1: _row(1, 10.0), 2: _row(2, 5.0),
                                 4: _row(4, 4.0)})
        assert payload["schema"] == "bench/v3"
        assert sorted(payload["benches"]) == [
            "large/shard_day_loop_w1", "large/shard_day_loop_w2",
            "large/shard_day_loop_w4"]
        assert payload["speedups"] == {"large/shard_scaling_w2": 2.0,
                                       "large/shard_scaling_w4": 2.5}
        assert payload["host"]["cpus"] == host_fingerprint()["cpus"]

    def test_no_serial_baseline_means_no_ratios(self):
        payload = build_payload({2: _row(2, 5.0)})
        assert payload["speedups"] == {}

    def test_attribution_section_merges_into_payload(self):
        attribution = {"phases": {"shard.plan": {"calls": 1}},
                       "hotspots": [{"phase": "x"}]}
        payload = build_payload({1: _row(1, 10.0)}, attribution)
        assert payload["phases"] == attribution["phases"]
        assert payload["hotspots"] == attribution["hotspots"]

    def test_no_profile_omits_attribution_keys(self):
        payload = build_payload({1: _row(1, 10.0)}, None)
        assert "phases" not in payload
        assert "hotspots" not in payload

    def test_scaling_spec_defaults_to_the_large_scale(self):
        spec = scaling_spec()
        assert spec.rollout.sessions_per_day >= 1_000_000
        assert spec.rollout.n_days == 1
        assert spec.monitor is False

    def test_scaling_spec_sessions_override(self):
        assert scaling_spec(500).rollout.sessions_per_day == 500


class TestSmoke:
    def test_single_worker_curve_runs(self):
        curve = run_curve(scaling_spec(64), [1], n_shards=4)
        assert curve[1]["calls"] == 64
        assert curve[1]["wall_s"] > 0
        assert curve[1]["n_shards"] == 4

    def test_attribution_pass_names_engine_phases(self):
        attribution = attribution_pass(scaling_spec(64), n_shards=4,
                                       hotspots=5)
        assert "shard.execute" in attribution["phases"]
        assert any(key.endswith("rollout.day")
                   for key in attribution["phases"])
        assert len(attribution["hotspots"]) == 5
        names = {row["phase"] for row in attribution["hotspots"]}
        assert names & {"world.build", "session", "dns.recursive",
                        "mapping.decide", "rollout.day"}


class TestCheckedInSnapshot:
    def test_bench_pr6_records_the_large_curve(self):
        with open("BENCH_PR6.json") as handle:
            doc = json.load(handle)
        assert doc["schema"] == "bench/v2"
        serial = doc["benches"]["large/shard_day_loop_w1"]
        assert serial["calls"] >= 1_000_000
        assert {"cpus", "platform", "python"} <= set(doc["host"])
        for workers in (2, 4):
            assert f"large/shard_day_loop_w{workers}" in doc["benches"]
            assert f"large/shard_scaling_w{workers}" in doc["speedups"]

    def test_bench_pr8_carries_phase_attribution(self):
        """The PR8 snapshot is the first bench/v3 entry: the scaling
        curve plus a profiled attribution pass.  The acceptance bar is
        that its hotspot table *names* the top self-time phases of the
        large scale, so drift here means the attribution broke."""
        with open("BENCH_PR8.json") as handle:
            doc = json.load(handle)
        assert doc["schema"] == "bench/v3"
        assert {"cpus", "cpus_available", "platform",
                "python"} <= set(doc["host"])
        assert "shard.execute" in doc["phases"]
        assert any(key.endswith("rollout.day") for key in doc["phases"])
        top = [row["phase"] for row in doc["hotspots"][:3]]
        assert len(top) == 3
        assert set(top) <= {row["phase"] for row in doc["hotspots"]}
        # The big self-time sinks must be engine phases, not the
        # coordination scaffolding.
        assert set(top) & {"world.build", "session", "dns.recursive",
                           "dns.stub", "mapping.decide", "rollout.day",
                           "scorer.score_targets", "shard.merge"}
