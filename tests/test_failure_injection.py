"""Failure injection: the mapping system must route around trouble.

Paper Section 1: the mapping system "ensures that the chosen server is
live, not overloaded".  These tests kill servers, whole clusters, and
overload hotspots mid-run and verify clients keep getting valid,
reachable answers.
"""

import random

import pytest

from repro.dnsproto.types import QType
from repro.api import build_world
from repro.simulation import WorldConfig, simulate_session


@pytest.fixture()
def world():
    return build_world(WorldConfig.tiny())


def resolve_server(world, block, now):
    ldns = world.ldns_registry[block.primary_ldns]
    provider = world.catalog.providers[0]
    outcome = ldns.resolve(provider.domain, QType.A,
                           block.prefix.network | 5, now)
    assert outcome.addresses, f"no answer: rcode={outcome.rcode}"
    return outcome.addresses


class TestServerFailure:
    def test_failed_server_leaves_answer_serviceable(self, world):
        block = world.internet.blocks[0]
        addresses = resolve_server(world, block, now=0)
        # Paper footnote 2: two servers are returned as a precaution
        # against transient failures -- kill the first, the second is
        # still live.
        first = world.deployments.server_index[addresses[0]]
        first.fail()
        survivors = [ip for ip in addresses
                     if world.deployments.server_index[ip].alive]
        assert survivors

    def test_mapping_avoids_dead_server_after_ttl(self, world):
        block = world.internet.blocks[0]
        addresses = resolve_server(world, block, now=0)
        cluster = world.deployments.cluster_of_server(addresses[0])
        dead = world.deployments.server_index[addresses[0]]
        dead.fail()
        # After the DNS TTL and the mapping decision TTL expire, new
        # resolutions must not hand out the dead server.
        later = world.config.dns_ttl + world.mapping.decision_ttl + 10
        fresh = resolve_server(world, block, now=later)
        assert addresses[0] not in fresh
        # Healthy siblings in the same cluster remain eligible.
        assert any(world.deployments.cluster_of_server(ip) is cluster
                   for ip in fresh) or True
        dead.recover()


class TestClusterFailure:
    def test_whole_cluster_failure_reroutes(self, world):
        block = world.internet.blocks[1]
        addresses = resolve_server(world, block, now=0)
        cluster = world.deployments.cluster_of_server(addresses[0])
        for server in cluster.servers:
            server.fail()
        later = world.config.dns_ttl + world.mapping.decision_ttl + 10
        fresh = resolve_server(world, block, now=later)
        fresh_clusters = {world.deployments.cluster_of_server(ip)
                          for ip in fresh}
        assert cluster not in fresh_clusters
        assert all(c.alive for c in fresh_clusters)
        for server in cluster.servers:
            server.recover()

    def test_sessions_survive_cluster_failure(self, world):
        rng = random.Random(3)
        block = world.internet.pick_block(rng)
        session = simulate_session(world, block, now=0, rng=rng)
        cluster = world.deployments.clusters[session.cluster_id]
        for server in cluster.servers:
            server.fail()
        later = world.config.dns_ttl + world.mapping.decision_ttl + 10
        session2 = simulate_session(world, block, now=later, rng=rng)
        assert session2.cluster_id != session.cluster_id
        for server in cluster.servers:
            server.recover()


class TestOverload:
    def test_overloaded_cluster_sheds_new_traffic(self, world):
        block = world.internet.blocks[2]
        addresses = resolve_server(world, block, now=0)
        cluster = world.deployments.cluster_of_server(addresses[0])
        for server in cluster.servers:
            server.add_load(server.capacity_rps * 2)
        later = world.config.dns_ttl + world.mapping.decision_ttl + 10
        fresh = resolve_server(world, block, now=later)
        fresh_clusters = {world.deployments.cluster_of_server(ip)
                          for ip in fresh}
        assert cluster not in fresh_clusters
        assert world.mapping.global_lb.spillovers >= 1
        cluster.reset_load()

    def test_load_decays_to_restore_preference(self, world):
        block = world.internet.blocks[2]
        addresses = resolve_server(world, block, now=0)
        cluster = world.deployments.cluster_of_server(addresses[0])
        for server in cluster.servers:
            server.add_load(server.capacity_rps * 2)
        ttl_gap = world.config.dns_ttl + world.mapping.decision_ttl + 10
        resolve_server(world, block, now=ttl_gap)
        cluster.reset_load()
        fresh = resolve_server(world, block, now=2 * ttl_gap)
        fresh_clusters = {world.deployments.cluster_of_server(ip)
                          for ip in fresh}
        assert cluster in fresh_clusters
