"""Unit tests for the Figure 13-20 builders over synthetic RUM data.

These exercise the daily-mean and CDF figure machinery without
building a world: a hand-crafted roll-out result with a known step
change in each metric must produce the right summaries and pass/fail
the right checks.
"""

import datetime

import pytest

from repro.experiments.rollout_figs import (
    cdf_figure,
    daily_mean_figure,
    window_means,
)
from repro.experiments.shared import _rollout_cache
from repro.measurement.querylog import QueryLog
from repro.measurement.rum import RumBeacon, RumCollector
from repro.net.ipv4 import Prefix
from repro.simulation.rollout import RolloutConfig, RolloutResult


def synthetic_rollout(improvement: float = 2.0) -> RolloutResult:
    """A 60-day roll-out whose metrics improve by ``improvement`` after
    day 40 for the high-expectation group (1.05x for low)."""
    config = RolloutConfig(
        start_date=datetime.date(2014, 3, 1),
        end_date=datetime.date(2014, 4, 29),
        rollout_start=datetime.date(2014, 3, 31),
        rollout_end=datetime.date(2014, 4, 9),
        sessions_per_day=10,
    )
    rum = RumCollector()
    cutover = config.day_index(config.rollout_end)
    for day in range(config.n_days):
        for i in range(10):
            for high in (True, False):
                factor = improvement if high else 1.05
                scale = 1.0 / factor if day > cutover else 1.0
                jitter = 1.0 + 0.02 * ((i % 5) - 2)
                rum.record(RumBeacon(
                    day=day,
                    block=Prefix.parse("1.0.0.0/24"),
                    country="IN" if high else "DE",
                    domain="www.x.example",
                    high_expectation=high,
                    via_public_resolver=True,
                    dns_ms=30.0,
                    rtt_ms=200.0 * scale * jitter,
                    ttfb_ms=1000.0 * scale * jitter,
                    download_ms=300.0 * scale * jitter,
                    mapping_distance_miles=2000.0 * scale * jitter,
                    server_ip=1,
                    ecs_used=day > cutover,
                ))
    return RolloutResult(config=config, rum=rum,
                         query_log=QueryLog(authoritative_ips=set()))


@pytest.fixture()
def patched_rollout(monkeypatch):
    result = synthetic_rollout()
    _rollout_cache["synthetic"] = result
    yield result
    _rollout_cache.pop("synthetic", None)


class TestWindowMeans:
    def test_before_after_split(self, patched_rollout):
        before, after = window_means(patched_rollout, "rtt_ms", True)
        assert before == pytest.approx(200.0, rel=0.05)
        assert after == pytest.approx(100.0, rel=0.05)


class TestDailyMeanFigure:
    def test_passing_checks(self, patched_rollout):
        result = daily_mean_figure(
            "figT", "t", "claim", "synthetic",
            metric="mapping_distance_miles",
            min_improvement_factor=1.8)
        assert result.passed
        assert result.summary["high_improvement_factor"] == (
            pytest.approx(2.0, rel=0.05))

    def test_failing_threshold(self, patched_rollout):
        result = daily_mean_figure(
            "figT", "t", "claim", "synthetic",
            metric="rtt_ms",
            min_improvement_factor=5.0)
        assert not result.passed

    def test_rows_cover_every_day(self, patched_rollout):
        result = daily_mean_figure(
            "figT", "t", "claim", "synthetic", metric="rtt_ms",
            min_improvement_factor=1.5)
        assert len(result.rows) == patched_rollout.config.n_days


class TestCdfFigure:
    def test_cdf_shifts_left(self, patched_rollout):
        result = cdf_figure(
            "figT", "t", "claim", "synthetic",
            metric="download_ms",
            grid=[50, 100, 150, 200, 250, 300, 350],
            p75_min_factor=1.5)
        assert result.passed
        assert result.summary["high_p75_before"] > (
            result.summary["high_p75_after"])

    def test_p90_check_optional(self, patched_rollout):
        result = cdf_figure(
            "figT", "t", "claim", "synthetic",
            metric="download_ms", grid=[100, 300],
            p75_min_factor=1.5, p90_min_factor=50.0)
        assert not result.passed  # absurd p90 requirement fails
