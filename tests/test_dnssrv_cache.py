"""Tests for the ECS-aware cache (RFC 7871 scope semantics)."""

import pytest

from repro.dnsproto.message import ResourceRecord
from repro.dnsproto.rdata import ARdata
from repro.dnsproto.types import QType
from repro.dnssrv.cache import EcsAwareCache, client_subnet_of
from repro.net.ipv4 import Prefix, parse_ipv4


def a_records(addr="1.2.3.4", ttl=60, name="foo.net"):
    return (ResourceRecord(name, QType.A, ttl, ARdata(parse_ipv4(addr))),)


CLIENT_A = parse_ipv4("9.9.9.10")       # 9.9.9.0/24
CLIENT_B = parse_ipv4("9.9.9.200")      # same /24
CLIENT_C = parse_ipv4("9.9.42.1")       # different /24, same /16
CLIENT_D = parse_ipv4("99.0.0.1")       # different /8


class TestScopedLookup:
    def test_global_entry_matches_everyone(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records(), 60, now=0)
        for client in (CLIENT_A, CLIENT_C, CLIENT_D, None):
            assert cache.lookup("foo.net", QType.A, client, 1) is not None

    def test_scoped_entry_matches_only_its_block(self):
        cache = EcsAwareCache()
        scope = Prefix.parse("9.9.9.0/24")
        cache.store("foo.net", QType.A, scope, a_records(), 60, now=0)
        assert cache.lookup("foo.net", QType.A, CLIENT_A, 1) is not None
        assert cache.lookup("foo.net", QType.A, CLIENT_B, 1) is not None
        assert cache.lookup("foo.net", QType.A, CLIENT_C, 1) is None
        assert cache.lookup("foo.net", QType.A, CLIENT_D, 1) is None

    def test_scoped_entry_never_matches_clientless_lookup(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, Prefix.parse("9.9.9.0/24"),
                    a_records(), 60, now=0)
        assert cache.lookup("foo.net", QType.A, None, 1) is None

    def test_longest_scope_wins(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records("1.1.1.1"), 60, 0)
        cache.store("foo.net", QType.A, Prefix.parse("9.9.0.0/16"),
                    a_records("2.2.2.2"), 60, 0)
        cache.store("foo.net", QType.A, Prefix.parse("9.9.9.0/24"),
                    a_records("3.3.3.3"), 60, 0)
        entry = cache.lookup("foo.net", QType.A, CLIENT_A, 1)
        assert str(entry.records[0].rdata) == "3.3.3.3"
        entry = cache.lookup("foo.net", QType.A, CLIENT_C, 1)
        assert str(entry.records[0].rdata) == "2.2.2.2"
        entry = cache.lookup("foo.net", QType.A, CLIENT_D, 1)
        assert str(entry.records[0].rdata) == "1.1.1.1"

    def test_distinct_names_isolated(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records(), 60, 0)
        assert cache.lookup("bar.net", QType.A, CLIENT_A, 1) is None

    def test_distinct_types_isolated(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records(), 60, 0)
        assert cache.lookup("foo.net", QType.CNAME, CLIENT_A, 1) is None


class TestExpiry:
    def test_entry_expires_at_ttl(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records(ttl=60), 60, now=0)
        assert cache.lookup("foo.net", QType.A, CLIENT_A, 59.9) is not None
        assert cache.lookup("foo.net", QType.A, CLIENT_A, 60.0) is None

    def test_aged_records_ttl_decreases(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records(ttl=60), 60, now=0)
        entry = cache.lookup("foo.net", QType.A, CLIENT_A, 42)
        assert entry.aged_records(42)[0].ttl == 18

    def test_expired_entries_counted(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records(), 10, now=0)
        cache.lookup("foo.net", QType.A, CLIENT_A, 100)
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            EcsAwareCache().store("x", QType.A, None, (), -1, 0)


class TestStoreSemantics:
    def test_same_scope_replaces(self):
        cache = EcsAwareCache()
        scope = Prefix.parse("9.9.9.0/24")
        cache.store("foo.net", QType.A, scope, a_records("1.1.1.1"), 60, 0)
        cache.store("foo.net", QType.A, scope, a_records("2.2.2.2"), 60, 5)
        assert len(cache) == 1
        entry = cache.lookup("foo.net", QType.A, CLIENT_A, 6)
        assert str(entry.records[0].rdata) == "2.2.2.2"

    def test_different_scopes_accumulate(self):
        """The paper's query-inflation driver: one name, many entries."""
        cache = EcsAwareCache()
        for third_octet in range(10):
            scope = Prefix.parse(f"9.9.{third_octet}.0/24")
            cache.store("foo.net", QType.A, scope, a_records(), 60, 0)
        assert len(cache) == 10
        assert cache.scope_count("foo.net", QType.A, now=1) == 10

    def test_scope_count_ignores_dead_entries(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, Prefix.parse("9.9.9.0/24"),
                    a_records(), 10, 0)
        cache.store("foo.net", QType.A, Prefix.parse("9.9.8.0/24"),
                    a_records(), 100, 0)
        assert cache.scope_count("foo.net", QType.A, now=50) == 1

    def test_eviction_bounds_size(self):
        cache = EcsAwareCache(max_entries=10)
        for i in range(25):
            cache.store(f"name{i}.net", QType.A, None, a_records(),
                        60 + i, now=0)
        assert len(cache) <= 10
        assert cache.stats.evictions >= 15

    def test_eviction_prefers_earliest_expiry(self):
        cache = EcsAwareCache(max_entries=2)
        cache.store("short.net", QType.A, None, a_records(), 10, 0)
        cache.store("long.net", QType.A, None, a_records(), 1000, 0)
        cache.store("mid.net", QType.A, None, a_records(), 100, 0)
        assert cache.lookup("short.net", QType.A, None, 1) is None
        assert cache.lookup("long.net", QType.A, None, 1) is not None

    def test_flush(self):
        cache = EcsAwareCache()
        cache.store("foo.net", QType.A, None, a_records(), 60, 0)
        cache.flush()
        assert len(cache) == 0
        assert cache.lookup("foo.net", QType.A, None, 1) is None


class TestStats:
    def test_hit_and_miss_accounting(self):
        cache = EcsAwareCache()
        cache.lookup("foo.net", QType.A, CLIENT_A, 0)
        cache.store("foo.net", QType.A, None, a_records(), 60, 0)
        cache.lookup("foo.net", QType.A, CLIENT_A, 1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert EcsAwareCache().stats.hit_rate == 0.0


class TestClientSubnetOf:
    def test_default_slash24(self):
        assert client_subnet_of(parse_ipv4("1.2.3.77")) == Prefix.parse(
            "1.2.3.0/24")

    def test_custom_length(self):
        assert client_subnet_of(parse_ipv4("1.2.3.77"), 20) == Prefix.parse(
            "1.2.0.0/20")
