"""Unit tests for the monitor time-series layer (repro.obs.monitor.series)."""

import json

import pytest

from repro.obs.monitor.series import (
    TimeSeries,
    TimeSeriesStore,
    window_label_map,
)


class TestTimeSeries:
    def test_record_appends_and_len(self):
        series = TimeSeries("s")
        series.record(0, 1.0)
        series.record(1, 2.5)
        assert len(series) == 2
        assert series.steps == [0, 1]
        assert series.values == [1.0, 2.5]
        assert series.last() == 2.5

    def test_non_monotone_step_rejected(self):
        series = TimeSeries("s")
        series.record(3, 1.0)
        with pytest.raises(ValueError, match="monotone"):
            series.record(3, 2.0)
        with pytest.raises(ValueError, match="monotone"):
            series.record(2, 2.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            TimeSeries("s").record(0, float("nan"))

    def test_mismatched_init_lengths_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            TimeSeries("s", steps=[0, 1], values=[1.0])

    def test_last_on_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TimeSeries("s").last()

    def test_value_at_exact_step_or_default(self):
        series = TimeSeries("s", steps=[0, 2], values=[5.0, 9.0])
        assert series.value_at(2) == 9.0
        assert series.value_at(1) == 0.0
        assert series.value_at(1, default=-1.0) == -1.0

    def test_delta_first_point_is_first_raw_value(self):
        cumulative = TimeSeries("c", steps=[0, 1, 2],
                                values=[10.0, 25.0, 25.0])
        delta = cumulative.delta()
        assert delta.name == "c:delta"
        assert delta.steps == [0, 1, 2]
        assert delta.values == [10.0, 15.0, 0.0]

    def test_rate_divides_delta_by_step_seconds(self):
        cumulative = TimeSeries("c", steps=[0, 1], values=[86400.0, 259200.0])
        rate = cumulative.rate(86400.0)
        assert rate.name == "c:rate"
        assert rate.values == [1.0, 2.0]

    def test_rate_rejects_nonpositive_step(self):
        with pytest.raises(ValueError, match="positive"):
            TimeSeries("c").rate(0.0)

    def test_ewma_seeded_at_first_value(self):
        series = TimeSeries("s", steps=[0, 1, 2], values=[10.0, 0.0, 0.0])
        smoothed = series.ewma(alpha=0.5)
        assert smoothed.name == "s:ewma"
        assert smoothed.values == [10.0, 5.0, 2.5]

    def test_ewma_alpha_one_is_identity(self):
        series = TimeSeries("s", steps=[0, 1], values=[3.0, 7.0])
        assert series.ewma(alpha=1.0).values == [3.0, 7.0]

    def test_ewma_rejects_bad_alpha(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="alpha"):
                TimeSeries("s").ewma(alpha=alpha)

    def test_window_is_half_open(self):
        series = TimeSeries("s", steps=[0, 1, 2, 3],
                            values=[1.0, 2.0, 3.0, 4.0])
        assert series.window(1, 3) == [2.0, 3.0]
        assert series.window_mean(1, 3) == 2.5
        assert series.window_mean(10, 20) == 0.0

    def test_to_dict_rounds_floats(self):
        series = TimeSeries("s", steps=[0], values=[1.23456789])
        assert series.to_dict() == {"steps": [0], "values": [1.234568]}


class TestTimeSeriesStore:
    def test_record_creates_then_appends(self):
        store = TimeSeriesStore()
        store.record(0, "a", 1.0, help="first")
        store.record(1, "a", 2.0)
        assert "a" in store
        assert store.series("a").values == [1.0, 2.0]
        assert store.series("a").help == "first"

    def test_unknown_series_raises_but_get_returns_none(self):
        store = TimeSeriesStore()
        with pytest.raises(KeyError, match="unknown series"):
            store.series("missing")
        assert store.get("missing") is None

    def test_capture_flattens_snapshot(self):
        store = TimeSeriesStore()
        snapshot = {
            "counters": {"sessions": 10.0},
            "gauges": {"day": 3.0},
            "histograms": {"rtt": {"count": 4, "mean": 25.0, "p50": 20.0}},
        }
        store.capture(0, snapshot)
        assert store.names() == ["day", "rtt.count", "rtt.mean",
                                 "rtt.p50", "sessions"]
        assert store.series("rtt.p50").values == [20.0]

    def test_capture_twice_builds_series(self):
        store = TimeSeriesStore()
        store.capture(0, {"counters": {"c": 1.0}})
        store.capture(1, {"counters": {"c": 4.0}})
        assert store.delta("c").values == [1.0, 3.0]
        assert store.rate("c", 1.0).values == [1.0, 3.0]
        assert store.ewma("c", alpha=1.0).values == [1.0, 4.0]

    def test_to_dict_sorted_and_json_deterministic(self):
        store = TimeSeriesStore()
        store.record(0, "zeta", 1.0)
        store.record(0, "alpha", 2.0)
        doc = store.to_dict()
        assert list(doc) == ["alpha", "zeta"]
        assert store.to_json() == store.to_json()
        assert json.loads(store.to_json())["alpha"]["values"] == [2.0]


def test_window_label_map_sorted_lists():
    windows = {"during": (27, 46), "before": (0, 27), "after": (46, 61)}
    assert window_label_map(windows) == {
        "after": [46, 61], "before": [0, 27], "during": [27, 46]}
    assert list(window_label_map(windows)) == ["after", "before", "during"]
