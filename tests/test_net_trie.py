"""Unit and property tests for the radix trie (longest-prefix match)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import Prefix, parse_ipv4, prefix_of
from repro.net.trie import RadixTrie

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


def build(entries):
    trie = RadixTrie()
    for text, value in entries:
        trie.insert(Prefix.parse(text), value)
    return trie


class TestRadixTrie:
    def test_empty_lookup(self):
        trie = RadixTrie()
        assert trie.lookup(parse_ipv4("1.2.3.4")) is None
        assert len(trie) == 0

    def test_longest_prefix_wins(self):
        trie = build([("10.0.0.0/8", "big"), ("10.1.0.0/16", "mid"),
                      ("10.1.2.0/24", "small")])
        assert trie.lookup(parse_ipv4("10.1.2.3")) == "small"
        assert trie.lookup(parse_ipv4("10.1.9.9")) == "mid"
        assert trie.lookup(parse_ipv4("10.9.9.9")) == "big"
        assert trie.lookup(parse_ipv4("11.0.0.0")) is None

    def test_longest_match_returns_prefix(self):
        trie = build([("10.0.0.0/8", "big"), ("10.1.0.0/16", "mid")])
        match = trie.longest_match(parse_ipv4("10.1.2.3"))
        assert match == (Prefix.parse("10.1.0.0/16"), "mid")

    def test_default_route(self):
        trie = build([("0.0.0.0/0", "default"), ("10.0.0.0/8", "ten")])
        assert trie.lookup(parse_ipv4("9.9.9.9")) == "default"
        assert trie.lookup(parse_ipv4("10.0.0.1")) == "ten"

    def test_insert_replaces(self):
        trie = build([("10.0.0.0/8", "a")])
        trie.insert(Prefix.parse("10.0.0.0/8"), "b")
        assert trie.lookup(parse_ipv4("10.0.0.1")) == "b"
        assert len(trie) == 1

    def test_exact(self):
        trie = build([("10.0.0.0/8", "a")])
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == "a"
        assert trie.exact(Prefix.parse("10.0.0.0/16")) is None
        assert trie.exact(Prefix.parse("11.0.0.0/8")) is None

    def test_remove(self):
        trie = build([("10.0.0.0/8", "a"), ("10.1.0.0/16", "b")])
        assert trie.remove(Prefix.parse("10.1.0.0/16"))
        assert trie.lookup(parse_ipv4("10.1.0.1")) == "a"
        assert not trie.remove(Prefix.parse("10.1.0.0/16"))
        assert len(trie) == 1

    def test_host_routes(self):
        trie = build([("1.2.3.4/32", "host")])
        assert trie.lookup(parse_ipv4("1.2.3.4")) == "host"
        assert trie.lookup(parse_ipv4("1.2.3.5")) is None

    def test_items_sorted(self):
        trie = build([("10.1.0.0/16", 1), ("9.0.0.0/8", 2),
                      ("10.0.0.0/8", 3)])
        listed = list(trie.items())
        assert [str(p) for p, _ in listed] == [
            "9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]

    @given(st.lists(st.tuples(addresses,
                              st.integers(min_value=1, max_value=32)),
                    min_size=1, max_size=40),
           addresses)
    def test_matches_linear_scan(self, raw_entries, probe):
        """LPM result must equal a brute-force scan over all entries."""
        trie = RadixTrie()
        entries = {}
        for addr, length in raw_entries:
            prefix = prefix_of(addr, length)
            entries[prefix] = str(prefix)
            trie.insert(prefix, str(prefix))
        expected = None
        best_len = -1
        for prefix, value in entries.items():
            if prefix.contains(probe) and prefix.length > best_len:
                best_len = prefix.length
                expected = value
        assert trie.lookup(probe) == expected

    @given(st.lists(st.tuples(addresses,
                              st.integers(min_value=0, max_value=32)),
                    max_size=40))
    def test_size_tracks_unique_prefixes(self, raw_entries):
        trie = RadixTrie()
        unique = set()
        for addr, length in raw_entries:
            prefix = prefix_of(addr, length)
            unique.add(prefix)
            trie.insert(prefix, 0)
        assert len(trie) == len(unique)
