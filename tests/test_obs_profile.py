"""Engine self-profiler tests: tree mechanics, determinism, exports.

Three layers:

* unit tests of :mod:`repro.obs.profile` (phase stack, merge/graft
  algebra, config validation, the three export formats);
* engine integration: a profiled run populates the documented phase
  taxonomy and -- the load-bearing property -- perturbs *nothing*
  (identical registry/trace bytes with profiling on and off);
* cross-worker determinism: the deterministic view of a sharded
  profile is byte-identical for any worker count, pinned by
  ``tests/data/golden_profile.json`` (regenerate with
  ``REGEN_GOLDEN=1``; the wall-clock half is excluded by the schema's
  own ``timing_fields`` declaration, not by test-side filtering).
"""

import dataclasses
import datetime
import difflib
import json
import os
import pathlib

import pytest

from repro.api import ScenarioSpec, run
from repro.core.mapmaker.service import MapMakerConfig
from repro.obs.profile import (
    DISABLED_PROFILER,
    NULL_PHASE,
    PROFILE_SCHEMA,
    PhaseNode,
    PhaseProfiler,
    ProfileConfig,
    build_document,
    collapsed_stacks,
    deterministic_json,
    deterministic_view,
    export_tree,
    flatten_phases,
    hotspot_rows,
    render_hotspot_table,
    render_profile_prom,
)
from repro.simulation.rollout import RolloutConfig
from repro.simulation.world import WorldConfig

DATA_DIR = pathlib.Path(__file__).parent / "data"

WORKER_COUNTS = (1, 2, 4)


def _profiled_spec() -> ScenarioSpec:
    """Tiny rollout with the control plane on: exercises the full
    phase taxonomy (mapmaker compile/publish rides control_plane.tick)."""
    start = datetime.date(2014, 3, 1)
    return ScenarioSpec(
        world=WorldConfig.tiny(),
        rollout=RolloutConfig(
            start_date=start,
            end_date=start + datetime.timedelta(days=13),
            rollout_start=start + datetime.timedelta(days=4),
            rollout_end=start + datetime.timedelta(days=9),
            sessions_per_day=16,
            seed=5,
        ),
        control_plane=MapMakerConfig(),
        monitor=False,
        profile=ProfileConfig())


PROFILED_SPEC = _profiled_spec()


@pytest.fixture(scope="module")
def sharded_runs():
    return {workers: run(PROFILED_SPEC, workers=workers, shards=4)
            for workers in WORKER_COUNTS}


@pytest.fixture(scope="module")
def serial_run():
    return run(PROFILED_SPEC)


# -- config ------------------------------------------------------------------

class TestProfileConfig:
    def test_defaults(self):
        config = ProfileConfig()
        assert config.max_depth is None
        assert config.hotspots == 10

    def test_round_trips_through_dict(self):
        config = ProfileConfig(max_depth=3, hotspots=5)
        assert ProfileConfig.from_dict(config.to_dict()) == config

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ProfileConfig(max_depth=0)
        with pytest.raises(ValueError):
            ProfileConfig(hotspots=0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown profile config"):
            ProfileConfig.from_dict({"hotspotz": 3})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            ProfileConfig.from_dict([1, 2])

    def test_from_dict_rejects_non_int(self):
        with pytest.raises(ValueError, match="integer"):
            ProfileConfig.from_dict({"hotspots": "many"})

    def test_from_json_rejects_malformed(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ProfileConfig.from_json("{nope")

    def test_spec_round_trips_profile(self):
        spec = PROFILED_SPEC
        doc = spec.to_dict()
        assert doc["profile"] == {"max_depth": None, "hotspots": 10}
        assert ScenarioSpec.from_dict(doc).profile == spec.profile


# -- tree mechanics ----------------------------------------------------------

class TestPhaseTree:
    def test_nested_phases_build_a_tree(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            with profiler.phase("b"):
                profiler.count("items", 3)
            with profiler.phase("b"):
                profiler.count("items", 2)
        a = profiler.root.children["a"]
        assert a.calls == 1
        assert a.children["b"].calls == 2
        assert a.children["b"].work == {"items": 5}

    def test_count_lands_on_innermost_open_phase(self):
        profiler = PhaseProfiler()
        profiler.count("root_work", 1)
        with profiler.phase("outer"):
            profiler.count("outer_work", 1)
        assert profiler.root.work == {"root_work": 1}
        assert profiler.root.children["outer"].work == {"outer_work": 1}

    def test_disabled_profiler_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        with profiler.phase("a"):
            profiler.count("items", 7)
        assert profiler.root.children == {}
        assert profiler.root.work == {}
        assert profiler.phase("x") is NULL_PHASE

    def test_shared_disabled_singleton_is_inert(self):
        with DISABLED_PROFILER.phase("whatever"):
            DISABLED_PROFILER.count("n")
        assert DISABLED_PROFILER.root.children == {}

    def test_max_depth_folds_deep_scopes_into_ancestor(self):
        profiler = PhaseProfiler(config=ProfileConfig(max_depth=1))
        with profiler.phase("a"):
            with profiler.phase("b"):
                profiler.count("deep", 1)
        a = profiler.root.children["a"]
        assert a.children == {}
        assert a.work == {"deep": 1}

    def test_self_wall_clamped_at_zero(self):
        node = PhaseNode("parent")
        node.wall_s = 1.0
        child = node.child("c")
        child.wall_s = 2.5
        assert node.self_wall_s == 0.0

    def test_walk_is_name_ordered_depth_first(self):
        profiler = PhaseProfiler()
        with profiler.phase("b"):
            pass
        with profiler.phase("a"):
            with profiler.phase("z"):
                pass
        paths = [";".join(path) for path, _ in profiler.root.walk()]
        assert paths == ["engine", "engine;a", "engine;a;z", "engine;b"]

    def test_merge_sums_counts_and_unions_structure(self):
        one, two = PhaseProfiler(), PhaseProfiler()
        with one.phase("shared"):
            one.count("n", 1)
        with two.phase("shared"):
            two.count("n", 2)
        with two.phase("only_two"):
            pass
        one.merge(two)
        assert one.root.children["shared"].calls == 2
        assert one.root.children["shared"].work == {"n": 3}
        assert "only_two" in one.root.children

    def test_graft_adopts_tree_and_credits_wall(self):
        parent, worker = PhaseProfiler(), PhaseProfiler()
        with worker.phase("day"):
            worker.count("sessions", 4)
        worker.root.children["day"].wall_s = 1.5
        worker.count("spans", 9)   # root-level work
        parent.graft("workers", worker)
        parent.graft("workers", worker)
        node = parent.root.children["workers"]
        assert node.calls == 2
        assert node.work == {"spans": 18}
        assert node.children["day"].work == {"sessions": 8}
        # The adopted subtree's wall credits the graft node, so the
        # graft parent's self-time is coordination overhead only.
        assert node.wall_s == pytest.approx(3.0)
        assert node.self_wall_s == pytest.approx(0.0)


# -- exports -----------------------------------------------------------------

class TestExports:
    def _small_profiler(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            profiler.count("units", 2.0)
            with profiler.phase("inner"):
                profiler.count("units", 1)
        return profiler

    def test_export_tree_shape(self):
        doc = export_tree(self._small_profiler().root)
        assert doc["name"] == "engine"
        outer = doc["children"][0]
        assert outer["name"] == "outer"
        assert outer["calls"] == 1
        assert outer["work"] == {"units": 2}   # integral floats -> int
        assert isinstance(outer["work"]["units"], int)
        assert [c["name"] for c in outer["children"]] == ["inner"]

    def test_document_declares_its_volatile_fields(self):
        doc = build_document(self._small_profiler())
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["timing_fields"] == ["self_wall_s", "wall_s"]
        assert doc["volatile_fields"] == ["hotspots", "run"]

    def test_deterministic_view_strips_by_declaration(self):
        doc = build_document(self._small_profiler(),
                             run_info={"workers": 3, "host": {}})
        view = deterministic_view(doc)
        assert "run" not in view and "hotspots" not in view

        def walk(node):
            assert "wall_s" not in node and "self_wall_s" not in node
            assert {"name", "calls", "work"} <= set(node)
            for child in node["children"]:
                walk(child)

        walk(view["tree"])

    def test_deterministic_view_honours_foreign_declarations(self):
        # A future profile/v2 with different timing fields strips by
        # its own declaration, not this library version's constants.
        doc = build_document(self._small_profiler())
        doc["timing_fields"] = ["calls"]
        view = deterministic_view(doc)
        assert "calls" not in view["tree"]
        assert "wall_s" in view["tree"]

    def test_collapsed_stacks_format(self):
        lines = collapsed_stacks(self._small_profiler().root)
        assert len(lines) == 3
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) >= 0
        assert lines[1].startswith("engine;outer ")
        assert lines[2].startswith("engine;outer;inner ")

    def test_hotspot_rows_aggregate_by_name(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            with profiler.phase("x"):
                pass
        with profiler.phase("b"):
            with profiler.phase("x"):
                pass
        rows = hotspot_rows(profiler.root)
        by_name = {row["phase"]: row for row in rows}
        assert by_name["x"]["calls"] == 2
        assert set(rows[0]) == {"phase", "calls", "self_wall_s",
                                "wall_s", "self_share"}

    def test_hotspot_limit_and_table_render(self):
        profiler = self._small_profiler()
        rows = hotspot_rows(profiler.root, limit=1)
        assert len(rows) == 1
        table = render_hotspot_table(rows)
        assert table[0].startswith("phase")
        assert len(table) == 2

    def test_prom_families_are_counters_only(self):
        lines = render_profile_prom(self._small_profiler().root)
        assert "# TYPE profile_phase_calls_total counter" in lines
        assert "# TYPE profile_phase_work_total counter" in lines
        assert ('profile_phase_work_total{phase="engine;outer",'
                'unit="units"} 2') in lines
        assert not any("wall" in line for line in lines)

    def test_flatten_phases_omits_root(self):
        flat = flatten_phases(self._small_profiler().root)
        assert set(flat) == {"outer", "outer;inner"}
        assert flat["outer"]["calls"] == 1


# -- engine integration ------------------------------------------------------

class TestEngineIntegration:
    def test_serial_taxonomy_and_work_counters(self, serial_run):
        root = serial_run.profiler.root
        names = {path[-1] for path, _ in root.walk()}
        assert {"engine", "world.build", "rollout.classify",
                "rollout.day", "session", "dns.resolve", "dns.stub",
                "dns.recursive", "dns.authoritative", "mapping.decide",
                "control_plane.tick", "mapmaker.compile",
                "mapmaker.publish"} <= names
        day = root.children["rollout.day"]
        assert day.work["sessions"] == len(serial_run.result.rum)
        assert day.children["session"].calls == day.work["sessions"]

    def test_profiling_off_by_default(self):
        spec = dataclasses.replace(PROFILED_SPEC, profile=None)
        assert run(spec).profiler is None

    def test_profiling_perturbs_nothing(self):
        # The acceptance property behind "every existing golden
        # fixture stays byte-identical": the same scenario with and
        # without the profiler produces identical observable bytes.
        spec_off = dataclasses.replace(PROFILED_SPEC, profile=None)
        on, off = run(PROFILED_SPEC), run(spec_off)
        snap_on = json.dumps(on.world.obs.registry.snapshot(),
                             sort_keys=True, default=str)
        snap_off = json.dumps(off.world.obs.registry.snapshot(),
                              sort_keys=True, default=str)
        assert snap_on == snap_off
        assert on.world.obs.tracer.export() == off.world.obs.tracer.export()
        assert len(on.result.rum) == len(off.result.rum)

    def test_sharded_parent_phases_present(self, sharded_runs):
        root = sharded_runs[1].profiler.root
        assert set(root.children) == {"shard.plan", "shard.execute",
                                      "shard.merge"}
        assert root.children["shard.plan"].work == {"shards": 4}
        workers = root.children["shard.execute"].children["shard.workers"]
        assert workers.calls == 4   # one graft per shard
        assert "rollout.day" in workers.children


# -- cross-worker determinism ------------------------------------------------

def _check_golden(path: pathlib.Path, rendered: str) -> None:
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (f"missing fixture {path}; run with "
                           "REGEN_GOLDEN=1 to create it")
    expected = path.read_text()
    if rendered != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            rendered.splitlines(keepends=True),
            fromfile=f"{path.name} (checked in)",
            tofile=f"{path.name} (this run)"))
        pytest.fail("profile golden fixture drifted; if intentional, "
                    f"regenerate with REGEN_GOLDEN=1 and review.\n{diff}")


def _sharded_document(sharded) -> dict:
    return build_document(
        sharded.profiler,
        scenario={"spec": "tests/_profiled_spec", "n_shards": 4},
        run_info={"workers": sharded.workers})


class TestDeterminism:
    def test_deterministic_view_identical_across_worker_counts(
            self, sharded_runs):
        views = {workers: deterministic_json(_sharded_document(run_))
                 for workers, run_ in sharded_runs.items()}
        assert views[1] == views[2] == views[4]

    def test_repeated_run_is_byte_identical(self, sharded_runs):
        again = run(PROFILED_SPEC, workers=2, shards=4)
        assert deterministic_json(_sharded_document(again)) == \
            deterministic_json(_sharded_document(sharded_runs[2]))

    def test_golden_profile_fixture(self, sharded_runs):
        _check_golden(DATA_DIR / "golden_profile.json",
                      deterministic_json(_sharded_document(
                          sharded_runs[1])))

    def test_wall_clock_present_in_full_document(self, sharded_runs):
        # The timings exist (they are the point of the profiler) --
        # they are just schema-excluded from the deterministic view.
        doc = _sharded_document(sharded_runs[1])
        assert doc["tree"]["children"]
        total = sum(child["wall_s"]
                    for child in doc["tree"]["children"])
        assert total > 0
