"""Tests for domain-name encoding, decoding, and compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnsproto.name import decode_name, encode_name, normalize_name
from repro.dnsproto.wire import WireFormatError, WireReader, WireWriter

label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
    max_size=20)
names = st.lists(label, min_size=0, max_size=6).map(".".join)


def roundtrip(name, compress=None):
    w = WireWriter()
    encode_name(w, name, compress)
    return decode_name(WireReader(w.getvalue()))


class TestNormalize:
    def test_lowercases(self):
        assert normalize_name("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalize_name("example.com.") == "example.com"

    def test_root(self):
        assert normalize_name(".") == ""
        assert normalize_name("") == ""


class TestEncodeDecode:
    def test_simple_roundtrip(self):
        assert roundtrip("foo.net") == "foo.net"

    def test_root_roundtrip(self):
        assert roundtrip("") == ""

    def test_wire_layout(self):
        w = WireWriter()
        encode_name(w, "ab.c", None)
        assert w.getvalue() == b"\x02ab\x01c\x00"

    def test_case_normalized(self):
        assert roundtrip("FOO.Net") == "foo.net"

    def test_rejects_oversized_label(self):
        with pytest.raises(WireFormatError):
            roundtrip("a" * 64 + ".com")

    def test_accepts_63_byte_label(self):
        name = "a" * 63 + ".com"
        assert roundtrip(name) == name

    def test_rejects_name_over_255(self):
        name = ".".join(["a" * 60] * 5)
        with pytest.raises(WireFormatError):
            roundtrip(name)

    def test_rejects_empty_label(self):
        with pytest.raises(WireFormatError):
            roundtrip("foo..bar")

    def test_rejects_non_ascii(self):
        with pytest.raises(WireFormatError):
            roundtrip("füü.net")

    @given(names)
    def test_roundtrip_property(self, name):
        assert roundtrip(name) == name


class TestCompression:
    def test_pointer_emitted_for_repeat(self):
        w = WireWriter()
        compress = {}
        encode_name(w, "www.example.com", compress)
        first_len = w.offset
        encode_name(w, "www.example.com", compress)
        # Second copy should be a bare 2-byte pointer.
        assert w.offset == first_len + 2

    def test_suffix_sharing(self):
        w = WireWriter()
        compress = {}
        encode_name(w, "a.example.com", compress)
        before = w.offset
        encode_name(w, "b.example.com", compress)
        # 'b' label (2 bytes) + pointer (2 bytes) = 4 bytes.
        assert w.offset == before + 4

    def test_compressed_names_decode(self):
        w = WireWriter()
        compress = {}
        names_in = ["a.example.com", "b.example.com", "example.com",
                    "com", "a.example.com"]
        for name in names_in:
            encode_name(w, name, compress)
        r = WireReader(w.getvalue())
        assert [decode_name(r) for _ in names_in] == names_in
        assert r.remaining == 0

    def test_reader_position_after_pointer(self):
        """After reading a compressed name the reader must continue
        just past the pointer, not past the jump target."""
        w = WireWriter()
        compress = {}
        encode_name(w, "example.com", compress)
        encode_name(w, "example.com", compress)
        w.u16(0xABCD)
        r = WireReader(w.getvalue())
        decode_name(r)
        decode_name(r)
        assert r.u16() == 0xABCD

    def test_forward_pointer_rejected(self):
        # Pointer at offset 0 pointing to offset 10 (forward).
        data = b"\xc0\x0a" + b"\x00" * 12
        with pytest.raises(WireFormatError):
            decode_name(WireReader(data))

    def test_self_pointer_rejected(self):
        data = b"\xc0\x00"
        with pytest.raises(WireFormatError):
            decode_name(WireReader(data))

    def test_reserved_label_type_rejected(self):
        with pytest.raises(WireFormatError):
            decode_name(WireReader(b"\x80abc"))

    @given(st.lists(names, min_size=1, max_size=8))
    def test_many_names_roundtrip_compressed(self, name_list):
        w = WireWriter()
        compress = {}
        for name in name_list:
            encode_name(w, name, compress)
        r = WireReader(w.getvalue())
        assert [decode_name(r) for _ in name_list] == name_list

    @given(st.lists(names, min_size=2, max_size=8))
    def test_compression_never_larger(self, name_list):
        plain = WireWriter()
        for name in name_list:
            encode_name(plain, name, None)
        packed = WireWriter()
        compress = {}
        for name in name_list:
            encode_name(packed, name, compress)
        assert packed.offset <= plain.offset
