"""Chaos plane: the SplitMix64 generator, random-schedule validity,
soak invariants, checkpoint/resume byte-identity, and the soak CLI.

The determinism contract is the headline: two soaks with the same
seed are byte-identical, and an interrupted + resumed soak produces
exactly the report the uninterrupted run would have (the property that
makes a 25-scenario CI gate trustworthy).
"""

import json

import pytest

from repro.faults import SoakConfig, SplitMix64, generate_schedule
from repro.faults.chaos import (
    main as soak_main,
    run_scenario,
    run_soak,
    scenario_seed,
)
from repro.faults.schedule import FaultKind

#: Small-but-real soak budget for tests: enough scenarios to cross
#: both data-plane and control-plane fault kinds, small enough to run
#: in seconds.
_CFG = SoakConfig(seed=2025, count=3, sessions_per_day=8)


class TestSplitMix64:
    def test_sequence_is_deterministic(self):
        a, b = SplitMix64(42), SplitMix64(42)
        assert [a.next_u64() for _ in range(8)] == [
            b.next_u64() for _ in range(8)]

    def test_streams_differ_by_seed(self):
        assert ([SplitMix64(1).next_u64() for _ in range(4)]
                != [SplitMix64(2).next_u64() for _ in range(4)])

    def test_randrange_bounds_and_choice(self):
        rng = SplitMix64(7)
        draws = [rng.randrange(5) for _ in range(200)]
        assert set(draws) == {0, 1, 2, 3, 4}
        assert SplitMix64(9).choice(("x", "y", "z")) in ("x", "y", "z")
        with pytest.raises(ValueError):
            rng.randrange(0)

    def test_scenario_seeds_are_stable_and_distinct(self):
        seeds = [scenario_seed(2025, i) for i in range(16)]
        assert seeds == [scenario_seed(2025, i) for i in range(16)]
        assert len(set(seeds)) == 16


class TestGenerateSchedule:
    def test_schedules_are_valid_and_bounded(self):
        kinds_seen = set()
        for index in range(40):
            rng = SplitMix64(scenario_seed(11, index))
            schedule = generate_schedule(rng, n_days=21)
            schedule.validate()  # grammar + overlap checks must hold
            assert 1 <= len(schedule) <= 4
            for event in schedule.events:
                assert event.start_day >= 1
                assert event.end_day <= 20  # >= one recovered day
                kinds_seen.add(event.kind)
        # The menu gets exercised across both planes.
        assert kinds_seen & set(FaultKind.DATA_PLANE)
        assert kinds_seen & set(FaultKind.CONTROL_PLANE)

    def test_same_rng_state_same_schedule(self):
        first = generate_schedule(SplitMix64(99), n_days=21)
        second = generate_schedule(SplitMix64(99), n_days=21)
        assert first == second


@pytest.fixture(scope="module")
def soak_report():
    return run_soak(_CFG)


class TestSoakInvariants:
    def test_soak_passes_with_zero_violations(self, soak_report):
        assert soak_report["passed"], soak_report["summary"]
        assert soak_report["summary"]["violations"] == 0
        assert soak_report["summary"]["deterministic"] is True
        assert soak_report["summary"]["scenarios"] == _CFG.count

    def test_rows_carry_the_machine_readable_schema(self, soak_report):
        assert soak_report["schema"] == "soak/v1"
        for row in soak_report["rows"]:
            assert row["schedule"], "scenario ran without faults"
            assert 0.0 <= row["availability"] <= 1.0
            assert len(row["digest"]) == 64
            assert row["violations"] == []

    def test_report_is_byte_identical_across_runs(self, soak_report):
        again = run_soak(_CFG)
        assert (json.dumps(soak_report, sort_keys=True)
                == json.dumps(again, sort_keys=True))

    def test_scenario_digest_pins_full_report(self, soak_report):
        row = run_scenario(_CFG, 0)
        assert row == soak_report["rows"][0]

    def test_surge_soak_layers_traffic_over_the_same_faults(self):
        """``--surge`` adds a generated traffic schedule and the
        load-feedback loop on a capacity-starved world; the fault
        schedule stream is untouched, so scenario i keeps the same
        faults with and without surges, and the invariants still
        hold."""
        surge_cfg = SoakConfig(seed=2025, count=2, sessions_per_day=8,
                               surge=True)
        report = run_soak(surge_cfg)
        assert report["passed"], report["summary"]
        assert report["summary"]["violations"] == 0
        plain_row = run_scenario(_CFG, 0)
        for index, row in enumerate(report["rows"]):
            assert row["traffic"], "surge scenario carried no shapes"
            if index == 0:
                assert row["schedule"] == plain_row["schedule"]
        # Identity strings differ, so checkpoints can't cross modes.
        assert surge_cfg.identity() != _CFG.identity()


class TestCheckpointResume:
    def test_interrupted_soak_resumes_byte_identically(
            self, soak_report, tmp_path):
        checkpoint = str(tmp_path / "soak.ckpt.json")
        partial = run_soak(_CFG, checkpoint=checkpoint, stop_after=1)
        assert partial.get("partial") is True
        assert not partial["passed"]  # incomplete runs never pass
        assert len(partial["rows"]) == 1

        resumed = run_soak(_CFG, checkpoint=checkpoint, resume=True)
        assert (json.dumps(resumed, sort_keys=True)
                == json.dumps(soak_report, sort_keys=True))

    def test_resume_can_extend_the_count(self, tmp_path):
        checkpoint = str(tmp_path / "soak.ckpt.json")
        small = SoakConfig(seed=2025, count=1, sessions_per_day=8)
        run_soak(small, checkpoint=checkpoint)
        bigger = run_soak(_CFG, checkpoint=checkpoint, resume=True)
        assert len(bigger["rows"]) == _CFG.count
        assert (json.dumps(bigger, sort_keys=True)
                == json.dumps(run_soak(_CFG), sort_keys=True))

    def test_resume_rejects_mismatched_config(self, tmp_path):
        checkpoint = str(tmp_path / "soak.ckpt.json")
        run_soak(SoakConfig(seed=2025, count=1, sessions_per_day=8),
                 checkpoint=checkpoint, stop_after=1)
        with pytest.raises(ValueError, match="different soak config"):
            run_soak(SoakConfig(seed=4, count=1, sessions_per_day=8),
                     checkpoint=checkpoint, resume=True)

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="--checkpoint"):
            run_soak(_CFG, resume=True)


class TestSoakCli:
    def test_cli_green_run_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "soak.json"
        code = soak_main(["--seed", "2025", "--count", "1",
                          "--sessions", "8", "--format", "json",
                          "--out", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["passed"] and doc["schema"] == "soak/v1"

    def test_cli_impossible_floor_exits_one(self, capsys):
        code = soak_main(["--seed", "2025", "--count", "1",
                          "--sessions", "8",
                          "--availability-floor", "1.01"])
        assert code == 1
        text = capsys.readouterr().out
        assert "below floor" in text and "passed=False" in text


class TestParallelSoak:
    """``workers=N`` fans scenarios across processes; every byte of
    the report and the checkpoint must match the serial run (scenario
    rows are pure functions of (seed, index), and the parent appends
    them in index order regardless of completion order)."""

    def test_parallel_report_and_checkpoint_match_serial(
            self, soak_report, tmp_path):
        serial_ckpt = tmp_path / "serial.ckpt.json"
        parallel_ckpt = tmp_path / "parallel.ckpt.json"
        run_soak(_CFG, checkpoint=str(serial_ckpt))
        parallel = run_soak(_CFG, checkpoint=str(parallel_ckpt),
                            workers=2)
        assert (json.dumps(parallel, sort_keys=True)
                == json.dumps(soak_report, sort_keys=True))
        assert parallel_ckpt.read_bytes() == serial_ckpt.read_bytes()

    def test_parallel_resumes_a_serial_checkpoint(self, soak_report,
                                                  tmp_path):
        checkpoint = str(tmp_path / "soak.ckpt.json")
        run_soak(_CFG, checkpoint=checkpoint, stop_after=1)
        resumed = run_soak(_CFG, checkpoint=checkpoint, resume=True,
                           workers=2)
        assert (json.dumps(resumed, sort_keys=True)
                == json.dumps(soak_report, sort_keys=True))
