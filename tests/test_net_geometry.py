"""Tests for great-circle geometry helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.geometry import (
    GeoPoint,
    cluster_radius_miles,
    great_circle_km,
    great_circle_miles,
    mean_distance_miles,
    weighted_centroid,
)

lats = st.floats(min_value=-90, max_value=90, allow_nan=False)
lons = st.floats(min_value=-180, max_value=180, allow_nan=False)
points = st.builds(GeoPoint, lats, lons)

NYC = GeoPoint(40.71, -74.01)
LONDON = GeoPoint(51.51, -0.13)
SYDNEY = GeoPoint(-33.87, 151.21)


class TestGeoPoint:
    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181),
                                         (0, -181)])
    def test_rejects_out_of_range(self, lat, lon):
        with pytest.raises(ValueError):
            GeoPoint(lat, lon)


class TestGreatCircle:
    def test_known_distance_nyc_london(self):
        # Actual great-circle distance is ~3460 miles.
        assert great_circle_miles(NYC, LONDON) == pytest.approx(3460, rel=0.02)

    def test_known_distance_london_sydney(self):
        assert great_circle_miles(LONDON, SYDNEY) == pytest.approx(
            10560, rel=0.02)

    def test_km_miles_consistent(self):
        ratio = great_circle_km(NYC, LONDON) / great_circle_miles(NYC, LONDON)
        assert ratio == pytest.approx(1.60934, rel=1e-3)

    @given(points)
    def test_zero_at_same_point(self, p):
        assert great_circle_miles(p, p) == pytest.approx(0, abs=1e-6)

    @given(points, points)
    def test_symmetric(self, a, b):
        assert great_circle_miles(a, b) == pytest.approx(
            great_circle_miles(b, a), rel=1e-9, abs=1e-9)

    @given(points, points)
    def test_bounded_by_half_circumference(self, a, b):
        assert great_circle_miles(a, b) <= math.pi * 3958.7613 + 1e-6

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        ab = great_circle_miles(a, b)
        bc = great_circle_miles(b, c)
        ac = great_circle_miles(a, c)
        assert ac <= ab + bc + 1e-6


class TestCentroid:
    def test_single_point(self):
        c = weighted_centroid([NYC], [5.0])
        assert c.lat == pytest.approx(NYC.lat, abs=1e-6)
        assert c.lon == pytest.approx(NYC.lon, abs=1e-6)

    def test_weighting_pulls_centroid(self):
        heavy_nyc = weighted_centroid([NYC, LONDON], [10.0, 0.1])
        balanced = weighted_centroid([NYC, LONDON], [1.0, 1.0])
        assert great_circle_miles(heavy_nyc, NYC) < great_circle_miles(
            balanced, NYC)

    def test_antimeridian(self):
        # Two points straddling the date line: centroid must stay near
        # the date line, not jump to lon ~0.
        west = GeoPoint(0.0, 179.0)
        east = GeoPoint(0.0, -179.0)
        c = weighted_centroid([west, east], [1.0, 1.0])
        assert abs(abs(c.lon) - 180.0) < 1.5

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            weighted_centroid([], [])
        with pytest.raises(ValueError):
            weighted_centroid([NYC], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_centroid([NYC], [0.0])


class TestClusterRadius:
    def test_zero_for_cohesive_cluster(self):
        assert cluster_radius_miles([NYC, NYC], [1, 1]) == pytest.approx(
            0, abs=1e-6)

    def test_two_point_cluster(self):
        # Equal weights: centroid at midpoint, radius = half the distance.
        radius = cluster_radius_miles([NYC, LONDON], [1, 1])
        assert radius == pytest.approx(
            great_circle_miles(NYC, LONDON) / 2, rel=0.01)

    @given(st.lists(points, min_size=1, max_size=8))
    def test_radius_nonnegative(self, pts):
        weights = [1.0] * len(pts)
        assert cluster_radius_miles(pts, weights) >= 0


class TestMeanDistance:
    def test_weighted_mean(self):
        d = mean_distance_miles(NYC, [(NYC, 1.0), (LONDON, 1.0)])
        assert d == pytest.approx(great_circle_miles(NYC, LONDON) / 2,
                                  rel=1e-6)

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            mean_distance_miles(NYC, [(LONDON, 0.0)])
