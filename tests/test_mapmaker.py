"""Control plane: published maps, the MapMaker process model, watchdog
failover, the degradation ladder, and the end-to-end acceptance
scenario (primary killed mid-rollout, then the whole control plane,
over one monitored roll-out).

The scenario pins the PR's acceptance criteria: the map-age gauge
rises while no publications land, the ``map_stale`` alert fires and
resolves, decisions visibly walk down the ladder (``ns_fallback``
share > 0 at deep staleness) and return to ``fresh_eu`` after
recovery, and the whole thing replays byte-identically (plus a golden
fixture, regenerated with ``REGEN_GOLDEN=1``).
"""

import datetime
import difflib
import json
import os
import pathlib
from dataclasses import replace

import pytest

from repro.api import ScenarioSpec, build_world, run
from repro.core.mapmaker import (
    MapMaker,
    MapMakerConfig,
    MapPublicationService,
    PublishedMap,
    StaticGeoMap,
    TIERS,
    compile_entries,
)
from repro.core.mapmaker.published import entries_checksum
from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.simulation.rollout import RolloutConfig
from repro.simulation.world import WorldConfig

GOLDEN_PATH = (pathlib.Path(__file__).parent / "data"
               / "golden_mapmaker.json")


class TestPublishedMap:
    def test_build_verifies_and_looks_up(self):
        published = PublishedMap.build(
            3, 7, {"eu:10.0.0.0/24": ("c-1", "c-2"), "ns:42": ("c-2",)})
        assert published.verify()
        assert published.version == 3
        assert published.lookup("eu:10.0.0.0/24") == ("c-1", "c-2")
        assert published.lookup("missing") == ()
        assert len(published) == 2
        assert published.age(7) == 0
        assert published.age(12) == 5
        assert published.age(3) == 0  # clock skew clamps to fresh

    def test_checksum_covers_every_field(self):
        entries = {"ns:1": ("c-1",)}
        base = entries_checksum(1, 0, entries)
        assert entries_checksum(2, 0, entries) != base
        assert entries_checksum(1, 1, entries) != base
        assert entries_checksum(1, 0, {"ns:1": ("c-2",)}) != base
        assert entries_checksum(1, 0, entries) == base

    def test_tampered_map_fails_verification(self):
        published = PublishedMap.build(1, 0, {"ns:1": ("c-1",)})
        tampered = PublishedMap(
            version=published.version,
            published_day=published.published_day,
            entries={"ns:1": ("c-666",)},
            checksum=published.checksum)
        assert not tampered.verify()


class TestMapMakerConfig:
    def test_defaults_are_ordered(self):
        config = MapMakerConfig()
        assert (config.fresh_age_days <= config.stale_age_days
                <= config.ns_age_days)

    @pytest.mark.parametrize("overrides", [
        dict(publish_interval_days=0),
        dict(fresh_age_days=9, stale_age_days=6),
        dict(stale_age_days=20, ns_age_days=12),
        dict(watchdog_timeout_days=0),
        dict(top_clusters=0),
    ])
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            MapMakerConfig(**overrides)


@pytest.fixture(scope="module")
def cp_world():
    return build_world(WorldConfig.tiny(),
                       control_plane=MapMakerConfig())


class TestCompile:
    def test_compile_is_deterministic_and_capped(self, cp_world):
        service = cp_world.control_plane
        first = compile_entries(service.deployments, service.scorer,
                                service.internet, top_clusters=4)
        second = compile_entries(service.deployments, service.scorer,
                                 service.internet, top_clusters=4)
        assert first == second
        assert first, "compile produced an empty map"
        assert any(key.startswith("eu:") for key in first)
        assert any(key.startswith("ns:") for key in first)
        assert all(len(ids) <= 4 for ids in first.values())

    def test_eu_unit_budget_keeps_heaviest_blocks(self, cp_world):
        service = cp_world.control_plane
        capped = compile_entries(service.deployments, service.scorer,
                                 service.internet, max_eu_units=5)
        eu_keys = [key for key in capped if key.startswith("eu:")]
        assert len(eu_keys) <= 5
        # Resolver units are never sacrificed to the EU budget.
        assert any(key.startswith("ns:") for key in capped)


class TestStaticGeoMap:
    def test_ranks_live_clusters_nearest_first(self, cp_world):
        static = StaticGeoMap(cp_world.deployments, limit=5)
        geo = next(iter(
            cp_world.deployments.clusters.values())).geo
        ranked = static.rank(geo)
        assert 0 < len(ranked) <= 5
        assert all(cluster.alive for cluster in ranked)
        assert ranked == static.rank(geo)  # memo hit, same object

    def test_rank_reacts_to_cluster_death(self, cp_world):
        static = StaticGeoMap(cp_world.deployments, limit=3)
        geo = next(iter(cp_world.deployments.clusters.values())).geo
        before = static.rank(geo)
        victim = before[0]
        for server in victim.servers:
            server.fail()
        try:
            after = static.rank(geo)
            assert victim not in after
        finally:
            for server in victim.servers:
                server.recover()
        assert victim in static.rank(geo)


class TestPublicationService:
    def _service(self, cp_world, **knobs):
        source = cp_world.control_plane
        return MapPublicationService(
            MapMakerConfig(**knobs), deployments=source.deployments,
            scorer=source.scorer, internet=source.internet)

    def test_bootstrap_publishes_version_one(self, cp_world):
        service = cp_world.control_plane
        assert service.current.version >= 1
        assert service.current.verify()
        assert len(service.current) > 0

    def test_daily_tick_republishes(self, cp_world):
        service = self._service(cp_world)
        version = service.current.version
        service.tick(1)
        assert service.current.version == version + 1
        assert service.map_age(1) == 0

    def test_watchdog_promotes_standby(self, cp_world):
        service = self._service(cp_world, watchdog_timeout_days=2)
        service.tick(1)
        primary, standby = service.primary, service.standby
        primary.alive = False
        service.tick(2)  # one missed heartbeat: within budget
        assert service.primary is primary
        service.tick(3)  # second miss: promote
        assert service.primary is standby
        assert primary.role == "standby"
        assert service.failovers == 1
        version = service.current.version
        service.tick(4)  # the promoted maker publishes
        assert service.current.version == version + 1

    def test_hang_is_indistinguishable_from_crash(self, cp_world):
        service = self._service(cp_world, watchdog_timeout_days=2)
        service.tick(1)
        wedged = service.primary
        wedged.hung = True
        version = service.current.version
        service.tick(2)
        service.tick(3)
        assert service.primary is not wedged
        assert service.failovers == 1
        assert service.current.version == version  # no publish while hung

    def test_slow_publish_ages_the_map(self, cp_world):
        service = self._service(cp_world)
        service.primary.slow_factor = 3.0
        service.tick(1)
        service.tick(2)
        assert service.map_age(2) == 2  # no publication yet
        service.tick(3)  # progress reaches 1.0 on the third tick
        assert service.map_age(3) == 0
        # Heartbeats keep flowing, so the watchdog stays quiet.
        assert service.failovers == 0

    def test_corrupt_publication_rejected(self, cp_world):
        service = self._service(cp_world)
        service.primary.corrupting = True
        version = service.current.version
        service.tick(1)
        service.tick(2)
        assert service.maps_rejected == 2
        assert service.current.version == version
        assert service.current.verify()  # the old map is intact
        assert service.map_age(2) == 2
        service.primary.corrupting = False
        service.tick(3)
        assert service.current.version == version + 1
        assert service.map_age(3) == 0

    def test_degradation_ladder_tiers(self, cp_world):
        service = self._service(cp_world)
        eu_key = next(key for key in service.current.entries
                      if key.startswith("eu:"))
        ns_key = next(key for key in service.current.entries
                      if key.startswith("ns:"))
        config = service.config

        ids, tier = service.lookup(eu_key, ns_key, day=0)
        assert tier == "fresh_eu" and ids
        _, tier = service.lookup(eu_key, ns_key,
                                 day=config.fresh_age_days)
        assert tier == "fresh_eu"
        _, tier = service.lookup(eu_key, ns_key,
                                 day=config.fresh_age_days + 1)
        assert tier == "stale_eu"
        _, tier = service.lookup(eu_key, ns_key,
                                 day=config.stale_age_days + 1)
        assert tier == "ns_fallback"
        _, tier = service.lookup(None, ns_key, day=0)
        assert tier == "ns"
        ids, tier = service.lookup(eu_key, ns_key,
                                   day=config.ns_age_days + 1)
        assert tier == "static_geo" and ids == ()
        # Unknown units fall through the ladder too.
        ids, tier = service.lookup("eu:0.0.0.0/24", "ns:0", day=0)
        assert tier == "static_geo" and ids == ()
        assert tier in TIERS


# -- the acceptance scenario ------------------------------------------------

def _scenario_spec(seed=7):
    """Kill the primary mid-rollout (watchdog failover), then the whole
    control plane for nine days (the map ages through every EU tier
    into NS fallback), over one monitored roll-out."""
    rollout = RolloutConfig(
        start_date=datetime.date(2014, 3, 1),
        end_date=datetime.date(2014, 3, 31),
        rollout_start=datetime.date(2014, 3, 8),
        rollout_end=datetime.date(2014, 3, 15),
        sessions_per_day=30,
        seed=seed,
    )
    faults = FaultSchedule((
        FaultEvent(start_day=8, duration_days=4, target="mapmaker:primary",
                   kind=FaultKind.MAPMAKER_CRASH),
        FaultEvent(start_day=15, duration_days=9, target="mapmaker:*",
                   kind=FaultKind.MAPMAKER_CRASH),
    ))
    return ScenarioSpec(
        world=replace(WorldConfig.tiny(), serve_stale_window=900.0),
        rollout=rollout,
        faults=faults,
        control_plane=MapMakerConfig(),
    )


@pytest.fixture(scope="module")
def scenario():
    outcome = run(_scenario_spec())
    return outcome, outcome.report()


class TestControlPlaneScenario:
    def test_map_age_rises_and_recovers(self, scenario):
        outcome, _ = scenario
        age = outcome.monitor.store.get("mapmaker.map_age_days")
        assert age is not None
        by_day = dict(zip(age.steps, age.values))
        assert max(age.values) >= 8.0, "map never went deeply stale"
        assert by_day[age.steps[-1]] == 0.0, "map still stale at end"

    def test_failover_happens_and_alert_fires(self, scenario):
        outcome, _ = scenario
        assert outcome.world.control_plane.failovers == 1
        kinds = [alert.kind for alert in outcome.monitor.engine.log
                 if alert.rule == "mapmaker_failover"]
        assert "fired" in kinds and "resolved" in kinds

    def test_map_stale_alert_fires_and_resolves(self, scenario):
        outcome, _ = scenario
        kinds = [alert.kind for alert in outcome.monitor.engine.log
                 if alert.rule == "map_stale"]
        assert "fired" in kinds and "resolved" in kinds
        assert not [rule for rule in outcome.monitor.engine.firing()
                    if rule in ("map_stale", "mapmaker_failover")]

    def test_decisions_walk_down_and_back_up_the_ladder(self, scenario):
        outcome, _ = scenario
        store = outcome.monitor.store

        def share(tier):
            series = store.get(f"mapping.tier_share.{tier}")
            assert series is not None
            return dict(zip(series.steps, series.values))

        fresh, stale, fallback = (share("fresh_eu"), share("stale_eu"),
                                  share("ns_fallback"))
        # Post-rollout, pre-outage: EU decisions at full trust.
        assert any(fresh[day] > 0 for day in range(12, 15))
        # The nine-day blackout ages the map through stale_eu...
        assert any(stale[day] > 0 for day in range(17, 21))
        # ...into resolver granularity for ECS-carrying queries.
        assert any(fallback[day] > 0 for day in range(21, 24))
        # Recovery: a fresh publication brings EU decisions back.
        assert any(fresh[day] > 0 for day in range(24, 31))
        assert all(fallback[day] == 0 for day in range(24, 31))

    def test_sessions_survive_the_blackout(self, scenario):
        outcome, _ = scenario
        assert sum(outcome.result.failed_sessions_per_day.values()) == 0
        assert len(outcome.result.rum) > 0

    def test_world_restored_after_run(self, scenario):
        outcome, _ = scenario
        for maker in outcome.world.control_plane.makers:
            assert maker.alive and not maker.hung
            assert maker.slow_factor == 1.0 and not maker.corrupting
        assert "faults" not in outcome.world.obs.tracer.context

    def test_same_seed_runs_are_byte_identical(self, scenario):
        _, first = scenario
        second = run(_scenario_spec()).report()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_golden_projection(self, scenario):
        outcome, report = scenario
        store = outcome.monitor.store
        age = store.get("mapmaker.map_age_days")
        fallback = store.get("mapping.tier_share.ns_fallback")
        projection = {
            "days_observed": report["days_observed"],
            "maps_published": outcome.world.control_plane.maps_published,
            "failovers": outcome.world.control_plane.failovers,
            "max_map_age": max(age.values),
            "map_age_by_day": [
                [step, value]
                for step, value in zip(age.steps, age.values)
                if value > 0],
            "ns_fallback_days": [
                step for step, value
                in zip(fallback.steps, fallback.values) if value > 0],
            "alerts": [[e["step"], e["rule"], e["kind"]]
                       for e in report["alerts"]["log"]
                       if e["rule"] in ("map_stale", "mapmaker_failover")],
            "firing": report["alerts"]["firing"],
            "tier_series_present": sorted(
                name for name in report["series"]
                if name.startswith("mapping.tier_share.")),
        }
        rendered = json.dumps(projection, indent=2, sort_keys=True) + "\n"
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(rendered)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing fixture {GOLDEN_PATH}; run with REGEN_GOLDEN=1 "
            "to create it")
        expected = GOLDEN_PATH.read_text()
        if rendered != expected:
            diff = "".join(difflib.unified_diff(
                expected.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile="golden_mapmaker.json (checked in)",
                tofile="golden_mapmaker.json (this run)",
            ))
            pytest.fail(
                "golden control-plane scenario drifted; if intentional, "
                f"regenerate with REGEN_GOLDEN=1 and review.\n{diff}")


class TestInjectorControlPlaneTargets:
    def test_mapmaker_fault_needs_control_plane(self):
        from repro.faults import FaultInjector
        from repro.simulation.world import _build_world

        world = _build_world(WorldConfig.tiny())
        schedule = FaultSchedule((FaultEvent(
            start_day=0, duration_days=1, target="mapmaker:primary",
            kind=FaultKind.MAPMAKER_CRASH),))
        with pytest.raises(KeyError, match="control plane"):
            FaultInjector(world, schedule).step(0)

    def test_role_targets_resolve_at_apply_time(self, cp_world):
        from repro.faults import FaultInjector

        service = cp_world.control_plane
        schedule = FaultSchedule((
            FaultEvent(start_day=0, duration_days=2,
                       target="mapmaker:primary",
                       kind=FaultKind.MAPMAKER_CRASH),
            FaultEvent(start_day=1, duration_days=2,
                       target="mapmaker:standby",
                       kind=FaultKind.MAPMAKER_HANG),
        ))
        injector = FaultInjector(cp_world, schedule)
        original_primary = service.primary
        injector.step(0)
        assert not original_primary.alive
        # No failover has run, so "standby" still names the other maker.
        injector.step(1)
        assert service.standby.hung
        assert service.standby is not original_primary
        injector.finish()
        assert all(m.alive and not m.hung for m in service.makers)
