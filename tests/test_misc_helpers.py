"""Small helpers not covered elsewhere."""

import pytest

from repro.dnsproto.rdata import (
    CNAMERdata,
    NSRdata,
    ARdata,
    canonical_rdata,
)
from repro.net.geometry import displace, great_circle_miles, GeoPoint
from repro.net.latency import _mix64, _pair_unit


class TestCanonicalRdata:
    def test_ns_normalized(self):
        assert canonical_rdata(NSRdata("NS1.Foo.NET.")).nsdname == \
            "ns1.foo.net"

    def test_cname_normalized(self):
        assert canonical_rdata(CNAMERdata("E1.CDN.Example")).target == \
            "e1.cdn.example"

    def test_passthrough_for_address_records(self):
        rdata = ARdata(42)
        assert canonical_rdata(rdata) is rdata


class TestDisplace:
    def test_distance_preserved(self):
        origin = GeoPoint(40.0, -75.0)
        for bearing in (0.0, 1.0, 2.5, 4.7):
            moved = displace(origin, 100.0, bearing)
            assert great_circle_miles(origin, moved) == pytest.approx(
                100.0, rel=1e-3)

    def test_zero_distance_identity(self):
        origin = GeoPoint(40.0, -75.0)
        moved = displace(origin, 0.0, 1.0)
        assert great_circle_miles(origin, moved) < 1e-6

    def test_longitude_wraps(self):
        near_dateline = GeoPoint(0.0, 179.9)
        moved = displace(near_dateline, 50.0, 1.5708)  # due east
        assert -180.0 <= moved.lon <= 180.0


class TestHashHelpers:
    def test_mix64_deterministic_and_spread(self):
        values = {_mix64(i) for i in range(1000)}
        assert len(values) == 1000
        assert _mix64(42) == _mix64(42)

    def test_pair_unit_symmetric_uniform(self):
        a = _pair_unit(10, 20, 1)
        assert a == _pair_unit(20, 10, 1)
        assert 0.0 <= a < 1.0
        assert _pair_unit(10, 20, 2) != a  # salt matters
