"""The sharded engine (``repro.parallel``): plan, merge, determinism.

The headline contract is pinned three ways:

* **worker-count invariance** -- the same spec run with 1, 2, and 4
  workers produces byte-identical monitor reports, merged registries,
  and trace exports, for both the golden fault scenario (soak scenario
  0: faults + control plane) and a plain monitored roll-out;
* **golden fixtures** -- a discrete (float-free) projection of each
  sharded report is checked in under ``tests/data/``, so drift in the
  shard plan, the merge algebra, or the monitor replay shows up as a
  reviewable fixture diff (regenerate with ``REGEN_GOLDEN=1``);
* **plan algebra** -- the prefix partitioner and largest-remainder
  apportioner are pinned against hand-computed values, since every
  byte above depends on them.
"""

import datetime
import difflib
import json
import pathlib
import random

import pytest

from repro.api import ScenarioSpec, build_world, run, run_rollout
from repro.core.loadfeedback import LoadFeedbackConfig
from repro.core.mapmaker import MapMakerConfig
from repro.faults.chaos import SoakConfig, _scenario_spec
from repro.topology.traffic import TrafficSchedule, TrafficShape
from repro.parallel import (
    DEFAULT_SHARDS,
    apportion,
    plan_shards,
    run_sharded,
    shard_of_prefix,
)
from repro.simulation.rollout import RolloutConfig
from repro.simulation.world import WorldConfig

DATA_DIR = pathlib.Path(__file__).parent / "data"

FAULT_SPEC = _scenario_spec(
    SoakConfig(seed=2025, count=1, sessions_per_day=10), 0)
"""Soak scenario 0: fault schedule + map-maker control plane + monitor
-- the heaviest path through the sharded engine."""


def _rollout_spec() -> ScenarioSpec:
    start = datetime.date(2014, 3, 1)
    return ScenarioSpec(
        world=WorldConfig.tiny(),
        rollout=RolloutConfig(
            start_date=start,
            end_date=start + datetime.timedelta(days=13),
            rollout_start=start + datetime.timedelta(days=4),
            rollout_end=start + datetime.timedelta(days=9),
            sessions_per_day=16,
            seed=5,
        ),
        monitor=True)


ROLLOUT_SPEC = _rollout_spec()


def _load_feedback_spec() -> ScenarioSpec:
    """A flash crowd + content surge over a capacity-starved world
    with the load-feedback loop on: the path where shard-local load
    accounting (scaled by ``n_shards``) must still merge and replay
    byte-identically."""
    import dataclasses

    spec = _rollout_spec()
    return dataclasses.replace(
        spec,
        world=dataclasses.replace(spec.world,
                                  server_capacity_rps=0.08),
        control_plane=MapMakerConfig(),
        traffic=TrafficSchedule((
            TrafficShape(start_day=6, duration_days=6,
                         target="continent:NA", kind="flash_crowd",
                         magnitude=4.0),
            TrafficShape(start_day=4, duration_days=5,
                         target="provider:provider1",
                         kind="content_surge", magnitude=6.0),
        )).validate(),
        load_feedback=LoadFeedbackConfig())


LOAD_FEEDBACK_SPEC = _load_feedback_spec()

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def fault_runs():
    return {workers: run_sharded(FAULT_SPEC, workers=workers, n_shards=4)
            for workers in WORKER_COUNTS}


@pytest.fixture(scope="module")
def rollout_runs():
    return {workers: run_sharded(ROLLOUT_SPEC, workers=workers,
                                 n_shards=4)
            for workers in WORKER_COUNTS}


@pytest.fixture(scope="module")
def feedback_runs():
    return {workers: run_sharded(LOAD_FEEDBACK_SPEC, workers=workers,
                                 n_shards=4)
            for workers in (1, 4)}


@pytest.fixture(scope="module")
def tiny_world():
    return build_world(WorldConfig.tiny())


# -- worker-count invariance -------------------------------------------------

def _frozen(sharded) -> dict:
    """Every byte-comparable artifact of one sharded run."""
    return {
        "report": json.dumps(sharded.report(), sort_keys=True),
        "registry": sharded.registry.to_json(),
        "traces": json.dumps(sharded.traces, sort_keys=True),
        "sessions": json.dumps(sharded.result.sessions_per_day),
        "beacons": repr([
            (b.day, str(b.block), b.rtt_ms)
            for b in sharded.result.rum.beacons[:50]]),
        "shard_sessions": sharded.shard_sessions,
    }


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_fault_scenario_is_byte_identical(self, fault_runs, workers):
        assert _frozen(fault_runs[workers]) == _frozen(fault_runs[1])

    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_monitored_rollout_is_byte_identical(self, rollout_runs,
                                                 workers):
        assert _frozen(rollout_runs[workers]) == _frozen(rollout_runs[1])

    def test_shard_sessions_account_for_every_session(self, rollout_runs):
        sharded = rollout_runs[1]
        assert sum(sharded.shard_sessions) == sum(
            sharded.result.sessions_per_day.values())
        assert len(sharded.shard_sessions) == sharded.n_shards

    def test_merged_beacons_arrive_day_sorted(self, fault_runs):
        days = [beacon.day
                for beacon in fault_runs[1].result.rum.beacons]
        assert days == sorted(days)

    def test_monitor_replay_produces_a_report(self, fault_runs):
        report = fault_runs[1].report()
        assert report["days_observed"] == FAULT_SPEC.rollout.n_days
        assert "alerts" in report and "series" in report

    def test_load_feedback_run_is_byte_identical(self, feedback_runs):
        assert _frozen(feedback_runs[4]) == _frozen(feedback_runs[1])

    def test_load_feedback_gauges_survive_the_merge(self, feedback_runs):
        """The tracker's gauges are replicated state (merge=max): the
        merged registry carries the per-shard-scaled utilization
        signal, not ``n_shards`` times it."""
        snapshot = feedback_runs[1].registry.snapshot()
        assert snapshot["gauges"]["cluster.load.p95"] > 0.0
        demoted = snapshot["gauges"]["mapping.load_demoted_share"]
        assert 0.0 < demoted <= 1.0
        assert (feedback_runs[4].registry.snapshot()["gauges"]
                ["mapping.load_demoted_share"] == demoted)


# -- golden fixtures ---------------------------------------------------------

def _stable(item) -> bool:
    """Keep everything except floats with a fractional part (those
    carry platform libm noise; integral floats -- counts, day indices
    -- survive any libm)."""
    if not isinstance(item, float):
        return True
    return item in (float("inf"), float("-inf")) or (
        item == item and item == int(item))


def _discrete(value):
    """Projection of a report keeping only platform-stable values."""
    if isinstance(value, dict):
        return {key: _discrete(item) for key, item in value.items()
                if _stable(item) or isinstance(item, (dict, list))}
    if isinstance(value, list):
        return [_discrete(item) for item in value
                if _stable(item) or isinstance(item, (dict, list))]
    return value


def _check_golden(path: pathlib.Path, document: dict) -> None:
    import os

    rendered = json.dumps(document, indent=2, sort_keys=True,
                          default=str) + "\n"
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (f"missing fixture {path}; run with "
                           "REGEN_GOLDEN=1 to create it")
    expected = path.read_text()
    if rendered != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            rendered.splitlines(keepends=True),
            fromfile=f"{path.name} (checked in)",
            tofile=f"{path.name} (this run)"))
        pytest.fail("sharded golden fixture drifted; if intentional, "
                    f"regenerate with REGEN_GOLDEN=1 and review.\n{diff}")


def _golden_document(sharded) -> dict:
    snapshot = sharded.registry.snapshot()
    return {
        "n_shards": sharded.n_shards,
        "shard_sessions": sharded.shard_sessions,
        "report": _discrete(sharded.report()),
        "counters": {
            "rollout.sessions": snapshot["counters"]["rollout.sessions"],
            "sessions.completed": snapshot["counters"][
                "sessions.completed"],
            "mapping.resolutions": snapshot["gauges"][
                "mapping.resolutions"],
        },
        "trace_counts": sharded.trace_counts,
    }


class TestGoldenFixtures:
    def test_fault_scenario_fixture(self, fault_runs):
        _check_golden(DATA_DIR / "golden_shard_fault.json",
                      _golden_document(fault_runs[1]))

    def test_monitored_rollout_fixture(self, rollout_runs):
        _check_golden(DATA_DIR / "golden_shard_rollout.json",
                      _golden_document(rollout_runs[1]))

    def test_load_feedback_fixture(self, feedback_runs):
        """Flash crowd + content surge + load feedback, sharded: pins
        the surge apportionment, the scaled load accounting, and the
        overload fallback counter alongside the standard projection."""
        sharded = feedback_runs[1]
        snapshot = sharded.registry.snapshot()
        document = _golden_document(sharded)
        document["counters"]["lb.overloaded_picks"] = (
            snapshot["counters"].get("lb.overloaded_picks", 0.0))
        document["load_gauges"] = sorted(
            name for name in snapshot["gauges"]
            if name.startswith(("cluster.load.", "mapping.load_")))
        _check_golden(DATA_DIR / "golden_load_feedback.json", document)


# -- plan algebra ------------------------------------------------------------

class TestShardOfPrefix:
    def test_pinned_values(self):
        # Hand-computed through the SplitMix64 finalizer; a change here
        # re-deals every block and invalidates the golden fixtures.
        assert shard_of_prefix(0, 8) == 7
        assert shard_of_prefix(0x0A000000, 8) == 2
        assert shard_of_prefix(0xC0A80000, 8) == 0

    def test_range_and_determinism(self):
        for addr in range(0, 1 << 16, 977):
            first = shard_of_prefix(addr, 8)
            assert 0 <= first < 8
            assert shard_of_prefix(addr, 8) == first

    def test_spreads_sequential_prefixes(self):
        """Adjacent /24s land on different shards (the whole point of
        hashing instead of range-splitting)."""
        shards = {shard_of_prefix(addr << 8, 8)
                  for addr in range(256)}
        assert len(shards) == 8


class TestApportion:
    def test_preserves_total_exactly(self):
        shares = [0.1, 0.2, 0.3, 0.4]
        for total in (0, 1, 7, 100, 1_000_003):
            assert sum(apportion(total, shares)) == total

    def test_largest_remainder_hand_example(self):
        # Quotas 1.4 / 2.8 / 2.8: floors give 5, the two 0.8
        # remainders win the missing units.
        assert apportion(7, [0.2, 0.4, 0.4]) == [1, 3, 3]

    def test_zero_weight_goes_to_first_bucket(self):
        assert apportion(5, [0.0, 0.0]) == [5, 0]

    def test_deterministic_tie_break_by_index(self):
        assert apportion(1, [0.5, 0.5]) == [1, 0]


class TestShardPlan:
    def test_partitions_every_block_exactly_once(self, tiny_world):
        internet = tiny_world.internet
        plan = plan_shards(internet, 4)
        assert plan.n_shards == 4
        seen = sorted(index for shard in plan.block_indices
                      for index in shard)
        assert seen == list(range(len(internet.blocks)))

    def test_matches_prefix_hash(self, tiny_world):
        internet = tiny_world.internet
        plan = plan_shards(internet, 4)
        for shard, indices in enumerate(plan.block_indices):
            for index in indices:
                prefix = internet.blocks[index].prefix
                assert shard_of_prefix(prefix.network, 4) == shard

    def test_pick_block_stays_inside_the_shard(self, tiny_world):
        internet = tiny_world.internet
        plan = plan_shards(internet, 4)
        rng = random.Random(3)
        own = {internet.blocks[i].prefix for i in plan.block_indices[2]}
        for _ in range(64):
            block = plan.pick_block(2, internet.blocks, rng)
            assert block.prefix in own

    def test_session_quotas_follow_demand(self, tiny_world):
        plan = plan_shards(tiny_world.internet, 4)
        quotas = plan.sessions_for_day(10_000)
        assert sum(quotas) == 10_000
        total_demand = sum(plan.demands)
        for shard, quota in enumerate(quotas):
            expected = 10_000 * plan.demands[shard] / total_demand
            assert abs(quota - expected) < 1.0


# -- guard rails -------------------------------------------------------------

class TestValidation:
    def test_workers_must_be_positive_ints(self):
        for bad in (0, -1, 1.5, True, "2"):
            with pytest.raises(ValueError):
                run_sharded(ROLLOUT_SPEC, workers=bad, n_shards=2)
        with pytest.raises(ValueError):
            run_sharded(ROLLOUT_SPEC, workers=1, n_shards=0)

    def test_live_policy_objects_cannot_shard(self):
        spec = ScenarioSpec(world=WorldConfig.tiny(), policy=object())
        with pytest.raises(ValueError, match="policy"):
            run_sharded(spec, workers=2)

    def test_shards_without_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run(ROLLOUT_SPEC, shards=4)

    def test_run_rollout_rejects_live_observer_with_workers(
            self, tiny_world):
        with pytest.raises(ValueError, match="observer"):
            run_rollout(tiny_world, ROLLOUT_SPEC.rollout,
                        observer=object(), workers=2)

    def test_default_shard_count_is_eight(self):
        assert DEFAULT_SHARDS == 8
