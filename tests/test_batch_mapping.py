"""Batch mapping pipeline vs per-query scalar path.

Covers the vectorized hot paths wired in on top of the
:mod:`repro.net.batch` kernels: TargetGrid nearest-target lookups
(scalar scan as oracle), MeasurementService batch RTTs and cache
coherence, Scorer.score_targets, GlobalLoadBalancer batch rank/pick,
MappingSystem.prefill_decisions, and the canonical weighted-quantile
implementation.
"""

import random

import numpy as np
import pytest

from repro.analysis.stats import (
    weighted_cdf,
    weighted_quantile,
    weighted_quantiles,
)
from repro.cdn.deployments import build_deployments
from repro.core.discovery import CandidateIndex
from repro.core.loadbalancer import GlobalLoadBalancer, LoadBalancerConfig
from repro.core.measurement import (
    MeasurementService,
    TargetGrid,
    build_ping_targets,
    nearest_target_id,
)
from repro.core.policies import MapTarget
from repro.core.scoring import Scorer
from repro.net import batch
from repro.topology.internet import InternetConfig, build_internet

pytestmark = pytest.mark.filterwarnings("error")


@pytest.fixture(scope="module")
def net():
    return build_internet(InternetConfig.tiny(), seed=2014)


@pytest.fixture(scope="module")
def targets(net):
    targets, _ = build_ping_targets(net, 120)
    return targets


@pytest.fixture(scope="module")
def deployments(net):
    return build_deployments(24, net.geodb, seed=31,
                             host_ases=list(net.ases.values()))


class TestTargetGrid:
    def test_nearest_matches_scalar_oracle(self, net, targets):
        grid = TargetGrid(targets)
        rng = random.Random(9)
        for block in rng.sample(net.blocks, 200):
            assert grid.nearest(block.geo, block.asn) == nearest_target_id(
                block.geo, block.asn, targets)

    def test_nearest_matches_oracle_for_resolvers(self, net, targets):
        grid = TargetGrid(targets)
        for resolver in list(net.resolvers.values())[:100]:
            assert grid.nearest(resolver.geo, resolver.asn) == (
                nearest_target_id(resolver.geo, resolver.asn, targets))

    def test_bulk_matches_single(self, net, targets):
        grid = TargetGrid(targets)
        columns = net.block_columns()
        bulk = grid.nearest_bulk(columns.lat, columns.lon, columns.asn,
                                 chunk_rows=97)
        for row in (0, 13, 500, len(net.blocks) - 1):
            block = net.blocks[row]
            assert bulk[row] == grid.nearest(block.geo, block.asn)

    def test_assignment_uses_exact_nearest(self, net):
        targets, assignment = build_ping_targets(net, 80)
        rng = random.Random(4)
        for block in rng.sample(net.blocks, 100):
            assert assignment[block.prefix] == nearest_target_id(
                block.geo, block.asn, targets)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            TargetGrid([])


class TestMeasurementBatch:
    def test_points_match_scalar_noise_free(self, net, deployments,
                                            targets):
        service = MeasurementService(net.geodb)
        cluster = next(iter(deployments.clusters.values()))
        lats, lons = batch.geo_columns([t.geo for t in targets])
        asns = [t.asn for t in targets]
        got = service.rtt_cluster_to_points(cluster, lats, lons, asns)
        # numpy's vectorized trig differs from libm by <= 1 ulp, so the
        # two paths agree to machine precision, not bit-for-bit.
        for i, target in enumerate(targets):
            assert got[i] == pytest.approx(
                service.rtt_cluster_to_point(cluster, target.geo,
                                             target.asn), rel=1e-12)

    def test_matrix_matches_scalar_noise_free(self, net, deployments,
                                              targets):
        service = MeasurementService(net.geodb)
        clusters = list(deployments.clusters.values())[:6]
        matrix = service.rtt_matrix_to_targets(clusters, targets[:40])
        assert matrix.shape == (6, 40)
        for i, cluster in enumerate(clusters):
            for j, target in enumerate(targets[:40]):
                assert matrix[i, j] == pytest.approx(
                    service.rtt_cluster_to_point(cluster, target.geo,
                                                 target.asn), rel=1e-12)

    def test_noisy_batch_respects_frozen_cache(self, net, deployments,
                                               targets):
        cluster = next(iter(deployments.clusters.values()))
        subset = targets[:30]
        lats, lons = batch.geo_columns([t.geo for t in subset])
        asns = [t.asn for t in subset]

        # Scalar first: the frozen draws must win in the batch path.
        service = MeasurementService(net.geodb, measurement_noise=0.2,
                                     seed=5)
        scalar = [service.rtt_cluster_to_point(cluster, t.geo, t.asn)
                  for t in subset]
        got = service.rtt_cluster_to_points(cluster, lats, lons, asns)
        np.testing.assert_array_equal(got, scalar)

        # Batch first: its draws must be frozen for later scalar calls.
        service = MeasurementService(net.geodb, measurement_noise=0.2,
                                     seed=5)
        first = service.rtt_cluster_to_points(cluster, lats, lons, asns)
        again = service.rtt_cluster_to_points(cluster, lats, lons, asns)
        np.testing.assert_array_equal(first, again)
        for i, target in enumerate(subset):
            assert first[i] == service.rtt_cluster_to_point(
                cluster, target.geo, target.asn)


class TestBatchScoring:
    def test_score_targets_matches_scalar(self, net, deployments,
                                          targets):
        scorer = Scorer(MeasurementService(net.geodb))
        clusters = list(deployments.clusters.values())[:8]
        map_targets = [MapTarget(geo=t.geo, asn=t.asn)
                       for t in targets[:50]]
        matrix = scorer.score_targets(clusters, map_targets)
        assert matrix.shape == (8, 50)
        for i, cluster in enumerate(clusters):
            for j, target in enumerate(map_targets):
                assert matrix[i, j] == pytest.approx(
                    scorer.score(cluster, target), rel=1e-12)

    def test_rejects_aggregate_targets(self, net, deployments, targets):
        scorer = Scorer(MeasurementService(net.geodb))
        point = MapTarget(geo=targets[0].geo, asn=targets[0].asn)
        aggregate = MapTarget(geo=targets[0].geo, asn=targets[0].asn,
                              members=((point, 1.0),))
        with pytest.raises(ValueError):
            scorer.score_targets(list(deployments.clusters.values()),
                                 [aggregate])


class TestBatchLoadBalancer:
    def _lb(self, net, deployments, with_index=False):
        scorer = Scorer(MeasurementService(net.geodb))
        index = (CandidateIndex(deployments) if with_index else None)
        return GlobalLoadBalancer(deployments, scorer,
                                  LoadBalancerConfig(),
                                  candidate_index=index)

    def test_rank_batch_matches_scalar(self, net, deployments, targets):
        lb = self._lb(net, deployments)
        map_targets = [MapTarget(geo=t.geo, asn=t.asn)
                       for t in targets[:40]]
        ranked_batch = lb.rank_clusters_batch(map_targets)
        for target, ranked in zip(map_targets, ranked_batch):
            scalar = lb.rank_clusters(target)
            assert [c.cluster_id for c in ranked] == [
                c.cluster_id for c in scalar]

    def test_rank_batch_with_candidate_index(self, net, deployments,
                                             targets):
        lb = self._lb(net, deployments, with_index=True)
        map_targets = [MapTarget(geo=t.geo, asn=t.asn)
                       for t in targets[:40]]
        ranked_batch = lb.rank_clusters_batch(map_targets)
        for target, ranked in zip(map_targets, ranked_batch):
            scalar = lb.rank_clusters(target)
            assert [c.cluster_id for c in ranked] == [
                c.cluster_id for c in scalar]

    def test_pick_batch_matches_scalar(self, net, deployments, targets):
        map_targets = [MapTarget(geo=t.geo, asn=t.asn)
                       for t in targets[:40]]
        lb_a = self._lb(net, deployments)
        lb_b = self._lb(net, deployments)
        picked_batch = lb_a.pick_clusters_batch(map_targets)
        picked_scalar = [lb_b.pick_cluster(t) for t in map_targets]
        assert [c.cluster_id for c in picked_batch] == [
            c.cluster_id for c in picked_scalar]
        assert lb_a.decisions == lb_b.decisions == len(map_targets)
        assert lb_a.spillovers == lb_b.spillovers


class TestPrefill:
    def test_prefilled_decisions_match_per_query(self, net, deployments,
                                                 targets):
        from repro.cdn.content import build_catalog
        from repro.core.policies import EUMappingPolicy
        from repro.core.system import MappingSystem

        def build_system():
            scorer = Scorer(MeasurementService(net.geodb))
            return MappingSystem(
                deployments, build_catalog(5, seed=3),
                EUMappingPolicy(net.geodb), scorer)

        map_targets = [MapTarget(geo=t.geo, asn=t.asn)
                       for t in targets[:30]]
        prefilled = build_system()
        filled = prefilled.prefill_decisions(map_targets, now=0.0)
        assert filled == len(map_targets)

        per_query = build_system()
        for target in map_targets:
            want = per_query._pick_cluster(target, now=0.0)
            got = prefilled._pick_cluster(target, now=1.0)
            assert got.cluster_id == want.cluster_id
        # Every post-prefill lookup inside the TTL is a cache hit.
        assert prefilled.stats.decision_cache_hits == len(map_targets)
        assert prefilled.stats.decision_cache_misses == 0

    def test_prefill_skips_fresh_entries(self, net, deployments, targets):
        from repro.cdn.content import build_catalog
        from repro.core.policies import EUMappingPolicy
        from repro.core.system import MappingSystem

        scorer = Scorer(MeasurementService(net.geodb))
        system = MappingSystem(deployments, build_catalog(5, seed=3),
                               EUMappingPolicy(net.geodb), scorer)
        map_targets = [MapTarget(geo=t.geo, asn=t.asn)
                       for t in targets[:10]]
        assert system.prefill_decisions(map_targets, now=0.0) == 10
        # Within the TTL nothing is refilled...
        assert system.prefill_decisions(map_targets, now=30.0) == 0
        # ...after expiry everything is.
        assert system.prefill_decisions(map_targets, now=120.0) == 10


class TestWeightedQuantiles:
    def test_matches_single_quantile(self):
        rng = random.Random(6)
        values = [rng.uniform(0, 100) for _ in range(500)]
        weights = [rng.uniform(0.01, 5.0) for _ in range(500)]
        qs = (0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0)
        got = weighted_quantiles(values, weights, qs)
        for q, g in zip(qs, got):
            assert g == weighted_quantile(values, weights, q)

    def test_zero_total_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_quantiles([1.0, 2.0], [0.0, 0.0], [0.5])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            weighted_quantiles([1.0], [1.0], [1.5])

    def test_weighted_cdf_vectorized_semantics(self):
        cdf = weighted_cdf([10, 20, 30], [1, 1, 1],
                           grid=[5, 10, 15, 25, 35])
        assert cdf == [(5.0, 0.0), (10.0, pytest.approx(1 / 3)),
                       (15.0, pytest.approx(1 / 3)),
                       (25.0, pytest.approx(2 / 3)), (35.0, 1.0)]
