"""Equivalence tests: repro.net.batch kernels vs the scalar reference.

The scalar implementations in :mod:`repro.net.geometry` and
:mod:`repro.net.latency` are the reference semantics; every kernel in
:mod:`repro.net.batch` must reproduce them to <= 1e-9 relative error
over randomized seeded samples (the peering kernel exactly), including
the antimeridian and same-AS-floor edge cases.
"""

import math
import random

import numpy as np
import pytest

from repro.net import batch
from repro.net.geometry import (
    GeoPoint,
    cluster_radius_miles,
    great_circle_miles,
    mean_distance_miles,
    weighted_centroid,
)
from repro.net.latency import LatencyModel, LatencyParams, _pair_unit, _mix64

REL_TOL = 1e-9


def _random_points(rng, n):
    return [GeoPoint(rng.uniform(-89.0, 89.0), rng.uniform(-180.0, 179.999))
            for _ in range(n)]


class TestHaversineKernel:
    def test_matches_scalar_on_random_points(self):
        rng = random.Random(101)
        a = _random_points(rng, 40)
        b = _random_points(rng, 60)
        lat_a, lon_a = batch.geo_columns(a)
        lat_b, lon_b = batch.geo_columns(b)
        matrix = batch.haversine_matrix_miles(lat_a, lon_a, lat_b, lon_b)
        assert matrix.shape == (40, 60)
        for i in (0, 7, 39):
            for j in (0, 13, 59):
                assert matrix[i, j] == pytest.approx(
                    great_circle_miles(a[i], b[j]), rel=REL_TOL)

    def test_full_matrix_equivalence(self):
        rng = random.Random(7)
        a = _random_points(rng, 15)
        b = _random_points(rng, 15)
        lat_a, lon_a = batch.geo_columns(a)
        lat_b, lon_b = batch.geo_columns(b)
        matrix = batch.haversine_matrix_miles(lat_a, lon_a, lat_b, lon_b)
        scalar = np.array([[great_circle_miles(pa, pb) for pb in b]
                           for pa in a])
        np.testing.assert_allclose(matrix, scalar, rtol=REL_TOL, atol=1e-12)

    def test_antimeridian_pairs(self):
        # Points straddling the +/-180 meridian: the formula must take
        # the short way around, exactly as the scalar code does.
        east = GeoPoint(10.0, 179.5)
        west = GeoPoint(10.0, -179.5)
        got = float(batch.haversine_miles(east.lat, east.lon,
                                          west.lat, west.lon))
        assert got == pytest.approx(great_circle_miles(east, west),
                                    rel=REL_TOL)
        assert got < 100.0  # short way, not 24,000 miles around

    def test_identical_points_are_zero(self):
        assert float(batch.haversine_miles(51.5, -0.1, 51.5, -0.1)) == 0.0

    def test_elementwise_broadcasting(self):
        lats = np.array([0.0, 45.0, -30.0])
        lons = np.array([0.0, 90.0, -120.0])
        out = batch.haversine_miles(lats, lons, 10.0, 20.0)
        assert out.shape == (3,)
        for i in range(3):
            assert out[i] == pytest.approx(
                great_circle_miles(GeoPoint(lats[i], lons[i]),
                                   GeoPoint(10.0, 20.0)), rel=REL_TOL)


class TestInflationKernel:
    def test_matches_scalar_over_regimes(self):
        model = LatencyModel()
        rng = random.Random(23)
        distances = ([0.0, 1.0, 49.999, 50.0, 50.001, 3999.9, 4000.0,
                      4001.0, 12000.0]
                     + [rng.uniform(0.0, 13000.0) for _ in range(200)])
        got = batch.inflation(np.array(distances), model.params)
        for d, g in zip(distances, got):
            assert g == pytest.approx(model.inflation(d), rel=REL_TOL)

    def test_custom_params(self):
        params = LatencyParams(short_inflation=3.0, long_inflation=1.1,
                               short_miles=10.0, long_miles=1000.0)
        model = LatencyModel(params)
        for d in (5.0, 10.0, 99.0, 500.0, 1000.0, 5000.0):
            assert float(batch.inflation(d, params)) == pytest.approx(
                model.inflation(d), rel=REL_TOL)


class TestPeeringKernel:
    def test_mix64_bit_identical(self):
        rng = random.Random(5)
        values = [0, 1, 2**63, 2**64 - 1] + [rng.getrandbits(64)
                                             for _ in range(500)]
        got = batch.mix64(np.array(values, dtype=np.uint64))
        for v, g in zip(values, got):
            assert int(g) == _mix64(v)

    def test_pair_unit_bit_identical(self):
        rng = random.Random(11)
        pairs = [(rng.randrange(1, 2**32), rng.randrange(1, 2**32))
                 for _ in range(500)]
        a = np.array([p[0] for p in pairs], dtype=np.uint64)
        b = np.array([p[1] for p in pairs], dtype=np.uint64)
        got = batch.pair_unit(a, b, 0x5EED0001)
        for (x, y), g in zip(pairs, got):
            assert float(g) == _pair_unit(x, y, 0x5EED0001)

    def test_pair_unit_unordered(self):
        a = np.array([100, 200], dtype=np.uint64)
        b = np.array([200, 100], dtype=np.uint64)
        got = batch.pair_unit(a, b, 1)
        assert got[0] == got[1]

    def test_penalty_matrix_bit_identical(self):
        model = LatencyModel()
        rng = random.Random(31)
        asns_a = [rng.randrange(100, 40000) for _ in range(25)]
        asns_b = [rng.randrange(100, 40000) for _ in range(30)]
        matrix = batch.peering_penalty_matrix(asns_a, asns_b, model.params)
        for i, a in enumerate(asns_a):
            for j, b in enumerate(asns_b):
                assert matrix[i, j] == model.peering_penalty_ms(a, b)

    def test_same_as_is_exactly_zero(self):
        matrix = batch.peering_penalty_matrix([7018, 3356], [7018, 3356])
        assert matrix[0, 0] == 0.0
        assert matrix[1, 1] == 0.0
        assert matrix[0, 1] > 0.0


class TestRttKernel:
    def test_matrix_matches_scalar(self):
        model = LatencyModel()
        rng = random.Random(77)
        a = _random_points(rng, 12)
        b = _random_points(rng, 18)
        asns_a = [rng.randrange(100, 5000) for _ in range(12)]
        asns_b = [rng.randrange(100, 5000) for _ in range(18)]
        lat_a, lon_a = batch.geo_columns(a)
        lat_b, lon_b = batch.geo_columns(b)
        matrix = batch.rtt_matrix(lat_a, lon_a, asns_a,
                                  lat_b, lon_b, asns_b,
                                  params=model.params)
        scalar = np.array([
            [model.base_rtt_ms(pa, aa, pb, ab)
             for pb, ab in zip(b, asns_b)]
            for pa, aa in zip(a, asns_a)
        ])
        np.testing.assert_allclose(matrix, scalar, rtol=REL_TOL, atol=0)

    def test_same_as_floor_edge(self):
        # Two endpoints in the same AS a few hundred feet apart: both
        # paths must clamp to the same_as_floor_ms minimum.
        model = LatencyModel()
        near_a = GeoPoint(40.7128, -74.0060)
        near_b = GeoPoint(40.7129, -74.0061)
        got = float(batch.rtt_matrix(
            [near_a.lat], [near_a.lon], [100],
            [near_b.lat], [near_b.lon], [100], params=model.params)[0, 0])
        want = model.base_rtt_ms(near_a, 100, near_b, 100)
        assert got == want == model.params.same_as_floor_ms

    def test_last_mile_penalty(self):
        model = LatencyModel()
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(20.0, 30.0)
        got = float(batch.rtt_matrix(
            [a.lat], [a.lon], [100], [b.lat], [b.lon], [200],
            params=model.params, last_mile_ms=45.0)[0, 0])
        assert got == pytest.approx(
            model.base_rtt_ms(a, 100, b, 200, last_mile_ms=45.0),
            rel=REL_TOL)

    def test_point_to_many(self):
        model = LatencyModel()
        rng = random.Random(3)
        b = _random_points(rng, 10)
        asns_b = [rng.randrange(100, 900) for _ in range(10)]
        lat_b, lon_b = batch.geo_columns(b)
        got = batch.rtt_point_to_many(48.85, 2.35, 400,
                                      lat_b, lon_b, asns_b)
        assert got.shape == (10,)
        origin = GeoPoint(48.85, 2.35)
        for i in range(10):
            assert got[i] == pytest.approx(
                model.base_rtt_ms(origin, 400, b[i], asns_b[i]),
                rel=REL_TOL)


class TestClusterGeometryKernels:
    def test_centroid_matches_scalar(self):
        rng = random.Random(41)
        points = _random_points(rng, 30)
        weights = [rng.uniform(0.1, 10.0) for _ in range(30)]
        lats, lons = batch.geo_columns(points)
        c_lat, c_lon = batch.weighted_centroid_arrays(
            lats, lons, np.array(weights))
        want = weighted_centroid(points, weights)
        assert c_lat == pytest.approx(want.lat, abs=1e-9)
        assert c_lon == pytest.approx(want.lon, abs=1e-9)

    def test_radius_matches_scalar(self):
        rng = random.Random(43)
        points = _random_points(rng, 25)
        weights = [rng.uniform(0.1, 5.0) for _ in range(25)]
        lats, lons = batch.geo_columns(points)
        got = batch.cluster_radius_miles_arrays(lats, lons,
                                                np.array(weights))
        assert got == pytest.approx(cluster_radius_miles(points, weights),
                                    rel=REL_TOL)

    def test_mean_distance_matches_scalar(self):
        rng = random.Random(47)
        points = _random_points(rng, 20)
        weights = [rng.uniform(0.1, 5.0) for _ in range(20)]
        origin = GeoPoint(35.68, 139.69)
        lats, lons = batch.geo_columns(points)
        got = batch.mean_distance_miles_arrays(
            origin.lat, origin.lon, lats, lons, np.array(weights))
        assert got == pytest.approx(
            mean_distance_miles(origin, zip(points, weights)),
            rel=REL_TOL)

    def test_centroid_rejects_bad_input(self):
        with pytest.raises(ValueError):
            batch.weighted_centroid_arrays([], [], [])
        with pytest.raises(ValueError):
            batch.weighted_centroid_arrays([1.0], [1.0], [0.0])
        with pytest.raises(ValueError):
            batch.weighted_centroid_arrays([1.0, 2.0], [1.0, 2.0], [1.0])
