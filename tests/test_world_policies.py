"""World-level policy tests: NS vs EU vs CANS through the full stack."""

import pytest

from repro.core.policies import EUMappingPolicy, NSMappingPolicy
from repro.dnsproto.types import QType
from repro.net.geometry import great_circle_miles
from repro.api import build_world
from repro.simulation import WorldConfig


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig.tiny())


def far_public_block(world):
    public = world.internet.public_resolver_ids()
    candidates = [b for b in world.internet.blocks
                  if b.primary_ldns in public]
    return max(candidates, key=lambda b: great_circle_miles(
        b.geo, world.internet.resolvers[b.primary_ldns].geo))


def mapping_distance(world, block, now):
    ldns = world.ldns_registry[block.primary_ldns]
    outcome = ldns.resolve(world.catalog.providers[0].domain, QType.A,
                           block.prefix.network | 3, now)
    assert outcome.addresses
    cluster = world.deployments.cluster_of_server(outcome.addresses[0])
    return great_circle_miles(block.geo, cluster.geo)


class TestPolicySwap:
    def test_cans_beats_pure_ns_for_cohesive_far_cluster(self, world):
        """CANS should improve on NS for clients whose LDNS is far but
        whose sibling clients cluster together (paper Section 6)."""
        world.disable_all_ecs()
        ttl_gap = world.config.dns_ttl + world.mapping.decision_ttl + 60

        # Find an LDNS whose observed client cluster is cohesive but
        # far from the LDNS itself: a public deployment serving one
        # region across an ocean.
        from repro.analysis.clusters import ldns_cluster_stats
        stats = ldns_cluster_stats(world.internet)
        candidates = [
            s for s in stats
            if s.is_public and s.n_blocks >= 3
            and s.mean_client_distance_miles > 3 * max(s.radius_miles, 1)
            and s.mean_client_distance_miles > 1500
        ]
        if not candidates:
            pytest.skip("no cohesive far cluster in this tiny world")
        target_stat = max(candidates, key=lambda s: s.demand)
        block = max(
            (b for b in world.internet.blocks
             if b.primary_ldns == target_stat.resolver_id),
            key=lambda b: b.demand)

        world.set_policy(NSMappingPolicy(world.internet.geodb))
        ns_distance = mapping_distance(world, block, now=0)

        world.set_policy(world.cans_policy())
        cans_distance = mapping_distance(world, block, now=ttl_gap)

        world.set_policy(EUMappingPolicy(world.internet.geodb))
        assert cans_distance < ns_distance

    def test_eu_without_ecs_behaves_like_ns(self, world):
        """EU policy falls back to the LDNS when no ECS arrives, so
        with ECS globally off the two policies map identically."""
        world.disable_all_ecs()
        block = far_public_block(world)
        ttl_gap = world.config.dns_ttl + world.mapping.decision_ttl + 60

        world.set_policy(NSMappingPolicy(world.internet.geodb))
        ns_distance = mapping_distance(world, block, now=10 * ttl_gap)

        world.set_policy(EUMappingPolicy(world.internet.geodb))
        eu_distance = mapping_distance(world, block, now=11 * ttl_gap)
        assert eu_distance == pytest.approx(ns_distance, rel=1e-9)

    def test_eu_with_ecs_improves_far_public_client(self, world):
        block = far_public_block(world)
        ttl_gap = world.config.dns_ttl + world.mapping.decision_ttl + 60
        world.set_policy(EUMappingPolicy(world.internet.geodb))

        world.disable_all_ecs()
        before = mapping_distance(world, block, now=20 * ttl_gap)
        world.enable_ecs(world.public_ldns_ids())
        after = mapping_distance(world, block, now=21 * ttl_gap)
        world.disable_all_ecs()
        assert after < 0.5 * before
