"""Adversarial tie-break regression for the batch load-balancer path.

``GlobalLoadBalancer.pick_clusters_batch`` must pick exactly what the
scalar ``pick_cluster`` would -- including the ``(score, cluster_id)``
tie break, the capacity-ceiling spillover walk, and the least-loaded
fallback -- and must advance the ``decisions``/``spillovers`` counters
identically.  The adversarial setup here makes every cluster score
*equal* (so ordering rests purely on the tie break) and saturates
capacity (so the spillover/fallback paths are exercised, not just the
happy first-choice path).
"""

import numpy as np
import pytest

from repro.cdn.deployments import Cluster, DeploymentPlan
from repro.cdn.server import EdgeServer
from repro.core.loadbalancer import (
    GlobalLoadBalancer,
    LoadBalancerConfig,
)
from repro.core.policies import MapTarget
from repro.net.geometry import GeoPoint


class ConstantScorer:
    """Every (cluster, target) pair scores identically: all ties."""

    def __init__(self, score: float = 1.0) -> None:
        self._score = score

    def score(self, cluster, target) -> float:
        return self._score

    def score_weighted(self, cluster, weighted) -> float:
        return self._score

    def score_targets(self, clusters, targets) -> np.ndarray:
        return np.full((len(clusters), len(targets)), self._score)


def _make_plan(n_clusters: int, utilizations) -> DeploymentPlan:
    clusters = {}
    for index in range(n_clusters):
        cluster_id = f"cl-{index:02d}"
        cluster = Cluster(cluster_id=cluster_id, city="x", country="XX",
                          geo=GeoPoint(0.0, float(index)), asn=64512)
        server = EdgeServer(ip=10_000 + index, cluster_id=cluster_id,
                            capacity_rps=1000.0)
        server.add_load(utilizations[index] * 1000.0)
        cluster.servers.append(server)
        clusters[cluster_id] = cluster
    return DeploymentPlan(clusters=clusters)


def _targets(n: int):
    return [MapTarget(geo=GeoPoint(float(i), 0.0), asn=100 + i)
            for i in range(n)]


CASES = {
    "all_saturated": [0.99] * 8,
    "all_equally_saturated": [0.90] * 8,
    "first_saturated": [0.99, 0.99, 0.10] + [0.99] * 5,
    "headroom_everywhere": [0.10] * 8,
    "mixed": [0.99, 0.10, 0.99, 0.86, 0.05, 0.99, 0.85, 0.99],
}


class TestBatchMatchesScalarUnderTies:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_picks_and_counters_identical(self, case):
        utilizations = CASES[case]
        config = LoadBalancerConfig(candidate_limit=4)
        targets = _targets(6)

        scalar_lb = GlobalLoadBalancer(
            _make_plan(len(utilizations), utilizations),
            ConstantScorer(), config)
        batch_lb = GlobalLoadBalancer(
            _make_plan(len(utilizations), utilizations),
            ConstantScorer(), config)

        scalar_picks = [scalar_lb.pick_cluster(t) for t in targets]
        batch_picks = batch_lb.pick_clusters_batch(targets)

        assert ([c.cluster_id for c in scalar_picks]
                == [c.cluster_id for c in batch_picks])
        assert batch_lb.decisions == scalar_lb.decisions == len(targets)
        assert batch_lb.spillovers == scalar_lb.spillovers

    def test_saturated_ties_fall_back_to_least_loaded(self):
        """All candidates over the ceiling: both paths degrade to the
        least-loaded candidate and count one spillover per decision."""
        utilizations = [0.99, 0.95, 0.99, 0.97] + [0.99] * 4
        config = LoadBalancerConfig(candidate_limit=4)
        targets = _targets(3)
        lb = GlobalLoadBalancer(_make_plan(8, utilizations),
                                ConstantScorer(), config)
        picks = lb.pick_clusters_batch(targets)
        # cl-01 is the least loaded inside the candidate window.
        assert [c.cluster_id for c in picks] == ["cl-01"] * 3
        assert lb.spillovers == 3
        assert lb.decisions == 3

    def test_equal_scores_rank_by_cluster_id(self):
        lb = GlobalLoadBalancer(_make_plan(5, [0.0] * 5),
                                ConstantScorer(), LoadBalancerConfig())
        ranked = lb.rank_clusters(_targets(1)[0])
        assert [c.cluster_id for c in ranked] == [
            f"cl-{i:02d}" for i in range(5)]
        batch_ranked = lb.rank_clusters_batch(_targets(1))[0]
        assert ([c.cluster_id for c in batch_ranked]
                == [c.cluster_id for c in ranked])

    def test_spillover_attributed_to_scalar_path_decisions(self):
        """Regression: batch decisions with a saturated best choice
        must count spillovers exactly once per affected target."""
        utilizations = [0.99, 0.10, 0.10, 0.10, 0.10]
        lb = GlobalLoadBalancer(
            _make_plan(5, utilizations), ConstantScorer(),
            LoadBalancerConfig(candidate_limit=4))
        picks = lb.pick_clusters_batch(_targets(4))
        assert [c.cluster_id for c in picks] == ["cl-01"] * 4
        assert lb.spillovers == 4
