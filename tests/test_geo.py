"""Tests for the city gazetteer and geolocation database."""

import pytest

from repro.geo import (
    City,
    GeoDatabase,
    GeoRecord,
    WORLD_CITIES,
    cities_by_country,
    city_index,
)
from repro.net.geometry import GeoPoint, great_circle_miles
from repro.net.ipv4 import Prefix, parse_ipv4

PAPER_COUNTRIES = [
    "IN", "TR", "VN", "MX", "BR", "ID", "AU", "RU", "IT", "JP", "US", "MY",
    "CA", "DE", "FR", "GB", "NL", "AR", "TH", "CH", "ES", "HK", "KR", "SG",
    "TW",
]


class TestGazetteer:
    def test_covers_paper_countries(self):
        countries = {city.country for city in WORLD_CITIES}
        for code in PAPER_COUNTRIES:
            assert code in countries, f"missing paper country {code}"

    def test_unique_names(self):
        names = [city.name for city in WORLD_CITIES]
        assert len(names) == len(set(names))

    def test_positive_weights(self):
        assert all(city.weight > 0 for city in WORLD_CITIES)

    def test_reasonable_size(self):
        assert len(WORLD_CITIES) >= 150

    def test_grouping(self):
        grouped = cities_by_country()
        assert sum(len(v) for v in grouped.values()) == len(WORLD_CITIES)
        assert len(grouped["US"]) >= 15
        assert len(grouped["IN"]) >= 10

    def test_index(self):
        assert city_index()["Tokyo"].country == "JP"

    def test_continents_valid(self):
        valid = {"NA", "SA", "EU", "AS", "OC", "AF"}
        assert all(city.continent in valid for city in WORLD_CITIES)

    def test_spot_check_coordinates(self):
        # Sanity-check a few well-known city coordinates.
        tokyo = city_index()["Tokyo"]
        assert tokyo.geo.lat == pytest.approx(35.7, abs=0.5)
        sydney = city_index()["Sydney"]
        assert sydney.geo.lat < 0  # southern hemisphere


def _record(city_name: str, asn: int) -> GeoRecord:
    city = city_index()[city_name]
    return GeoRecord(geo=city.geo, city=city.name, country=city.country,
                     continent=city.continent, asn=asn)


class TestGeoDatabase:
    def test_lookup_longest_prefix(self):
        db = GeoDatabase()
        db.register(Prefix.parse("10.0.0.0/8"), _record("New York", 1))
        db.register(Prefix.parse("10.5.0.0/16"), _record("Tokyo", 2))
        assert db.lookup(parse_ipv4("10.5.1.1")).city == "Tokyo"
        assert db.lookup(parse_ipv4("10.6.1.1")).city == "New York"
        assert db.lookup(parse_ipv4("11.0.0.0")) is None

    def test_lookup_prefix(self):
        db = GeoDatabase()
        db.register(Prefix.parse("10.5.0.0/16"), _record("Tokyo", 2))
        rec = db.lookup_prefix(Prefix.parse("10.5.7.0/24"))
        assert rec.city == "Tokyo"

    def test_len_and_items(self):
        db = GeoDatabase()
        db.register(Prefix.parse("10.0.0.0/8"), _record("New York", 1))
        db.register(Prefix.parse("20.0.0.0/8"), _record("Tokyo", 2))
        assert len(db) == 2
        listed = list(db.items())
        assert [str(p) for p, _ in listed] == ["10.0.0.0/8", "20.0.0.0/8"]

    def test_with_error_displaces_within_bound(self):
        db = GeoDatabase()
        db.register(Prefix.parse("10.0.0.0/8"), _record("New York", 1))
        noisy = db.with_error(error_miles=50, seed=3)
        original = db.lookup(parse_ipv4("10.1.1.1"))
        displaced = noisy.lookup(parse_ipv4("10.1.1.1"))
        moved = great_circle_miles(original.geo, displaced.geo)
        assert 0 <= moved <= 51
        # Labels must survive.
        assert displaced.city == original.city
        assert displaced.asn == original.asn

    def test_with_error_zero_is_identity(self):
        db = GeoDatabase()
        db.register(Prefix.parse("10.0.0.0/8"), _record("New York", 1))
        clone = db.with_error(error_miles=0, seed=1)
        a = db.lookup(parse_ipv4("10.1.1.1")).geo
        b = clone.lookup(parse_ipv4("10.1.1.1")).geo
        assert great_circle_miles(a, b) == pytest.approx(0, abs=1e-6)

    def test_with_error_rejects_negative(self):
        with pytest.raises(ValueError):
            GeoDatabase().with_error(error_miles=-1)
