"""Integration tests for transport + authoritative + recursive + stub.

Builds a miniature hand-wired world (no topology generator): clients in
two /24 blocks in different cities, one LDNS, two authoritative
deployments, a content-provider zone CNAMEing onto the CDN zone, and a
mapping-like answer source that returns different servers per ECS block.
"""

import pytest

from repro.dnsproto.edns import ClientSubnetOption
from repro.dnsproto.message import ResourceRecord, make_query
from repro.dnsproto.rdata import ARdata, CNAMERdata
from repro.dnsproto.types import QType, Rcode
from repro.dnssrv import (
    AuthoritativeServer,
    AuthorityDirectory,
    EcsAwareCache,
    Network,
    RecursiveResolver,
    StaticZone,
    StubResolver,
    WhoAmIZone,
    ZoneAnswer,
)
from repro.geo.cities import city_index
from repro.geo.database import GeoDatabase, GeoRecord
from repro.net.ipv4 import Prefix, format_ipv4, parse_ipv4

CLIENT_NYC = parse_ipv4("10.0.0.5")     # block 10.0.0.0/24
CLIENT_NYC2 = parse_ipv4("10.0.0.77")   # same block
CLIENT_LA = parse_ipv4("10.0.1.5")      # block 10.0.1.0/24
LDNS_IP = parse_ipv4("20.0.0.1")
AUTH_NYC = parse_ipv4("30.0.0.1")
AUTH_LONDON = parse_ipv4("30.0.1.1")
SERVER_EAST = "50.0.0.1"
SERVER_WEST = "50.0.1.1"


def geo_record(city_name, asn):
    city = city_index()[city_name]
    return GeoRecord(geo=city.geo, city=city.name, country=city.country,
                     continent=city.continent, asn=asn)


@pytest.fixture
def world():
    geodb = GeoDatabase()
    geodb.register(Prefix.parse("10.0.0.0/24"), geo_record("New York", 100))
    geodb.register(Prefix.parse("10.0.1.0/24"),
                   geo_record("Los Angeles", 100))
    geodb.register(Prefix.parse("20.0.0.0/24"), geo_record("New York", 100))
    geodb.register(Prefix.parse("30.0.0.0/24"), geo_record("New York", 200))
    geodb.register(Prefix.parse("30.0.1.0/24"), geo_record("London", 200))
    network = Network(geodb)
    directory = AuthorityDirectory()
    return network, directory


class EcsEchoSource:
    """Mapping-like source: east-coast clients get SERVER_EAST, others
    SERVER_WEST, with a /24 answer scope.  Captures received ECS."""

    def __init__(self):
        self.seen_ecs = []
        self.answers = 0

    def answer(self, qname, qtype, ecs, src_ip, now):
        self.seen_ecs.append(ecs)
        self.answers += 1
        if qtype != QType.A:
            return ZoneAnswer(rcode=Rcode.NOERROR)
        if ecs is not None and ecs.prefix.contains(CLIENT_NYC):
            address = SERVER_EAST
        else:
            address = SERVER_WEST
        record = ResourceRecord(qname, QType.A, 60,
                                ARdata(parse_ipv4(address)))
        scope = 24 if ecs is not None else None
        return ZoneAnswer(records=(record,), scope_prefix_len=scope)


def build_cdn_auth(world, source=None):
    network, directory = world
    source = source or EcsEchoSource()
    for auth_ip in (AUTH_NYC, AUTH_LONDON):
        server = AuthoritativeServer(auth_ip)
        server.attach_zone("cdn.example", source)
        server.attach_zone("whoami.cdn.example",
                           WhoAmIZone("whoami.cdn.example"))
        network.register(server)
    directory.delegate("cdn.example", [AUTH_NYC, AUTH_LONDON])
    return source


def build_provider_auth(world):
    network, directory = world
    zone = StaticZone()
    zone.add(ResourceRecord("www.shop.example", QType.CNAME, 300,
                            CNAMERdata("e123.cdn.example")))
    server = AuthoritativeServer(parse_ipv4("30.0.0.2"))
    # Provider zone is served from the NYC data center too.
    server.attach_zone("shop.example", zone)
    network.register(server)
    directory.delegate("shop.example", [parse_ipv4("30.0.0.2")])


class TestAuthorityDirectory:
    def test_longest_suffix_match(self, world):
        _network, directory = world
        directory.delegate("cdn.example", [1])
        directory.delegate("special.cdn.example", [2])
        assert directory.authority_for("a.cdn.example")[1] == [1]
        assert directory.authority_for("x.special.cdn.example")[1] == [2]
        assert directory.authority_for("other.org") is None

    def test_root_fallback(self, world):
        _network, directory = world
        directory.delegate("", [9])
        assert directory.authority_for("anything.at.all")[1] == [9]

    def test_rejects_empty_server_list(self, world):
        _network, directory = world
        with pytest.raises(ValueError):
            directory.delegate("x", [])


class TestNetwork:
    def test_rtt_requires_geolocation(self, world):
        network, _ = world
        with pytest.raises(KeyError):
            network.rtt_ms(parse_ipv4("99.99.99.99"), CLIENT_NYC)

    def test_query_to_unregistered_endpoint(self, world):
        network, _ = world
        with pytest.raises(KeyError):
            network.query(CLIENT_NYC, parse_ipv4("88.0.0.1"),
                          make_query("x.example"), now=0)

    def test_ip_collision_detected(self, world):
        network, _ = world
        a = AuthoritativeServer(AUTH_NYC)
        b = AuthoritativeServer(AUTH_NYC)
        network.register(a)
        network.register(a)  # same object is fine
        with pytest.raises(ValueError):
            network.register(b)

    def test_cross_country_rtt_larger(self, world):
        network, _ = world
        near = network.rtt_ms(LDNS_IP, AUTH_NYC)
        far = network.rtt_ms(LDNS_IP, AUTH_LONDON)
        assert far > near

    def test_query_accounting(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        assert network.queries_sent == 1
        assert network.bytes_sent > 0


class TestAuthoritativeServer:
    def test_static_zone_a_lookup(self, world):
        network, directory = world
        zone = StaticZone().add(ResourceRecord(
            "www.shop.example", QType.A, 60, ARdata(parse_ipv4("5.5.5.5"))))
        server = AuthoritativeServer(AUTH_NYC)
        server.attach_zone("shop.example", zone)
        network.register(server)
        hop = network.query(LDNS_IP, AUTH_NYC,
                            make_query("www.shop.example"), now=0)
        assert str(hop.response.answers[0].rdata) == "5.5.5.5"
        assert hop.response.flags.aa

    def test_nxdomain_for_unknown_name(self, world):
        network, _directory = world
        server = AuthoritativeServer(AUTH_NYC)
        server.attach_zone("shop.example", StaticZone())
        network.register(server)
        hop = network.query(LDNS_IP, AUTH_NYC,
                            make_query("missing.shop.example"), now=0)
        assert hop.response.flags.rcode == Rcode.NXDOMAIN

    def test_refused_outside_zones(self, world):
        network, _directory = world
        server = AuthoritativeServer(AUTH_NYC)
        server.attach_zone("shop.example", StaticZone())
        network.register(server)
        hop = network.query(LDNS_IP, AUTH_NYC,
                            make_query("other.org"), now=0)
        assert hop.response.flags.rcode == Rcode.REFUSED

    def test_formerr_on_garbage(self, world):
        server = AuthoritativeServer(AUTH_NYC)
        out = server.handle_query(b"\x00\x07garbage-not-dns", CLIENT_NYC, 0)
        assert out is not None
        assert server.formerr_count == 1

    def test_query_counters(self, world):
        network, _ = world
        server = AuthoritativeServer(AUTH_NYC)
        server.attach_zone("shop.example", StaticZone())
        network.register(server)
        for _ in range(3):
            network.query(LDNS_IP, AUTH_NYC, make_query("a.shop.example"),
                          now=0)
        assert server.queries_received == 3
        assert server.responses_sent == 3

    def test_whoami_reflects_resolver(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        result = ldns.resolve("whoami.cdn.example", QType.TXT, CLIENT_NYC,
                              now=0)
        text = str(result.records[0].rdata)
        assert format_ipv4(LDNS_IP) in text

    def test_whoami_includes_ecs_when_forwarded(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory,
                                 ecs_enabled=True)
        result = ldns.resolve("whoami.cdn.example", QType.TXT, CLIENT_NYC,
                              now=0)
        text = str(result.records[0].rdata)
        assert "ecs=10.0.0.0/24" in text


class TestRecursiveResolver:
    def test_resolution_without_ecs(self, world):
        network, directory = world
        source = build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        result = ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        assert result.rcode == Rcode.NOERROR
        assert result.addresses == [parse_ipv4(SERVER_WEST)]
        assert source.seen_ecs == [None]

    def test_ecs_forwarded_as_slash24(self, world):
        network, directory = world
        source = build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory,
                                 ecs_enabled=True)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        (ecs,) = source.seen_ecs
        assert ecs == ClientSubnetOption(Prefix.parse("10.0.0.0/24"))

    def test_cache_hit_on_second_query(self, world):
        network, directory = world
        source = build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        first = ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        second = ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=1)
        assert not first.cache_hit and second.cache_hit
        assert second.upstream_queries == 0
        assert source.answers == 1

    def test_cached_ttl_ages(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        later = ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=20)
        assert later.records[0].ttl == 40

    def test_ttl_expiry_requeries(self, world):
        network, directory = world
        source = build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        result = ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=61)
        assert not result.cache_hit
        assert source.answers == 2

    def test_without_ecs_all_clients_share_cache(self, world):
        network, directory = world
        source = build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        result = ldns.resolve("e1.cdn.example", QType.A, CLIENT_LA, now=1)
        assert result.cache_hit
        assert source.answers == 1
        # And both got the same (NS-based) answer.
        assert result.addresses == [parse_ipv4(SERVER_WEST)]

    def test_with_ecs_blocks_get_separate_entries(self, world):
        """The paper's core cache behaviour: per-block resolutions."""
        network, directory = world
        source = build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory,
                                 ecs_enabled=True)
        nyc = ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        la = ldns.resolve("e1.cdn.example", QType.A, CLIENT_LA, now=1)
        assert source.answers == 2  # separate upstream query per block
        assert nyc.addresses == [parse_ipv4(SERVER_EAST)]
        assert la.addresses == [parse_ipv4(SERVER_WEST)]
        assert ldns.cache.scope_count("e1.cdn.example", QType.A, 2) == 2

    def test_with_ecs_same_block_shares_entry(self, world):
        network, directory = world
        source = build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory,
                                 ecs_enabled=True)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        result = ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC2, now=1)
        assert result.cache_hit
        assert source.answers == 1

    def test_scope_zero_shared_across_blocks(self, world):
        """Authority answering scope 0 (not client specific) must yield
        a single shared entry even with ECS enabled."""
        network, directory = world

        class GlobalSource:
            answers = 0
            def answer(self, qname, qtype, ecs, src_ip, now):
                GlobalSource.answers += 1
                record = ResourceRecord(qname, QType.A, 60,
                                        ARdata(parse_ipv4("7.7.7.7")))
                return ZoneAnswer(records=(record,), scope_prefix_len=0)

        server = AuthoritativeServer(AUTH_NYC)
        server.attach_zone("cdn.example", GlobalSource())
        network.register(server)
        directory.delegate("cdn.example", [AUTH_NYC])
        ldns = RecursiveResolver(LDNS_IP, network, directory,
                                 ecs_enabled=True)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        result = ldns.resolve("e1.cdn.example", QType.A, CLIENT_LA, now=1)
        assert result.cache_hit
        assert GlobalSource.answers == 1

    def test_cname_chase_across_zones(self, world):
        network, directory = world
        build_cdn_auth(world)
        build_provider_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory,
                                 ecs_enabled=True)
        result = ldns.resolve("www.shop.example", QType.A, CLIENT_NYC,
                              now=0)
        kinds = [r.rtype for r in result.records]
        assert QType.CNAME in kinds and QType.A in kinds
        assert result.addresses == [parse_ipv4(SERVER_EAST)]
        assert result.upstream_queries == 2

    def test_cname_chain_cached_independently(self, world):
        network, directory = world
        source = build_cdn_auth(world)
        build_provider_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        ldns.resolve("www.shop.example", QType.A, CLIENT_NYC, now=0)
        result = ldns.resolve("www.shop.example", QType.A, CLIENT_NYC,
                              now=10)
        assert result.cache_hit
        assert source.answers == 1

    def test_servfail_when_no_authority(self, world):
        network, directory = world
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        result = ldns.resolve("unknown.zone.example", QType.A, CLIENT_NYC,
                              now=0)
        assert result.rcode == Rcode.SERVFAIL
        assert result.records == ()

    def test_nearest_authority_preferred(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        network_before = network.queries_sent
        endpoint_nyc = network.endpoint(AUTH_NYC)
        endpoint_lon = network.endpoint(AUTH_LONDON)
        ldns.resolve("e1.cdn.example", QType.A, CLIENT_NYC, now=0)
        assert endpoint_nyc.queries_received == 1
        assert endpoint_lon.queries_received == 0
        assert network.queries_sent == network_before + 1

    def test_handle_query_wire_interface(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        network.register(ldns)
        hop = network.query(CLIENT_NYC, LDNS_IP,
                            make_query("e1.cdn.example", msg_id=42), now=0)
        assert hop.response.msg_id == 42
        assert hop.response.flags.ra
        assert not hop.response.flags.aa
        assert hop.response.answers

    def test_rejects_bad_ecs_source_len(self, world):
        network, directory = world
        with pytest.raises(ValueError):
            RecursiveResolver(LDNS_IP, network, directory,
                              ecs_source_len=0)


class TestStubResolver:
    def test_dns_time_includes_upstream_on_miss(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        stub = StubResolver(CLIENT_NYC, network)
        miss = stub.resolve("e1.cdn.example", ldns, now=0)
        hit = stub.resolve("e1.cdn.example", ldns, now=1)
        assert not miss.ldns_cache_hit and hit.ldns_cache_hit
        assert miss.dns_time_ms > hit.dns_time_ms
        client_hop = network.rtt_ms(CLIENT_NYC, LDNS_IP)
        assert hit.dns_time_ms == pytest.approx(client_hop)

    def test_resolution_ok_flag(self, world):
        network, directory = world
        build_cdn_auth(world)
        ldns = RecursiveResolver(LDNS_IP, network, directory)
        stub = StubResolver(CLIENT_NYC, network)
        good = stub.resolve("e1.cdn.example", ldns, now=0)
        bad = stub.resolve("nope.nowhere.example", ldns, now=0)
        assert good.ok and not bad.ok
