"""Tests for address allocation and the BGP table."""

import pytest

from repro.net.ipv4 import Prefix, parse_ipv4
from repro.topology.addressing import (
    AddressAllocator,
    BGPTable,
    CLIENT_SPACE_START,
    describe_chunk,
)


class TestAddressAllocator:
    def test_chunks_are_aligned_cidrs(self):
        alloc = AddressAllocator()
        for requested in (1, 2, 3, 5, 8, 100):
            chunk = alloc.allocate_chunk(requested)
            # Size is the next power of two and alignment matches size.
            assert chunk.num_addresses // 256 >= requested
            assert chunk.network % chunk.num_addresses == 0

    def test_chunks_do_not_overlap(self):
        alloc = AddressAllocator()
        chunks = [alloc.allocate_chunk(n) for n in (3, 1, 7, 2, 16)]
        for i, a in enumerate(chunks):
            for b in chunks[i + 1:]:
                assert not a.covers(b) and not b.covers(a)
                assert a.last < b.first or b.last < a.first

    def test_starts_in_client_space(self):
        alloc = AddressAllocator()
        chunk = alloc.allocate_chunk(1)
        assert chunk.network >= CLIENT_SPACE_START << 8

    def test_allocate_host_unique(self):
        alloc = AddressAllocator()
        hosts = {alloc.allocate_host() for _ in range(100)}
        assert len(hosts) == 100

    def test_rejects_bad_sizes(self):
        alloc = AddressAllocator()
        with pytest.raises(ValueError):
            alloc.allocate_chunk(0)
        with pytest.raises(ValueError):
            alloc.allocate_chunk((1 << 16) + 1)

    def test_describe_chunk(self):
        desc = describe_chunk(Prefix.parse("10.0.0.0/22"))
        assert "4 x /24" in desc


class TestBGPTable:
    def test_origin_lookup(self):
        table = BGPTable()
        table.announce(Prefix.parse("10.0.0.0/16"), 64512)
        table.announce(Prefix.parse("10.1.0.0/16"), 64513)
        assert table.origin_asn(parse_ipv4("10.0.5.1")) == 64512
        assert table.origin_asn(parse_ipv4("10.1.5.1")) == 64513
        assert table.origin_asn(parse_ipv4("11.0.0.1")) is None

    def test_more_specific_wins(self):
        table = BGPTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 1)
        table.announce(Prefix.parse("10.9.0.0/16"), 2)
        assert table.origin_asn(parse_ipv4("10.9.0.1")) == 2
        assert table.origin_asn(parse_ipv4("10.8.0.1")) == 1

    def test_duplicate_announcement_rejected(self):
        table = BGPTable()
        table.announce(Prefix.parse("10.0.0.0/16"), 1)
        with pytest.raises(ValueError):
            table.announce(Prefix.parse("10.0.0.0/16"), 2)

    def test_covering_cidr(self):
        table = BGPTable()
        cidr = Prefix.parse("10.0.0.0/20")
        table.announce(cidr, 1)
        assert table.covering_cidr(Prefix.parse("10.0.5.0/24")) == cidr
        assert table.covering_cidr(Prefix.parse("10.1.0.0/24")) is None

    def test_len_and_iteration(self):
        table = BGPTable()
        table.announce(Prefix.parse("10.0.0.0/16"), 1)
        table.announce(Prefix.parse("20.0.0.0/16"), 2)
        assert len(table) == 2
        asns = {a.asn for a in table.announcements()}
        assert asns == {1, 2}

    def test_repr(self):
        table = BGPTable()
        assert "empty" in repr(table)
        table.announce(Prefix.parse("10.0.0.0/16"), 9)
        assert "AS9" in repr(table)
