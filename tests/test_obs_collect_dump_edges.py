"""Edge-case coverage for ``repro.obs.collect`` and ``repro.obs.dump``.

The happy paths ride every golden-trace test; these pin the corners:
an empty registry renders empty (not crashing) output, non-finite
cluster utilization cannot poison the fleet-mean gauge into NaN,
dumps with tracing effectively off still emit well-formed payloads,
and ``--profile`` attaches the ``profile_*`` families / hotspot table
/ deterministic ``profile`` json section.
"""

import json
import math

import pytest

from repro.obs.collect import register_world_collectors
from repro.obs.dump import build_payload, main, run_scenario
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ProfileConfig


class TestEmptyRegistry:
    def test_snapshot_is_empty_sections(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_renders_are_empty_lists(self):
        registry = MetricsRegistry()
        assert registry.render_lines() == []
        assert registry.render_prom() == []


class TestNaNGuardedMeanUtilization:
    @staticmethod
    def _poison(cluster, value):
        # ``utilization`` is derived (load/capacity); poison the load.
        cluster.servers[0].load_rps = value

    def _gauges(self, world):
        registry = MetricsRegistry()
        register_world_collectors(registry, world)
        return registry.snapshot()["gauges"]

    def test_nan_utilization_does_not_poison_the_mean(self):
        world = run_scenario(sessions=1)
        clusters = list(world.deployments.clusters.values())
        assert len(clusters) >= 2
        self._poison(clusters[0], float("nan"))
        self._poison(clusters[1], float("inf"))
        mean = self._gauges(world)["clusters.mean_utilization"]
        assert math.isfinite(mean)
        assert mean >= 0.0

    def test_all_non_finite_falls_back_to_zero(self):
        world = run_scenario(sessions=1)
        for cluster in world.deployments.clusters.values():
            self._poison(cluster, float("nan"))
        gauges = self._gauges(world)
        assert gauges["clusters.mean_utilization"] == 0.0

    def test_finite_mean_unchanged_by_guard(self):
        world = run_scenario(sessions=3)
        clusters = [c for c in world.deployments.clusters.values()
                    if c.alive]
        expected = sum(c.utilization for c in clusters) / len(clusters)
        registry = MetricsRegistry()
        register_world_collectors(registry, world)
        gauges = registry.snapshot()["gauges"]
        assert gauges["clusters.mean_utilization"] == pytest.approx(
            expected)


class TestTracelessDump:
    def test_disabled_tracer_still_yields_full_payload(self):
        import random

        from repro.api import build_world
        from repro.experiments.scales import get_scale
        from repro.simulation.session import simulate_session

        world = build_world(get_scale("tiny").world)
        world.obs.tracer.enabled = False
        rng = random.Random(7)
        for index in range(3):
            block = world.internet.pick_block(rng)
            simulate_session(world, block, now=index * 2.0, rng=rng)
        payload = build_payload(world, {"scale": "tiny"}, n_traces=3)
        assert payload["traces"] == []
        assert payload["metrics"]["counters"]

    def test_zero_trace_budget_empties_the_section(self):
        world = run_scenario(sessions=2)
        payload = build_payload(world, {}, n_traces=0)
        assert payload["traces"] == []

    def test_negative_n_traces_keeps_all(self):
        world = run_scenario(sessions=4)
        payload = build_payload(world, {}, n_traces=-1)
        assert len(payload["traces"]) == len(world.obs.tracer.traces)

    def test_text_format_under_sampling_starvation(self, capsys):
        # A huge sampling stride keeps only the first session's trace;
        # the header must still render the counts coherently.
        assert main(["--sessions", "3", "--sample-every", "999999",
                     "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert "traces     retained=1 sampled=1" in out


class TestDumpProfile:
    def test_unprofiled_payload_has_no_profile_key(self):
        world = run_scenario(sessions=2)
        assert "profile" not in build_payload(world, {}, 1)

    def test_profiled_payload_is_deterministic_view(self):
        world = run_scenario(sessions=2,
                             profile=ProfileConfig(hotspots=3))
        payload = build_payload(world, {}, 1)
        profile = payload["profile"]
        assert profile["schema"] == "profile/v1"
        assert "run" not in profile and "hotspots" not in profile
        assert "wall_s" not in profile["tree"]
        names = {child["name"]
                 for child in profile["tree"]["children"]}
        assert "session" in names

    def test_prom_format_gains_profile_families(self, capsys):
        assert main(["--sessions", "2", "--format", "prom",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile_phase_calls_total" in out
        assert 'phase="engine;session"' in out

    def test_prom_format_without_profile_unchanged(self, capsys):
        assert main(["--sessions", "2", "--format", "prom"]) == 0
        assert "profile_" not in capsys.readouterr().out

    def test_text_format_prints_hotspot_table(self, capsys):
        assert main(["--sessions", "2", "--format", "text",
                     "--profile", '{"hotspots": 2}']) == 0
        out = capsys.readouterr().out
        assert "engine hotspots (self wall-clock):" in out
        assert "phase" in out and "self_s" in out

    def test_json_byte_identical_across_profiled_runs(self, capsys):
        argv = ["--sessions", "3", "--profile"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "profile" in json.loads(first)
