"""Tests for the CDN substrate: servers, deployments, content, origin."""

import random

import pytest

from repro.cdn import (
    CDN_BACKBONE_ASN,
    EdgeServer,
    LruCache,
    build_catalog,
    build_deployments,
)
from repro.cdn.origin import deploy_origin, make_origin_allocator
from repro.geo.cities import city_index
from repro.geo.database import GeoDatabase
from repro.topology import InternetConfig, build_internet


class TestLruCache:
    def test_miss_then_hit(self):
        cache = LruCache(100)
        assert not cache.access("a", 10)
        assert cache.access("a", 10)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LruCache(30)
        cache.access("a", 10)
        cache.access("b", 10)
        cache.access("c", 10)
        cache.access("a", 10)  # refresh a
        cache.access("d", 10)  # evicts b (least recently used)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_capacity_respected(self):
        cache = LruCache(100)
        for i in range(50):
            cache.access(f"obj{i}", 10)
        assert cache.used_bytes <= 100
        assert len(cache) <= 10

    def test_oversized_object_not_stored(self):
        cache = LruCache(100)
        assert not cache.access("big", 500)
        assert "big" not in cache
        assert cache.used_bytes == 0

    def test_evict_specific(self):
        cache = LruCache(100)
        cache.access("a", 10)
        assert cache.evict("a")
        assert not cache.evict("a")
        assert cache.used_bytes == 0

    def test_clear(self):
        cache = LruCache(100)
        cache.access("a", 10)
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_rejects_bad_capacity_and_size(self):
        with pytest.raises(ValueError):
            LruCache(0)
        with pytest.raises(ValueError):
            LruCache(10).access("x", -1)

    def test_hit_rate(self):
        cache = LruCache(100)
        cache.access("a", 10)
        cache.access("a", 10)
        cache.access("a", 10)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestEdgeServer:
    def make(self, **kwargs):
        return EdgeServer(ip=1, cluster_id="c1", **kwargs)

    def test_serve_uses_cache(self):
        server = self.make()
        assert not server.serve("obj", 100)
        assert server.serve("obj", 100)

    def test_dead_server_refuses(self):
        server = self.make()
        server.fail()
        with pytest.raises(RuntimeError):
            server.serve("obj", 100)
        server.recover()
        server.serve("obj", 100)

    def test_load_and_overload(self):
        server = self.make(capacity_rps=100)
        assert not server.overloaded
        server.add_load(150)
        assert server.overloaded
        assert server.utilization == pytest.approx(1.5)
        server.reset_load()
        assert server.load_rps == 0

    def test_load_never_negative(self):
        server = self.make()
        server.add_load(-50)
        assert server.load_rps == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            self.make(capacity_rps=0)


@pytest.fixture(scope="module")
def small_net():
    return build_internet(InternetConfig.tiny(), seed=3)


class TestDeployments:
    def test_builds_requested_count(self, small_net):
        plan = build_deployments(40, small_net.geodb, seed=1)
        assert len(plan) == 40

    def test_servers_indexed(self, small_net):
        plan = build_deployments(10, small_net.geodb, seed=1,
                                 servers_per_cluster=3)
        for cluster in plan.clusters.values():
            assert len(cluster.servers) == 3
            for server in cluster.servers:
                assert plan.server_index[server.ip] is server
                assert plan.cluster_of_server(server.ip) is cluster

    def test_clusters_registered_in_geodb(self, small_net):
        plan = build_deployments(10, small_net.geodb, seed=1)
        for cluster in plan.clusters.values():
            rec = small_net.geodb.lookup(cluster.servers[0].ip)
            assert rec is not None
            assert rec.city == cluster.city

    def test_in_isp_deployments_use_host_asn(self, small_net):
        plan = build_deployments(
            60, small_net.geodb, seed=2,
            host_ases=list(small_net.ases.values()), in_isp_rate=1.0)
        asns = {c.asn for c in plan.clusters.values()}
        # With rate 1.0 every cluster in a country with ISPs uses a
        # host ASN; the backbone may remain for ISP-less countries.
        assert any(asn != CDN_BACKBONE_ASN for asn in asns)

    def test_zero_in_isp_rate_uses_backbone(self, small_net):
        plan = build_deployments(
            20, small_net.geodb, seed=2,
            host_ases=list(small_net.ases.values()), in_isp_rate=0.0)
        assert all(c.asn == CDN_BACKBONE_ASN
                   for c in plan.clusters.values())

    def test_small_n_hits_major_metros(self, small_net):
        plan = build_deployments(25, small_net.geodb, seed=5)
        countries = {c.country for c in plan.clusters.values()}
        assert len(countries) >= 8  # spread, not one metro

    def test_deterministic(self, small_net):
        geodb_a = GeoDatabase()
        geodb_b = GeoDatabase()
        a = build_deployments(15, geodb_a, seed=9)
        b = build_deployments(15, geodb_b, seed=9)
        assert list(a.clusters) == list(b.clusters)

    def test_cluster_capacity_and_liveness(self, small_net):
        plan = build_deployments(5, small_net.geodb, seed=1,
                                 servers_per_cluster=2,
                                 server_capacity_rps=100)
        cluster = next(iter(plan.clusters.values()))
        assert cluster.capacity_rps == 200
        for server in cluster.servers:
            server.fail()
        assert not cluster.alive
        assert cluster not in plan.live_clusters()

    def test_rejects_bad_params(self, small_net):
        with pytest.raises(ValueError):
            build_deployments(0, small_net.geodb)
        with pytest.raises(ValueError):
            build_deployments(5, small_net.geodb, servers_per_cluster=0)


class TestContentCatalog:
    def test_catalog_size(self):
        catalog = build_catalog(25, seed=1)
        assert len(catalog) == 25

    def test_lookup_by_domain_and_hostname(self):
        catalog = build_catalog(5, seed=1)
        provider = catalog.providers[0]
        assert catalog.by_domain(provider.domain) is provider
        assert catalog.by_cdn_hostname(provider.cdn_hostname) is provider
        assert catalog.by_domain("nonexistent.example") is None

    def test_popularity_zipf(self):
        catalog = build_catalog(20, seed=1)
        pops = [p.popularity for p in catalog.providers]
        assert pops == sorted(pops, reverse=True)
        assert pops[0] > 3 * pops[-1]

    def test_pick_provider_weighted(self):
        catalog = build_catalog(10, seed=1)
        rng = random.Random(5)
        counts = {}
        for _ in range(2000):
            provider = catalog.pick_provider(rng)
            counts[provider.name] = counts.get(provider.name, 0) + 1
        assert counts["provider0"] > counts.get("provider9", 0)

    def test_pages_have_realistic_anatomy(self):
        catalog = build_catalog(30, seed=2)
        dynamic_seen = static_seen = False
        for provider in catalog.providers:
            assert provider.pages
            for page in provider.pages:
                assert page.base_size_bytes > 0
                assert page.objects
                dynamic_seen = dynamic_seen or page.dynamic
                static_seen = static_seen or not page.dynamic
        assert dynamic_seen and static_seen

    def test_page_pick(self):
        catalog = build_catalog(3, seed=2)
        rng = random.Random(0)
        page = catalog.providers[0].pick_page(rng)
        assert page in catalog.providers[0].pages

    def test_deterministic(self):
        a = build_catalog(10, seed=4)
        b = build_catalog(10, seed=4)
        assert [p.domain for p in a.providers] == [
            p.domain for p in b.providers]
        assert [len(p.pages) for p in a.providers] == [
            len(p.pages) for p in b.providers]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_catalog(0)


class TestOrigin:
    def test_deploy_registers_geo(self):
        geodb = GeoDatabase()
        alloc = make_origin_allocator()
        origin = deploy_origin("p0", city_index()["Frankfurt"], geodb, alloc)
        rec = geodb.lookup(origin.ip)
        assert rec.city == "Frankfurt"

    def test_fetch_time_uses_overlay(self):
        geodb = GeoDatabase()
        alloc = make_origin_allocator()
        origin = deploy_origin("p0", city_index()["Frankfurt"], geodb, alloc,
                               overlay_speedup=0.5)
        assert origin.fetch_time_ms(edge_rtt_ms=100, think_ms=30) == 80

    def test_unique_ips(self):
        geodb = GeoDatabase()
        alloc = make_origin_allocator()
        a = deploy_origin("p0", city_index()["Tokyo"], geodb, alloc)
        b = deploy_origin("p1", city_index()["Tokyo"], geodb, alloc)
        assert a.ip != b.ip

    def test_rejects_bad_speedup(self):
        geodb = GeoDatabase()
        alloc = make_origin_allocator()
        with pytest.raises(ValueError):
            deploy_origin("p0", city_index()["Tokyo"], geodb, alloc,
                          overlay_speedup=0.0)

    def test_rejects_negative_times(self):
        geodb = GeoDatabase()
        alloc = make_origin_allocator()
        origin = deploy_origin("p0", city_index()["Tokyo"], geodb, alloc)
        with pytest.raises(ValueError):
            origin.fetch_time_ms(-1, 0)
