"""Unit tests for the perf-regression gate (repro.bench.regress)."""

import json

import pytest

from repro.bench.regress import (
    MIN_PHASE_SELF_S,
    compare_pair,
    compare_trajectory,
    derive_phase_rates,
    derive_speedups,
    host_warnings,
    load_speedups,
    main,
)


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


def _v2(speedups):
    return {"schema": "bench/v2", "benches": {}, "speedups": speedups}


def _v3(speedups, phases=None, host=None):
    doc = {"schema": "bench/v3", "benches": {}, "speedups": speedups,
           "phases": phases or {}}
    if host is not None:
        doc["host"] = host
    return doc


def _host(cpus=4, platform="Linux-x86_64"):
    return {"cpus": cpus, "cpus_available": cpus, "platform": platform,
            "python": "3.11.0"}


class TestLoading:
    def test_derive_speedups_pairs_scalar_and_batch(self):
        benches = {
            "tiny/x_scalar": {"wall_s": 10.0},
            "tiny/x_batch": {"wall_s": 0.5},
            "tiny/unpaired_batch": {"wall_s": 1.0},
            "tiny/also_unpaired_scalar": {"wall_s": 1.0},
        }
        assert derive_speedups(benches) == {"tiny/x": 20.0}

    def test_load_v2_schema(self, tmp_path):
        path = _write(tmp_path / "b.json", _v2({"tiny/x": 12.5}))
        assert load_speedups(path) == {"tiny/x": 12.5}

    def test_load_v1_flat_schema(self, tmp_path):
        path = _write(tmp_path / "b.json", {
            "tiny/x_scalar": {"wall_s": 4.0},
            "tiny/x_batch": {"wall_s": 2.0},
        })
        assert load_speedups(path) == {"tiny/x": 2.0}

    def test_load_v2_benches_without_speedups(self, tmp_path):
        path = _write(tmp_path / "b.json", {
            "schema": "bench/v2",
            "benches": {"tiny/x_scalar": {"wall_s": 4.0},
                        "tiny/x_batch": {"wall_s": 1.0}},
        })
        assert load_speedups(path) == {"tiny/x": 4.0}

    def test_load_v3_merges_phase_rates(self, tmp_path):
        path = _write(tmp_path / "b.json", _v3(
            {"tiny/x": 12.5},
            phases={"rollout.day": {"calls": 100,
                                    "self_wall_s": 2.0}}))
        assert load_speedups(path) == {
            "tiny/x": 12.5, "phase/rollout.day": 50.0}

    def test_phase_rates_skip_noisy_and_idle_phases(self):
        rates = derive_phase_rates({
            "hot": {"calls": 1000, "self_wall_s": 1.0},
            "too_fast": {"calls": 1000,
                         "self_wall_s": MIN_PHASE_SELF_S / 2},
            "never_called": {"calls": 0, "self_wall_s": 1.0},
        })
        assert rates == {"phase/hot": 1000.0}

    def test_phase_collapse_gates_like_a_speedup(self, tmp_path):
        phases_old = {"session": {"calls": 1000, "self_wall_s": 1.0}}
        phases_new = {"session": {"calls": 1000, "self_wall_s": 10.0}}
        old = _write(tmp_path / "old.json", _v3({}, phases=phases_old))
        new = _write(tmp_path / "new.json", _v3({}, phases=phases_new))
        rows = compare_pair(old, new, tolerance=0.2)
        assert [row.bench for row in rows] == ["phase/session"]
        assert rows[0].regressed is True
        assert main([old, new]) == 1

    def test_phase_keys_vacuous_against_pre_v3_files(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"tiny/x": 10.0}))
        new = _write(tmp_path / "new.json", _v3(
            {"tiny/x": 10.0},
            phases={"session": {"calls": 10, "self_wall_s": 1.0}}))
        rows = compare_pair(old, new, tolerance=0.2)
        assert [row.bench for row in rows] == ["tiny/x"]
        assert main([old, new]) == 0


class TestComparison:
    def test_only_common_benches_compared(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"a": 10.0, "b": 5.0}))
        new = _write(tmp_path / "new.json", _v2({"b": 5.0, "c": 9.0}))
        rows = compare_pair(old, new, tolerance=0.2)
        assert [row.bench for row in rows] == ["b"]
        assert rows[0].regressed is False

    def test_regression_boundary_is_strict(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"a": 10.0}))
        exactly = _write(tmp_path / "at.json", _v2({"a": 8.0}))
        below = _write(tmp_path / "below.json", _v2({"a": 7.99}))
        assert compare_pair(old, exactly, 0.2)[0].regressed is False
        assert compare_pair(old, below, 0.2)[0].regressed is True

    def test_trajectory_compares_adjacent_pairs(self, tmp_path):
        paths = [
            _write(tmp_path / "1.json", _v2({"a": 10.0})),
            _write(tmp_path / "2.json", _v2({"a": 9.5})),
            _write(tmp_path / "3.json", _v2({"a": 5.0})),
        ]
        rows = compare_trajectory(paths, tolerance=0.2)
        assert len(rows) == 2
        assert rows[0].regressed is False   # 10.0 -> 9.5
        assert rows[1].regressed is True    # 9.5 -> 5.0


class TestMain:
    def test_exits_nonzero_on_over_20pct_regression(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json", _v2({"tiny/x": 50.0}))
        new = _write(tmp_path / "new.json", _v2({"tiny/x": 35.0}))
        assert main([old, new]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "perf regression detected" in captured.err

    def test_exits_zero_within_tolerance(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"tiny/x": 50.0}))
        new = _write(tmp_path / "new.json", _v2({"tiny/x": 45.0}))
        assert main([old, new]) == 0

    def test_loose_tolerance_accepts_noise(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"tiny/x": 50.0}))
        new = _write(tmp_path / "new.json", _v2({"tiny/x": 30.0}))
        assert main([old, new]) == 1
        assert main([old, new, "--tolerance", "0.6"]) == 0

    def test_json_format(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json", _v2({"tiny/x": 10.0}))
        new = _write(tmp_path / "new.json", _v2({"tiny/x": 2.0}))
        assert main([old, new, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["regressions"] == 1
        assert doc["comparisons"][0]["ratio"] == pytest.approx(0.2)

    def test_single_file_rejected(self, tmp_path):
        path = _write(tmp_path / "b.json", _v2({"a": 1.0}))
        with pytest.raises(SystemExit):
            main([path])

    def test_bad_tolerance_rejected(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"a": 1.0}))
        new = _write(tmp_path / "new.json", _v2({"a": 1.0}))
        with pytest.raises(SystemExit):
            main([old, new, "--tolerance", "1.5"])

    def test_checked_in_trajectory_passes_ci_tolerance(self):
        """The gate CI actually runs: the committed BENCH_* files must
        stay comparable under the loose cross-machine tolerance."""
        files = ["BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR3.json",
                 "BENCH_PR6.json", "BENCH_PR8.json"]
        assert main(files + ["--tolerance", "0.6"]) == 0


class TestHostWarnings:
    """Cross-host trajectory entries warn (satellite: the ratios are
    host-relative) but never fail the gate."""

    def test_same_host_no_warnings(self, tmp_path):
        paths = [
            _write(tmp_path / "1.json", _v3({"a": 1.0}, host=_host())),
            _write(tmp_path / "2.json", _v3({"a": 1.0}, host=_host())),
        ]
        assert host_warnings(paths) == []

    def test_cpu_count_change_warns(self, tmp_path):
        paths = [
            _write(tmp_path / "1.json",
                   _v3({"a": 1.0}, host=_host(cpus=1))),
            _write(tmp_path / "2.json",
                   _v3({"a": 1.0}, host=_host(cpus=16))),
        ]
        warnings = host_warnings(paths)
        assert len(warnings) == 1
        assert "different hosts" in warnings[0]
        assert "cpus" in warnings[0]

    def test_platform_change_warns_once_per_pair(self, tmp_path):
        paths = [
            _write(tmp_path / "1.json", _v3(
                {"a": 1.0}, host=_host(cpus=1, platform="Linux-arm"))),
            _write(tmp_path / "2.json", _v3(
                {"a": 1.0}, host=_host(cpus=8, platform="Darwin"))),
        ]
        assert len(host_warnings(paths)) == 1

    def test_missing_fingerprint_on_one_side_warns(self, tmp_path):
        paths = [
            _write(tmp_path / "1.json", _v2({"a": 1.0})),
            _write(tmp_path / "2.json", _v3({"a": 1.0}, host=_host())),
        ]
        warnings = host_warnings(paths)
        assert len(warnings) == 1
        assert "no host fingerprint" in warnings[0]
        assert "1.json" in warnings[0]

    def test_pre_v3_trajectory_stays_silent(self, tmp_path):
        paths = [
            _write(tmp_path / "1.json", _v2({"a": 1.0})),
            _write(tmp_path / "2.json", _v2({"a": 1.0})),
        ]
        assert host_warnings(paths) == []

    def test_warnings_are_non_fatal_and_reported(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json",
                     _v3({"a": 1.0}, host=_host(cpus=1)))
        new = _write(tmp_path / "new.json",
                     _v3({"a": 1.0}, host=_host(cpus=64)))
        assert main([old, new]) == 0
        assert "warning:" in capsys.readouterr().out

    def test_json_format_carries_warnings(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json",
                     _v3({"a": 1.0}, host=_host(cpus=1)))
        new = _write(tmp_path / "new.json",
                     _v3({"a": 1.0}, host=_host(cpus=64)))
        assert main([old, new, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["warnings"]) == 1


class TestNewBenches:
    """A PR may introduce bench scales its predecessors never ran
    (PR 6 adds ``large/*``); the gate compares the intersection only,
    so new keys in the newer file must never fail the trajectory."""

    def test_benches_only_in_newer_file_are_ignored(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"tiny/x": 10.0}))
        new = _write(tmp_path / "new.json",
                     _v2({"tiny/x": 10.0, "large/shard_w4": 1.7}))
        rows = compare_pair(old, new, tolerance=0.2)
        assert [row.bench for row in rows] == ["tiny/x"]
        assert main([old, new]) == 0

    def test_disjoint_files_pass_vacuously(self, tmp_path):
        old = _write(tmp_path / "old.json", _v2({"tiny/x": 10.0}))
        new = _write(tmp_path / "new.json", _v2({"large/y": 2.0}))
        assert compare_pair(old, new, tolerance=0.2) == []
        assert main([old, new]) == 0
