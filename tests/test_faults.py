"""Fault-injection subsystem: schedule data model, injector
apply/revert exactness, serve-stale boundaries, and the end-to-end
acceptance scenario (auth outage + ECS strip over one monitored
roll-out).

The scenario tests pin the PR's acceptance criteria: the run completes
with zero unhandled failures, availability stays above 99%, degraded
mapping is confined to the fault window, the outage alert fires and
resolves, and two same-seed runs emit byte-identical monitor reports
(plus a golden fixture, regenerated with ``REGEN_GOLDEN=1``).
"""

import datetime
import difflib
import json
import os
import pathlib
from dataclasses import replace

import pytest

from repro.api import ScenarioSpec, run
from repro.dnsproto.message import ResourceRecord
from repro.dnsproto.rdata import ARdata
from repro.dnsproto.types import QType, Rcode
from repro.dnssrv.cache import EcsAwareCache
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
)
from repro.net.ipv4 import parse_ipv4, prefix_of
from repro.simulation.rollout import RolloutConfig
from repro.simulation.world import WorldConfig, _build_world

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_faults.json"


def _event(**overrides):
    base = dict(start_day=2, duration_days=3, target="ns:0",
                kind=FaultKind.AUTH_OUTAGE)
    base.update(overrides)
    return FaultEvent(**base)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            _event(start_day=-1)
        with pytest.raises(ValueError):
            _event(duration_days=0)
        with pytest.raises(ValueError):
            _event(kind="meteor_strike")

    def test_window_semantics(self):
        event = _event(start_day=2, duration_days=3)
        assert event.end_day == 5
        assert not event.active(1)
        assert event.active(2)
        assert event.active(4)
        assert not event.active(5)

    def test_params_sorted_and_looked_up(self):
        event = _event(kind=FaultKind.LINK_DEGRADATION, target="isp:*",
                       params=(("loss_rate", 0.2),
                               ("latency_factor", 2.0)))
        assert event.params == (("latency_factor", 2.0),
                                ("loss_rate", 0.2))
        assert event.param("loss_rate") == 0.2
        assert event.param("absent", 7.0) == 7.0

    def test_dict_roundtrip(self):
        event = _event(kind=FaultKind.LINK_DEGRADATION, target="isp:1",
                       params=(("loss_rate", 0.1),))
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_canonical_order_and_queries(self):
        late = _event(start_day=9)
        early = _event(start_day=1, target="ns:1")
        strip = _event(start_day=1, kind=FaultKind.ECS_STRIP,
                       target="public:*")
        schedule = FaultSchedule((late, strip, early))
        assert schedule.events == (early, strip, late)
        assert len(schedule) == 3 and bool(schedule)
        assert schedule.active(0) == ()
        assert schedule.active(1) == (early, strip)
        assert schedule.window(FaultKind.AUTH_OUTAGE) == (1, 12)
        assert schedule.window(FaultKind.CLUSTER_OUTAGE) is None
        assert not FaultSchedule()

    def test_json_roundtrip(self):
        schedule = FaultSchedule((
            _event(), _event(start_day=5, kind=FaultKind.LINK_DEGRADATION,
                             target="isp:*", params=(("loss_rate", 0.3),))))
        assert FaultSchedule.from_json(schedule.to_json()) == schedule


class TestScheduleValidation:
    """Parse-time hardening: ``from_json``/``from_dict`` reject bad
    grammar and overlapping same-target events with a clear
    ``ValueError`` instead of surfacing deep inside injector replay."""

    def _json(self, *rows):
        return json.dumps([dict(start_day=1, duration_days=2, **row)
                           for row in rows])

    @pytest.mark.parametrize("kind,target,hint", [
        (FaultKind.AUTH_OUTAGE, "cluster:0", "unknown prefix"),
        (FaultKind.AUTH_OUTAGE, "bogus", "expected one of"),
        (FaultKind.CLUSTER_OUTAGE, "cluster:x", "takes an index"),
        (FaultKind.ECS_STRIP, "mapmaker:primary", "unknown prefix"),
        (FaultKind.LDNS_BLACKOUT, "public:", "empty suffix"),
        (FaultKind.LINK_DEGRADATION, "isp:one", "takes an index"),
        (FaultKind.MAPMAKER_CRASH, "ns:0", "unknown prefix"),
        (FaultKind.MAPMAKER_CRASH, "mapmaker:boss",
         "'primary', 'standby'"),
        (FaultKind.MAP_CORRUPTION, "mapmaker-0", "expected one of"),
    ])
    def test_bad_target_grammar_rejected(self, kind, target, hint):
        text = self._json(dict(kind=kind, target=target))
        with pytest.raises(ValueError, match=hint):
            FaultSchedule.from_json(text)

    def test_good_grammar_across_kinds_accepted(self):
        text = self._json(
            dict(kind=FaultKind.AUTH_OUTAGE, target="ns:*"),
            dict(kind=FaultKind.CLUSTER_OUTAGE, target="us-east-1"),
            dict(kind=FaultKind.ECS_STRIP, target="resolver:r-9"),
            dict(kind=FaultKind.LDNS_BLACKOUT, target="*"),
            dict(kind=FaultKind.MAPMAKER_HANG, target="mapmaker:1"),
            dict(kind=FaultKind.MAPMAKER_CRASH, target="mapmaker:standby"),
        )
        assert len(FaultSchedule.from_json(text)) == 6

    @pytest.mark.parametrize("field,value,hint", [
        ("duration_days", 0, "duration_days"),
        ("duration_days", -3, "duration_days"),
        ("start_day", -1, "start_day"),
    ])
    def test_bad_numbers_rejected(self, field, value, hint):
        doc = [dict(start_day=1, duration_days=2, target="ns:0",
                    kind=FaultKind.AUTH_OUTAGE)]
        doc[0][field] = value
        with pytest.raises(ValueError, match=hint):
            FaultSchedule.from_dict(doc)

    def test_overlapping_same_target_rejected(self):
        text = json.dumps([
            dict(start_day=1, duration_days=5, target="ns:0",
                 kind=FaultKind.AUTH_OUTAGE),
            dict(start_day=4, duration_days=2, target="ns:0",
                 kind=FaultKind.AUTH_OUTAGE),
        ])
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule.from_json(text)

    def test_adjacent_and_distinct_targets_allowed(self):
        text = json.dumps([
            # Back-to-back on one target: end_day is exclusive, so
            # [1, 4) followed by [4, 6) is legal.
            dict(start_day=1, duration_days=3, target="ns:0",
                 kind=FaultKind.AUTH_OUTAGE),
            dict(start_day=4, duration_days=2, target="ns:0",
                 kind=FaultKind.AUTH_OUTAGE),
            # Overlap across *different* exact targets is legal too
            # (the injector's per-event victim lists keep it exact).
            dict(start_day=2, duration_days=4, target="ns:*",
                 kind=FaultKind.AUTH_OUTAGE),
            dict(start_day=2, duration_days=4, target="public:0",
                 kind=FaultKind.ECS_STRIP),
        ])
        assert len(FaultSchedule.from_json(text)) == 4

    def test_direct_construction_skips_grammar_checks(self):
        # Building the dataclass directly stays permissive (the
        # injector raises KeyError at apply time instead) -- only the
        # deserialization boundary hardens.
        schedule = FaultSchedule((_event(target="bogus"),))
        with pytest.raises(ValueError, match="expected one of"):
            schedule.validate()


@pytest.fixture(scope="module")
def world():
    return _build_world(WorldConfig.tiny())


class TestInjector:
    def test_auth_outage_applies_and_reverts(self, world):
        schedule = FaultSchedule((_event(start_day=1, duration_days=2),))
        injector = FaultInjector(world, schedule)
        ns0 = world.nameservers[0]
        injector.step(0)
        assert ns0.alive
        injector.step(1)
        assert not ns0.alive
        assert world.obs.tracer.context["faults"] == "auth_outage:ns:0"
        assert injector.events_applied == 1
        injector.step(3)
        assert ns0.alive
        assert "faults" not in world.obs.tracer.context
        assert all(ns.alive for ns in world.nameservers)

    def test_overlapping_outages_revert_exactly(self, world):
        schedule = FaultSchedule((
            _event(start_day=0, duration_days=4, target="ns:*"),
            _event(start_day=2, duration_days=4, target="ns:0"),
        ))
        injector = FaultInjector(world, schedule)
        injector.step(0)
        assert not any(ns.alive for ns in world.nameservers)
        injector.step(2)
        assert not any(ns.alive for ns in world.nameservers)
        # The broad outage ends; the narrow one found ns:0 already dead
        # so it owns nothing and everything comes back.
        injector.step(4)
        assert all(ns.alive for ns in world.nameservers)
        injector.finish()
        assert all(ns.alive for ns in world.nameservers)

    def test_out_of_order_reverts_stay_exact(self, world):
        # The broad outage starts *after* the narrow one and ends
        # *before* it: its revert must revive everything it killed
        # while leaving the narrow event's victim down.
        schedule = FaultSchedule((
            _event(start_day=0, duration_days=6, target="ns:0"),
            _event(start_day=2, duration_days=2, target="ns:*"),
        ))
        injector = FaultInjector(world, schedule)
        injector.step(0)
        assert not world.nameservers[0].alive
        assert all(ns.alive for ns in world.nameservers[1:])
        injector.step(2)
        assert not any(ns.alive for ns in world.nameservers)
        injector.step(4)  # broad event reverts mid-narrow-event
        assert not world.nameservers[0].alive
        assert all(ns.alive for ns in world.nameservers[1:])
        injector.step(6)
        assert all(ns.alive for ns in world.nameservers)

    def test_overlapping_strips_revert_independently(self, world):
        # Whole-group strip plus a single-resolver strip via a
        # different spelling: the narrow event finds its victim
        # already stripped, so it owns nothing and the group revert
        # restores everyone even while the narrow event is active.
        schedule = FaultSchedule((
            _event(start_day=0, duration_days=4,
                   kind=FaultKind.ECS_STRIP, target="public:*"),
            _event(start_day=2, duration_days=4,
                   kind=FaultKind.ECS_STRIP, target="public:0"),
        ))
        injector = FaultInjector(world, schedule)
        injector.step(0)
        injector.step(2)
        assert len(injector.active_events) == 2
        injector.step(4)
        assert not any(ldns.ecs_stripped
                       for ldns in world.ldns_registry.values())
        injector.finish()
        assert not any(ldns.ecs_stripped
                       for ldns in world.ldns_registry.values())

    def test_ecs_strip_targets_public_group(self, world):
        schedule = FaultSchedule((_event(
            start_day=0, duration_days=1, kind=FaultKind.ECS_STRIP,
            target="public:*"),))
        injector = FaultInjector(world, schedule)
        public = set(world.public_ldns_ids())
        injector.step(0)
        for rid, ldns in world.ldns_registry.items():
            assert ldns.ecs_stripped == (rid in public)
        injector.finish()
        assert not any(ldns.ecs_stripped
                       for ldns in world.ldns_registry.values())

    def test_blackout_and_link_grammars(self, world):
        schedule = FaultSchedule((
            _event(start_day=0, duration_days=1,
                   kind=FaultKind.LDNS_BLACKOUT, target="isp:0"),
            _event(start_day=0, duration_days=1,
                   kind=FaultKind.LINK_DEGRADATION, target="public:0",
                   params=(("loss_rate", 0.5),)),
        ))
        injector = FaultInjector(world, schedule)
        public = sorted(world.public_ldns_ids())
        isp = [rid for rid in sorted(world.ldns_registry)
               if rid not in set(public)]
        injector.step(0)
        assert not world.ldns_registry[isp[0]].alive
        assert world.network._impairments
        injector.finish()
        assert world.ldns_registry[isp[0]].alive
        assert not world.network._impairments

    def test_cluster_index_grammar(self, world):
        schedule = FaultSchedule((_event(
            start_day=0, duration_days=1,
            kind=FaultKind.CLUSTER_OUTAGE, target="cluster:0"),))
        injector = FaultInjector(world, schedule)
        first = world.deployments.clusters[
            sorted(world.deployments.clusters)[0]]
        injector.step(0)
        assert not any(server.alive for server in first.servers)
        assert not first.alive
        injector.finish()
        assert all(server.alive for server in first.servers)

    @pytest.mark.parametrize("kind,target", [
        (FaultKind.AUTH_OUTAGE, "ns:99"),
        (FaultKind.AUTH_OUTAGE, "bogus"),
        (FaultKind.CLUSTER_OUTAGE, "cluster:999"),
        (FaultKind.CLUSTER_OUTAGE, "no-such-cluster"),
        (FaultKind.ECS_STRIP, "resolver:nope"),
        (FaultKind.LDNS_BLACKOUT, "isp:9999"),
    ])
    def test_unknown_targets_raise(self, world, kind, target):
        schedule = FaultSchedule((_event(
            start_day=0, duration_days=1, kind=kind, target=target),))
        injector = FaultInjector(world, schedule)
        with pytest.raises(KeyError):
            injector.step(0)


class TestServeStaleBoundaries:
    """RFC 8767 TTL edges on the cache, then through the resolver."""

    def _cache(self, window=10.0):
        cache = EcsAwareCache(serve_stale_window=window)
        record = ResourceRecord("x", QType.A, 5,
                                ARdata(parse_ipv4("9.9.9.9")))
        cache.store("x", QType.A, None, (record,), ttl=5, now=0.0)
        return cache

    def test_fresh_entry_is_not_stale(self):
        cache = self._cache()
        assert cache.lookup("x", QType.A, None, now=4.999) is not None
        assert cache.lookup_stale("x", QType.A, None, now=4.999) is None

    def test_window_boundaries(self):
        cache = self._cache(window=10.0)
        # Expiry instant: no longer fresh, immediately stale-usable.
        assert cache.lookup("x", QType.A, None, now=5.0) is None
        assert cache.lookup_stale("x", QType.A, None, now=5.0) is not None
        # Last instant inside the window / first instant outside it.
        assert cache.lookup_stale("x", QType.A, None,
                                  now=14.999) is not None
        assert cache.lookup_stale("x", QType.A, None, now=15.0) is None
        assert cache.stats.stale_hits == 2

    def test_stale_records_clamp_ttl(self):
        cache = self._cache()
        entry = cache.lookup_stale("x", QType.A, None, now=5.0)
        assert [r.ttl for r in entry.stale_records(30)] == [30]

    def test_negative_entries_never_served_stale(self):
        cache = EcsAwareCache(serve_stale_window=10.0)
        cache.store("gone", QType.A, None, (), ttl=5, now=0.0,
                    rcode=Rcode.NXDOMAIN)
        assert cache.lookup_stale("gone", QType.A, None, now=6.0) is None

    def test_zero_window_reproduces_legacy_pruning(self):
        cache = EcsAwareCache()
        record = ResourceRecord("x", QType.A, 5,
                                ARdata(parse_ipv4("9.9.9.9")))
        cache.store("x", QType.A, None, (record,), ttl=5, now=0.0)
        assert cache.lookup("x", QType.A, None, now=5.0) is None
        assert len(cache) == 0
        assert cache.lookup_stale("x", QType.A, None, now=5.0) is None

    def test_scoped_entry_preferred_over_global(self):
        cache = EcsAwareCache(serve_stale_window=10.0)
        client = parse_ipv4("10.1.2.9")
        near = ResourceRecord("x", QType.A, 5,
                              ARdata(parse_ipv4("1.1.1.1")))
        far = ResourceRecord("x", QType.A, 5,
                             ARdata(parse_ipv4("2.2.2.2")))
        cache.store("x", QType.A, prefix_of(client, 24), (near,),
                    ttl=5, now=0.0)
        cache.store("x", QType.A, None, (far,), ttl=5, now=0.0)
        entry = cache.lookup_stale("x", QType.A, client, now=6.0)
        assert entry.records == (near,)

    def test_resolver_serves_stale_then_servfails(self):
        world = _build_world(replace(WorldConfig.tiny(),
                                     serve_stale_window=900.0))
        provider = world.catalog.providers[0]
        ldns = world.ldns_registry[sorted(world.ldns_registry)[0]]
        client_ip = world.internet.blocks[0].prefix.network | 9
        warm = ldns.resolve(provider.domain, QType.A, client_ip, now=0.0)
        assert warm.rcode == Rcode.NOERROR and not warm.stale
        ttl = min(r.ttl for r in warm.records)

        for ns in world.nameservers:
            ns.fail()
        stale = ldns.resolve(provider.domain, QType.A, client_ip,
                             now=ttl + 1.0)
        assert stale.rcode == Rcode.NOERROR
        assert stale.stale
        assert ldns.stale_served >= 1
        assert all(r.ttl == 30 for r in stale.records
                   if r.rtype == QType.A)

        dead = ldns.resolve(provider.domain, QType.A, client_ip,
                            now=ttl + 901.0)
        assert dead.rcode == Rcode.SERVFAIL
        assert not dead.stale
        assert ldns.servfail_responses >= 1


def _scenario_spec(seed=99):
    """Auth outage + public ECS strip over one short monitored
    roll-out (the PR's acceptance scenario)."""
    rollout = RolloutConfig(
        start_date=datetime.date(2014, 3, 1),
        end_date=datetime.date(2014, 3, 31),
        rollout_start=datetime.date(2014, 3, 8),
        rollout_end=datetime.date(2014, 3, 15),
        sessions_per_day=30,
        seed=seed,
    )
    faults = FaultSchedule((
        FaultEvent(start_day=2, duration_days=6, target="ns:0",
                   kind=FaultKind.AUTH_OUTAGE),
        FaultEvent(start_day=20, duration_days=7, target="public:*",
                   kind=FaultKind.ECS_STRIP),
    ))
    return ScenarioSpec(
        world=replace(WorldConfig.tiny(), serve_stale_window=900.0),
        rollout=rollout,
        faults=faults,
    )


@pytest.fixture(scope="module")
def scenario():
    outcome = run(_scenario_spec())
    return outcome, outcome.report()


class TestFaultScenario:
    def test_zero_unhandled_failures_and_availability(self, scenario):
        outcome, report = scenario
        failed = sum(outcome.result.failed_sessions_per_day.values())
        completed = len(outcome.result.rum)
        assert completed > 0
        availability = completed / (completed + failed)
        assert availability > 0.99
        series = outcome.monitor.store.get("availability")
        assert series is not None
        assert min(series.values) > 0.99

    def test_outage_alert_fires_and_resolves(self, scenario):
        outcome, _ = scenario
        kinds = [alert.kind for alert in outcome.monitor.engine.log
                 if alert.rule == "auth_timeout_spike"]
        assert "fired" in kinds and "resolved" in kinds
        fault_rules = ("auth_timeout_spike", "availability_low",
                       "dns_servfail", "mapping_degraded")
        assert not [rule for rule in outcome.monitor.engine.firing()
                    if rule in fault_rules]

    def test_degraded_mapping_confined_to_strip_window(self, scenario):
        outcome, _ = scenario
        series = outcome.monitor.store.get("mapping.degraded_share")
        strip = outcome.spec.faults.window(FaultKind.ECS_STRIP)
        nonzero = [step for step, value
                   in zip(series.steps, series.values) if value > 0]
        assert nonzero, "ECS strip never degraded any session"
        assert all(strip[0] <= day < strip[1] for day in nonzero)

    def test_retry_penalty_series_tracks_the_outage(self, scenario):
        outcome, _ = scenario
        series = outcome.monitor.store.get("dns.retry_penalty_ms")
        assert series is not None
        outage = outcome.spec.faults.window(FaultKind.AUTH_OUTAGE)
        by_day = dict(zip(series.steps, series.values))
        charged = [day for day, value in by_day.items() if value > 0]
        assert charged, "auth outage never charged a retry penalty"
        assert all(outage[0] <= day < outage[1] for day in charged)
        total = sum(series.values)
        fleet_total = sum(
            ldns.retry_penalty_ms_total
            for ldns in outcome.world.ldns_registry.values())
        assert total == pytest.approx(fleet_total)

    def test_world_healthy_after_run(self, scenario):
        outcome, _ = scenario
        assert outcome.injector.events_applied == 2
        assert all(ns.alive for ns in outcome.world.nameservers)
        assert not any(ldns.ecs_stripped
                       for ldns in outcome.world.ldns_registry.values())
        assert "faults" not in outcome.world.obs.tracer.context

    def test_same_seed_runs_are_byte_identical(self, scenario):
        _, first = scenario
        second = run(_scenario_spec()).report()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_traces_carry_fault_context(self, scenario):
        outcome, _ = scenario
        window = outcome.spec.faults.window(FaultKind.AUTH_OUTAGE)
        tagged = [t for t in outcome.world.obs.tracer.traces
                  if "faults" in t.attrs]
        assert tagged, "no sampled trace overlapped a fault window"
        for trace in tagged:
            assert "auth_outage:ns:0" in trace.attrs["faults"] or (
                "ecs_strip:public:*" in trace.attrs["faults"])
        assert window is not None

    def test_golden_projection(self, scenario):
        outcome, report = scenario
        degraded = outcome.monitor.store.get("mapping.degraded_share")
        projection = {
            "days_observed": report["days_observed"],
            "events_applied": outcome.injector.events_applied,
            "failed_sessions": sum(
                outcome.result.failed_sessions_per_day.values()),
            "alerts": [[e["step"], e["rule"], e["kind"]]
                       for e in report["alerts"]["log"]],
            "firing": report["alerts"]["firing"],
            "degraded_days": [
                step for step, value
                in zip(degraded.steps, degraded.values) if value > 0],
            "fault_series_present": sorted(
                name for name in report["series"]
                if name in ("availability", "dns.servfails",
                            "dns.stale_served", "dns.timeout_failovers",
                            "mapping.degraded_share")),
        }
        rendered = json.dumps(projection, indent=2, sort_keys=True) + "\n"
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(rendered)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing fixture {GOLDEN_PATH}; run with REGEN_GOLDEN=1 "
            "to create it")
        expected = GOLDEN_PATH.read_text()
        if rendered != expected:
            diff = "".join(difflib.unified_diff(
                expected.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile="golden_faults.json (checked in)",
                tofile="golden_faults.json (this run)",
            ))
            pytest.fail(
                "golden fault scenario drifted; if intentional, "
                f"regenerate with REGEN_GOLDEN=1 and review.\n{diff}")


class TestDegradationExperiment:
    def test_tiny_scale_passes_every_check(self):
        from repro.experiments import degradation

        result = degradation.run("tiny")
        assert result.passed, [str(c) for c in result.checks
                               if not c.passed]
        kinds = [row["kind"] for row in result.rows]
        assert kinds == ["baseline", *FaultKind.DATA_PLANE]
        for row in result.rows:
            assert row["availability"] > 0.99
