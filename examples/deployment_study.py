#!/usr/bin/env python
"""Section 6 deployment study: NS vs EU vs CANS as the CDN grows.

Reruns the paper's Figure 25 simulation at a small scale and prints
the traffic-weighted mean and tail latency of the three mapping
schemes as the number of deployment locations doubles.

The two take-aways to look for, straight from the paper:
* the *means* are close -- for most clients the LDNS is a fine proxy;
* at the 99th percentile NS-based mapping flattens out while end-user
  mapping keeps improving with every doubling ("a CDN with a larger
  number of deployment locations is likely to benefit more from
  end-user mapping").

Run:  python examples/deployment_study.py
"""

from repro.experiments import fig25


def main():
    print("Running the Figure 25 simulation (tiny scale)...\n")
    result = fig25.run("tiny")

    print(f"{'deployments':>12} {'scheme':>7} {'mean':>8} {'p95':>8} "
          f"{'p99':>8}   (ms)")
    last_n = None
    for row in result.rows:
        if last_n is not None and row["deployments"] != last_n:
            print()
        last_n = row["deployments"]
        print(f"{row['deployments']:>12} {row['scheme']:>7} "
              f"{row['mean_ms']:>8.1f} {row['p95_ms']:>8.1f} "
              f"{row['p99_ms']:>8.1f}")

    print("\nShape checks vs the paper:")
    for check in result.checks:
        print(f"  {check}")


if __name__ == "__main__":
    main()
