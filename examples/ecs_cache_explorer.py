#!/usr/bin/env python
"""EDNS0 client-subnet cache semantics, observable on the wire.

Demonstrates the protocol mechanics of RFC 7871 that the paper's
Section 5 scaling analysis rests on, using one LDNS and clients in
three different /24 blocks:

* without ECS: one cache entry serves every client (1 upstream query);
* with ECS: the authoritative answers with scope /24, so each client
  block gets its own entry and its own upstream query -- the query
  inflation of Figure 23;
* a scope-/0 answer (non-client-specific zone) collapses back to one
  shared entry even with ECS on.

Run:  python examples/ecs_cache_explorer.py
"""

from repro.dnsproto.types import QType
from repro.net.ipv4 import format_ipv4, parse_ipv4
from repro.api import build_world
from repro.simulation import WorldConfig


def show_cache(ldns, name):
    entries = ldns.cache.entries_for(name, QType.A)
    print(f"    cache entries for {name!r}: {len(entries)}")
    for entry in entries:
        scope = str(entry.scope) if entry.scope else "global"
        addresses = ", ".join(format_ipv4(r.rdata.address)
                              for r in entry.records
                              if r.rtype == QType.A)
        print(f"      scope {scope:<18} -> {addresses}")


def main():
    world = build_world(WorldConfig.tiny())
    provider = world.catalog.providers[0]
    name = provider.domain
    # The provider domain CNAMEs onto the CDN hostname; the mapping
    # answers (and their ECS scopes) are cached under the latter.
    cdn_name = provider.cdn_hostname

    # One public LDNS and three clients in different /24 blocks.
    public_id = world.public_ldns_ids()[0]
    ldns = world.ldns_registry[public_id]
    blocks = world.internet.blocks[:3]
    clients = [block.prefix.network | 9 for block in blocks]

    print(f"LDNS: {public_id}")
    print(f"clients: "
          f"{', '.join(format_ipv4(c) for c in clients)}\n")

    print("== Phase 1: ECS disabled (classic resolver) ==")
    ldns.ecs_enabled = False
    upstream = 0
    for i, client in enumerate(clients):
        outcome = ldns.resolve(name, QType.A, client, now=float(i))
        upstream += outcome.upstream_queries
    print(f"    upstream queries for 3 clients: {upstream}")
    show_cache(ldns, cdn_name)

    print("\n== Phase 2: ECS enabled (scope /24 answers) ==")
    ldns.ecs_enabled = True
    ldns.cache.flush()
    upstream = 0
    for i, client in enumerate(clients):
        outcome = ldns.resolve(name, QType.A, client, now=100.0 + i)
        upstream += outcome.upstream_queries
    print(f"    upstream queries for 3 clients: {upstream}")
    show_cache(ldns, cdn_name)
    print("    -> one entry and one upstream query per client block: "
          "this is the paper's 8x query inflation mechanism")

    print("\n== Phase 3: same-block clients share the scoped entry ==")
    sibling = blocks[0].prefix.network | 200
    outcome = ldns.resolve(name, QType.A, sibling, now=200.0)
    print(f"    client {format_ipv4(sibling)} (same /24 as client 1): "
          f"cache_hit={outcome.cache_hit}, "
          f"upstream={outcome.upstream_queries}")

    print("\n== Phase 4: the whoami zone answers are never cached ==")
    whoami = "whoami.cdn.example"
    outcome = ldns.resolve(whoami, QType.TXT,
                           parse_ipv4(format_ipv4(clients[0])), 300.0)
    print(f"    {whoami} -> {outcome.records[0].rdata} (TTL "
          f"{outcome.records[0].ttl})")


if __name__ == "__main__":
    main()
