#!/usr/bin/env python
"""Quickstart: build a world, resolve a domain, download a page.

Walks the paper's Figure 3/4 flow end to end:

1. build a miniature Internet + CDN (topology, resolvers, deployments,
   mapping system, authoritative name servers);
2. resolve a content provider's domain for two clients -- one behind a
   local ISP resolver, one behind a distant public resolver -- first
   with classic NS-based mapping, then with EDNS0 client-subnet
   enabled (end-user mapping);
3. run a full page download and print the RUM-style milestones.

Run:  python examples/quickstart.py
"""

import random

from repro.net.geometry import great_circle_miles
from repro.net.ipv4 import format_ipv4
from repro.api import build_world
from repro.simulation import WorldConfig, simulate_session


def mapping_distance(world, block, resolution):
    cluster = world.deployments.cluster_of_server(resolution.addresses[0])
    return great_circle_miles(block.geo, cluster.geo), cluster


def resolve_and_report(world, block, label, now):
    ldns = world.ldns_registry[block.primary_ldns]
    client_ip = block.prefix.network | 7
    provider = world.catalog.providers[0]
    result = ldns.resolve(provider.domain, 1, client_ip, now)
    distance, cluster = mapping_distance(world, block, result)
    ecs = "ECS on" if ldns.ecs_enabled else "ECS off"
    print(f"  {label:<28} [{ecs}]")
    print(f"    client block {block.prefix} in {block.city}, "
          f"{block.country}")
    print(f"    LDNS {block.primary_ldns}")
    print(f"    mapped to {format_ipv4(result.addresses[0])} in cluster "
          f"{cluster.cluster_id}")
    print(f"    mapping distance: {distance:,.0f} miles")
    return distance


def main():
    print("Building the world (synthetic Internet + CDN)...")
    world = build_world(WorldConfig.tiny())
    print(f"  {len(world.internet.blocks)} client /24 blocks, "
          f"{len(world.internet.resolvers)} LDNS deployments, "
          f"{len(world.deployments)} CDN locations, "
          f"{len(world.catalog)} content providers\n")

    public = set(world.public_ldns_ids())
    blocks = world.internet.blocks
    local_block = max(
        (b for b in blocks if b.primary_ldns not in public),
        key=lambda b: b.demand)
    # The public-resolver client farthest from its LDNS.
    far_block = max(
        (b for b in blocks if b.primary_ldns in public),
        key=lambda b: great_circle_miles(
            b.geo, world.internet.resolvers[b.primary_ldns].geo))

    print("== NS-based mapping (no EDNS0 client-subnet) ==")
    resolve_and_report(world, local_block, "ISP-resolver client", now=0)
    before = resolve_and_report(world, far_block,
                                "public-resolver client", now=1)

    print("\n== End-user mapping (public resolvers send ECS) ==")
    world.enable_ecs(world.public_ldns_ids())
    after = resolve_and_report(world, far_block,
                               "public-resolver client", now=4000)
    print(f"\n  end-user mapping cut this client's mapping distance "
          f"{before / max(after, 1):.1f}x\n")

    print("== Full page download (RUM milestones) ==")
    rng = random.Random(7)
    session = simulate_session(world, far_block, now=8000, rng=rng)
    print(f"  domain            {session.domain}")
    print(f"  DNS lookup        {session.dns_ms:8.1f} ms")
    print(f"  TCP connect       {session.connect_ms:8.1f} ms")
    print(f"  TTFB              {session.ttfb_ms:8.1f} ms")
    print(f"  content download  {session.download_ms:8.1f} ms")
    print(f"  total page load   {session.page_load_ms:8.1f} ms")
    print(f"  HTTP requests     {session.requests:5d}")
    print(f"  edge cache hits   {session.edge_cache_hits:5d}")


if __name__ == "__main__":
    main()
