#!/usr/bin/env python
"""Replay the paper's Section 4 roll-out on a miniature timeline.

Runs the end-user-mapping roll-out for public resolvers over a
two-month window and prints the before/after table of the paper's four
performance metrics for the high- and low-expectation country groups
(the numbers behind Figures 13-20).

Run:  python examples/public_resolver_rollout.py
"""

import datetime

from repro.api import build_world, run_rollout
from repro.simulation import RolloutConfig, WorldConfig

METRICS = (
    ("mapping_distance_miles", "mapping distance (mi)"),
    ("rtt_ms", "round-trip time (ms)"),
    ("ttfb_ms", "time to first byte (ms)"),
    ("download_ms", "content download (ms)"),
)


def mean(values):
    return sum(values) / len(values) if values else float("nan")


def main():
    print("Building the world...")
    world = build_world(WorldConfig.tiny())
    config = RolloutConfig(
        start_date=datetime.date(2014, 3, 1),
        end_date=datetime.date(2014, 4, 30),
        rollout_start=datetime.date(2014, 3, 28),
        rollout_end=datetime.date(2014, 4, 15),
        sessions_per_day=150,
    )
    print(f"Replaying {config.n_days} days; ECS roll-out "
          f"{config.rollout_start} .. {config.rollout_end}...")
    result = run_rollout(world, config)
    print(f"  {len(result.rum)} RUM beacons collected")
    print(f"  high-expectation countries: "
          f"{', '.join(result.high_expectation_countries) or '(none)'}\n")

    header = (f"{'metric':<26} {'group':<6} {'before':>10} {'after':>10} "
              f"{'factor':>8}")
    print(header)
    print("-" * len(header))
    for metric, label in METRICS:
        for high, group in ((True, "high"), (False, "low")):
            before = mean(result.rum.metric_values(
                metric, high_expectation=high, via_public=True,
                day_range=result.before_window))
            after = mean(result.rum.metric_values(
                metric, high_expectation=high, via_public=True,
                day_range=result.after_window))
            factor = before / after if after else float("nan")
            print(f"{label:<26} {group:<6} {before:>10.1f} "
                  f"{after:>10.1f} {factor:>7.2f}x")
    print("\nPaper (high-expectation group): mapping distance ~8x, "
          "RTT ~2x, TTFB ~1.4x, download ~2x.")


if __name__ == "__main__":
    main()
