#!/usr/bin/env python
"""Section 5 planning: how many mapping units must the CDN measure?

Walks the paper's mapping-unit math against a synthetic Internet:

* how many LDNSes vs /24 blocks cover 50% / 95% of demand (Fig 21);
* the /x granularity trade-off -- unit count vs cluster radius
  (Fig 22);
* how much BGP-CIDR merging saves.

Run:  python examples/mapping_unit_planner.py
"""

from repro.core.units import build_units, units_needed_for_share
from repro.analysis.stats import weighted_quantile
from repro.topology import InternetConfig, build_internet


def main():
    print("Building the synthetic Internet...")
    internet = build_internet(InternetConfig.small(), seed=2014)
    print(f"  {len(internet.blocks)} /24 client blocks, "
          f"{len(internet.resolvers)} LDNS deployments\n")

    ldns_units = build_units("ldns", internet)
    block_units = build_units("block", internet, prefix_len=24)

    print("== Figure 21: units needed to cover demand ==")
    print(f"{'coverage':>10} {'LDNS units':>12} {'/24 units':>12} "
          f"{'ratio':>8}")
    for share in (0.5, 0.8, 0.95):
        n_ldns = units_needed_for_share(ldns_units, share)
        n_blocks = units_needed_for_share(block_units, share)
        print(f"{share:>9.0%} {n_ldns:>12} {n_blocks:>12} "
              f"{n_blocks / n_ldns:>7.1f}x")
    print(f"(totals: {len(ldns_units)} LDNSes, {len(block_units)} "
          "blocks; paper: 25K LDNSes vs 2.2M blocks at 95%)\n")

    print("== Figure 22: the /x granularity trade-off ==")
    print(f"{'prefix':>7} {'units':>8} {'median radius (mi)':>20} "
          f"{'share <= 100 mi':>16}")
    for x in (8, 12, 16, 20, 24):
        units = build_units("block", internet, prefix_len=x)
        radii = [u.radius_miles() for u in units]
        weights = [u.demand for u in units]
        p50 = weighted_quantile(radii, weights, 0.5)
        tight = sum(w for r, w in zip(radii, weights) if r <= 100)
        print(f"{'/' + str(x):>7} {len(units):>8} {p50:>20.1f} "
              f"{tight / sum(weights):>15.1%}")

    merged = build_units("bgp_merged", internet, prefix_len=24)
    print(f"\n== BGP-CIDR merge ==")
    print(f"  {len(block_units)} /24 units -> {len(merged)} merged "
          f"units ({len(block_units) / len(merged):.1f}x reduction; "
          "paper: 3.76M -> 444K, 8.5x)")


if __name__ == "__main__":
    main()
