"""Autonomous systems of the synthetic Internet.

The AS population mirrors the structural facts the paper leans on:

* demand per AS is heavy-tailed (Pareto), so a handful of eyeball ISPs
  carry most traffic while tens of thousands of small ASes carry the
  rest (Figure 10's x-axis spans 2^-10 .. 2^-1 of total demand);
* small ISPs disproportionately outsource DNS to public resolvers;
* enterprise ASes have geographically diverse offices but centralized
  resolver infrastructure, often in another country.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.geo.cities import City


class ASKind(enum.Enum):
    """Broad role of an autonomous system."""

    EYEBALL_ISP = "eyeball_isp"
    """Access ISP serving consumer clients in one country."""

    ENTERPRISE = "enterprise"
    """Multi-office corporation with its own AS."""


class ResolverStrategy(enum.Enum):
    """How an AS provides recursive DNS to its clients (paper Section 3.2)."""

    LOCAL = "local"
    """Resolver deployed in every city of presence: LDNS is proximal."""

    ANYCAST_HUBS = "anycast_hubs"
    """Resolvers at a few regional hubs; clients reach the nearest via
    IP anycast (with occasional misrouting, Section 3.2's caveat)."""

    CENTRAL_NATIONAL = "central_national"
    """One resolver site in the country's largest presence city; the
    mechanism behind India/Turkey/Vietnam/Mexico's large distances."""

    CENTRAL_HQ = "central_hq"
    """Enterprise pattern: all offices use resolvers at headquarters,
    possibly across an ocean (the paper's Japan example)."""

    OUTSOURCED_PUBLIC = "outsourced_public"
    """The AS runs no resolvers; every client uses a public provider."""


@dataclass
class AutonomousSystem:
    """One AS: identity, footprint, demand, and DNS strategy."""

    asn: int
    name: str
    kind: ASKind
    country: str
    """Home country (ISO code).  Enterprises: headquarters country."""

    cities: List[City] = field(default_factory=list)
    """Cities of presence.  Element 0 is the primary (largest) city."""

    demand: float = 0.0
    """Client demand originated by this AS, in abstract demand units."""

    strategy: ResolverStrategy = ResolverStrategy.LOCAL
    hub_cities: List[City] = field(default_factory=list)
    """For ANYCAST_HUBS / CENTRAL_*: where the AS's resolvers live."""

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive: {self.asn}")

    @property
    def primary_city(self) -> City:
        if not self.cities:
            raise ValueError(f"AS{self.asn} has no cities of presence")
        return self.cities[0]

    def resolver_cities(self) -> List[City]:
        """Cities where this AS operates its own resolvers.

        Even a "local" deployment rarely covers *every* city of
        presence (resolver PoPs lag access PoPs); when hub_cities is
        populated it names the covered subset.
        """
        if self.strategy == ResolverStrategy.LOCAL:
            return list(self.hub_cities) if self.hub_cities else list(
                self.cities)
        if self.strategy == ResolverStrategy.OUTSOURCED_PUBLIC:
            return []
        return list(self.hub_cities)

    def __repr__(self) -> str:
        return (f"AS{self.asn}({self.name!r}, {self.kind.value}, "
                f"{self.country}, demand={self.demand:.1f}, "
                f"{self.strategy.value})")


def demand_shares(ases: List[AutonomousSystem]) -> List[Tuple[int, float]]:
    """(asn, share-of-total-demand) pairs, sorted by share descending.

    Figure 10 buckets ASes by this share (powers of two of total
    demand).
    """
    total = sum(a.demand for a in ases)
    if total <= 0:
        raise ValueError("total AS demand must be positive")
    shares = [(a.asn, a.demand / total) for a in ases]
    shares.sort(key=lambda pair: pair[1], reverse=True)
    return shares
