"""Per-country behaviour profiles for the topology generator.

Each profile encodes the country-level mechanisms the paper identifies
as driving client--LDNS distance and public-resolver adoption:

* ``local_infra`` -- probability that a non-small ISP in this country
  deploys a resolver in *every* city it serves (well-developed DNS
  infrastructure; the paper singles out Korea and Taiwan, Section 3.2).
  The complement deploys only regional anycast hubs or a single
  national-central resolver.
* ``central_national`` -- given an ISP does *not* deploy per-city,
  probability it centralizes its whole resolver fleet in the country's
  largest city (the pattern behind India/Turkey/Vietnam/Mexico median
  distances above 1000 miles, Figure 6).
* ``public_adoption`` -- share of client demand whose users opt into a
  public resolver (Figure 9: Vietnam/Turkey ~40%/~35% down to Korea and
  Japan at a few percent; ~8% worldwide).
* ``small_outsource`` -- probability a *small* ISP outsources DNS
  entirely to a public provider (the Figure 10 mechanism: small ASes
  have far LDNSes because owning resolver infrastructure does not pay).
* ``enterprise_abroad`` -- probability an enterprise AS headquartered
  elsewhere serves this country's branch offices from a foreign central
  resolver (the paper's explanation for Japan's far tail).

Values are calibration targets, not measurements; they were tuned so the
generated population reproduces the *ordering and rough magnitudes* of
the paper's Figures 5-11 (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, slots=True)
class CountryProfile:
    """Resolver-infrastructure behaviour for one country."""

    local_infra: float
    central_national: float
    public_adoption: float
    small_outsource: float
    enterprise_abroad: float
    internet_penetration: float = 0.4
    """Demand per unit of population relative to a fully-wired country.
    CDN demand in 2014 skewed heavily toward North America, Europe, and
    developed East Asia; weighting city population by this factor makes
    the *demand*-weighted distributions match the paper's (e.g. the
    global median client-LDNS distance is dominated by well-served
    countries even though raw population is not)."""

    foreign_hub: str = ""
    """Regional DNS hub city abroad.  Many ISPs in developing markets
    host (or backhaul) their resolver infrastructure at a regional
    interconnection hub -- Miami for Latin America, Frankfurt for
    Turkey/Middle East, Singapore for South-East Asia.  This is what
    pushes a whole country's client--LDNS median past 1000 miles in the
    paper's Figure 6 even where public-resolver adoption is modest
    (e.g. Mexico)."""

    foreign_hub_rate: float = 0.0
    """Probability a centralizing ISP hubs at ``foreign_hub`` instead
    of the largest domestic city."""

    def __post_init__(self) -> None:
        for name in ("local_infra", "central_national", "public_adoption",
                     "small_outsource", "enterprise_abroad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability: {value}")
        if not 0.0 < self.internet_penetration <= 1.0:
            raise ValueError(
                f"internet_penetration must be in (0, 1]: "
                f"{self.internet_penetration}")
        if not 0.0 <= self.foreign_hub_rate <= 1.0:
            raise ValueError(
                f"foreign_hub_rate must be a probability: "
                f"{self.foreign_hub_rate}")
        if self.foreign_hub_rate > 0 and not self.foreign_hub:
            raise ValueError("foreign_hub_rate set without a hub city")


# Calibrated per-country profiles.  Countries not listed use DEFAULT.
# Field order: local_infra, central_national, public_adoption,
# small_outsource, enterprise_abroad, internet_penetration.
_PROFILES: Dict[str, CountryProfile] = {
    # Dense, well-developed DNS infrastructure; tiny distances (Fig 6).
    "KR": CountryProfile(0.95, 0.02, 0.02, 0.15, 0.05, 1.00),
    "TW": CountryProfile(0.92, 0.03, 0.06, 0.15, 0.05, 0.90),
    "JP": CountryProfile(0.90, 0.05, 0.02, 0.15, 0.30, 0.95),
    "SG": CountryProfile(0.95, 0.00, 0.03, 0.10, 0.10, 0.90),
    "HK": CountryProfile(0.92, 0.00, 0.07, 0.10, 0.10, 0.90),
    # Western Europe: low distances in a narrow band (Fig 6).
    "DE": CountryProfile(0.80, 0.10, 0.04, 0.25, 0.10, 0.95),
    "FR": CountryProfile(0.78, 0.12, 0.04, 0.25, 0.10, 0.95),
    "GB": CountryProfile(0.80, 0.12, 0.06, 0.25, 0.10, 0.95),
    "NL": CountryProfile(0.85, 0.05, 0.04, 0.20, 0.10, 0.95),
    "CH": CountryProfile(0.85, 0.05, 0.06, 0.20, 0.10, 0.95),
    "IT": CountryProfile(0.60, 0.25, 0.22, 0.35, 0.10, 0.75),
    "ES": CountryProfile(0.65, 0.22, 0.10, 0.30, 0.10, 0.80),
    # North America.
    "US": CountryProfile(0.70, 0.06, 0.09, 0.30, 0.05, 1.00),
    "CA": CountryProfile(0.70, 0.12, 0.08, 0.30, 0.10, 0.95),
    "MX": CountryProfile(0.25, 0.55, 0.11, 0.50, 0.15, 0.40,
                         foreign_hub="Miami", foreign_hub_rate=0.75),
    # South America: public resolvers have no in-region deployments,
    # and ISP resolver backhaul lands in Miami.
    "BR": CountryProfile(0.35, 0.55, 0.16, 0.50, 0.15, 0.35,
                         foreign_hub="Miami", foreign_hub_rate=0.45),
    "AR": CountryProfile(0.30, 0.55, 0.15, 0.50, 0.15, 0.45,
                         foreign_hub="Miami", foreign_hub_rate=0.45),
    "CL": CountryProfile(0.40, 0.40, 0.12, 0.45, 0.15, 0.50,
                         foreign_hub="Miami", foreign_hub_rate=0.45),
    "CO": CountryProfile(0.35, 0.45, 0.12, 0.50, 0.15, 0.35,
                         foreign_hub="Miami", foreign_hub_rate=0.55),
    "PE": CountryProfile(0.30, 0.50, 0.12, 0.50, 0.15, 0.30,
                         foreign_hub="Miami", foreign_hub_rate=0.55),
    "VE": CountryProfile(0.25, 0.55, 0.12, 0.55, 0.15, 0.30,
                         foreign_hub="Miami", foreign_hub_rate=0.55),
    "EC": CountryProfile(0.30, 0.50, 0.10, 0.50, 0.15, 0.30,
                         foreign_hub="Miami", foreign_hub_rate=0.55),
    "UY": CountryProfile(0.40, 0.40, 0.10, 0.45, 0.15, 0.50,
                         foreign_hub="Miami", foreign_hub_rate=0.45),
    # Large developing markets with centralized national ISPs (Fig 6
    # medians above 1000 miles); resolver fleets often sit at the
    # regional hub rather than in-country.
    "IN": CountryProfile(0.12, 0.70, 0.14, 0.55, 0.20, 0.12,
                         foreign_hub="Singapore", foreign_hub_rate=0.45),
    "TR": CountryProfile(0.15, 0.75, 0.34, 0.50, 0.10, 0.50,
                         foreign_hub="Frankfurt", foreign_hub_rate=0.75),
    "VN": CountryProfile(0.15, 0.70, 0.42, 0.55, 0.10, 0.25,
                         foreign_hub="Singapore", foreign_hub_rate=0.70),
    "ID": CountryProfile(0.20, 0.55, 0.20, 0.55, 0.15, 0.15,
                         foreign_hub="Singapore", foreign_hub_rate=0.55),
    "TH": CountryProfile(0.30, 0.50, 0.10, 0.45, 0.15, 0.40,
                         foreign_hub="Singapore", foreign_hub_rate=0.40),
    "MY": CountryProfile(0.35, 0.45, 0.18, 0.45, 0.15, 0.55,
                         foreign_hub="Singapore", foreign_hub_rate=0.40),
    "PH": CountryProfile(0.25, 0.55, 0.15, 0.50, 0.15, 0.25,
                         foreign_hub="Singapore", foreign_hub_rate=0.50),
    # Geographically huge countries: even hub deployments are far.
    "RU": CountryProfile(0.40, 0.30, 0.12, 0.40, 0.10, 0.60),
    "AU": CountryProfile(0.55, 0.20, 0.02, 0.35, 0.25, 0.90),
    "NZ": CountryProfile(0.60, 0.20, 0.05, 0.35, 0.20, 0.90),
    # China: public resolvers effectively unused; 2014 CDN demand low.
    "CN": CountryProfile(0.70, 0.15, 0.00, 0.20, 0.02, 0.05),
}

DEFAULT_PROFILE = CountryProfile(
    local_infra=0.55,
    central_national=0.25,
    public_adoption=0.08,
    small_outsource=0.40,
    enterprise_abroad=0.12,
    internet_penetration=0.40,
)


def profile_for(country: str) -> CountryProfile:
    """Profile for a country code, falling back to the world default."""
    return _PROFILES.get(country, DEFAULT_PROFILE)
