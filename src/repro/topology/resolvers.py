"""Recursive resolver (LDNS) deployments and public resolver providers.

Two populations of LDNSes exist in the simulator, matching Section 2 of
the paper:

* **ISP/enterprise resolvers** -- owned by an AS, placed according to
  its :class:`~repro.topology.ases.ResolverStrategy`.
* **Public resolver providers** -- third parties ("Google Public DNS or
  OpenDNS") operating a *globally anycast* fleet.  Clients reach the
  deployment chosen by :func:`anycast_catchment`; the provider talks to
  authoritative name servers from the deployment's *unicast* address,
  which is what lets both Akamai and this simulator geo-locate the LDNS
  (Section 3.2).

Public providers support the EDNS0 client-subnet extension; ISP
resolvers in 2014 generally did not.  Whether a provider actually
*sends* ECS at a given simulated time is controlled by the roll-out
scenario, not here.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.cities import City, city_index
from repro.net.geometry import GeoPoint, great_circle_miles


class ResolverKind(enum.Enum):
    """Which population a resolver deployment belongs to."""

    ISP = "isp"
    ENTERPRISE = "enterprise"
    PUBLIC = "public"


@dataclass(frozen=True, slots=True)
class Resolver:
    """One LDNS deployment (one unicast-addressable resolver site)."""

    resolver_id: str
    ip: int
    geo: GeoPoint
    city: str
    country: str
    asn: int
    kind: ResolverKind
    provider: str
    """Operator name: AS name for ISP/enterprise, provider for public."""
    supports_ecs: bool
    """Whether this resolver implements the EDNS0 client-subnet
    extension (public providers: yes; 2014-era ISP resolvers: no)."""

    @property
    def is_public(self) -> bool:
        return self.kind == ResolverKind.PUBLIC


@dataclass
class PublicProvider:
    """A public DNS provider: a brand plus an anycast deployment fleet."""

    name: str
    asn: int
    deployment_cities: List[str]
    """City names (gazetteer keys) hosting resolver sites."""
    popularity: float
    """Relative probability that a public-resolver user picks this
    provider (market share)."""
    misroute_rate: float = 0.12
    """Probability anycast routes a client past its nearest deployment
    (the paper cites anycast's known limitations, Section 3.2)."""

    deployments: List[Resolver] = field(default_factory=list)
    """Populated by the topology builder once IPs are allocated."""

    def cities(self) -> List[City]:
        index = city_index()
        return [index[name] for name in self.deployment_cities]


#: The default provider fleet.  Deployment footprints follow the 2014
#: reality the paper observes: dense in North America/Europe, present at
#: Asian hubs, and -- critically for Figure 8 -- absent from South
#: America, so Argentine and Brazilian users cross an ocean.
DEFAULT_PUBLIC_PROVIDERS: Tuple[PublicProvider, ...] = (
    PublicProvider(
        name="GloboDNS",
        asn=15169,
        deployment_cities=[
            "Washington", "Dallas", "San Francisco", "Chicago",
            "London", "Frankfurt", "Amsterdam",
            "Singapore", "Taipei", "Tokyo", "Sydney",
        ],
        popularity=0.66,
    ),
    PublicProvider(
        name="OpenFast",
        asn=36692,
        deployment_cities=[
            "San Francisco", "New York", "Chicago", "Miami",
            "London", "Amsterdam",
            "Singapore", "Hong Kong", "Sydney",
        ],
        popularity=0.22,
    ),
    PublicProvider(
        name="UltraLevel",
        asn=3356,
        deployment_cities=[
            "New York", "Dallas", "Los Angeles", "London", "Frankfurt",
        ],
        popularity=0.12,
    ),
)


def anycast_catchment(
    client_geo: GeoPoint,
    deployments: Sequence[Resolver],
    rng: random.Random,
    misroute_rate: float = 0.12,
) -> Resolver:
    """Pick the anycast deployment a client's packets actually reach.

    With probability ``1 - misroute_rate`` the geographically nearest
    deployment wins (the intended behaviour).  Otherwise BGP path
    selection sends the client somewhere else; misroutes prefer nearer
    alternates but occasionally cross continents, reproducing the heavy
    upper percentiles of public-resolver client--LDNS distance.
    """
    if not deployments:
        raise ValueError("anycast catchment over an empty deployment list")
    if len(deployments) == 1:
        return deployments[0]
    ranked = sorted(
        deployments,
        key=lambda dep: great_circle_miles(client_geo, dep.geo),
    )
    if rng.random() >= misroute_rate:
        return ranked[0]
    # Misrouted: geometric preference for lower-ranked alternates.
    alternates = ranked[1:]
    weights = [math.pow(0.5, i) for i in range(len(alternates))]
    return rng.choices(alternates, weights=weights, k=1)[0]


def pick_provider(
    providers: Sequence[PublicProvider], rng: random.Random
) -> PublicProvider:
    """Choose a public provider according to market share."""
    if not providers:
        raise ValueError("no public providers configured")
    weights = [p.popularity for p in providers]
    return rng.choices(list(providers), weights=weights, k=1)[0]


def providers_by_name(
    providers: Sequence[PublicProvider],
) -> Dict[str, PublicProvider]:
    return {p.name: p for p in providers}


def nearest_deployment(
    geo: GeoPoint, deployments: Sequence[Resolver]
) -> Optional[Resolver]:
    """The geographically nearest deployment, or None if list is empty."""
    if not deployments:
        return None
    return min(deployments,
               key=lambda dep: great_circle_miles(geo, dep.geo))
