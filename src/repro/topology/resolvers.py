"""Recursive resolver (LDNS) deployments and public resolver providers.

Two populations of LDNSes exist in the simulator, matching Section 2 of
the paper:

* **ISP/enterprise resolvers** -- owned by an AS, placed according to
  its :class:`~repro.topology.ases.ResolverStrategy`.
* **Public resolver providers** -- third parties ("Google Public DNS or
  OpenDNS") operating a *globally anycast* fleet.  Clients reach the
  deployment chosen by :func:`anycast_catchment`; the provider talks to
  authoritative name servers from the deployment's *unicast* address,
  which is what lets both Akamai and this simulator geo-locate the LDNS
  (Section 3.2).

Public providers support the EDNS0 client-subnet extension; ISP
resolvers in 2014 generally did not.  Whether a provider actually
*sends* ECS at a given simulated time is controlled by the roll-out
scenario, not here.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.cities import City, city_index
from repro.net.geometry import GeoPoint, great_circle_miles


class ResolverKind(enum.Enum):
    """Which population a resolver deployment belongs to."""

    ISP = "isp"
    ENTERPRISE = "enterprise"
    PUBLIC = "public"


@dataclass(frozen=True, slots=True)
class Resolver:
    """One LDNS deployment (one unicast-addressable resolver site)."""

    resolver_id: str
    ip: int
    geo: GeoPoint
    city: str
    country: str
    asn: int
    kind: ResolverKind
    provider: str
    """Operator name: AS name for ISP/enterprise, provider for public."""
    supports_ecs: bool
    """Whether this resolver implements the EDNS0 client-subnet
    extension (public providers: yes; 2014-era ISP resolvers: no)."""

    @property
    def is_public(self) -> bool:
        return self.kind == ResolverKind.PUBLIC


@dataclass
class PublicProvider:
    """A public DNS provider: a brand plus an anycast deployment fleet."""

    name: str
    asn: int
    deployment_cities: List[str]
    """City names (gazetteer keys) hosting resolver sites."""
    popularity: float
    """Relative probability that a public-resolver user picks this
    provider (market share)."""
    misroute_rate: float = 0.12
    """Probability anycast routes a client past its nearest deployment
    (the paper cites anycast's known limitations, Section 3.2)."""

    deployments: List[Resolver] = field(default_factory=list)
    """Populated by the topology builder once IPs are allocated."""

    def cities(self) -> List[City]:
        index = city_index()
        return [index[name] for name in self.deployment_cities]


#: The default provider fleet.  Deployment footprints follow the 2014
#: reality the paper observes: dense in North America/Europe, present at
#: Asian hubs, and -- critically for Figure 8 -- absent from South
#: America, so Argentine and Brazilian users cross an ocean.
DEFAULT_PUBLIC_PROVIDERS: Tuple[PublicProvider, ...] = (
    PublicProvider(
        name="GloboDNS",
        asn=15169,
        deployment_cities=[
            "Washington", "Dallas", "San Francisco", "Chicago",
            "London", "Frankfurt", "Amsterdam",
            "Singapore", "Taipei", "Tokyo", "Sydney",
        ],
        popularity=0.66,
    ),
    PublicProvider(
        name="OpenFast",
        asn=36692,
        deployment_cities=[
            "San Francisco", "New York", "Chicago", "Miami",
            "London", "Amsterdam",
            "Singapore", "Hong Kong", "Sydney",
        ],
        popularity=0.22,
    ),
    PublicProvider(
        name="UltraLevel",
        asn=3356,
        deployment_cities=[
            "New York", "Dallas", "Los Angeles", "London", "Frankfurt",
        ],
        popularity=0.12,
    ),
)


def anycast_catchment(
    client_geo: GeoPoint,
    deployments: Sequence[Resolver],
    rng: random.Random,
    misroute_rate: float = 0.12,
) -> Resolver:
    """Pick the anycast deployment a client's packets actually reach.

    With probability ``1 - misroute_rate`` the geographically nearest
    deployment wins (the intended behaviour).  Otherwise BGP path
    selection sends the client somewhere else; misroutes prefer nearer
    alternates but occasionally cross continents, reproducing the heavy
    upper percentiles of public-resolver client--LDNS distance.
    """
    if not deployments:
        raise ValueError("anycast catchment over an empty deployment list")
    if len(deployments) == 1:
        # Single-draw pick parity (the convention topology.traffic
        # follows): consume the misroute draw even when the choice is
        # trivial, so a fleet shrinking to one PoP mid-run keeps the
        # RNG stream aligned with the healthy world's.
        rng.random()
        return deployments[0]
    ranked = sorted(
        deployments,
        key=lambda dep: great_circle_miles(client_geo, dep.geo),
    )
    if rng.random() >= misroute_rate:
        return ranked[0]
    # Misrouted: geometric preference for lower-ranked alternates.
    alternates = ranked[1:]
    weights = [math.pow(0.5, i) for i in range(len(alternates))]
    return rng.choices(alternates, weights=weights, k=1)[0]


def pick_provider(
    providers: Sequence[PublicProvider], rng: random.Random
) -> PublicProvider:
    """Choose a public provider according to market share."""
    if not providers:
        raise ValueError("no public providers configured")
    weights = [p.popularity for p in providers]
    return rng.choices(list(providers), weights=weights, k=1)[0]


def providers_by_name(
    providers: Sequence[PublicProvider],
) -> Dict[str, PublicProvider]:
    return {p.name: p for p in providers}


def nearest_deployment(
    geo: GeoPoint, deployments: Sequence[Resolver]
) -> Optional[Resolver]:
    """The geographically nearest deployment, or None if list is empty."""
    if not deployments:
        return None
    return min(deployments,
               key=lambda dep: great_circle_miles(geo, dep.geo))


# ---------------------------------------------------------------------------
# The resolver plane: per-provider ECS policy and live anycast PoP fleets


@dataclass(frozen=True, slots=True)
class EcsPolicy:
    """One provider's ECS policy (the RFC 7871 operational knobs).

    Real public resolvers do not send ECS unconditionally: Google-style
    operators keep a *whitelist* of authoritative operators that receive
    the option at all, and independently cap how fine a client prefix
    they are willing to reveal.  Both knobs dominate the resolver/CDN
    interplay Al-Dalky & Rabinovich measure, so both are modeled:

    * ``whitelist_enabled`` -- whether the CDN's name servers are on
      the provider's ECS whitelist.  Off means the provider answers
      from NS-quality (resolver-located) mapping only.
    * ``scope_ceiling`` -- the coarsest-allowed client prefix length
      the provider will put in the option (and accept back as a cache
      scope).  A ceiling below the stub's source length trades mapping
      precision for cache efficiency.

    The defaults reproduce the pre-fleet simulator exactly: whitelist
    on, no narrowing below the roll-out's ``ecs_source_len``.
    """

    whitelist_enabled: bool = True
    scope_ceiling: int = 32

    def __post_init__(self) -> None:
        if not 0 < self.scope_ceiling <= 32:
            raise ValueError(
                f"scope_ceiling must be in (0, 32]: {self.scope_ceiling}")

    def to_dict(self) -> Dict:
        return {"whitelist_enabled": self.whitelist_enabled,
                "scope_ceiling": self.scope_ceiling}

    @classmethod
    def from_dict(cls, doc: Dict) -> "EcsPolicy":
        unknown = set(doc) - {"whitelist_enabled", "scope_ceiling"}
        if unknown:
            raise ValueError(
                f"unknown ECS policy keys: {sorted(unknown)}")
        return cls(
            whitelist_enabled=bool(doc.get("whitelist_enabled", True)),
            scope_ceiling=int(doc.get("scope_ceiling", 32)),
        )


@dataclass(frozen=True)
class ResolverPolicySet:
    """The per-provider ECS policy matrix.

    Pure scenario data (``ScenarioSpec.resolver_policies``): providers
    not named fall back to the default :class:`EcsPolicy`, so the empty
    set means "build the PoP fleet model with 2014-faithful policies".
    """

    policies: Tuple[Tuple[str, EcsPolicy], ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.policies))
        names = [name for name, _ in ordered]
        if len(set(names)) != len(names):
            raise ValueError(
                f"duplicate provider in resolver policies: {names}")
        object.__setattr__(self, "policies", ordered)

    def policy_for(self, provider: str) -> EcsPolicy:
        for name, policy in self.policies:
            if name == provider:
                return policy
        return EcsPolicy()

    def to_dict(self) -> Dict:
        return {name: policy.to_dict() for name, policy in self.policies}

    @classmethod
    def from_dict(cls, doc: Dict) -> "ResolverPolicySet":
        if not isinstance(doc, dict):
            raise ValueError(
                "resolver policies must be an object keyed by provider")
        return cls(tuple(
            (str(name), EcsPolicy.from_dict(policy))
            for name, policy in doc.items()))


@dataclass
class ResolverPoP:
    """One live anycast PoP: a deployment plus its runtime health.

    The per-PoP *cache* already lives in the deployment's
    :class:`~repro.dnssrv.recursive.RecursiveResolver` (one recursive
    per deployment, keyed by ``resolver_id``), so this object carries
    the remaining fleet state: reachability via anycast (``healthy``,
    i.e. whether the PoP's route is announced) and nominal capacity.
    """

    resolver: Resolver
    healthy: bool = True
    capacity_qps: float = 100_000.0

    @property
    def resolver_id(self) -> str:
        return self.resolver.resolver_id


@dataclass
class ResolverFleets:
    """Live anycast PoP fleets for every public provider.

    Attached to a world as ``world.resolver_fleets`` when the resolver
    plane is active (``ScenarioSpec.resolver_policies`` set, or a
    resolver-plane fault scheduled).  Build-time catchments are left
    untouched -- a healthy fleet routes every session exactly where the
    static world would -- and :meth:`route` deterministically re-homes
    only the sessions whose intended PoP is withdrawn or flapping.  No
    RNG is drawn, so fault and healthy worlds stay stream-aligned.
    """

    pops: Dict[str, ResolverPoP] = field(default_factory=dict)
    by_provider: Dict[str, List[ResolverPoP]] = field(default_factory=dict)
    policies: ResolverPolicySet = field(default_factory=ResolverPolicySet)
    flapping: set = field(default_factory=set)
    """Provider names whose anycast routes are currently flapping."""

    @classmethod
    def from_providers(
        cls,
        providers: Sequence[PublicProvider],
        policies: Optional[ResolverPolicySet] = None,
    ) -> "ResolverFleets":
        fleets = cls(policies=policies or ResolverPolicySet())
        for provider in providers:
            pops = [ResolverPoP(resolver=dep)
                    for dep in sorted(provider.deployments,
                                      key=lambda d: d.resolver_id)]
            fleets.by_provider[provider.name] = pops
            for pop in pops:
                fleets.pops[pop.resolver_id] = pop
        return fleets

    # -- health ----------------------------------------------------------

    def withdraw(self, resolver_id: str) -> None:
        """BGP-withdraw one PoP: anycast stops routing clients to it."""
        self.pops[resolver_id].healthy = False

    def restore(self, resolver_id: str) -> None:
        self.pops[resolver_id].healthy = True

    def healthy_pops(self, provider: str) -> List[ResolverPoP]:
        return [p for p in self.by_provider.get(provider, ())
                if p.healthy]

    def all_healthy(self) -> bool:
        return (not self.flapping
                and all(p.healthy for p in self.pops.values()))

    @property
    def pops_total(self) -> int:
        return len(self.pops)

    @property
    def pops_down(self) -> int:
        return sum(1 for p in self.pops.values() if not p.healthy)

    # -- routing ---------------------------------------------------------

    def route(self, resolver_id: str, block) -> Optional[str]:
        """Where anycast delivers a session intended for one PoP.

        ``block`` is the client's block (anything with ``geo`` and
        ``prefix.network``).  Returns the resolver id actually reached,
        or ``None`` when every PoP of the provider is withdrawn (the
        fleet is dark and the stub must burn its timeout).

        Deterministic by construction: a healthy, non-flapping fleet
        returns ``resolver_id`` unchanged (preserving the build-time
        misroute catchments byte-for-byte); a withdrawn PoP re-homes to
        the nearest healthy sibling; a flapping provider oscillates
        half its catchment -- blocks whose third octet is odd -- to the
        next-nearest healthy PoP, modeling the route instability that
        shifts anycast catchments without taking capacity down.
        """
        pop = self.pops.get(resolver_id)
        if pop is None:
            return resolver_id  # not a public PoP: fleets don't apply
        provider = pop.resolver.provider
        flapped = (provider in self.flapping
                   and (block.prefix.network >> 8) & 1 == 1)
        if pop.healthy and not flapped:
            return resolver_id
        ranked = sorted(
            self.healthy_pops(provider),
            key=lambda p: (great_circle_miles(block.geo, p.resolver.geo),
                           p.resolver_id))
        if not ranked:
            return None
        if flapped and pop.healthy:
            alternates = [p for p in ranked
                          if p.resolver_id != resolver_id]
            return (alternates[0] if alternates else ranked[0]).resolver_id
        return ranked[0].resolver_id
