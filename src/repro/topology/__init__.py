"""Synthetic Internet topology: the workload substrate.

The paper's analyses run against the real Internet as seen from Akamai:
3.76M /24 client blocks, 584K LDNSes, 37294 ASes (Section 3.1).  This
package generates a statistically structured miniature of that world:

* autonomous systems with Pareto-distributed demand and per-country
  resolver strategies (:mod:`repro.topology.ases`),
* /24 client blocks allocated contiguously per AS and city so that BGP
  CIDR aggregation is meaningful (:mod:`repro.topology.addressing`),
* LDNS infrastructures -- ISP-local, ISP anycast hubs, national-central,
  enterprise-central, and anycast public resolver providers with sparse
  deployments (:mod:`repro.topology.resolvers`),
* per-country behaviour profiles calibrated to the paper's Figures 6, 8
  and 9 (:mod:`repro.topology.profiles`),
* the :class:`repro.topology.internet.Internet` container produced by
  :func:`repro.topology.internet.build_internet`.
"""

from repro.topology.ases import ASKind, AutonomousSystem, ResolverStrategy
from repro.topology.addressing import AddressAllocator, BGPTable
from repro.topology.internet import (
    ClientBlock,
    Internet,
    InternetConfig,
    build_internet,
)
from repro.topology.profiles import CountryProfile, profile_for
from repro.topology.resolvers import (
    PublicProvider,
    Resolver,
    ResolverKind,
    anycast_catchment,
)

__all__ = [
    "ASKind",
    "AddressAllocator",
    "AutonomousSystem",
    "BGPTable",
    "ClientBlock",
    "CountryProfile",
    "Internet",
    "InternetConfig",
    "PublicProvider",
    "Resolver",
    "ResolverKind",
    "ResolverStrategy",
    "anycast_catchment",
    "build_internet",
    "profile_for",
]
