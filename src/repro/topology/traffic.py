"""Declarative surge-traffic shapes: the scenario library.

A :class:`TrafficSchedule` is a list of :class:`TrafficShape` rows --
``(start_day, duration_days, target, kind, magnitude)`` -- describing
*when* client demand deviates from the world's baseline and by how
much.  Like its sibling :class:`repro.faults.FaultSchedule`, the
schedule itself is pure data: it draws no randomness and touches no
world state, so two runs with the same seed and schedule replay
byte-identically, and it composes freely with a fault schedule (a
flash crowd *during* a cluster outage is just two rows).

Shape kinds (the surge geometries real CDNs plan capacity around):

* ``flash_crowd`` -- a step surge on one geography: every client block
  in the target country/continent multiplies its demand by
  ``magnitude`` for the window (breaking news, a product launch).
* ``regional_event`` -- a triangular ramp on one geography peaking
  mid-window (a sports final: audiences build, peak, disperse).
* ``diurnal_wave`` -- a world-wide sinusoidal volume wave with period
  ``period_days``; demand *shares* are untouched, only the session
  volume breathes.
* ``content_surge`` -- one content provider's popularity multiplies by
  ``magnitude`` for the window (a viral release), biasing which
  provider each session requests without moving clients.

The runtime half of the module -- :class:`DayTraffic` -- resolves a
schedule against a block list for one simulated day: an effective
per-block weighting, a volume multiplier, and demand-weighted picks
that reduce *exactly* to the legacy single-draw pick when no shape is
active (same single ``rng.random()`` call, same bisect), so an empty
schedule is byte-identical to no schedule at all.
"""

from __future__ import annotations

import bisect
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class ShapeKind:
    """String constants naming the supported traffic shapes."""

    FLASH_CROWD = "flash_crowd"
    REGIONAL_EVENT = "regional_event"
    DIURNAL_WAVE = "diurnal_wave"
    CONTENT_SURGE = "content_surge"

    GEO = (FLASH_CROWD, REGIONAL_EVENT)
    ALL = (FLASH_CROWD, REGIONAL_EVENT, DIURNAL_WAVE, CONTENT_SURGE)


#: Target-grammar prefixes legal for each shape kind.  Geographic
#: surges address ``country:<CC>`` or ``continent:<code>``; the
#: diurnal wave is whole-world (``"*"``); content surges address
#: ``provider:<name>`` in the world's catalog.
_TARGET_GRAMMAR = {
    ShapeKind.FLASH_CROWD: frozenset({"country", "continent"}),
    ShapeKind.REGIONAL_EVENT: frozenset({"country", "continent"}),
    ShapeKind.DIURNAL_WAVE: frozenset({"*"}),
    ShapeKind.CONTENT_SURGE: frozenset({"provider"}),
}

#: Continent codes of the city gazetteer, for the deterministic
#: surge generator.
CONTINENTS = ("AF", "AS", "EU", "NA", "OC", "SA")


def _validate_target(kind: str, target: str) -> None:
    """Raise ``ValueError`` unless ``target`` parses for ``kind``."""
    allowed = _TARGET_GRAMMAR[kind]
    if target == "*":
        if "*" in allowed:
            return
        raise ValueError(f"target '*' is not valid for {kind} shapes")
    head, sep, rest = target.partition(":")
    if not sep or head not in allowed:
        raise ValueError(
            f"bad {kind} target {target!r}: expected "
            f"{_grammar_hint(kind)}")
    if not rest:
        raise ValueError(f"bad {kind} target {target!r}: empty suffix")


def _grammar_hint(kind: str) -> str:
    names = sorted("'*'" if p == "*" else f"{p}:<...>"
                   for p in _TARGET_GRAMMAR[kind])
    return " or ".join(names)


@dataclass(frozen=True)
class TrafficShape:
    """One scheduled demand deviation: ``target``'s demand follows the
    kind's envelope from ``start_day`` for ``duration_days``.

    ``magnitude`` is the peak demand multiplier (> 1); the envelope
    interpolates between 1 and it per kind.  ``period_days`` is the
    wavelength of a ``diurnal_wave`` and must be 0 for every other
    kind.
    """

    start_day: int
    duration_days: int
    target: str
    kind: str
    magnitude: float
    period_days: int = 0

    def __post_init__(self) -> None:
        if self.start_day < 0:
            raise ValueError(f"start_day must be >= 0: {self.start_day}")
        if self.duration_days < 1:
            raise ValueError(
                f"duration_days must be >= 1: {self.duration_days}")
        if self.kind not in ShapeKind.ALL:
            raise ValueError(f"unknown traffic shape kind: {self.kind!r}")
        if not math.isfinite(self.magnitude) or self.magnitude <= 1.0:
            raise ValueError(
                f"magnitude must be a finite multiplier > 1: "
                f"{self.magnitude}")
        if self.kind == ShapeKind.DIURNAL_WAVE:
            if self.period_days < 1:
                raise ValueError(
                    f"diurnal_wave needs period_days >= 1: "
                    f"{self.period_days}")
        elif self.period_days != 0:
            raise ValueError(
                f"period_days is only valid for diurnal_wave shapes "
                f"(got {self.period_days} on {self.kind})")

    @property
    def end_day(self) -> int:
        """First day demand is back to baseline (exclusive bound)."""
        return self.start_day + self.duration_days

    def active(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    @property
    def provider_name(self) -> str:
        """The surged provider of a ``content_surge`` shape."""
        return self.target.partition(":")[2]

    def factor(self, day: int) -> float:
        """Demand multiplier this shape contributes on ``day``."""
        if not self.active(day):
            return 1.0
        if self.kind == ShapeKind.REGIONAL_EVENT:
            # Triangular ramp peaking mid-window (day midpoints, so a
            # one-day event peaks on its only day).
            position = (day - self.start_day + 0.5) / self.duration_days
            ramp = 1.0 - abs(2.0 * position - 1.0)
            return 1.0 + (self.magnitude - 1.0) * ramp
        if self.kind == ShapeKind.DIURNAL_WAVE:
            # Sinusoid from baseline up to ``magnitude`` and back each
            # ``period_days``; volume-only (shares untouched).
            phase = 2.0 * math.pi * (day - self.start_day) / self.period_days
            return 1.0 + (self.magnitude - 1.0) * 0.5 * (1.0 - math.cos(phase))
        # flash_crowd / content_surge: a step.
        return self.magnitude

    def matches_block(self, block) -> bool:
        """Does a client block fall inside this geographic surge?"""
        head, _, rest = self.target.partition(":")
        if head == "country":
            return block.country == rest
        if head == "continent":
            return block.continent == rest
        return False

    def to_dict(self) -> Dict:
        doc = {
            "start_day": self.start_day,
            "duration_days": self.duration_days,
            "target": self.target,
            "kind": self.kind,
            "magnitude": self.magnitude,
        }
        if self.period_days:
            doc["period_days"] = self.period_days
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "TrafficShape":
        known = {"start_day", "duration_days", "target", "kind",
                 "magnitude", "period_days"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown traffic shape fields: {sorted(unknown)}")
        return cls(
            start_day=int(doc["start_day"]),
            duration_days=int(doc["duration_days"]),
            target=str(doc["target"]),
            kind=str(doc["kind"]),
            magnitude=float(doc["magnitude"]),
            period_days=int(doc.get("period_days", 0)),
        )


@dataclass(frozen=True)
class TrafficSchedule:
    """An ordered collection of traffic shapes for one scenario."""

    shapes: Tuple[TrafficShape, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.shapes,
            key=lambda s: (s.start_day, s.kind, s.target)))
        object.__setattr__(self, "shapes", ordered)

    def __len__(self) -> int:
        return len(self.shapes)

    def __bool__(self) -> bool:
        return bool(self.shapes)

    def active(self, day: int) -> Tuple[TrafficShape, ...]:
        """Shapes in force on ``day``, in canonical order."""
        return tuple(s for s in self.shapes if s.active(day))

    def validate(self) -> "TrafficSchedule":
        """Parse-time checks beyond per-shape field validation.

        Rejects targets outside the documented grammar of their kind
        and overlapping shapes with the same ``(kind, target)`` --
        concurrent surges on one target have no single well-defined
        envelope, so they are an authoring error, not a composition.
        Distinct targets overlap freely (their factors stack).
        Returns ``self`` for chaining.
        """
        for shape in self.shapes:
            _validate_target(shape.kind, shape.target)
        previous: Dict[Tuple[str, str], TrafficShape] = {}
        for shape in self.shapes:  # already sorted by start_day
            key = (shape.kind, shape.target)
            earlier = previous.get(key)
            if earlier is not None and shape.start_day < earlier.end_day:
                raise ValueError(
                    f"overlapping {shape.kind} shapes for target "
                    f"{shape.target!r}: days "
                    f"[{earlier.start_day}, {earlier.end_day}) and "
                    f"[{shape.start_day}, {shape.end_day})")
            if earlier is None or shape.end_day > earlier.end_day:
                previous[key] = shape
        return self

    def to_dict(self) -> List[Dict]:
        return [shape.to_dict() for shape in self.shapes]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, docs: Iterable[Dict]) -> "TrafficSchedule":
        """Parse and validate (the hardened deserialization path)."""
        return cls(tuple(TrafficShape.from_dict(doc)
                         for doc in docs)).validate()

    @classmethod
    def from_json(cls, text: str) -> "TrafficSchedule":
        docs = json.loads(text)
        if not isinstance(docs, list):
            raise ValueError(
                "a traffic schedule is a JSON list of shape objects")
        return cls.from_dict(docs)


# -- runtime resolution ------------------------------------------------------

class DayTraffic:
    """One day of a schedule resolved against one block list.

    The effective weight of each block is its base demand plus every
    active geographic surge's ``(factor - 1) * demand`` contribution;
    :meth:`pick_block` samples that mixture with a *single* uniform
    draw (mass below the base total falls through to the legacy
    bisect; mass above walks the per-shape extras), so a day with no
    active geographic shape reproduces
    :meth:`repro.topology.internet.Internet.pick_block` bit-for-bit.
    """

    def __init__(self, schedule: TrafficSchedule, day: int,
                 blocks: Sequence) -> None:
        self.day = day
        self._blocks = blocks
        cum: List[float] = []
        running = 0.0
        for block in blocks:
            running += block.demand
            cum.append(running)
        self._base_cum = cum
        self._base_total = running
        # Per active geographic shape: (extra weight, matched blocks,
        # cumulative matched demand).
        self._extras: List[Tuple[float, List, List[float]]] = []
        wave = 1.0
        provider_factors: Dict[str, float] = {}
        for shape in schedule.active(day):
            if shape.kind in ShapeKind.GEO:
                matched: List = []
                mcum: List[float] = []
                mrunning = 0.0
                for block in blocks:
                    if shape.matches_block(block):
                        matched.append(block)
                        mrunning += block.demand
                        mcum.append(mrunning)
                extra = (shape.factor(day) - 1.0) * mrunning
                if matched and extra > 0.0:
                    self._extras.append((extra, matched, mcum))
            elif shape.kind == ShapeKind.DIURNAL_WAVE:
                wave *= shape.factor(day)
            else:  # content_surge: biases the provider pick only
                name = shape.provider_name
                provider_factors[name] = (
                    provider_factors.get(name, 1.0) * shape.factor(day))
        self.extra_weight = sum(e for e, _, _ in self._extras)
        self.total_weight = self._base_total + self.extra_weight
        self._wave = wave
        self._provider_factors = provider_factors

    @property
    def volume_multiplier(self) -> float:
        """Today's session volume relative to the baseline."""
        if self._base_total <= 0.0:
            return self._wave
        return (self.total_weight / self._base_total) * self._wave

    def pick_block(self, rng):
        """Surge-weighted demand pick (one uniform draw)."""
        if not self._blocks:
            raise ValueError("DayTraffic has no client blocks")
        u = rng.random() * self.total_weight
        if u < self._base_total or not self._extras:
            index = bisect.bisect_right(self._base_cum, u)
            return self._blocks[min(index, len(self._blocks) - 1)]
        u -= self._base_total
        for extra, matched, mcum in self._extras:
            if u < extra:
                position = (u / extra) * mcum[-1]
                index = bisect.bisect_right(mcum, position)
                return matched[min(index, len(matched) - 1)]
            u -= extra
        # Float-roundoff edge: the draw landed on the last boundary.
        return self._extras[-1][1][-1]

    def pick_provider(self, rng, catalog):
        """Surge-weighted provider pick, or None when no content surge
        is active (callers then fall through to the catalog's own
        pick, preserving the legacy draw)."""
        if not self._provider_factors:
            return None
        providers = catalog.providers
        cum: List[float] = []
        running = 0.0
        for provider in providers:
            weight = provider.popularity * self._provider_factors.get(
                provider.name, 1.0)
            running += weight
            cum.append(running)
        u = rng.random() * running
        index = bisect.bisect_right(cum, u)
        return providers[min(index, len(providers) - 1)]


def day_weight(schedule: TrafficSchedule, day: int,
               blocks: Sequence) -> float:
    """Total effective demand weight of ``blocks`` on ``day``.

    The scalar the sharded engine apportions session quotas by:
    base demand plus every active geographic surge's extra mass over
    the blocks (diurnal waves scale volume globally, not shares, so
    they do not appear here).
    """
    total = sum(block.demand for block in blocks)
    for shape in schedule.active(day):
        if shape.kind not in ShapeKind.GEO:
            continue
        matched = sum(block.demand for block in blocks
                      if shape.matches_block(block))
        total += (shape.factor(day) - 1.0) * matched
    return total


def generate_surges(rng, n_days: int, max_shapes: int = 3,
                    n_providers: int = 4) -> TrafficSchedule:
    """Deterministic surge schedule from an rng (the soak menu).

    ``rng`` needs ``randrange``/``choice`` (both
    :class:`repro.faults.SplitMix64` and :class:`random.Random`
    qualify).  Magnitudes and durations come from small quantized
    menus so generated schedules are platform-stable; every shape
    starts on day >= 1 and ends with at least one baseline day left,
    mirroring :func:`repro.faults.chaos.generate_schedule`.
    """
    if n_days < 4:
        raise ValueError(f"need at least 4 days to place a surge: {n_days}")
    count = 1 + rng.randrange(max(max_shapes, 1))
    shapes: List[TrafficShape] = []
    used = set()
    for _ in range(count):
        kind = rng.choice(ShapeKind.ALL)
        if kind == ShapeKind.DIURNAL_WAVE:
            target = "*"
        elif kind == ShapeKind.CONTENT_SURGE:
            target = f"provider:provider{rng.randrange(max(n_providers, 1))}"
        else:
            target = f"continent:{rng.choice(CONTINENTS)}"
        if (kind, target) in used:
            continue  # same-target overlap would fail validate()
        used.add((kind, target))
        duration = 2 + rng.randrange(min(4, n_days - 3))
        start = 1 + rng.randrange(max(n_days - duration - 1, 1))
        magnitude = rng.choice((2.0, 3.0, 4.0, 6.0))
        period = 0
        if kind == ShapeKind.DIURNAL_WAVE:
            magnitude = rng.choice((1.5, 2.0))
            period = rng.choice((5, 7))
        shapes.append(TrafficShape(
            start_day=start, duration_days=duration, target=target,
            kind=kind, magnitude=magnitude, period_days=period))
    return TrafficSchedule(tuple(shapes)).validate()
