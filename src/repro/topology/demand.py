"""Heavy-tailed demand sampling for ASes and client blocks.

Client demand on the real Internet is extremely skewed: the paper's
Figure 21 shows ~1800 LDNSes (of 584K) covering 50% of global demand and
~430K /24 blocks (of 3.76M) covering the same.  Pareto-distributed AS
sizes combined with lognormal within-AS block weights reproduce that
concentration.
"""

from __future__ import annotations

import math
import random
from typing import List


def pareto_weights(n: int, rng: random.Random, alpha: float = 1.1) -> List[float]:
    """n independent Pareto(alpha) weights (heavy-tailed, unnormalized).

    ``alpha`` near 1 gives the extreme skew seen in AS demand shares.
    """
    if n < 1:
        raise ValueError("need at least one weight")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    out = []
    for _ in range(n):
        u = rng.random()
        # Inverse-CDF sampling; clamp u away from 0 to bound the tail.
        u = max(u, 1e-9)
        out.append(math.pow(u, -1.0 / alpha))
    return out


def lognormal_weights(
    n: int, rng: random.Random, sigma: float = 1.2
) -> List[float]:
    """n lognormal weights for splitting an AS's demand across blocks."""
    if n < 1:
        raise ValueError("need at least one weight")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    return [math.exp(rng.gauss(0.0, sigma)) for _ in range(n)]


def normalize(weights: List[float], total: float = 1.0) -> List[float]:
    """Scale weights so they sum to ``total``."""
    s = sum(weights)
    if s <= 0:
        raise ValueError("weights must have positive sum")
    return [w * total / s for w in weights]


def zipf_weights(n: int, exponent: float = 0.9) -> List[float]:
    """Deterministic Zipf rank weights 1/r^exponent for r = 1..n.

    Used for domain-name popularity (Figure 24's popularity buckets).
    """
    if n < 1:
        raise ValueError("need at least one weight")
    return [1.0 / math.pow(rank, exponent) for rank in range(1, n + 1)]
