"""IPv4 address allocation and the BGP routing table.

The generator allocates each autonomous system one contiguous
power-of-two-sized chunk of /24 blocks *per city of presence*.  Each
chunk is announced as a single BGP CIDR.  This mirrors the real-world
structure the paper exploits in Section 5.1: /24 blocks that fall inside
one routed CIDR are network-proximal and can be merged into one mapping
unit (Akamai's 3.76M /24s collapse to 444K BGP CIDRs).

Client space is carved from ``CLIENT_SPACE`` (1.0.0.0 up), resolver and
CDN infrastructure from separate pools so address roles never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.net.ipv4 import Prefix, format_ipv4
from repro.net.trie import RadixTrie

# Pool starts are cursors in units of /24 blocks (address >> 8).
#: Client blocks are carved from 1.0.0.0 upward.
CLIENT_SPACE_START = (1 << 24) >> 8
#: Resolver infrastructure pool starts at 200.0.0.0.
RESOLVER_SPACE_START = (200 << 24) >> 8
#: CDN server pool starts at 220.0.0.0.
CDN_SPACE_START = (220 << 24) >> 8
#: Origin/infrastructure pool starts at 230.0.0.0.
ORIGIN_SPACE_START = (230 << 24) >> 8


def _next_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


@dataclass(frozen=True, slots=True)
class Announcement:
    """One BGP announcement: a CIDR originated by an AS."""

    cidr: Prefix
    asn: int


class AddressAllocator:
    """Sequential allocator of /24-aligned, power-of-two-sized chunks.

    Allocation is bump-pointer within a pool; chunks are aligned to
    their own size (CIDR alignment), so each chunk is expressible as a
    single prefix.
    """

    def __init__(self, start_block24: int = CLIENT_SPACE_START) -> None:
        # Cursor in units of /24 blocks.
        self._cursor = start_block24

    def allocate_chunk(self, n_blocks24: int) -> Prefix:
        """Allocate an aligned chunk covering >= n_blocks24 /24 blocks.

        Returns the covering CIDR (always between /24 and /8).
        """
        if n_blocks24 < 1:
            raise ValueError("chunk must contain at least one /24")
        size = _next_power_of_two(n_blocks24)
        if size > (1 << 16):
            raise ValueError(f"chunk too large: {n_blocks24} /24s")
        # Align the cursor up to a multiple of the chunk size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        self._cursor = aligned + size
        network = aligned << 8
        if network >= (1 << 32):
            raise RuntimeError("client address space exhausted")
        length = 24 - size.bit_length() + 1
        return Prefix(network, length)

    def allocate_host(self) -> int:
        """Allocate a single host address in its own /24."""
        prefix = self.allocate_chunk(1)
        return prefix.network | 1

    @property
    def blocks_allocated(self) -> int:
        """Cursor position in /24 units (upper bound on blocks handed out)."""
        return self._cursor


@dataclass
class BGPTable:
    """The simulated global routing table.

    Supports the two queries the mapping system needs: origin-AS lookup
    for an address, and enumeration of all routed CIDRs (the Section 5.1
    mapping-unit reduction uses the CIDR list).
    """

    _trie: RadixTrie[Announcement] = field(default_factory=RadixTrie)
    _announcements: List[Announcement] = field(default_factory=list)

    def announce(self, cidr: Prefix, asn: int) -> None:
        """Insert an announcement.  Re-announcing a CIDR is an error."""
        if self._trie.exact(cidr) is not None:
            raise ValueError(f"duplicate announcement for {cidr}")
        ann = Announcement(cidr, asn)
        self._trie.insert(cidr, ann)
        self._announcements.append(ann)

    def origin_asn(self, addr: int) -> Optional[int]:
        """Origin AS of the longest-matching announcement, or None."""
        ann = self._trie.lookup(addr)
        return ann.asn if ann else None

    def route(self, addr: int) -> Optional[Announcement]:
        """The longest-matching announcement for an address."""
        return self._trie.lookup(addr)

    def covering_cidr(self, prefix: Prefix) -> Optional[Prefix]:
        """The routed CIDR containing a /24 block, if any.

        This implements the paper's mapping-unit merge: two /24 client
        blocks with the same covering CIDR can share one mapping unit.
        """
        ann = self._trie.lookup(prefix.network)
        if ann is None or not ann.cidr.covers(prefix):
            return None
        return ann.cidr

    def announcements(self) -> Iterator[Announcement]:
        return iter(self._announcements)

    def __len__(self) -> int:
        return len(self._announcements)

    def __repr__(self) -> str:
        if not self._announcements:
            return "BGPTable(empty)"
        first = self._announcements[0]
        return (f"BGPTable({len(self._announcements)} announcements, "
                f"first {first.cidr} via AS{first.asn})")


def describe_chunk(prefix: Prefix) -> str:
    """Human-readable chunk description for logs and reports."""
    return (f"{format_ipv4(prefix.network)}/{prefix.length} "
            f"({prefix.num_addresses // 256} x /24)")
