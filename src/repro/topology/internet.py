"""The synthetic Internet: configuration, builder, and container.

:func:`build_internet` generates a deterministic miniature Internet from
an :class:`InternetConfig` and a seed: autonomous systems, /24 client
blocks with heavy-tailed demand, the LDNS population (ISP, enterprise,
and anycast public-resolver deployments), a BGP table of routed CIDRs,
and a geolocation database covering everything.

Everything downstream -- the DNS stack, the CDN, the mapping system, and
every experiment -- consumes the :class:`Internet` container built here.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.cities import City, WORLD_CITIES, cities_by_country, city_index
from repro.geo.database import GeoDatabase, GeoRecord
from repro.net.geometry import GeoPoint, displace
from repro.net.ipv4 import Prefix
from repro.topology.addressing import (
    AddressAllocator,
    BGPTable,
    RESOLVER_SPACE_START,
)
from repro.topology.ases import ASKind, AutonomousSystem, ResolverStrategy
from repro.topology.demand import (
    lognormal_weights,
    pareto_weights,
    zipf_weights,
)
from repro.topology.profiles import profile_for
from repro.topology.resolvers import (
    DEFAULT_PUBLIC_PROVIDERS,
    PublicProvider,
    Resolver,
    ResolverKind,
    anycast_catchment,
    pick_provider,
)

#: Access-technology last-mile RTT penalties (ms) and their global mix.
_LAST_MILE_CHOICES: Tuple[Tuple[str, float], ...] = (
    ("fiber", 2.0),
    ("cable", 8.0),
    ("dsl", 18.0),
    ("cellular", 45.0),
)
_LAST_MILE_WEIGHTS: Tuple[float, ...] = (0.15, 0.30, 0.35, 0.20)


@dataclass(frozen=True, slots=True)
class ClientBlock:
    """One /24 client IP block: the finest client granularity we model.

    The paper aggregates clients to /24 blocks throughout (NetSession
    data, ECS queries, mapping units), so a block is also our atom.
    """

    prefix: Prefix
    geo: GeoPoint
    city: str
    country: str
    continent: str
    asn: int
    demand: float
    last_mile_ms: float
    access: str
    ldns: Tuple[Tuple[str, float], ...]
    """(resolver_id, relative frequency) pairs; frequencies sum to 1.
    NetSession observes exactly this set per block (Section 3.1)."""

    @property
    def primary_ldns(self) -> str:
        """The resolver this block uses most of the time."""
        return max(self.ldns, key=lambda pair: pair[1])[0]

    def pick_ldns(self, rng: random.Random) -> str:
        """Sample a resolver for one session, by relative frequency."""
        if len(self.ldns) == 1:
            return self.ldns[0][0]
        ids = [pair[0] for pair in self.ldns]
        weights = [pair[1] for pair in self.ldns]
        return rng.choices(ids, weights=weights, k=1)[0]


@dataclass(frozen=True)
class InternetConfig:
    """Knobs of the topology generator.

    The class methods give the three standard scales: ``tiny`` for unit
    tests, ``small`` for benches, ``paper`` for the EXPERIMENTS.md runs.
    """

    n_client_blocks: int = 6000
    n_ases: int = 400
    enterprise_fraction: float = 0.12
    pareto_alpha: float = 1.1
    block_jitter_miles: float = 25.0
    block_demand_sigma: float = 1.5
    secondary_ldns_rate: float = 0.25
    """Probability a block's clients spread across two LDNSes."""
    isp_anycast_misroute: float = 0.10
    providers: Tuple[PublicProvider, ...] = DEFAULT_PUBLIC_PROVIDERS
    total_demand: float = 1_000_000.0
    """Total client demand in abstract units (normalization target)."""

    def __post_init__(self) -> None:
        if self.n_client_blocks < self.n_ases:
            raise ValueError("need at least one block per AS")
        if not 0.0 <= self.enterprise_fraction < 1.0:
            raise ValueError("enterprise_fraction must be in [0, 1)")
        if self.n_ases < 50:
            raise ValueError(
                "n_ases < 50 cannot cover the gazetteer's countries")

    @classmethod
    def tiny(cls) -> "InternetConfig":
        """Smallest config that still exercises every mechanism."""
        return cls(n_client_blocks=1000, n_ases=90)

    @classmethod
    def small(cls) -> "InternetConfig":
        """Default experimentation scale (seconds to build)."""
        return cls(n_client_blocks=6000, n_ases=400)

    @classmethod
    def paper(cls) -> "InternetConfig":
        """Scale used for the numbers recorded in EXPERIMENTS.md."""
        return cls(n_client_blocks=40000, n_ases=2200)


@dataclass(frozen=True, slots=True)
class BlockColumns:
    """Columnar (structure-of-arrays) view over the client blocks.

    One row per block, in ``Internet.blocks`` order, for the vectorized
    kernels in :mod:`repro.net.batch`: bulk block->target assignment,
    RTT matrices, demand-weighted reductions.
    """

    lat: np.ndarray
    lon: np.ndarray
    asn: np.ndarray
    demand: np.ndarray
    last_mile_ms: np.ndarray

    def __len__(self) -> int:
        return int(self.lat.size)


@dataclass
class Internet:
    """Container for one generated Internet."""

    config: InternetConfig
    seed: int
    ases: Dict[int, AutonomousSystem]
    blocks: List[ClientBlock]
    resolvers: Dict[str, Resolver]
    providers: Tuple[PublicProvider, ...]
    bgp: BGPTable
    geodb: GeoDatabase

    _cum_demand: List[float] = field(default_factory=list, repr=False)
    _block_by_prefix: Dict[Prefix, ClientBlock] = field(
        default_factory=dict, repr=False)
    _columns: Optional[BlockColumns] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        running = 0.0
        self._cum_demand = []
        for block in self.blocks:
            running += block.demand
            self._cum_demand.append(running)
        self._block_by_prefix = {b.prefix: b for b in self.blocks}
        self._columns = None

    # -- lookups ---------------------------------------------------------

    @property
    def total_demand(self) -> float:
        return self._cum_demand[-1] if self._cum_demand else 0.0

    def resolver(self, resolver_id: str) -> Resolver:
        return self.resolvers[resolver_id]

    def block_for_prefix(self, prefix: Prefix) -> Optional[ClientBlock]:
        return self._block_by_prefix.get(prefix)

    def block_for_addr(self, addr: int) -> Optional[ClientBlock]:
        return self._block_by_prefix.get(Prefix(addr & 0xFFFFFF00, 24))

    def pick_block(self, rng: random.Random) -> ClientBlock:
        """Demand-weighted random block (a 'client session arrives')."""
        if not self.blocks:
            raise ValueError("Internet has no client blocks")
        target = rng.random() * self.total_demand
        index = bisect.bisect_right(self._cum_demand, target)
        return self.blocks[min(index, len(self.blocks) - 1)]

    def block_columns(self) -> BlockColumns:
        """Columnar lat/lon/asn/demand arrays over ``blocks``.

        Extracted once and cached; blocks are immutable so the view
        never goes stale.  Row ``i`` is ``self.blocks[i]``.
        """
        if self._columns is None:
            n = len(self.blocks)
            self._columns = BlockColumns(
                lat=np.fromiter((b.geo.lat for b in self.blocks),
                                dtype=float, count=n),
                lon=np.fromiter((b.geo.lon for b in self.blocks),
                                dtype=float, count=n),
                asn=np.fromiter((b.asn for b in self.blocks),
                                dtype=np.int64, count=n),
                demand=np.fromiter((b.demand for b in self.blocks),
                                   dtype=float, count=n),
                last_mile_ms=np.fromiter(
                    (b.last_mile_ms for b in self.blocks),
                    dtype=float, count=n),
            )
        return self._columns

    # -- aggregate views -------------------------------------------------

    def public_resolver_ids(self) -> set:
        return {rid for rid, res in self.resolvers.items() if res.is_public}

    def ldns_demand(self) -> Dict[str, float]:
        """Demand served by each LDNS (paper's 'LDNS demand')."""
        out: Dict[str, float] = {}
        for block in self.blocks:
            for resolver_id, weight in block.ldns:
                out[resolver_id] = out.get(resolver_id, 0.0) + (
                    block.demand * weight)
        return out

    def public_demand_share(self) -> float:
        """Fraction of global demand served via public resolvers."""
        public = self.public_resolver_ids()
        served = sum(
            block.demand * weight
            for block in self.blocks
            for resolver_id, weight in block.ldns
            if resolver_id in public
        )
        return served / self.total_demand if self.total_demand else 0.0

    def blocks_by_country(self) -> Dict[str, List[ClientBlock]]:
        grouped: Dict[str, List[ClientBlock]] = {}
        for block in self.blocks:
            grouped.setdefault(block.country, []).append(block)
        return grouped

    def country_demand(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for block in self.blocks:
            out[block.country] = out.get(block.country, 0.0) + block.demand
        return out


def build_internet(config: Optional[InternetConfig] = None,
                   seed: int = 2014) -> Internet:
    """Generate a deterministic synthetic Internet."""
    config = config or InternetConfig.small()
    # Providers carry mutable deployment lists; clone them so two
    # Internets built from the same config never share resolver state.
    config = dataclasses.replace(config, providers=tuple(
        dataclasses.replace(p, deployments=[]) for p in config.providers))
    rng = random.Random(seed)

    ases = _generate_ases(config, rng)
    bgp = BGPTable()
    geodb = GeoDatabase()
    client_alloc = AddressAllocator()
    resolver_alloc = AddressAllocator(RESOLVER_SPACE_START)

    resolvers = _deploy_public_providers(config.providers, resolver_alloc,
                                         geodb, bgp, rng)
    resolvers.update(
        _deploy_as_resolvers(ases.values(), resolver_alloc, geodb, bgp, rng))

    blocks = _generate_blocks(config, ases, resolvers, client_alloc,
                              geodb, bgp, rng)

    return Internet(
        config=config,
        seed=seed,
        ases=ases,
        blocks=blocks,
        resolvers=resolvers,
        providers=config.providers,
        bgp=bgp,
        geodb=geodb,
    )


# ---------------------------------------------------------------------------
# AS generation


def _generate_ases(config: InternetConfig,
                   rng: random.Random) -> Dict[int, AutonomousSystem]:
    by_country = cities_by_country()
    # Demand weight per country: population scaled by how much CDN
    # demand that population generated in the paper's era.
    country_weight = {
        code: sum(city.weight for city in cities)
        * profile_for(code).internet_penetration
        for code, cities in by_country.items()
    }
    total_weight = sum(country_weight.values())

    n_enterprise = int(round(config.n_ases * config.enterprise_fraction))
    n_isp = config.n_ases - n_enterprise

    ases: Dict[int, AutonomousSystem] = {}
    next_asn = 100

    # --- eyeball ISPs, apportioned to countries by demand weight ---------
    # National market shares follow a Zipf rank law with mild noise:
    # real access markets are dominated by a handful of carriers (the
    # incumbent telco alone often holds 30-60%), and that concentration
    # is what lets one carrier's resolver strategy set a whole
    # country's Figure 6 signature.
    # AS *counts* follow population, not demand: developing regions
    # have many small ISPs even though their per-capita traffic is low
    # (the paper analyzes 37K ASes spanning shares 2^-10..2^-1).  This
    # is what puts the far-LDNS small-AS population of Figure 10 in
    # countries that outsource DNS.
    population_weight = {
        code: sum(city.weight for city in cities)
        for code, cities in by_country.items()
    }
    total_population = sum(population_weight.values())
    anchors_per_country: Dict[str, List[int]] = {}
    isp_counts: Dict[str, int] = {}
    for code in country_weight:
        isp_counts[code] = max(1, round(
            n_isp * population_weight[code] / total_population))
    for code, count in isp_counts.items():
        cities = by_country[code]
        ranks = zipf_weights(count, exponent=1.8)
        weights = [r * math.exp(rng.gauss(0.0, 0.35)) for r in ranks]
        weights.sort(reverse=True)
        max_w = max(weights)
        country_asns: List[int] = []
        for rank, weight in enumerate(weights):
            asn = next_asn
            next_asn += 1
            presence = _pick_presence_cities(
                cities, cover_fraction=weight / max_w, rng=rng)
            as_obj = AutonomousSystem(
                asn=asn,
                name=f"{code.lower()}-isp-{rank}",
                kind=ASKind.EYEBALL_ISP,
                country=code,
                cities=presence,
                demand=weight / sum(weights) * country_weight[code],
            )
            ases[asn] = as_obj
            country_asns.append(asn)
        anchors_per_country[code] = country_asns[:3]
    _assign_isp_strategies(ases, anchors_per_country, rng)

    # --- enterprises ------------------------------------------------------
    hq_countries = ["US"] * 10 + ["GB", "GB", "DE", "DE", "JP", "FR", "NL",
                                  "CH", "SG", "CA"]
    office_cities, office_weights = _enterprise_office_pool()
    ent_weights = pareto_weights(max(1, n_enterprise), rng,
                                 config.pareto_alpha)
    for rank in range(n_enterprise):
        asn = next_asn
        next_asn += 1
        hq_country = rng.choice(hq_countries)
        hq_city = max(by_country[hq_country], key=lambda c: c.weight)
        n_offices = rng.randint(2, 6)
        offices = [hq_city]
        seen = {hq_city.name}
        for _ in range(n_offices):
            office = rng.choices(office_cities, weights=office_weights,
                                 k=1)[0]
            if office.name not in seen:
                offices.append(office)
                seen.add(office.name)
        ases[asn] = AutonomousSystem(
            asn=asn,
            name=f"ent-{hq_country.lower()}-{rank}",
            kind=ASKind.ENTERPRISE,
            country=hq_country,
            cities=offices,
            demand=ent_weights[rank],
            strategy=ResolverStrategy.CENTRAL_HQ,
            hub_cities=[hq_city],
        )

    # Enterprises carry a small, fixed slice of global demand (their
    # offices matter for the far-LDNS tail, not for aggregate volume).
    isp_total = sum(a.demand for a in ases.values()
                    if a.kind == ASKind.EYEBALL_ISP)
    ent_total = sum(a.demand for a in ases.values()
                    if a.kind == ASKind.ENTERPRISE)
    if ent_total > 0:
        ent_scale = 0.05 * isp_total / ent_total
        for as_obj in ases.values():
            if as_obj.kind == ASKind.ENTERPRISE:
                as_obj.demand *= ent_scale

    # Normalize demand to the configured total.
    raw_total = sum(a.demand for a in ases.values())
    for as_obj in ases.values():
        as_obj.demand = as_obj.demand / raw_total * config.total_demand
    return ases


def _pick_presence_cities(cities: Sequence[City], cover_fraction: float,
                          rng: random.Random) -> List[City]:
    """Cities an ISP serves: biggest first, count scaled to its size.

    Single-city (small) ISPs are biased toward *secondary* markets:
    a small regional ISP exists precisely where the incumbents under-
    serve, which is rarely the capital metro.  This is load-bearing for
    Figure 10 -- it puts small-AS client demand far from the metros
    where public-resolver deployments live, so outsourcing translates
    into distance.
    """
    ranked = sorted(cities, key=lambda c: c.weight, reverse=True)
    count = max(1, round(cover_fraction * len(ranked)))
    if count > 1:
        return ranked[:count]
    secondary = ranked[2:] if len(ranked) > 2 else ranked[1:]
    if secondary and rng.random() < 0.75:
        weights = [c.weight for c in secondary]
        return [rng.choices(secondary, weights=weights, k=1)[0]]
    return [ranked[0]]


def _assign_isp_strategies(
    ases: Dict[int, AutonomousSystem],
    anchors_per_country: Dict[str, List[int]],
    rng: random.Random,
) -> None:
    """Assign resolver strategies after demand is known globally.

    Two variance-reduction rules keep country character stable across
    scales and seeds (a single coin flip must not swing a national
    market's Figure 6/9 numbers):

    * each country's few *largest* ISPs -- the incumbents that carry
      most national demand -- pick their strategy deterministically
      from the profile's dominant probability;
    * "small" (eligible to outsource wholesale) is judged against the
      *global* demand distribution -- the paper's Figure 10 mechanism
      is about absolutely small local ISPs.
    """
    isps = [a for a in ases.values() if a.kind == ASKind.EYEBALL_ISP]
    total_isp_demand = sum(a.demand for a in isps)
    anchors = {asn for asns in anchors_per_country.values()
               for asn in asns}

    for as_obj in isps:
        profile = profile_for(as_obj.country)
        if as_obj.asn in anchors:
            # National flagship: deterministic dominant strategy.
            if profile.local_infra >= 0.5:
                _make_local(as_obj)
            elif profile.central_national >= 0.5:
                _make_central(as_obj,
                              foreign=profile.foreign_hub_rate >= 0.5)
            else:
                _make_anycast_hubs(as_obj, rng)
            continue
        # Outsourcing probability rises as the AS shrinks (the paper's
        # Figure 10 economics: the smaller the ISP, the less a resolver
        # fleet pays for itself).  Tiers are absolute demand shares to
        # line up with the figure's 2^-x buckets at every scale.
        share = as_obj.demand / total_isp_demand
        if share < 2.0 ** -11:
            outsource_p = min(0.9, profile.small_outsource + 0.30)
        elif share < 2.0 ** -9:
            outsource_p = profile.small_outsource
        else:
            outsource_p = 0.0
        if rng.random() < outsource_p:
            as_obj.strategy = ResolverStrategy.OUTSOURCED_PUBLIC
            continue
        roll = rng.random()
        if roll < profile.local_infra:
            _make_local(as_obj)
        elif rng.random() < profile.central_national:
            _make_central(as_obj,
                          foreign=rng.random() < profile.foreign_hub_rate)
        else:
            _make_anycast_hubs(as_obj, rng)


def _make_local(as_obj: AutonomousSystem) -> None:
    """Local deployment: resolvers in most -- not all -- served cities.

    Covering ~60% of presence cities (largest first) reproduces the
    paper's overall picture: the typical client is within metro range
    of its LDNS, but a second mode sits at regional distance (the
    200-300 mile bump in Figure 5 comes from clients in uncovered
    cities reaching the nearest covered one).
    """
    as_obj.strategy = ResolverStrategy.LOCAL
    if len(as_obj.cities) > 1:
        covered = max(1, math.ceil(len(as_obj.cities) * 0.6))
        as_obj.hub_cities = sorted(
            as_obj.cities, key=lambda c: c.weight,
            reverse=True)[:covered]


def _make_central(as_obj: AutonomousSystem, foreign: bool) -> None:
    """Centralize the AS's resolvers: domestically, or at the regional
    DNS hub abroad (paper Section 3.2's 'outsource ... to other
    providers' / backhaul pattern)."""
    as_obj.strategy = ResolverStrategy.CENTRAL_NATIONAL
    profile = profile_for(as_obj.country)
    if foreign and profile.foreign_hub:
        hub = city_index().get(profile.foreign_hub)
        if hub is None:
            raise ValueError(
                f"unknown foreign hub city {profile.foreign_hub!r} for "
                f"{as_obj.country}")
        as_obj.hub_cities = [hub]
        return
    national_hub = max(cities_by_country()[as_obj.country],
                       key=lambda c: c.weight)
    as_obj.hub_cities = [national_hub]


def _make_anycast_hubs(as_obj: AutonomousSystem,
                       rng: random.Random) -> None:
    as_obj.strategy = ResolverStrategy.ANYCAST_HUBS
    n_hubs = min(len(as_obj.cities), rng.randint(2, 3))
    as_obj.hub_cities = sorted(as_obj.cities, key=lambda c: c.weight,
                               reverse=True)[:n_hubs]


def _enterprise_office_pool() -> Tuple[List[City], List[float]]:
    """Global office-city pool, weighted so that countries whose firms
    commonly backhaul DNS abroad (profile.enterprise_abroad) attract
    more foreign-enterprise offices -- the paper's Japan mechanism."""
    cities: List[City] = []
    weights: List[float] = []
    for city in WORLD_CITIES:
        profile = profile_for(city.country)
        cities.append(city)
        weights.append(city.weight * (0.3 + profile.enterprise_abroad))
    return cities, weights


# ---------------------------------------------------------------------------
# Resolver deployment


def _deploy_public_providers(
    providers: Iterable[PublicProvider],
    alloc: AddressAllocator,
    geodb: GeoDatabase,
    bgp: BGPTable,
    rng: random.Random,
) -> Dict[str, Resolver]:
    resolvers: Dict[str, Resolver] = {}
    for provider in providers:
        provider.deployments.clear()
        for city in provider.cities():
            geo = displace(city.geo, rng.uniform(0, 5),
                           rng.uniform(0, 2 * math.pi))
            ip = alloc.allocate_host()
            resolver = Resolver(
                resolver_id=f"pub-{provider.name}-{_slug(city.name)}",
                ip=ip,
                geo=geo,
                city=city.name,
                country=city.country,
                asn=provider.asn,
                kind=ResolverKind.PUBLIC,
                provider=provider.name,
                supports_ecs=True,
            )
            provider.deployments.append(resolver)
            resolvers[resolver.resolver_id] = resolver
            _register_resolver(resolver, geodb, bgp, city)
    return resolvers


def _deploy_as_resolvers(
    ases: Iterable[AutonomousSystem],
    alloc: AddressAllocator,
    geodb: GeoDatabase,
    bgp: BGPTable,
    rng: random.Random,
) -> Dict[str, Resolver]:
    resolvers: Dict[str, Resolver] = {}
    for as_obj in ases:
        kind = (ResolverKind.ENTERPRISE
                if as_obj.kind == ASKind.ENTERPRISE else ResolverKind.ISP)
        tag = "ent" if kind == ResolverKind.ENTERPRISE else "isp"
        for city in as_obj.resolver_cities():
            geo = displace(city.geo, rng.uniform(0, 8),
                           rng.uniform(0, 2 * math.pi))
            resolver = Resolver(
                resolver_id=f"{tag}-{as_obj.asn}-{_slug(city.name)}",
                ip=alloc.allocate_host(),
                geo=geo,
                city=city.name,
                country=city.country,
                asn=as_obj.asn,
                kind=kind,
                provider=as_obj.name,
                supports_ecs=False,
            )
            resolvers[resolver.resolver_id] = resolver
            _register_resolver(resolver, geodb, bgp, city)
    return resolvers


def _register_resolver(resolver: Resolver, geodb: GeoDatabase,
                       bgp: BGPTable, city: City) -> None:
    block = Prefix(resolver.ip & 0xFFFFFF00, 24)
    geodb.register(block, GeoRecord(
        geo=resolver.geo, city=city.name, country=city.country,
        continent=city.continent, asn=resolver.asn))
    bgp.announce(block, resolver.asn)


def _slug(name: str) -> str:
    return name.lower().replace(" ", "-").replace(".", "")


# ---------------------------------------------------------------------------
# Client block generation


def _generate_blocks(
    config: InternetConfig,
    ases: Dict[int, AutonomousSystem],
    resolvers: Dict[str, Resolver],
    alloc: AddressAllocator,
    geodb: GeoDatabase,
    bgp: BGPTable,
    rng: random.Random,
) -> List[ClientBlock]:
    as_list = sorted(ases.values(), key=lambda a: a.asn)
    total_demand = sum(a.demand for a in as_list)

    # Index each AS's own resolver deployments once (avoids a full scan
    # of the resolver table per client block).
    own_resolvers: Dict[int, List[Resolver]] = {}
    for resolver in resolvers.values():
        if resolver.kind != ResolverKind.PUBLIC:
            own_resolvers.setdefault(resolver.asn, []).append(resolver)
    for deployments in own_resolvers.values():
        deployments.sort(key=lambda r: r.resolver_id)

    # Apportion the block budget by demand, one block minimum.
    budgets: Dict[int, int] = {}
    for as_obj in as_list:
        budgets[as_obj.asn] = max(
            1, round(config.n_client_blocks * as_obj.demand / total_demand))

    blocks: List[ClientBlock] = []
    # Per-country demand accounting for quota-based public-resolver
    # adoption: [total demand seen, demand assigned to public LDNS].
    country_acc: Dict[str, List[float]] = {}
    for as_obj in as_list:
        n_blocks = budgets[as_obj.asn]
        city_pool = as_obj.cities
        city_weights = [c.weight for c in city_pool]
        # Distribute blocks across presence cities (demand-weighted).
        per_city: Dict[str, int] = {}
        for _ in range(n_blocks):
            city = rng.choices(city_pool, weights=city_weights, k=1)[0]
            per_city[city.name] = per_city.get(city.name, 0) + 1
        city_index = {c.name: c for c in city_pool}
        demand_split = lognormal_weights(n_blocks, rng,
                                         config.block_demand_sigma)
        split_total = sum(demand_split)
        split_iter = iter(demand_split)

        for city_name, count in sorted(per_city.items()):
            city = city_index[city_name]
            # Pad every allocation to at least 16 x /24 (a /20): RIR
            # allocations leave growth room, so distinct cities rarely
            # share fine prefixes.  This is what makes coarse /x
            # mapping units geographically coherent (Figure 22: 87.3%
            # of /20 clusters have radius <= 100 miles).
            chunk = alloc.allocate_chunk(max(count, 16))
            bgp.announce(chunk, as_obj.asn)
            for i, block_prefix in enumerate(chunk.subnets(24)):
                if i >= count:
                    break
                share = next(split_iter) / split_total
                geo = displace(city.geo,
                               rng.uniform(0, config.block_jitter_miles),
                               rng.uniform(0, 2 * math.pi))
                access, last_mile = rng.choices(
                    _LAST_MILE_CHOICES, weights=_LAST_MILE_WEIGHTS, k=1)[0]
                ldns = _assign_ldns(
                    as_obj, geo, own_resolvers.get(as_obj.asn, []),
                    as_obj.demand * share, city.country, country_acc,
                    config, rng)
                block = ClientBlock(
                    prefix=block_prefix,
                    geo=geo,
                    city=city.name,
                    country=city.country,
                    continent=city.continent,
                    asn=as_obj.asn,
                    demand=as_obj.demand * share,
                    last_mile_ms=last_mile,
                    access=access,
                    ldns=ldns,
                )
                blocks.append(block)
                geodb.register(block_prefix, GeoRecord(
                    geo=geo, city=city.name, country=city.country,
                    continent=city.continent, asn=as_obj.asn))
    return blocks


def _assign_ldns(
    as_obj: AutonomousSystem,
    block_geo: GeoPoint,
    own_resolvers: List[Resolver],
    block_demand: float,
    block_country: str,
    country_acc: Dict[str, List[float]],
    config: InternetConfig,
    rng: random.Random,
) -> Tuple[Tuple[str, float], ...]:
    """Choose the LDNS(es) used by one client block.

    Public-resolver adoption uses a per-country demand quota rather
    than an independent coin per block, so every country converges to
    its profile's adoption share regardless of how few blocks it has
    (Figure 9's per-country percentages are calibration targets).
    """
    profile = profile_for(block_country)
    acc = country_acc.setdefault(block_country, [0.0, 0.0])
    acc[0] += block_demand
    outsourced = as_obj.strategy == ResolverStrategy.OUTSOURCED_PUBLIC
    # Quota from below: assign public only if doing so keeps the
    # country at or under its adoption target (avoids the first-block
    # bias that would make every tiny country's lone block public).
    below_quota = (acc[1] + block_demand
                   <= profile.public_adoption * acc[0])
    use_public = outsourced or below_quota
    if use_public:
        acc[1] += block_demand
        primary = _public_ldns(block_geo, config, rng)
    else:
        primary = _isp_ldns(block_geo, own_resolvers, config, rng)

    if rng.random() >= config.secondary_ldns_rate:
        return ((primary, 1.0),)

    # A secondary LDNS.  Most secondaries are another resolver of the
    # same operator; users configure a public fallback only while the
    # country's adoption quota allows it (so low-adoption countries
    # like Korea stay low, Figure 9).
    secondary = None
    if own_resolvers and len(own_resolvers) > 1 and rng.random() < 0.7:
        alternates = [r for r in own_resolvers
                      if r.resolver_id != primary]
        secondary = rng.choice(alternates).resolver_id
    elif use_public or (acc[1] + 0.15 * block_demand
                        <= profile.public_adoption * acc[0]):
        secondary = _public_ldns(block_geo, config, rng)
        if not use_public:
            acc[1] += 0.15 * block_demand
    if secondary is None or secondary == primary:
        return ((primary, 1.0),)
    return ((primary, 0.85), (secondary, 0.15))


def _public_ldns(block_geo: GeoPoint, config: InternetConfig,
                 rng: random.Random) -> str:
    provider = pick_provider(config.providers, rng)
    deployment = anycast_catchment(block_geo, provider.deployments, rng,
                                   provider.misroute_rate)
    return deployment.resolver_id


def _isp_ldns(
    block_geo: GeoPoint,
    own_resolvers: List[Resolver],
    config: InternetConfig,
    rng: random.Random,
) -> str:
    if not own_resolvers:
        # Defensive: strategy said self-hosted but no deployments exist.
        return _public_ldns(block_geo, config, rng)
    if len(own_resolvers) == 1:
        return own_resolvers[0].resolver_id
    chosen = anycast_catchment(block_geo, own_resolvers, rng,
                               config.isp_anycast_misroute)
    return chosen.resolver_id
