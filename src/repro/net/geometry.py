"""Great-circle geometry on a spherical Earth.

The paper's distance metrics (client--LDNS distance, mapping distance,
cluster radius) are all great-circle distances computed from the
latitude/longitude supplied by the geolocation database, expressed in
miles.  We use the haversine formula on a sphere of mean Earth radius;
the sub-0.5% error versus an ellipsoid is irrelevant at the resolution
of the paper's analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

EARTH_RADIUS_MILES = 3958.7613
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface, in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")


def great_circle_miles(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in miles (haversine)."""
    return _haversine(a, b) * EARTH_RADIUS_MILES


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    return _haversine(a, b) * EARTH_RADIUS_KM


def _haversine(a: GeoPoint, b: GeoPoint) -> float:
    """Central angle between two points, in radians."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    # Clamp against floating-point drift before the asin.
    h = min(1.0, max(0.0, h))
    return 2.0 * math.asin(math.sqrt(h))


def weighted_centroid(
    points: Sequence[GeoPoint], weights: Sequence[float]
) -> GeoPoint:
    """Demand-weighted centroid of a set of points.

    Computed in 3-D Cartesian space and projected back to the sphere,
    which behaves correctly across the antimeridian (a simple lat/lon
    average does not).  Used for the paper's *client cluster centroid*
    (Section 3.3): the reference point for the cluster radius.
    """
    if not points:
        raise ValueError("centroid of an empty point set")
    if len(points) != len(weights):
        raise ValueError("points and weights must have equal length")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("total weight must be positive")
    x = y = z = 0.0
    for point, weight in zip(points, weights):
        lat = math.radians(point.lat)
        lon = math.radians(point.lon)
        w = weight / total
        x += w * math.cos(lat) * math.cos(lon)
        y += w * math.cos(lat) * math.sin(lon)
        z += w * math.sin(lat)
    norm = math.sqrt(x * x + y * y + z * z)
    if norm < 1e-12:
        # Degenerate (antipodal cancellation); fall back to first point.
        return points[0]
    return GeoPoint(
        lat=math.degrees(math.asin(max(-1.0, min(1.0, z / norm)))),
        lon=math.degrees(math.atan2(y, x)),
    )


def cluster_radius_miles(
    points: Sequence[GeoPoint], weights: Sequence[float]
) -> float:
    """Demand-weighted mean distance of points to their weighted centroid.

    This is exactly the paper's definition of the *radius of a client
    cluster* (Section 3.3, footnote 7).
    """
    centroid = weighted_centroid(points, weights)
    total = float(sum(weights))
    return sum(
        w / total * great_circle_miles(p, centroid)
        for p, w in zip(points, weights)
    )


def displace(origin: GeoPoint, distance_miles: float,
             bearing_rad: float) -> GeoPoint:
    """Move ``origin`` by a distance along an initial bearing (spherical).

    Used to jitter client blocks and resolver deployments around their
    host city so that co-located entities are not all at one exact point.
    """
    angular = distance_miles / EARTH_RADIUS_MILES
    lat1 = math.radians(origin.lat)
    lon1 = math.radians(origin.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular)
        + math.cos(lat1) * math.sin(angular) * math.cos(bearing_rad)
    )
    lon2 = lon1 + math.atan2(
        math.sin(bearing_rad) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    lon_deg = math.degrees(lon2)
    lon_deg = ((lon_deg + 180.0) % 360.0) - 180.0
    return GeoPoint(math.degrees(lat2), lon_deg)


def mean_distance_miles(
    origin: GeoPoint, points: Iterable[Tuple[GeoPoint, float]]
) -> float:
    """Weighted mean distance from ``origin`` to each (point, weight)."""
    total_weight = 0.0
    total = 0.0
    for point, weight in points:
        total += weight * great_circle_miles(origin, point)
        total_weight += weight
    if total_weight <= 0.0:
        raise ValueError("total weight must be positive")
    return total / total_weight
