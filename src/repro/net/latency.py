"""Distance- and topology-driven network latency model.

The paper's measurements (RTT, ping mesh of Fig 25) come from the real
Internet.  Our substitute computes a round-trip time between two network
endpoints from first principles:

``rtt = 2 * (propagation + routing inflation) + peering penalty
      + last-mile penalty + congestion noise``

* **Propagation** -- great-circle distance over the speed of light in
  fiber (~124 miles/ms one way).
* **Routing inflation** -- real paths are not geodesics.  Short paths
  are proportionally more inflated (metro detours dominate) than long
  ones; we interpolate the inflation factor between ``short_inflation``
  and ``long_inflation``.
* **Peering penalty** -- crossing between two different autonomous
  systems adds a deterministic per-AS-pair penalty, standing in for
  indirect peering, IXP detours, and transit hops.  The penalty is a
  stable pseudo-random function of the unordered AS pair so the same
  pair always sees the same path quality.
* **Last-mile penalty** -- access-technology delay at the client edge
  (DSL interleaving, cable scheduling, cellular RAN), supplied by the
  caller per endpoint.
* **Congestion noise** -- optional multiplicative lognormal noise for
  per-measurement variation; deterministic callers simply omit the RNG.

All parameters live in :class:`LatencyParams` so experiments can run
sensitivity sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import random

from repro.net.geometry import GeoPoint, great_circle_miles

# One-way speed of light in fiber: c * 2/3 = ~124.2 miles per millisecond.
FIBER_MILES_PER_MS = 124.2


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a stable 64-bit integer hash.

    Python's builtin ``hash`` is salted per process, which would make
    latencies unreproducible across runs; this mix is deterministic.
    """
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _pair_unit(a: int, b: int, salt: int) -> float:
    """Deterministic uniform(0,1) value for an unordered integer pair."""
    low, high = (a, b) if a <= b else (b, a)
    mixed = _mix64(_mix64(low * 0x9E3779B97F4A7C15 + high) ^ salt)
    return (mixed >> 11) / float(1 << 53)


@dataclass(frozen=True, slots=True)
class LatencyParams:
    """Tunable constants of the latency model."""

    short_inflation: float = 2.2
    """Path-length inflation for metro-scale paths (<= ``short_miles``)."""

    long_inflation: float = 1.35
    """Path-length inflation for intercontinental paths (>= ``long_miles``)."""

    short_miles: float = 50.0
    long_miles: float = 4000.0

    same_as_floor_ms: float = 0.8
    """Minimum RTT between distinct endpoints inside one AS (switching)."""

    peering_penalty_max_ms: float = 24.0
    """Worst-case extra RTT for a poorly-peered AS pair."""

    peering_salt: int = 0x5EED0001
    """Salt for the per-AS-pair peering quality function."""

    congestion_sigma: float = 0.18
    """Lognormal sigma of per-measurement multiplicative noise."""

    def __post_init__(self) -> None:
        if self.short_inflation < 1.0 or self.long_inflation < 1.0:
            raise ValueError("inflation factors must be >= 1")
        if self.short_miles >= self.long_miles:
            raise ValueError("short_miles must be < long_miles")
        if self.congestion_sigma < 0:
            raise ValueError("congestion_sigma must be >= 0")


class LatencyModel:
    """Computes RTTs between geographic/AS-labelled endpoints."""

    def __init__(self, params: Optional[LatencyParams] = None) -> None:
        self.params = params or LatencyParams()

    def inflation(self, distance_miles: float) -> float:
        """Routing inflation factor for a given geodesic distance."""
        p = self.params
        if distance_miles <= p.short_miles:
            return p.short_inflation
        if distance_miles >= p.long_miles:
            return p.long_inflation
        # Log-linear interpolation between the two regimes.
        span = math.log(p.long_miles / p.short_miles)
        frac = math.log(distance_miles / p.short_miles) / span
        return p.short_inflation + frac * (p.long_inflation - p.short_inflation)

    def peering_penalty_ms(self, asn_a: int, asn_b: int) -> float:
        """Deterministic extra RTT for crossing between two ASes."""
        if asn_a == asn_b:
            return 0.0
        unit = _pair_unit(asn_a, asn_b, self.params.peering_salt)
        # Square the uniform draw: most pairs peer reasonably well, a
        # minority pay a large detour (heavy-ish tail).
        return self.params.peering_penalty_max_ms * unit * unit

    def base_rtt_ms(
        self,
        geo_a: GeoPoint,
        asn_a: int,
        geo_b: GeoPoint,
        asn_b: int,
        last_mile_ms: float = 0.0,
    ) -> float:
        """Noise-free RTT between two endpoints, in milliseconds."""
        distance = great_circle_miles(geo_a, geo_b)
        propagation_rtt = (
            2.0 * distance * self.inflation(distance) / FIBER_MILES_PER_MS
        )
        rtt = propagation_rtt + self.peering_penalty_ms(asn_a, asn_b)
        rtt += last_mile_ms
        return max(rtt, self.params.same_as_floor_ms)

    def rtt_ms(
        self,
        geo_a: GeoPoint,
        asn_a: int,
        geo_b: GeoPoint,
        asn_b: int,
        last_mile_ms: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> float:
        """RTT with optional per-measurement congestion noise.

        With ``rng=None`` this is the deterministic baseline used by the
        ping-mesh experiments; with an RNG, a lognormal multiplicative
        factor models queueing variation.
        """
        base = self.base_rtt_ms(geo_a, asn_a, geo_b, asn_b, last_mile_ms)
        if rng is None or self.params.congestion_sigma == 0.0:
            return base
        sigma = self.params.congestion_sigma
        # Mean-one lognormal: exp(N(-sigma^2/2, sigma)).
        factor = math.exp(rng.gauss(-0.5 * sigma * sigma, sigma))
        return base * factor
