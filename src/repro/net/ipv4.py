"""IPv4 addresses as plain integers, plus CIDR prefixes.

An IPv4 address is represented throughout the code base as an ``int`` in
``[0, 2**32)``.  The helpers here convert between dotted-quad strings and
integers and implement the prefix arithmetic the mapping system needs:
"the /x block of client A.B.C.D" (paper Section 2.1) is
``prefix_of(addr, x)``.

The :class:`Prefix` type is hashable and totally ordered so it can be used
as a dictionary key (mapping units are keyed by prefix, Section 5.1) and
sorted deterministically in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

_MAX_IPV4 = (1 << 32) - 1


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad IPv4 string into an integer.

    Raises :class:`ValueError` for anything that is not exactly four
    decimal octets in range.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"bad IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(addr: int) -> str:
    """Format an integer address as a dotted-quad string."""
    if not 0 <= addr <= _MAX_IPV4:
        raise ValueError(f"IPv4 address out of range: {addr}")
    return ".".join(
        str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def mask_of(length: int) -> int:
    """Return the integer netmask for a prefix length."""
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4


@dataclass(frozen=True, order=True, slots=True)
class Prefix:
    """A CIDR block ``network/length``.

    ``network`` must have its host bits cleared; the constructor enforces
    this so that two prefixes covering the same block always compare equal.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= _MAX_IPV4:
            raise ValueError(f"network address out of range: {self.network}")
        if self.network & ~mask_of(self.length) & _MAX_IPV4:
            raise ValueError(
                f"host bits set in {format_ipv4(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"A.B.C.D/len"`` (or a bare address, meaning /32)."""
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            if not len_text.isdigit():
                raise ValueError(f"bad prefix length in {text!r}")
            return cls(parse_ipv4(addr_text), int(len_text))
        return cls(parse_ipv4(text), 32)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        """Lowest address in the block."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address in the block."""
        return self.network | (self.num_addresses - 1)

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside this block."""
        return self.network <= addr <= self.last

    def covers(self, other: "Prefix") -> bool:
        """True if ``other`` is a (non-strict) sub-block of this prefix."""
        return self.length <= other.length and self.contains(other.network)

    def supernet(self, length: int) -> "Prefix":
        """The enclosing prefix of the given (shorter or equal) length."""
        if length > self.length:
            raise ValueError(
                f"supernet length /{length} longer than /{self.length}"
            )
        return Prefix(self.network & mask_of(length), length)

    def subnets(self, length: int) -> Iterator["Prefix"]:
        """Iterate the sub-blocks of the given (longer or equal) length."""
        if length < self.length:
            raise ValueError(
                f"subnet length /{length} shorter than /{self.length}"
            )
        step = 1 << (32 - length)
        for network in range(self.network, self.last + 1, step):
            yield Prefix(network, length)

    def addresses(self) -> Iterator[int]:
        """Iterate every address in the block (use only for small blocks)."""
        return iter(range(self.network, self.last + 1))

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def prefix_of(addr: int, length: int) -> Prefix:
    """Return the /length block containing ``addr``.

    This is the paper's "/x prefix of the client's IP": the EDNS0
    client-subnet option carries ``prefix_of(client_ip, 24)``.
    """
    return Prefix(addr & mask_of(length), length)
