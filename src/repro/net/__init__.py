"""Low-level networking primitives shared by every other subsystem.

This package deliberately avoids :mod:`ipaddress` from the standard library:
the simulator manipulates millions of /24 blocks, and representing addresses
as plain ``int`` with a tiny frozen :class:`Prefix` wrapper is roughly an
order of magnitude faster and keeps hot loops allocation-free.

Contents:

* :mod:`repro.net.ipv4` -- IPv4 addresses as integers, CIDR prefixes.
* :mod:`repro.net.trie` -- binary radix trie for longest-prefix matching.
* :mod:`repro.net.geometry` -- great-circle geometry on the WGS84 sphere.
* :mod:`repro.net.latency` -- distance- and topology-driven latency model.
* :mod:`repro.net.batch` -- vectorized numpy kernels for the geometry
  and latency math (the scalar modules are the reference semantics).
"""

from repro.net import batch
from repro.net.geometry import GeoPoint, great_circle_miles
from repro.net.ipv4 import (
    Prefix,
    format_ipv4,
    parse_ipv4,
    prefix_of,
)
from repro.net.latency import LatencyModel, LatencyParams
from repro.net.trie import RadixTrie

__all__ = [
    "GeoPoint",
    "batch",
    "LatencyModel",
    "LatencyParams",
    "Prefix",
    "RadixTrie",
    "format_ipv4",
    "great_circle_miles",
    "parse_ipv4",
    "prefix_of",
]
