"""Binary radix trie for longest-prefix matching over IPv4 prefixes.

Used by the geolocation database (address -> geo record), the BGP CIDR
table (address -> routed CIDR), and the ECS-aware DNS cache (client block
-> cached answer whose *scope* covers the block).

The trie is a plain uncompressed binary trie: insertion walks at most 32
levels, lookup walks until the path ends.  That is ample for this code
base -- tries here hold at most a few hundred thousand prefixes, and the
constant factors of path compression are not worth the complexity.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, Tuple, TypeVar

from repro.net.ipv4 import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class RadixTrie(Generic[V]):
    """Map :class:`Prefix` keys to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for bit_index in range(prefix.length):
            bit = (prefix.network >> (31 - bit_index)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> bool:
        """Remove the value at ``prefix``.  Returns True if it was present.

        Nodes are not physically pruned; tries in this code base are
        build-once structures, and removal is rare (cache eviction paths
        use their own indexes).
        """
        node: Optional[_Node[V]] = self._root
        for bit_index in range(prefix.length):
            if node is None:
                return False
            bit = (prefix.network >> (31 - bit_index)) & 1
            node = node.children[bit]
        if node is None or not node.has_value:
            return False
        node.value = None
        node.has_value = False
        self._size -= 1
        return True

    def exact(self, prefix: Prefix) -> Optional[V]:
        """Return the value stored exactly at ``prefix``, or None."""
        node: Optional[_Node[V]] = self._root
        for bit_index in range(prefix.length):
            if node is None:
                return None
            bit = (prefix.network >> (31 - bit_index)) & 1
            node = node.children[bit]
        if node is None or not node.has_value:
            return None
        return node.value

    def longest_match(self, addr: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for a single address.

        Returns the matching ``(prefix, value)`` pair, or None if no
        inserted prefix covers the address.
        """
        node: Optional[_Node[V]] = self._root
        best: Optional[Tuple[int, V]] = None
        if node is not None and node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for bit_index in range(32):
            bit = (addr >> (31 - bit_index)) & 1
            node = node.children[bit] if node else None
            if node is None:
                break
            if node.has_value:
                best = (bit_index + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        mask = ((1 << length) - 1) << (32 - length) if length else 0
        return Prefix(addr & mask, length), value

    def lookup(self, addr: int) -> Optional[V]:
        """Longest-prefix-match value for a single address, or None."""
        match = self.longest_match(addr)
        return match[1] if match else None

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate all stored (prefix, value) pairs in address order."""
        stack: list[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        # Depth-first, visiting the 0-child before the 1-child yields
        # prefixes sorted by (network, length-at-equal-network) order.
        out: list[Tuple[Prefix, V]] = []
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                out.append(
                    (Prefix(network << (32 - depth) if depth else 0, depth),
                     node.value)  # type: ignore[arg-type]
                )
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append((child, (network << 1) | bit, depth + 1))
        out.sort(key=lambda item: (item[0].network, item[0].length))
        return iter(out)
