"""Vectorized geometry/latency kernels (numpy batch layer).

The scalar implementations in :mod:`repro.net.geometry` and
:mod:`repro.net.latency` are the *reference semantics*: readable,
per-pair, and exercised directly by the unit tests.  Every experiment
that sweeps clusters x targets, blocks x targets, or resolver
populations bottoms out in millions of those per-pair calls, so this
module provides the same math as numpy array kernels:

* :func:`haversine_matrix_miles` / :func:`haversine_miles` -- great-
  circle distance, point-set x point-set or elementwise;
* :func:`inflation` -- the routing-inflation interpolation of
  :meth:`repro.net.latency.LatencyModel.inflation`;
* :func:`mix64` / :func:`pair_unit` / :func:`peering_penalty_matrix` --
  the SplitMix64 peering-penalty kernel, **bit-identical** to the
  scalar ``_mix64`` / ``_pair_unit`` path (uint64 wrap-around equals
  the scalar code's explicit masking);
* :func:`rtt_matrix` -- the full noise-free RTT of
  :meth:`LatencyModel.base_rtt_ms` as one cluster x target matrix;
* :func:`weighted_centroid_arrays` / :func:`cluster_radius_miles_arrays`
  -- the Section 3.3 cluster geometry as numpy reductions.

Equivalence with the scalar path is pinned by
``tests/test_net_batch.py`` (<= 1e-9 relative error over randomized
seeded samples, including the antimeridian and same-AS floor edges;
the peering kernel is compared for exact equality).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.net.geometry import EARTH_RADIUS_MILES, GeoPoint
from repro.net.latency import FIBER_MILES_PER_MS, LatencyParams

_U64 = np.uint64
_MIX_MUL_1 = _U64(0xBF58476D1CE4E5B9)
_MIX_MUL_2 = _U64(0x94D049BB133111EB)
_PAIR_MUL = _U64(0x9E3779B97F4A7C15)


def geo_columns(points: Sequence[GeoPoint]) -> Tuple[np.ndarray, np.ndarray]:
    """Latitude/longitude columns (degrees) from a GeoPoint sequence."""
    lat = np.fromiter((p.lat for p in points), dtype=float,
                      count=len(points))
    lon = np.fromiter((p.lon for p in points), dtype=float,
                      count=len(points))
    return lat, lon


def haversine_miles(lat_a, lon_a, lat_b, lon_b) -> np.ndarray:
    """Elementwise (broadcasting) great-circle miles between points.

    Inputs are latitudes/longitudes in degrees; any numpy-broadcastable
    shapes.  Same formula and clamping as the scalar
    :func:`repro.net.geometry.great_circle_miles`.
    """
    lat_a = np.radians(np.asarray(lat_a, dtype=float))
    lon_a = np.radians(np.asarray(lon_a, dtype=float))
    lat_b = np.radians(np.asarray(lat_b, dtype=float))
    lon_b = np.radians(np.asarray(lon_b, dtype=float))
    h = (np.sin((lat_b - lat_a) / 2.0) ** 2
         + np.cos(lat_a) * np.cos(lat_b)
         * np.sin((lon_b - lon_a) / 2.0) ** 2)
    h = np.clip(h, 0.0, 1.0)
    return 2.0 * np.arcsin(np.sqrt(h)) * EARTH_RADIUS_MILES


def haversine_matrix_miles(lat_a, lon_a, lat_b, lon_b) -> np.ndarray:
    """Great-circle miles between every pair: shape (len(a), len(b))."""
    lat_a = np.asarray(lat_a, dtype=float)[:, None]
    lon_a = np.asarray(lon_a, dtype=float)[:, None]
    lat_b = np.asarray(lat_b, dtype=float)[None, :]
    lon_b = np.asarray(lon_b, dtype=float)[None, :]
    return haversine_miles(lat_a, lon_a, lat_b, lon_b)


def inflation(distance_miles, params: Optional[LatencyParams] = None
              ) -> np.ndarray:
    """Vectorized routing-inflation factor (log-linear interpolation).

    Matches :meth:`repro.net.latency.LatencyModel.inflation`: constant
    ``short_inflation`` below ``short_miles``, ``long_inflation`` above
    ``long_miles``, log-linear in between.
    """
    p = params or LatencyParams()
    d = np.asarray(distance_miles, dtype=float)
    span = np.log(p.long_miles / p.short_miles)
    # Clamp into the interpolation domain before the log; the clip on
    # frac then reproduces the piecewise-constant regimes exactly.
    clamped = np.clip(d, p.short_miles, p.long_miles)
    frac = np.log(clamped / p.short_miles) / span
    return p.short_inflation + frac * (p.long_inflation - p.short_inflation)


def mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer, bit-identical to scalar ``_mix64``.

    uint64 arithmetic wraps modulo 2**64, which is exactly the scalar
    implementation's ``& 0xFFFFFFFFFFFFFFFF`` masking.
    """
    v = np.asarray(values, dtype=_U64)
    with np.errstate(over="ignore"):  # modular wrap-around is the point
        v = (v ^ (v >> _U64(30))) * _MIX_MUL_1
        v = (v ^ (v >> _U64(27))) * _MIX_MUL_2
        return v ^ (v >> _U64(31))


def pair_unit(a, b, salt: int) -> np.ndarray:
    """Deterministic uniform(0,1) per unordered integer pair, vectorized.

    Bit-identical to :func:`repro.net.latency._pair_unit` for inputs in
    [0, 2**64): ordering, mixing, and the 53-bit mantissa extraction
    all match.
    """
    a = np.asarray(a, dtype=_U64)
    b = np.asarray(b, dtype=_U64)
    low = np.minimum(a, b)
    high = np.maximum(a, b)
    with np.errstate(over="ignore"):  # modular wrap-around is the point
        mixed = mix64(mix64(low * _PAIR_MUL + high) ^ _U64(salt))
    return (mixed >> _U64(11)).astype(float) / float(1 << 53)


def peering_penalty_matrix(asns_a, asns_b,
                           params: Optional[LatencyParams] = None
                           ) -> np.ndarray:
    """Peering penalty (ms) for every AS pair: shape (len(a), len(b)).

    Zero on the diagonal pairs (same AS); otherwise
    ``peering_penalty_max_ms * unit**2`` exactly as
    :meth:`LatencyModel.peering_penalty_ms`.
    """
    p = params or LatencyParams()
    a = np.asarray(asns_a, dtype=_U64)[:, None]
    b = np.asarray(asns_b, dtype=_U64)[None, :]
    unit = pair_unit(a, b, p.peering_salt)
    penalty = p.peering_penalty_max_ms * unit * unit
    return np.where(a == b, 0.0, penalty)


def rtt_matrix(
    lat_a, lon_a, asns_a,
    lat_b, lon_b, asns_b,
    params: Optional[LatencyParams] = None,
    last_mile_ms=0.0,
) -> np.ndarray:
    """Noise-free RTT (ms) between every (a_i, b_j) endpoint pair.

    The batch equivalent of :meth:`LatencyModel.base_rtt_ms`:
    propagation at fiber speed with routing inflation, plus the
    deterministic peering penalty, plus an optional per-b-endpoint
    last-mile penalty, floored at ``same_as_floor_ms``.

    ``last_mile_ms`` may be a scalar or an array broadcastable against
    the (len(a), len(b)) result (e.g. one value per b endpoint).
    """
    p = params or LatencyParams()
    dist = haversine_matrix_miles(lat_a, lon_a, lat_b, lon_b)
    propagation = 2.0 * dist * inflation(dist, p) / FIBER_MILES_PER_MS
    rtt = propagation + peering_penalty_matrix(asns_a, asns_b, p)
    rtt = rtt + np.asarray(last_mile_ms, dtype=float)
    return np.maximum(rtt, p.same_as_floor_ms)


def rtt_point_to_many(
    lat: float, lon: float, asn: int,
    lats, lons, asns,
    params: Optional[LatencyParams] = None,
    last_mile_ms=0.0,
) -> np.ndarray:
    """RTT (ms) from one endpoint to many: 1-D convenience wrapper."""
    return rtt_matrix([lat], [lon], [asn], lats, lons, asns,
                      params=params, last_mile_ms=last_mile_ms)[0]


# ---------------------------------------------------------------------------
# Cluster geometry (Section 3.3) as numpy reductions


def weighted_centroid_arrays(lats, lons, weights) -> Tuple[float, float]:
    """Demand-weighted spherical centroid; returns (lat, lon) degrees.

    Numpy reduction form of :func:`repro.net.geometry.weighted_centroid`
    (3-D Cartesian mean projected back to the sphere, antimeridian-
    safe), with the same degenerate-input fallbacks.
    """
    lats = np.asarray(lats, dtype=float)
    lons = np.asarray(lons, dtype=float)
    w = np.asarray(weights, dtype=float)
    if lats.size == 0:
        raise ValueError("centroid of an empty point set")
    if lats.shape != w.shape or lons.shape != w.shape:
        raise ValueError("points and weights must have equal length")
    total = float(w.sum())
    if total <= 0.0:
        raise ValueError("total weight must be positive")
    lat_r = np.radians(lats)
    lon_r = np.radians(lons)
    cos_lat = np.cos(lat_r)
    share = w / total
    x = float(np.dot(share, cos_lat * np.cos(lon_r)))
    y = float(np.dot(share, cos_lat * np.sin(lon_r)))
    z = float(np.dot(share, np.sin(lat_r)))
    norm = np.sqrt(x * x + y * y + z * z)
    if norm < 1e-12:
        # Degenerate (antipodal cancellation); fall back to first point.
        return float(lats[0]), float(lons[0])
    z_unit = min(1.0, max(-1.0, z / norm))
    return (float(np.degrees(np.arcsin(z_unit))),
            float(np.degrees(np.arctan2(y, x))))


def cluster_radius_miles_arrays(lats, lons, weights) -> float:
    """Demand-weighted mean distance to the weighted centroid.

    Numpy reduction form of
    :func:`repro.net.geometry.cluster_radius_miles` (the paper's
    client-cluster radius, Section 3.3 footnote 7).
    """
    c_lat, c_lon = weighted_centroid_arrays(lats, lons, weights)
    w = np.asarray(weights, dtype=float)
    distances = haversine_miles(lats, lons, c_lat, c_lon)
    return float(np.dot(w, distances) / w.sum())


def mean_distance_miles_arrays(lat: float, lon: float,
                               lats, lons, weights) -> float:
    """Weighted mean distance from one point to many (numpy reduction)."""
    w = np.asarray(weights, dtype=float)
    total = float(w.sum())
    if total <= 0.0:
        raise ValueError("total weight must be positive")
    return float(np.dot(w, haversine_miles(lats, lons, lat, lon)) / total)
