"""One front door for every CLI: ``python -m repro <subcommand>``.

Subcommands share the ``--seed`` / ``--format`` / ``--out`` flag
conventions; everything after the subcommand name is handed to the
subcommand's own parser unchanged, so existing invocations translate
mechanically::

    python -m repro.obs.monitor --seed 7      (deprecated spelling)
    python -m repro monitor --seed 7          (canonical spelling)

The old ``python -m repro.<module>`` entrypoints keep working and
print a pointer to the new spelling on stderr (stdout stays
byte-identical for consumers that parse it).

Exit-code contract (pinned by ``tests/test_cli_exit_codes.py``):

* ``0`` -- the subcommand ran and its checks (if any) passed; also
  ``python -m repro --help``.
* ``1`` -- the subcommand ran but a gate failed: a degradation
  acceptance miss, a soak invariant violation, a nondeterministic
  replay.
* ``2`` -- usage errors: bare ``python -m repro``, an unknown
  subcommand, or bad flags (argparse's own convention).
"""

from __future__ import annotations

import sys
from typing import List, Optional

_SUBCOMMANDS = {
    "sim": ("repro.simulation.cli",
            "world building, roll-out, DNS-load scenarios"),
    "experiment": ("repro.experiments.cli",
                   "paper-figure experiments (list/run/report)"),
    "dump": ("repro.obs.dump",
             "metrics + trace dump of one seeded scenario"),
    "monitor": ("repro.obs.monitor.cli",
                "monitored roll-out: series, cohorts, alerts"),
    "degradation": ("repro.experiments.degradation",
                    "fault-kind degradation experiment (TTFB/RTT CDFs)"),
    "soak": ("repro.faults.chaos",
             "seeded chaos soak: N random fault scenarios + invariants"),
    "load_tradeoff": ("repro.experiments.load_tradeoff",
                      "flash crowd: distance-only vs load-aware "
                      "mapping"),
    "unit_scaling": ("repro.experiments.unit_scaling",
                     "unit count vs accuracy vs query rate across "
                     "unit-construction schemes"),
    "resolver_matrix": ("repro.experiments.resolver_matrix",
                        "ECS policy matrix + PoP-outage catchment "
                        "shifts on the anycast resolver plane"),
    "profile": ("repro.obs.profile",
                "engine self-profile: phase tree, flamegraph stacks, "
                "hotspots"),
}


def _usage() -> str:
    lines = ["usage: python -m repro <subcommand> [options]", "",
             "subcommands:"]
    for name in sorted(_SUBCOMMANDS):
        _, blurb = _SUBCOMMANDS[name]
        lines.append(f"  {name:<12} {blurb}")
    lines.append("")
    lines.append("run a subcommand with --help for its options; "
                 "--seed/--format/--out are shared conventions")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0 if argv else 2
    name = argv[0]
    entry = _SUBCOMMANDS.get(name)
    if entry is None:
        print(f"unknown subcommand {name!r}\n\n{_usage()}",
              file=sys.stderr)
        return 2
    module_name, _ = entry
    import importlib

    module = importlib.import_module(module_name)
    return module.main(argv[1:])


if __name__ == "__main__":
    sys.exit(main())
