"""Declarative fault schedules.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` rows --
``(start_day, duration_days, target, kind)`` -- describing *when* a
piece of the simulated ecosystem breaks and when it recovers.  The
schedule itself is pure data: it draws no randomness and touches no
world state, so two runs with the same seed and schedule replay
byte-identically (the property the determinism tests pin).  Applying a
schedule to a live world is the job of
:class:`repro.faults.injector.FaultInjector`.

Fault kinds (the failure modes Section 4 of the paper rolls out
around, plus those Kernan et al. and Al-Dalky & Rabinovich measure in
the wild):

* ``auth_outage`` -- an authoritative name server stops answering;
  recursives burn retry timers and fail over down their ranking.
* ``cluster_outage`` -- every edge server in a CDN cluster dies; the
  mapping system must route demand to surviving clusters.
* ``ecs_strip`` -- a resolver silently drops the EDNS0 client-subnet
  option; mapping degrades from EU to NS quality.
* ``ldns_blackout`` -- a recursive resolver goes dark; stubs fail over
  to a public resolver after a timeout.
* ``link_degradation`` -- a network path inflates latency and drops
  packets for the duration.

Resolver-plane kinds (the anycast PoP fleet model; what Al-Dalky &
Rabinovich's public-resolver measurements fail at):

* ``pop_outage`` -- a provider PoP withdraws its anycast route; the
  fleet silently re-homes its catchment to surviving PoPs (cold
  caches, longer detours; no client-visible timeout).
* ``anycast_flap`` -- a provider's routes flap: half of each PoP's
  catchment oscillates to the next-nearest PoP for the duration.
* ``ecs_whitelist_revoke`` -- the provider drops the CDN from its ECS
  whitelist; mapping degrades from EU to NS quality while caches stay
  warm.

Control-plane kinds (paper Section 5's split makes these injectable):

* ``mapmaker_crash`` -- a MapMaker process dies: no heartbeats, no
  publications; the watchdog promotes the hot standby.
* ``mapmaker_hang`` -- the process wedges: alive but silent, which the
  watchdog treats exactly like a crash.
* ``mapmaker_slow_publish`` -- publications take ``slow_factor`` times
  longer, so the published map ages between them.
* ``map_corruption`` -- publications are tampered in flight; the
  store's checksum gate rejects them and the old map ages in place.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class FaultKind:
    """String constants naming the supported fault kinds."""

    AUTH_OUTAGE = "auth_outage"
    CLUSTER_OUTAGE = "cluster_outage"
    ECS_STRIP = "ecs_strip"
    LDNS_BLACKOUT = "ldns_blackout"
    LINK_DEGRADATION = "link_degradation"
    MAPMAKER_CRASH = "mapmaker_crash"
    MAPMAKER_HANG = "mapmaker_hang"
    MAPMAKER_SLOW_PUBLISH = "mapmaker_slow_publish"
    MAP_CORRUPTION = "map_corruption"
    POP_OUTAGE = "pop_outage"
    ANYCAST_FLAP = "anycast_flap"
    ECS_WHITELIST_REVOKE = "ecs_whitelist_revoke"

    DATA_PLANE = (AUTH_OUTAGE, CLUSTER_OUTAGE, ECS_STRIP, LDNS_BLACKOUT,
                  LINK_DEGRADATION)
    CONTROL_PLANE = (MAPMAKER_CRASH, MAPMAKER_HANG,
                     MAPMAKER_SLOW_PUBLISH, MAP_CORRUPTION)
    RESOLVER_PLANE = (POP_OUTAGE, ANYCAST_FLAP, ECS_WHITELIST_REVOKE)
    ALL = DATA_PLANE + CONTROL_PLANE + RESOLVER_PLANE


#: Target-grammar prefixes legal for each fault kind (the parse-time
#: contract behind :meth:`FaultSchedule.validate`).  ``None`` in the
#: set means a bare token -- a raw cluster/resolver id -- is accepted;
#: ``"*"`` that the whole-world wildcard is.
_RESOLVER_PREFIXES = frozenset({"public", "isp", "resolver", None, "*"})
_TARGET_GRAMMAR = {
    FaultKind.AUTH_OUTAGE: frozenset({"ns", "*"}),
    FaultKind.CLUSTER_OUTAGE: frozenset({"cluster", None}),
    FaultKind.ECS_STRIP: _RESOLVER_PREFIXES,
    FaultKind.LDNS_BLACKOUT: _RESOLVER_PREFIXES,
    FaultKind.LINK_DEGRADATION: _RESOLVER_PREFIXES,
    FaultKind.MAPMAKER_CRASH: frozenset({"mapmaker", "*"}),
    FaultKind.MAPMAKER_HANG: frozenset({"mapmaker", "*"}),
    FaultKind.MAPMAKER_SLOW_PUBLISH: frozenset({"mapmaker", "*"}),
    FaultKind.MAP_CORRUPTION: frozenset({"mapmaker", "*"}),
    FaultKind.POP_OUTAGE: frozenset({"public", "*"}),
    FaultKind.ANYCAST_FLAP: frozenset({"public", "*"}),
    FaultKind.ECS_WHITELIST_REVOKE: frozenset({"public", "*"}),
}

#: Indexed groups whose ``<group>:<suffix>`` suffix must be a number
#: or ``*``; ``mapmaker`` additionally accepts its role names.
_INDEXED_GROUPS = frozenset({"ns", "cluster", "public", "isp"})
_MAPMAKER_ROLES = frozenset({"primary", "standby"})


def _validate_target(kind: str, target: str) -> None:
    """Raise ``ValueError`` unless ``target`` parses for ``kind``."""
    allowed = _TARGET_GRAMMAR[kind]
    if target == "*":
        if "*" in allowed:
            return
        raise ValueError(
            f"target '*' is not valid for {kind} events")
    head, sep, rest = target.partition(":")
    if not sep:
        if None in allowed:
            return  # bare cluster/resolver id, resolved at apply time
        raise ValueError(
            f"bad {kind} target {target!r}: expected one of "
            f"{_grammar_hint(kind)}")
    if head not in allowed:
        raise ValueError(
            f"bad {kind} target {target!r}: unknown prefix {head!r} "
            f"(expected {_grammar_hint(kind)})")
    if not rest:
        raise ValueError(f"bad {kind} target {target!r}: empty suffix")
    if head == "public" and not (rest == "*" or rest.isdigit()):
        # Two-level provider grammar: public:<provider>[:<city>].
        # Legal for every resolver-targeted kind so a whole provider
        # fleet (or one named PoP) can be addressed by name.
        parts = rest.split(":")
        if not 1 <= len(parts) <= 2 or not all(parts):
            raise ValueError(
                f"bad {kind} target {target!r}: public: takes an "
                f"index, '*', or <provider>[:<city>]")
    elif head in _INDEXED_GROUPS and not (rest == "*" or rest.isdigit()):
        raise ValueError(
            f"bad {kind} target {target!r}: {head}: takes an index "
            f"or '*'")
    if head == "mapmaker" and not (
            rest == "*" or rest.isdigit() or rest in _MAPMAKER_ROLES):
        raise ValueError(
            f"bad {kind} target {target!r}: mapmaker: takes "
            f"'primary', 'standby', an index, or '*'")


def _target_provider(target: str) -> Optional[str]:
    """The provider a ``public:<provider>[:<city>]`` target names.

    ``None`` for everything else -- wildcards, indices, and bare
    resolver ids stay exact-string spellings that the cross-kind
    conflict check below cannot (and does not try to) resolve.
    """
    head, sep, rest = target.partition(":")
    if head != "public" or not sep or rest in ("", "*"):
        return None
    provider = rest.split(":", 1)[0]
    return None if provider.isdigit() else provider


def _grammar_hint(kind: str) -> str:
    names = sorted(("<bare id>" if p is None else f"{p}:" if p != "*"
                    else "'*'") for p in _TARGET_GRAMMAR[kind])
    return ", ".join(names)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a target breaks on ``start_day`` and
    recovers ``duration_days`` later.

    ``target`` addresses the thing that breaks:

    * ``ns:<index>`` or ``ns:*`` -- authoritative server(s) by build
      order (``auth_outage``);
    * a cluster id or ``cluster:<index>`` into the sorted cluster ids
      (``cluster_outage``);
    * LDNS deployments (``ecs_strip`` / ``ldns_blackout`` /
      ``link_degradation``): a resolver id, ``resolver:<id>``,
      ``public:*`` / ``isp:*`` for whole groups, or
      ``public:<index>`` / ``isp:<index>`` into the sorted group --
      index grammar lets schedules address worlds not yet built --
      or ``public:<provider>[:<city>]`` naming a provider fleet or
      one of its PoPs;
    * resolver-plane kinds (``pop_outage`` / ``anycast_flap`` /
      ``ecs_whitelist_revoke``) take the ``public:...`` spellings
      above or ``*`` for every provider fleet.

    ``params`` carries kind-specific numbers as a sorted tuple of
    ``(name, value)`` pairs so events stay hashable and their JSON
    round-trip is canonical.
    """

    start_day: int
    duration_days: int
    target: str
    kind: str
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.start_day < 0:
            raise ValueError(f"start_day must be >= 0: {self.start_day}")
        if self.duration_days < 1:
            raise ValueError(
                f"duration_days must be >= 1: {self.duration_days}")
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        object.__setattr__(self, "params",
                           tuple(sorted(self.params)))

    @property
    def end_day(self) -> int:
        """First day the target is healthy again (exclusive bound)."""
        return self.start_day + self.duration_days

    def active(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    def param(self, name: str, default: float = 0.0) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_dict(self) -> Dict:
        doc = {
            "start_day": self.start_day,
            "duration_days": self.duration_days,
            "target": self.target,
            "kind": self.kind,
        }
        if self.params:
            doc["params"] = {k: v for k, v in self.params}
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "FaultEvent":
        return cls(
            start_day=int(doc["start_day"]),
            duration_days=int(doc["duration_days"]),
            target=str(doc["target"]),
            kind=str(doc["kind"]),
            params=tuple(sorted(
                (str(k), float(v))
                for k, v in doc.get("params", {}).items())),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of fault events for one scenario."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.events,
            key=lambda e: (e.start_day, e.kind, e.target)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def active(self, day: int) -> Tuple[FaultEvent, ...]:
        """Events in force on ``day``, in canonical order."""
        return tuple(e for e in self.events if e.active(day))

    def window(self, kind: str) -> Optional[Tuple[int, int]]:
        """[first start_day, last end_day) across events of ``kind``."""
        matching = [e for e in self.events if e.kind == kind]
        if not matching:
            return None
        return (min(e.start_day for e in matching),
                max(e.end_day for e in matching))

    def validate(self) -> "FaultSchedule":
        """Parse-time checks beyond per-event field validation.

        Raises :class:`ValueError` for targets outside the documented
        grammar of their kind and for overlapping events with the same
        ``(kind, target)`` -- both of which would otherwise surface as
        confusing errors (or silent double-application diffs) deep
        inside injector replay.  Targets are compared as exact
        strings; overlapping events addressing one resolver via two
        spellings are legal (the injector's per-event victim lists
        keep their reverts exact).  Returns ``self`` for chaining.
        """
        for event in self.events:
            _validate_target(event.kind, event.target)
        previous: Dict[Tuple[str, str], FaultEvent] = {}
        for event in self.events:  # already sorted by start_day
            key = (event.kind, event.target)
            earlier = previous.get(key)
            if earlier is not None and event.start_day < earlier.end_day:
                raise ValueError(
                    f"overlapping {event.kind} events for target "
                    f"{event.target!r}: days "
                    f"[{earlier.start_day}, {earlier.end_day}) and "
                    f"[{event.start_day}, {event.end_day})")
            if earlier is None or event.end_day > earlier.end_day:
                previous[key] = event
        # Cross-kind conflict: an overlapping pop_outage (anycast route
        # withdrawn -- clients silently re-home) and ldns_blackout
        # (still routed to, but dead -- clients burn the stub timeout)
        # on the same *named* provider assert contradictory failure
        # modes for one fleet; reject at parse time.  Index, wildcard,
        # and bare-id spellings cannot be resolved to a provider here
        # and keep the exact-string doctrine above.
        outages = [(e, _target_provider(e.target)) for e in self.events
                   if e.kind == FaultKind.POP_OUTAGE]
        blackouts = [(e, _target_provider(e.target)) for e in self.events
                     if e.kind == FaultKind.LDNS_BLACKOUT]
        for outage, out_provider in outages:
            if out_provider is None:
                continue
            for blackout, dark_provider in blackouts:
                if dark_provider != out_provider:
                    continue
                if (outage.start_day < blackout.end_day
                        and blackout.start_day < outage.end_day):
                    raise ValueError(
                        f"conflicting pop_outage and ldns_blackout "
                        f"events overlap on provider "
                        f"{out_provider!r}: days "
                        f"[{outage.start_day}, {outage.end_day}) and "
                        f"[{blackout.start_day}, {blackout.end_day})")
        return self

    def to_dict(self) -> List[Dict]:
        return [event.to_dict() for event in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, docs: Iterable[Dict]) -> "FaultSchedule":
        """Parse and validate (the hardened deserialization path)."""
        return cls(tuple(FaultEvent.from_dict(doc)
                         for doc in docs)).validate()

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))
