"""Declarative fault schedules.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` rows --
``(start_day, duration_days, target, kind)`` -- describing *when* a
piece of the simulated ecosystem breaks and when it recovers.  The
schedule itself is pure data: it draws no randomness and touches no
world state, so two runs with the same seed and schedule replay
byte-identically (the property the determinism tests pin).  Applying a
schedule to a live world is the job of
:class:`repro.faults.injector.FaultInjector`.

Fault kinds (the failure modes Section 4 of the paper rolls out
around, plus those Kernan et al. and Al-Dalky & Rabinovich measure in
the wild):

* ``auth_outage`` -- an authoritative name server stops answering;
  recursives burn retry timers and fail over down their ranking.
* ``cluster_outage`` -- every edge server in a CDN cluster dies; the
  mapping system must route demand to surviving clusters.
* ``ecs_strip`` -- a resolver silently drops the EDNS0 client-subnet
  option; mapping degrades from EU to NS quality.
* ``ldns_blackout`` -- a recursive resolver goes dark; stubs fail over
  to a public resolver after a timeout.
* ``link_degradation`` -- a network path inflates latency and drops
  packets for the duration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class FaultKind:
    """String constants naming the supported fault kinds."""

    AUTH_OUTAGE = "auth_outage"
    CLUSTER_OUTAGE = "cluster_outage"
    ECS_STRIP = "ecs_strip"
    LDNS_BLACKOUT = "ldns_blackout"
    LINK_DEGRADATION = "link_degradation"

    ALL = (AUTH_OUTAGE, CLUSTER_OUTAGE, ECS_STRIP, LDNS_BLACKOUT,
           LINK_DEGRADATION)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a target breaks on ``start_day`` and
    recovers ``duration_days`` later.

    ``target`` addresses the thing that breaks:

    * ``ns:<index>`` or ``ns:*`` -- authoritative server(s) by build
      order (``auth_outage``);
    * a cluster id or ``cluster:<index>`` into the sorted cluster ids
      (``cluster_outage``);
    * LDNS deployments (``ecs_strip`` / ``ldns_blackout`` /
      ``link_degradation``): a resolver id, ``resolver:<id>``,
      ``public:*`` / ``isp:*`` for whole groups, or
      ``public:<index>`` / ``isp:<index>`` into the sorted group --
      index grammar lets schedules address worlds not yet built.

    ``params`` carries kind-specific numbers as a sorted tuple of
    ``(name, value)`` pairs so events stay hashable and their JSON
    round-trip is canonical.
    """

    start_day: int
    duration_days: int
    target: str
    kind: str
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.start_day < 0:
            raise ValueError(f"start_day must be >= 0: {self.start_day}")
        if self.duration_days < 1:
            raise ValueError(
                f"duration_days must be >= 1: {self.duration_days}")
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        object.__setattr__(self, "params",
                           tuple(sorted(self.params)))

    @property
    def end_day(self) -> int:
        """First day the target is healthy again (exclusive bound)."""
        return self.start_day + self.duration_days

    def active(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    def param(self, name: str, default: float = 0.0) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_dict(self) -> Dict:
        doc = {
            "start_day": self.start_day,
            "duration_days": self.duration_days,
            "target": self.target,
            "kind": self.kind,
        }
        if self.params:
            doc["params"] = {k: v for k, v in self.params}
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "FaultEvent":
        return cls(
            start_day=int(doc["start_day"]),
            duration_days=int(doc["duration_days"]),
            target=str(doc["target"]),
            kind=str(doc["kind"]),
            params=tuple(sorted(
                (str(k), float(v))
                for k, v in doc.get("params", {}).items())),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of fault events for one scenario."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.events,
            key=lambda e: (e.start_day, e.kind, e.target)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def active(self, day: int) -> Tuple[FaultEvent, ...]:
        """Events in force on ``day``, in canonical order."""
        return tuple(e for e in self.events if e.active(day))

    def window(self, kind: str) -> Optional[Tuple[int, int]]:
        """[first start_day, last end_day) across events of ``kind``."""
        matching = [e for e in self.events if e.kind == kind]
        if not matching:
            return None
        return (min(e.start_day for e in matching),
                max(e.end_day for e in matching))

    def to_dict(self) -> List[Dict]:
        return [event.to_dict() for event in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, docs: Iterable[Dict]) -> "FaultSchedule":
        return cls(tuple(FaultEvent.from_dict(doc) for doc in docs))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))
