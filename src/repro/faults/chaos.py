"""Seeded chaos: random fault schedules and the soak runner.

``python -m repro soak --seed S --count N`` generates N random fault
scenarios from one SplitMix64 seed, runs each end to end on a small
control-plane world, and asserts the *global invariants* no scenario
may violate no matter what broke:

* **determinism** -- the same seed replays byte-identically (scenario 0
  is run twice and its report digests compared);
* **availability floor** -- sessions keep completing through every
  degradation ladder the faults exercise;
* **exact recovery** -- after the run every fault has been reverted:
  servers and resolvers alive, no link impairments, no ECS stripping,
  all MapMakers healthy, no fault trace-context leaking;
* **no unhandled exceptions** -- faults degrade, they never crash the
  simulator;
* **conservation** -- sessions and authoritative queries add up
  (completed + failed == scheduled; query-log buckets == its total).

Scenario generation is pure SplitMix64 arithmetic -- no ``random``
module, no global state -- so scenario *i* under seed *S* is one
deterministic function of ``(S, i)``.  That makes checkpoint/resume
trivial: a soak interrupted after k scenarios resumes at k+1 and
produces the byte-identical report the uninterrupted run would have.

The same purity makes the campaign embarrassingly parallel:
``--workers N`` fans pending scenarios across a process pool while the
parent appends finished rows *in index order* (checkpointing each
extension), so the report and every intermediate checkpoint stay
byte-identical to the serial run's.
"""

from __future__ import annotations

import argparse
import datetime
import hashlib
import json
import os
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

SCHEMA = "soak/v1"

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15


class SplitMix64:
    """Tiny deterministic RNG (SplitMix64), private to the chaos plane.

    The same finalizer the latency model and the network's loss stream
    use, so the whole simulator shares one PRNG idiom; a separate
    instance per scenario keeps scenario *i* independent of how many
    draws scenario *i-1* made.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) & _MASK64

    def randrange(self, n: int) -> int:
        """Uniform-ish int in [0, n) (modulo bias is irrelevant at
        fault-menu sizes)."""
        if n <= 0:
            raise ValueError(f"randrange needs n >= 1, got {n}")
        return self.next_u64() % n

    def choice(self, seq):
        return seq[self.randrange(len(seq))]


def scenario_seed(seed: int, index: int) -> int:
    """The per-scenario sub-seed: a pure function of (seed, index)."""
    return SplitMix64((seed * 0x5851F42D4C957F2D + index) & _MASK64
                      ).next_u64()


# -- schedule generation ----------------------------------------------------

#: (kind, candidate targets) menu the generator draws from.  Targets
#: are chosen to exist in every world the soak runs (the tiny scale has
#: 4 name servers, 40 clusters, 25 public and 172 ISP resolvers, and a
#: 2-maker control plane) and to leave enough redundancy that the
#: availability floor is *expected* to hold -- chaos probes the
#: degradation ladders, not the laws of physics.
_MENU: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (FaultKind.AUTH_OUTAGE, ("ns:0", "ns:1", "ns:2")),
    (FaultKind.CLUSTER_OUTAGE, ("cluster:0", "cluster:1", "cluster:2",
                                "cluster:3")),
    (FaultKind.ECS_STRIP, ("public:*", "public:0", "public:1")),
    (FaultKind.LDNS_BLACKOUT, ("public:0", "public:1", "isp:0", "isp:1")),
    (FaultKind.LINK_DEGRADATION, ("isp:*", "public:*", "isp:0")),
    (FaultKind.MAPMAKER_CRASH, ("mapmaker:primary", "mapmaker:standby",
                                "mapmaker:*")),
    (FaultKind.MAPMAKER_HANG, ("mapmaker:primary", "mapmaker:*")),
    (FaultKind.MAPMAKER_SLOW_PUBLISH, ("mapmaker:primary",)),
    (FaultKind.MAP_CORRUPTION, ("mapmaker:primary", "mapmaker:*")),
)

#: Resolver-plane additions, layered onto the base menu only in
#: ``--resolver`` mode: any change to the menu changes which faults
#: SplitMix64 draws for every ``(seed, index)``, and the base menu's
#: draws are pinned by checked-in fixtures (golden_shard_fault.json
#: replays soak scenario 0 byte-for-byte).  Resolver-plane kinds name
#: providers (never indices), so the parse-time pop_outage/
#: ldns_blackout conflict check can never trip against the base
#: menu's index-based blackout targets.  City targets withdraw one
#: PoP (silent re-home); bare-provider targets take the whole fleet
#: dark (LDNS-failover ladder).
_RESOLVER_MENU: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (FaultKind.POP_OUTAGE, ("public:GloboDNS:dallas",
                            "public:OpenFast:chicago",
                            "public:UltraLevel")),
    (FaultKind.ANYCAST_FLAP, ("public:GloboDNS", "public:OpenFast")),
    (FaultKind.ECS_WHITELIST_REVOKE, ("public:*", "public:GloboDNS")),
)

_LINK_FACTORS = (2.0, 3.0)
_LINK_LOSS = (0.05, 0.10, 0.15)
_SLOW_FACTORS = (2.0, 3.0, 4.0)


def generate_schedule(rng: SplitMix64, n_days: int,
                      max_events: int = 4,
                      menu: Tuple[Tuple[str, Tuple[str, ...]], ...]
                      = _MENU) -> FaultSchedule:
    """One random, grammar-valid, non-overlapping fault schedule.

    Events start on day 1 at the earliest (day 0 boots clean) and end
    at least one day before the timeline does, so every scenario gets
    at least one fully-recovered day -- the window the exact-recovery
    invariant (and any resolve-side alert assertion) observes.
    """
    n_events = 1 + rng.randrange(max_events)
    events: List[FaultEvent] = []
    used: set = set()
    for _ in range(n_events):
        for _attempt in range(8):
            kind, targets = menu[rng.randrange(len(menu))]
            target = targets[rng.randrange(len(targets))]
            start = 1 + rng.randrange(max(1, n_days - 4))
            duration = 2 + rng.randrange(4)
            duration = min(duration, n_days - 1 - start)
            if duration < 1:
                continue
            span = (kind, target, start, start + duration)
            if any(k == kind and t == target
                   and not (span[3] <= s or e <= span[2])
                   for k, t, s, e in used):
                continue  # same-target overlap: redraw
            used.add(span)
            params: Tuple[Tuple[str, float], ...] = ()
            if kind == FaultKind.LINK_DEGRADATION:
                params = (("latency_factor", rng.choice(_LINK_FACTORS)),
                          ("loss_rate", rng.choice(_LINK_LOSS)))
            elif kind == FaultKind.MAPMAKER_SLOW_PUBLISH:
                params = (("slow_factor", rng.choice(_SLOW_FACTORS)),)
            events.append(FaultEvent(
                start_day=start, duration_days=duration, target=target,
                kind=kind, params=params))
            break
    return FaultSchedule(tuple(events)).validate()


# -- the soak configuration and scenario shape ------------------------------

@dataclass(frozen=True)
class SoakConfig:
    """Budget and invariant knobs for one soak campaign.

    ``count`` is deliberately *not* part of the resume identity: a
    checkpointed soak can be extended (``--count 50 --resume``) and
    yields exactly the rows the longer run would have produced.
    """

    seed: int = 2025
    count: int = 25
    sessions_per_day: int = 20
    availability_floor: float = 0.95
    max_events: int = 4
    surge: bool = False
    """Layer a generated surge-traffic schedule (flash crowds,
    regional events, diurnal waves, content surges) over every
    scenario and run it with the load-feedback loop on, soaking the
    scenario library against the same invariants."""
    resolver: bool = False
    """Widen the fault menu with the resolver-plane kinds
    (pop_outage / anycast_flap / ecs_whitelist_revoke), activating
    the anycast PoP fleet model in every scenario.  Opt-in because
    any menu change re-deals every scenario's draws, and the base
    menu's are pinned by checked-in fixtures."""

    def identity(self) -> Dict:
        """The fields a resumed run must match exactly."""
        return {
            "seed": self.seed,
            "sessions_per_day": self.sessions_per_day,
            "availability_floor": self.availability_floor,
            "max_events": self.max_events,
            "surge": self.surge,
            "resolver": self.resolver,
        }


def _scenario_spec(config: SoakConfig, index: int):
    """The ScenarioSpec for soak scenario ``index`` (pure function)."""
    # Imported here so ``repro.faults`` has no hard import edge into
    # the simulation layer (schedules/injector stay world-agnostic).
    from repro.api import ScenarioSpec
    from repro.core.loadfeedback import LoadFeedbackConfig
    from repro.core.mapmaker import MapMakerConfig
    from repro.simulation.rollout import RolloutConfig
    from repro.simulation.world import WorldConfig
    from repro.topology.traffic import generate_surges

    sub_seed = scenario_seed(config.seed, index)
    rollout = RolloutConfig(
        start_date=datetime.date(2014, 3, 1),
        end_date=datetime.date(2014, 3, 21),
        rollout_start=datetime.date(2014, 3, 6),
        rollout_end=datetime.date(2014, 3, 12),
        sessions_per_day=config.sessions_per_day,
        seed=sub_seed & 0x7FFFFFFF,
    )
    rng = SplitMix64(sub_seed)
    menu = _MENU + _RESOLVER_MENU if config.resolver else _MENU
    schedule = generate_schedule(rng, rollout.n_days,
                                 max_events=config.max_events,
                                 menu=menu)
    world = replace(WorldConfig.tiny(), serve_stale_window=900.0)
    if not config.surge:
        return ScenarioSpec(world=world, rollout=rollout,
                            faults=schedule,
                            control_plane=MapMakerConfig())
    # Surge mode: a generated traffic schedule from its own derived
    # stream (the fault schedule above stays byte-identical to the
    # non-surge scenario), plus the load-feedback loop over servers
    # small enough that surges actually move utilization.
    surge_rng = SplitMix64(sub_seed ^ 0x5355524745)  # "SURGE"
    traffic = generate_surges(surge_rng, rollout.n_days)
    world = replace(world, server_capacity_rps=0.2)
    return ScenarioSpec(world=world, rollout=rollout, faults=schedule,
                        control_plane=MapMakerConfig(),
                        traffic=traffic,
                        load_feedback=LoadFeedbackConfig())


# -- invariants -------------------------------------------------------------

def world_restored(world) -> List[str]:
    """Violation strings for any fault not exactly reverted."""
    problems: List[str] = []
    for index, ns in enumerate(world.nameservers):
        if not ns.alive:
            problems.append(f"nameserver {index} still dead")
    for rid in sorted(world.ldns_registry):
        ldns = world.ldns_registry[rid]
        if not ldns.alive:
            problems.append(f"resolver {rid} still dead")
        if ldns.ecs_stripped:
            problems.append(f"resolver {rid} still ECS-stripped")
        if not getattr(ldns, "ecs_whitelisted", True):
            problems.append(f"resolver {rid} still whitelist-revoked")
    fleets = getattr(world, "resolver_fleets", None)
    if fleets is not None:
        for rid in sorted(fleets.pops):
            if not fleets.pops[rid].healthy:
                problems.append(f"PoP {rid} still withdrawn")
        for provider in sorted(fleets.flapping):
            problems.append(f"provider {provider} still flapping")
    for cluster_id in sorted(world.deployments.clusters):
        cluster = world.deployments.clusters[cluster_id]
        dead = [s for s in cluster.servers if not s.alive]
        if dead:
            problems.append(
                f"cluster {cluster_id}: {len(dead)} servers still dead")
    if world.network._impairments:
        problems.append(
            f"{len(world.network._impairments)} link impairments left")
    if "faults" in world.obs.tracer.context:
        problems.append("tracer still carries fault context")
    service = world.control_plane
    if service is not None:
        for maker in service.makers:
            if not maker.alive:
                problems.append(f"{maker.name} still dead")
            if maker.hung:
                problems.append(f"{maker.name} still hung")
            if maker.slow_factor != 1.0:
                problems.append(f"{maker.name} still slowed")
            if maker.corrupting:
                problems.append(f"{maker.name} still corrupting")
    return problems


def _conservation(outcome) -> List[str]:
    """Session and query book-keeping identities."""
    problems: List[str] = []
    result = outcome.result
    scheduled = sum(result.sessions_per_day.values())
    completed = len(result.rum.beacons)
    failed = sum(result.failed_sessions_per_day.values())
    if completed + failed != scheduled:
        problems.append(
            f"session conservation: {completed} completed + {failed} "
            f"failed != {scheduled} scheduled")
    degraded = sum(result.degraded_sessions_per_day.values())
    if degraded > completed:
        problems.append(
            f"{degraded} degraded sessions exceed {completed} completed")
    log = outcome.world.query_log
    bucket_sum = sum(log.bucket_count(b) for b in log.buckets())
    if bucket_sum != log.total_queries:
        problems.append(
            f"query conservation: bucket sum {bucket_sum} != total "
            f"{log.total_queries}")
    if log.ecs_queries > log.total_queries:
        problems.append(
            f"{log.ecs_queries} ECS queries exceed total "
            f"{log.total_queries}")
    return problems


def _availability(outcome) -> float:
    failed = sum(outcome.result.failed_sessions_per_day.values())
    completed = len(outcome.result.rum.beacons)
    total = completed + failed
    return completed / total if total else 1.0


def _report_digest(outcome) -> str:
    """SHA-256 of the canonical monitor report (the determinism pin)."""
    blob = json.dumps(outcome.report(), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- running one scenario ---------------------------------------------------

def run_scenario(config: SoakConfig, index: int) -> Dict:
    """Run soak scenario ``index`` and return its (JSON-safe) row."""
    from repro.api import run as run_api
    from repro.obs.monitor.driver import CONTROL_PLANE_TIERS

    spec = _scenario_spec(config, index)
    row: Dict = {
        "index": index,
        "seed": scenario_seed(config.seed, index),
        "schedule": spec.faults.to_dict(),
        "violations": [],
    }
    if spec.traffic:  # surge mode only; non-surge rows are unchanged
        row["traffic"] = spec.traffic.to_dict()
    try:
        outcome = run_api(spec)
    except Exception as exc:  # invariant: faults never crash the sim
        row["violations"].append(
            f"unhandled exception: {type(exc).__name__}: {exc}")
        return row

    availability = _availability(outcome)
    row["availability"] = round(availability, 6)
    if availability < config.availability_floor:
        row["violations"].append(
            f"availability {availability:.4f} below floor "
            f"{config.availability_floor}")
    row["violations"].extend(world_restored(outcome.world))
    row["violations"].extend(_conservation(outcome))

    monitor = outcome.monitor
    age = monitor.store.get("mapmaker.map_age_days")
    row["max_map_age"] = max(age.values) if age is not None else 0.0
    fired: Dict[str, int] = {}
    for alert in monitor.engine.log:
        if alert.kind == "fired":
            fired[alert.rule] = fired.get(alert.rule, 0) + 1
    row["alerts_fired"] = {rule: fired[rule] for rule in sorted(fired)}
    tiers: Dict[str, float] = {}
    counters = outcome.world.obs.registry.snapshot()["counters"]
    for tier in CONTROL_PLANE_TIERS:
        value = counters.get(f"mapping.tier.{tier}", 0.0)
        if value:
            tiers[tier] = value
    row["tier_decisions"] = tiers
    row["map_versions_published"] = (
        outcome.world.control_plane.maps_published)
    row["maps_rejected"] = outcome.world.control_plane.maps_rejected
    row["failovers"] = outcome.world.control_plane.failovers
    row["digest"] = _report_digest(outcome)
    return row


# -- the soak campaign with checkpoint/resume -------------------------------

def _scenario_task(payload: Tuple[SoakConfig, int]) -> Dict:
    """Module-level pool target: run one scenario from (config, index).

    ``run_scenario`` is a pure function of its arguments, so a row
    computed in a pool process is byte-identical to one computed
    inline.
    """
    config, index = payload
    return run_scenario(config, index)


def _run_pending(config: SoakConfig, indices: List[int],
                 workers: Optional[int], progress):
    """Yield rows for ``indices``, in index order, serial or pooled.

    The pool path submits every pending scenario up front and gathers
    futures in submission (= index) order: completion order never
    surfaces, so parallel rows land exactly where serial rows would --
    and the caller checkpoints each yielded row just like the serial
    loop does.
    """
    if workers is None or workers <= 1 or len(indices) <= 1:
        for index in indices:
            if progress is not None:
                progress(index, config.count)
            yield run_scenario(config, index)
        return
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(
            max_workers=min(workers, len(indices))) as pool:
        futures = [pool.submit(_scenario_task, (config, index))
                   for index in indices]
        for index, future in zip(indices, futures):
            if progress is not None:
                progress(index, config.count)
            yield future.result()


def _load_checkpoint(path: str, config: SoakConfig) -> List[Dict]:
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"checkpoint {path!r} has schema "
                         f"{doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("config") != config.identity():
        raise ValueError(
            f"checkpoint {path!r} was written by a different soak "
            f"config: {doc.get('config')} vs {config.identity()}")
    return list(doc.get("rows", []))


def _write_checkpoint(path: str, config: SoakConfig,
                      rows: List[Dict]) -> None:
    doc = {"schema": SCHEMA, "config": config.identity(), "rows": rows}
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


def run_soak(config: SoakConfig,
             checkpoint: Optional[str] = None,
             resume: bool = False,
             stop_after: Optional[int] = None,
             progress=None,
             workers: Optional[int] = None) -> Dict:
    """Run (or resume) a soak campaign and return its report document.

    ``stop_after`` limits how many *new* scenarios this invocation
    runs (interruption, for the checkpoint tests); the report of a
    stopped run carries ``"partial": true``.  ``workers=N`` fans
    scenarios across N processes; rows append (and checkpoints write)
    in index order regardless, so report and checkpoint bytes match
    the serial run's exactly.
    """
    rows: List[Dict] = []
    if resume:
        if not checkpoint:
            raise ValueError("--resume needs --checkpoint")
        rows = _load_checkpoint(checkpoint, config)
        rows = rows[: config.count]

    pending = list(range(len(rows), config.count))
    if stop_after is not None:
        pending = pending[:stop_after]
    for row in _run_pending(config, pending, workers, progress):
        rows.append(row)
        if checkpoint:
            _write_checkpoint(checkpoint, config, rows)

    partial = len(rows) < config.count

    # Determinism probe: scenario 0 replayed must digest identically.
    determinism_ok = True
    if rows and not partial:
        replay = run_scenario(config, 0)
        determinism_ok = replay == rows[0]
        if not determinism_ok:
            rows[0].setdefault("violations", []).append(
                "nondeterministic replay: scenario 0 differs on re-run")

    violations = sum(len(row.get("violations", ())) for row in rows)
    availabilities = [row["availability"] for row in rows
                      if "availability" in row]
    report = {
        "schema": SCHEMA,
        "config": {**config.identity(), "count": config.count},
        "rows": rows,
        "summary": {
            "scenarios": len(rows),
            "events": sum(len(row["schedule"]) for row in rows),
            "violations": violations,
            "worst_availability": (round(min(availabilities), 6)
                                   if availabilities else 1.0),
            "max_map_age": max((row.get("max_map_age", 0.0)
                                for row in rows), default=0.0),
            "deterministic": determinism_ok,
        },
        "passed": violations == 0 and determinism_ok and not partial,
    }
    if partial:
        report["partial"] = True
    return report


# -- CLI --------------------------------------------------------------------

def render_report(report: Dict) -> str:
    lines = [f"soak: {report['summary']['scenarios']} scenarios "
             f"(seed {report['config']['seed']})"]
    for row in report["rows"]:
        events = ", ".join(
            f"{e['kind']}@{e['target']}" for e in row["schedule"])
        status = ("OK" if not row.get("violations")
                  else "; ".join(row["violations"]))
        lines.append(
            f"  [{row['index']:>3}] avail={row.get('availability', 0):.4f}"
            f" map_age<= {row.get('max_map_age', 0):g}"
            f" | {events or 'no faults'} | {status}")
    summary = report["summary"]
    lines.append(
        f"violations={summary['violations']} "
        f"worst_availability={summary['worst_availability']:.4f} "
        f"deterministic={summary['deterministic']} "
        f"passed={report['passed']}")
    return "\n".join(lines)


def _positive_int(text: str) -> int:
    """argparse type: strictly positive integer (usage error -- exit
    code 2 -- otherwise, per the documented contract)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro soak", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--count", type=int, default=25,
                        help="scenarios to run (default 25)")
    parser.add_argument("--sessions", type=int, default=20,
                        help="sessions per simulated day")
    parser.add_argument("--availability-floor", type=float, default=0.95)
    parser.add_argument("--max-events", type=int, default=4)
    parser.add_argument("--surge", action="store_true",
                        help="layer generated surge-traffic schedules "
                             "over every scenario (load feedback on)")
    parser.add_argument("--resolver", action="store_true",
                        help="widen the fault menu with resolver-plane "
                             "kinds (anycast PoP fleets on)")
    parser.add_argument("--checkpoint", default=None,
                        help="write progress here after every scenario")
    parser.add_argument("--resume", action="store_true",
                        help="continue from --checkpoint instead of "
                             "starting over")
    parser.add_argument("--stop-after", type=int, default=None,
                        help="run at most this many new scenarios "
                             "(for interruption testing)")
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="fan scenarios across N processes "
                             "(report/checkpoint bytes unchanged)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--out", default=None,
                        help="write to this path instead of stdout")
    args = parser.parse_args(argv)

    config = SoakConfig(
        seed=args.seed, count=args.count,
        sessions_per_day=args.sessions,
        availability_floor=args.availability_floor,
        max_events=args.max_events, surge=args.surge,
        resolver=args.resolver)

    def progress(index: int, count: int) -> None:
        print(f"soak scenario {index + 1}/{count}...", file=sys.stderr)

    report = run_soak(config, checkpoint=args.checkpoint,
                      resume=args.resume, stop_after=args.stop_after,
                      progress=progress, workers=args.workers)
    if args.format == "json":
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        text = render_report(report) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
