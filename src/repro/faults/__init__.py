"""Deterministic fault injection (`repro.faults`).

* :mod:`repro.faults.schedule` -- declarative ``FaultSchedule`` /
  ``FaultEvent`` data model: when targets break and recover.
* :mod:`repro.faults.injector` -- ``FaultInjector`` applies a schedule
  to a live world day by day, with exact reverts on recovery.
* :mod:`repro.faults.chaos` -- seeded random schedule generation and
  the ``python -m repro soak`` campaign runner with its global
  invariants (determinism, availability floor, exact recovery,
  conservation).

The degradation machinery the schedules exercise (retry/backoff,
serve-stale, EU->NS fallback, stub failover) lives in the components
themselves; this package only orchestrates *when* they get exercised.
"""

from repro.faults.chaos import (
    SoakConfig,
    SplitMix64,
    generate_schedule,
    run_soak,
    scenario_seed,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "SoakConfig",
    "SplitMix64",
    "generate_schedule",
    "run_soak",
    "scenario_seed",
]
