"""Applies a :class:`FaultSchedule` to a live world, day by day.

The injector is driven by the roll-out loop: ``step(day)`` diffs the
set of events active on ``day`` against what is currently applied,
reverts the events that ended, and applies the ones that started --
always in the schedule's canonical order, so replays are
deterministic.  Every application records a matching *revert* closure,
making recovery exact: a cluster outage only revives the servers the
outage killed, never servers some other fault took down.

While any fault is active the world's tracer carries a ``faults``
context attribute, so every sampled trace records which outages were
in force when it ran.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule


class FaultInjector:
    """Replays one schedule against one world."""

    def __init__(self, world, schedule: FaultSchedule) -> None:
        self.world = world
        self.schedule = schedule
        self.events_applied = 0
        self._applied: Dict[FaultEvent, Callable[[], None]] = {}

    @property
    def active_events(self) -> List[FaultEvent]:
        return sorted(self._applied,
                      key=lambda e: (e.start_day, e.kind, e.target))

    def step(self, day: int) -> None:
        """Bring the world in sync with the schedule for ``day``."""
        target_set = set(self.schedule.active(day))
        for event in list(self._applied):
            if event not in target_set:
                self._applied.pop(event)()
        for event in self.schedule.active(day):
            if event not in self._applied:
                self._applied[event] = self._apply(event)
                self.events_applied += 1
                # The fault schedule replays identically in every shard
                # of a sharded run, so both instruments merge by max.
                self.world.obs.registry.counter(
                    "faults.events_applied", merge="max").inc()
        self.world.obs.registry.gauge("faults.active", merge="max").set(
            len(self._applied))
        self._sync_trace_context()

    def finish(self) -> None:
        """Revert everything still applied (end-of-run cleanup)."""
        for event in self.active_events:
            self._applied.pop(event)()
        self._sync_trace_context()

    # -- application per kind ---------------------------------------------

    def _apply(self, event: FaultEvent) -> Callable[[], None]:
        handler = {
            FaultKind.AUTH_OUTAGE: self._apply_auth_outage,
            FaultKind.CLUSTER_OUTAGE: self._apply_cluster_outage,
            FaultKind.ECS_STRIP: self._apply_ecs_strip,
            FaultKind.LDNS_BLACKOUT: self._apply_ldns_blackout,
            FaultKind.LINK_DEGRADATION: self._apply_link_degradation,
            FaultKind.MAPMAKER_CRASH: self._apply_mapmaker_crash,
            FaultKind.MAPMAKER_HANG: self._apply_mapmaker_hang,
            FaultKind.MAPMAKER_SLOW_PUBLISH: (
                self._apply_mapmaker_slow_publish),
            FaultKind.MAP_CORRUPTION: self._apply_map_corruption,
            FaultKind.POP_OUTAGE: self._apply_pop_outage,
            FaultKind.ANYCAST_FLAP: self._apply_anycast_flap,
            FaultKind.ECS_WHITELIST_REVOKE: (
                self._apply_ecs_whitelist_revoke),
        }[event.kind]
        return handler(event)

    def _apply_auth_outage(self, event: FaultEvent):
        victims = self._nameservers_for(event.target)
        # Only kill servers this event found alive, so overlapping
        # outages revert independently.
        killed = [ns for ns in victims if ns.alive]
        for ns in killed:
            ns.fail()

        def revert() -> None:
            for ns in killed:
                ns.recover()
        return revert

    def _apply_cluster_outage(self, event: FaultEvent):
        cluster = self._cluster_for(event.target)
        killed = [server for server in cluster.servers if server.alive]
        for server in killed:
            server.fail()

        def revert() -> None:
            for server in killed:
                server.recover()
        return revert

    def _apply_ecs_strip(self, event: FaultEvent):
        stripped = []
        for ldns in self._resolvers_for(event.target):
            if not ldns.ecs_stripped:
                ldns.ecs_stripped = True
                stripped.append(ldns)

        def revert() -> None:
            for ldns in stripped:
                ldns.ecs_stripped = False
        return revert

    def _apply_ldns_blackout(self, event: FaultEvent):
        darkened = []
        for ldns in self._resolvers_for(event.target):
            if ldns.alive:
                ldns.fail()
                darkened.append(ldns)

        def revert() -> None:
            for ldns in darkened:
                ldns.recover()
        return revert

    def _apply_link_degradation(self, event: FaultEvent):
        network = self.world.network
        impaired = []
        for ldns in self._resolvers_for(event.target):
            network.impair(
                ldns.ip,
                latency_factor=event.param("latency_factor", 3.0),
                loss_rate=event.param("loss_rate", 0.25))
            impaired.append(ldns.ip)

        def revert() -> None:
            for ip in impaired:
                network.clear_impairment(ip)
        return revert

    def _apply_mapmaker_crash(self, event: FaultEvent):
        killed = [m for m in self._makers_for(event.target) if m.alive]
        for maker in killed:
            maker.alive = False

        def revert() -> None:
            for maker in killed:
                maker.alive = True
        return revert

    def _apply_mapmaker_hang(self, event: FaultEvent):
        wedged = [m for m in self._makers_for(event.target)
                  if not m.hung]
        for maker in wedged:
            maker.hung = True

        def revert() -> None:
            for maker in wedged:
                maker.hung = False
        return revert

    def _apply_mapmaker_slow_publish(self, event: FaultEvent):
        factor = event.param("slow_factor", 4.0)
        slowed = [(m, m.slow_factor)
                  for m in self._makers_for(event.target)]
        for maker, _old in slowed:
            maker.slow_factor = factor

        def revert() -> None:
            for maker, old in slowed:
                maker.slow_factor = old
        return revert

    def _apply_map_corruption(self, event: FaultEvent):
        poisoned = [m for m in self._makers_for(event.target)
                    if not m.corrupting]
        for maker in poisoned:
            maker.corrupting = True

        def revert() -> None:
            for maker in poisoned:
                maker.corrupting = False
        return revert

    def _apply_pop_outage(self, event: FaultEvent):
        fleets = self._fleets(event.target)
        # Only withdraw PoPs this event found healthy, so overlapping
        # outages (e.g. city-level inside provider-level) revert
        # independently and recovery is exact.
        withdrawn = [rid for rid in self._resolver_ids_for(event.target)
                     if rid in fleets.pops and fleets.pops[rid].healthy]
        for rid in withdrawn:
            fleets.withdraw(rid)

        def revert() -> None:
            for rid in withdrawn:
                fleets.restore(rid)
        return revert

    def _apply_anycast_flap(self, event: FaultEvent):
        fleets = self._fleets(event.target)
        flapped = []
        for rid in self._resolver_ids_for(event.target):
            pop = fleets.pops.get(rid)
            if pop is None:
                continue
            name = pop.resolver.provider
            if name not in fleets.flapping and name not in flapped:
                flapped.append(name)
        for name in flapped:
            fleets.flapping.add(name)

        def revert() -> None:
            for name in flapped:
                fleets.flapping.discard(name)
        return revert

    def _apply_ecs_whitelist_revoke(self, event: FaultEvent):
        self._fleets(event.target)  # resolver plane must be active
        revoked = []
        for ldns in self._resolvers_for(event.target):
            if getattr(ldns, "ecs_whitelisted", True):
                ldns.ecs_whitelisted = False
                revoked.append(ldns)

        def revert() -> None:
            for ldns in revoked:
                ldns.ecs_whitelisted = True
        return revert

    # -- target grammars ---------------------------------------------------

    def _nameservers_for(self, target: str):
        servers = self.world.nameservers
        if target in ("ns:*", "*"):
            return list(servers)
        if target.startswith("ns:"):
            index = int(target.split(":", 1)[1])
            if not 0 <= index < len(servers):
                raise KeyError(f"no nameserver {target!r}")
            return [servers[index]]
        raise KeyError(f"bad auth_outage target {target!r}")

    def _cluster_for(self, target: str):
        clusters = self.world.deployments.clusters
        if target.startswith("cluster:"):
            rest = target.split(":", 1)[1]
            if rest.isdigit():
                ids = sorted(clusters)
                index = int(rest)
                if not 0 <= index < len(ids):
                    raise KeyError(f"no cluster {target!r}")
                return clusters[ids[index]]
        if target in clusters:
            return clusters[target]
        raise KeyError(f"unknown cluster {target!r}")

    def _resolvers_for(self, target: str):
        registry = self.world.ldns_registry
        return [registry[rid] for rid in self._resolver_ids_for(target)]

    def _resolver_ids_for(self, target: str) -> List[str]:
        registry = self.world.ldns_registry
        public = sorted(self.world.public_ldns_ids())
        isp = [rid for rid in sorted(registry) if rid not in set(public)]
        if target == "public:*":
            return public
        if target == "isp:*":
            return isp
        if target == "*":
            return sorted(registry)
        group, _, rest = target.partition(":")
        if group == "public" and rest and not rest.isdigit():
            return self._provider_pop_ids(target, rest)
        if group in ("public", "isp") and rest.isdigit():
            pool = public if group == "public" else isp
            index = int(rest)
            if not 0 <= index < len(pool):
                raise KeyError(f"no resolver {target!r}")
            return [pool[index]]
        rid = rest if group == "resolver" and rest else target
        if rid not in registry:
            raise KeyError(f"unknown resolver {target!r}")
        return [rid]

    def _provider_pop_ids(self, target: str, rest: str) -> List[str]:
        """Resolve ``public:<provider>[:<city>]`` to PoP resolver ids."""
        from repro.topology.resolvers import providers_by_name

        name, _, city = rest.partition(":")
        provider = providers_by_name(
            self.world.internet.providers).get(name)
        if provider is None:
            raise KeyError(f"unknown public provider in {target!r}")
        deployments = sorted(provider.deployments,
                             key=lambda dep: dep.resolver_id)
        if city:
            slug = city.lower().replace(" ", "-").replace(".", "")
            deployments = [dep for dep in deployments
                           if dep.city.lower().replace(" ", "-")
                           .replace(".", "") == slug]
            if not deployments:
                raise KeyError(
                    f"provider {name!r} has no PoP in city of "
                    f"{target!r}")
        return [dep.resolver_id for dep in deployments]

    def _fleets(self, target: str):
        fleets = getattr(self.world, "resolver_fleets", None)
        if fleets is None:
            raise KeyError(
                f"resolver-plane fault target {target!r} needs a world "
                f"built with the PoP fleet model (set "
                f"ScenarioSpec.resolver_policies, or run the schedule "
                f"through the scenario API, which activates fleets "
                f"when resolver-plane faults are present)")
        return fleets

    def _makers_for(self, target: str):
        service = getattr(self.world, "control_plane", None)
        if service is None:
            raise KeyError(
                f"mapmaker fault target {target!r} needs a world built "
                f"with a control plane "
                f"(ScenarioSpec.control_plane=MapMakerConfig())")
        makers = service.makers
        if target in ("mapmaker:*", "*"):
            return list(makers)
        _group, _, rest = target.partition(":")
        # Role targets resolve *at apply time*: after a failover,
        # "mapmaker:primary" addresses the promoted ex-standby.
        if rest == "primary":
            return [service.primary]
        if rest == "standby":
            standby = service.standby
            if standby is None:
                raise KeyError(f"no standby MapMaker ({target!r})")
            return [standby]
        if rest.isdigit():
            index = int(rest)
            if not 0 <= index < len(makers):
                raise KeyError(f"no MapMaker {target!r}")
            return [makers[index]]
        raise KeyError(f"bad mapmaker target {target!r}")

    # -- trace context ------------------------------------------------------

    def _sync_trace_context(self) -> None:
        tracer = self.world.obs.tracer
        if self._applied:
            labels = sorted(f"{e.kind}:{e.target}" for e in self._applied)
            tracer.context["faults"] = ",".join(labels)
        else:
            tracer.context.pop("faults", None)
