"""EDNS0 (RFC 6891) and the client-subnet option (RFC 7871).

The client-subnet option is the protocol mechanism end-user mapping is
built on (paper Section 2.1): a recursive resolver forwards a truncated
prefix of the client's IP ("SOURCE PREFIX-LENGTH", conventionally /24
for privacy) inside its query, and the authoritative answers with a
"SCOPE PREFIX-LENGTH" /y declaring the block of clients for which the
answer may be cached and reused, where y <= x is allowed to widen the
answer's applicability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dnsproto.types import (
    DEFAULT_EDNS_PAYLOAD,
    ECS_FAMILY_IPV4,
    ECS_FAMILY_IPV6,
    EDNS_CLIENT_SUBNET,
    QType,
)
from repro.dnsproto.wire import WireFormatError, WireReader, WireWriter
from repro.net.ipv4 import Prefix, mask_of


@dataclass(frozen=True, slots=True)
class ClientSubnetOption:
    """RFC 7871 client-subnet option (IPv4).

    ``prefix`` carries the client block: its length is the SOURCE
    PREFIX-LENGTH in queries.  ``scope_prefix_len`` is zero in queries
    and set by the authoritative in responses.
    """

    prefix: Prefix
    scope_prefix_len: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.scope_prefix_len <= 32:
            raise WireFormatError(
                f"bad scope prefix length: {self.scope_prefix_len}")

    @property
    def source_prefix_len(self) -> int:
        return self.prefix.length

    @property
    def scope_prefix(self) -> Prefix:
        """The block of clients this (response) option is valid for.

        RFC 7871: a response with SCOPE y covers every client whose
        first y bits match the query's address -- i.e. the /y supernet
        of the query prefix.
        """
        return self.prefix.supernet(min(self.scope_prefix_len,
                                        self.prefix.length))

    def for_response(self, scope_prefix_len: int) -> "ClientSubnetOption":
        """Build the response option for this query option.

        RFC 7871 Section 7.1.2: the response must echo FAMILY, SOURCE
        PREFIX-LENGTH, and ADDRESS, changing only SCOPE PREFIX-LENGTH.
        """
        return ClientSubnetOption(self.prefix, scope_prefix_len)

    def encode(self) -> bytes:
        """Encode to option wire format (without the option TLV header)."""
        source_len = self.prefix.length
        addr_bytes = (source_len + 7) // 8
        address = self.prefix.network & mask_of(source_len)
        payload = WireWriter()
        payload.u16(ECS_FAMILY_IPV4)
        payload.u8(source_len)
        payload.u8(self.scope_prefix_len)
        payload.write(address.to_bytes(4, "big")[:addr_bytes])
        return payload.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ClientSubnetOption":
        reader = WireReader(data)
        family = reader.u16()
        if family != ECS_FAMILY_IPV4:
            raise WireFormatError(
                f"unsupported ECS family {family} (IPv4 only)")
        source_len = reader.u8()
        scope_len = reader.u8()
        if source_len > 32:
            raise WireFormatError(f"bad ECS source length {source_len}")
        addr_bytes = (source_len + 7) // 8
        raw = reader.read(addr_bytes)
        if reader.remaining:
            raise WireFormatError("trailing bytes in ECS option")
        address = int.from_bytes(raw + b"\x00" * (4 - len(raw)), "big")
        if address & ~mask_of(source_len) & 0xFFFFFFFF:
            # RFC 7871 Section 6: bits beyond SOURCE PREFIX-LENGTH must
            # be zero; anything else gets FORMERR.
            raise WireFormatError("ECS address bits set beyond source "
                                  "prefix length")
        return cls(Prefix(address, source_len), scope_len)

    def __str__(self) -> str:
        return f"ECS {self.prefix} scope /{self.scope_prefix_len}"


@dataclass(frozen=True, slots=True)
class ClientSubnetV6Option:
    """RFC 7871 client-subnet option, IPv6 family.

    The simulator's Internet is IPv4, so the mapping system never
    *acts* on a v6 option -- but a standards-conforming authoritative
    must parse, validate, and echo it rather than FORMERR, and the
    codec supports that.
    """

    address: int
    """128-bit address with bits beyond ``source_prefix_len`` zero."""
    source_prefix_len: int
    scope_prefix_len: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.source_prefix_len <= 128:
            raise WireFormatError(
                f"bad v6 source length {self.source_prefix_len}")
        if not 0 <= self.scope_prefix_len <= 128:
            raise WireFormatError(
                f"bad v6 scope length {self.scope_prefix_len}")
        if not 0 <= self.address < (1 << 128):
            raise WireFormatError("v6 address out of range")
        if self.source_prefix_len < 128:
            host_mask = (1 << (128 - self.source_prefix_len)) - 1
            if self.address & host_mask:
                raise WireFormatError(
                    "v6 ECS address bits set beyond source prefix")

    def for_response(self, scope_prefix_len: int) -> "ClientSubnetV6Option":
        return ClientSubnetV6Option(self.address, self.source_prefix_len,
                                    scope_prefix_len)

    def encode(self) -> bytes:
        addr_bytes = (self.source_prefix_len + 7) // 8
        payload = WireWriter()
        payload.u16(ECS_FAMILY_IPV6)
        payload.u8(self.source_prefix_len)
        payload.u8(self.scope_prefix_len)
        payload.write(self.address.to_bytes(16, "big")[:addr_bytes])
        return payload.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ClientSubnetV6Option":
        reader = WireReader(data)
        family = reader.u16()
        if family != ECS_FAMILY_IPV6:
            raise WireFormatError(f"not a v6 ECS option: family {family}")
        source_len = reader.u8()
        scope_len = reader.u8()
        if source_len > 128:
            raise WireFormatError(f"bad v6 source length {source_len}")
        addr_bytes = (source_len + 7) // 8
        raw = reader.read(addr_bytes)
        if reader.remaining:
            raise WireFormatError("trailing bytes in v6 ECS option")
        address = int.from_bytes(raw + b"\x00" * (16 - len(raw)), "big")
        return cls(address, source_len, scope_len)


@dataclass(frozen=True, slots=True)
class EdnsOptions:
    """Decoded contents of an OPT pseudo-record."""

    payload_size: int = DEFAULT_EDNS_PAYLOAD
    extended_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False
    client_subnet: Optional[ClientSubnetOption] = None
    client_subnet_v6: Optional[ClientSubnetV6Option] = None
    unknown_options: Tuple[Tuple[int, bytes], ...] = ()


@dataclass(frozen=True, slots=True)
class OptRecord:
    """The OPT pseudo-RR that carries EDNS0 in the additional section.

    Stored separately from normal records because its fixed fields are
    reinterpreted (CLASS = UDP payload size, TTL = flags).
    """

    options: EdnsOptions = field(default_factory=EdnsOptions)

    def encode(self, writer: WireWriter) -> None:
        opts = self.options
        writer.u8(0)  # root owner name
        writer.u16(QType.OPT)
        writer.u16(opts.payload_size)
        ttl = (opts.extended_rcode << 24) | (opts.version << 16)
        if opts.dnssec_ok:
            ttl |= 0x8000
        writer.u32(ttl)
        rdata = WireWriter()
        if opts.client_subnet is not None:
            body = opts.client_subnet.encode()
            rdata.u16(EDNS_CLIENT_SUBNET)
            rdata.u16(len(body))
            rdata.write(body)
        if opts.client_subnet_v6 is not None:
            body = opts.client_subnet_v6.encode()
            rdata.u16(EDNS_CLIENT_SUBNET)
            rdata.u16(len(body))
            rdata.write(body)
        for code, body in opts.unknown_options:
            rdata.u16(code)
            rdata.u16(len(body))
            rdata.write(body)
        payload = rdata.getvalue()
        writer.u16(len(payload))
        writer.write(payload)

    @classmethod
    def decode_body(cls, reader: WireReader, rclass: int,
                    ttl: int, rdlength: int) -> "OptRecord":
        """Decode the OPT record given its already-read fixed fields."""
        extended_rcode = (ttl >> 24) & 0xFF
        version = (ttl >> 16) & 0xFF
        if version != 0:
            raise WireFormatError(f"unsupported EDNS version {version}")
        dnssec_ok = bool(ttl & 0x8000)
        end = reader.pos + rdlength
        client_subnet: Optional[ClientSubnetOption] = None
        client_subnet_v6: Optional[ClientSubnetV6Option] = None
        unknown: List[Tuple[int, bytes]] = []
        while reader.pos < end:
            code = reader.u16()
            length = reader.u16()
            body = reader.read(length)
            if code == EDNS_CLIENT_SUBNET:
                if len(body) < 2:
                    raise WireFormatError("ECS option too short")
                family = int.from_bytes(body[:2], "big")
                if family == ECS_FAMILY_IPV6:
                    if client_subnet_v6 is not None:
                        raise WireFormatError("duplicate v6 ECS option")
                    client_subnet_v6 = ClientSubnetV6Option.decode(body)
                else:
                    if client_subnet is not None:
                        raise WireFormatError("duplicate ECS option")
                    client_subnet = ClientSubnetOption.decode(body)
            else:
                unknown.append((code, body))
        if reader.pos != end:
            raise WireFormatError("OPT rdata length mismatch")
        return cls(EdnsOptions(
            payload_size=rclass,
            extended_rcode=extended_rcode,
            version=version,
            dnssec_ok=dnssec_ok,
            client_subnet=client_subnet,
            client_subnet_v6=client_subnet_v6,
            unknown_options=tuple(unknown),
        ))
