"""Typed RDATA for the record types the mapping system serves.

Each rdata class knows how to encode itself into a message (optionally
participating in name compression) and how to decode itself from the
RDATA slice of a record.  Unknown types round-trip through
:class:`OpaqueRdata` so a resolver can forward records it does not
understand -- required behaviour for a well-behaved recursive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple, Type

from repro.dnsproto.name import decode_name, encode_name, normalize_name
from repro.dnsproto.types import QType
from repro.dnsproto.wire import WireFormatError, WireReader, WireWriter
from repro.net.ipv4 import format_ipv4


class Rdata:
    """Base class; subclasses register themselves by record type."""

    rtype: ClassVar[int] = 0
    _registry: ClassVar[Dict[int, Type["Rdata"]]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if getattr(cls, "rtype", 0):
            Rdata._registry[cls.rtype] = cls

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        raise NotImplementedError

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "Rdata":
        raise NotImplementedError

    @staticmethod
    def decoder_for(rtype: int) -> Optional[Type["Rdata"]]:
        return Rdata._registry.get(rtype)


@dataclass(frozen=True, slots=True)
class ARdata(Rdata):
    """IPv4 address record; the payload of every mapping answer."""

    address: int
    rtype: ClassVar[int] = QType.A

    def __post_init__(self) -> None:
        if not 0 <= self.address < (1 << 32):
            raise WireFormatError(f"bad IPv4 address: {self.address}")

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        writer.u32(self.address)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "ARdata":
        if rdlength != 4:
            raise WireFormatError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(reader.u32())

    def __str__(self) -> str:
        return format_ipv4(self.address)


@dataclass(frozen=True, slots=True)
class NSRdata(Rdata):
    """Name-server delegation record (global load-balancer output)."""

    nsdname: str
    rtype: ClassVar[int] = QType.NS

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        encode_name(writer, self.nsdname, compress)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "NSRdata":
        return cls(decode_name(reader))

    def __str__(self) -> str:
        return self.nsdname


@dataclass(frozen=True, slots=True)
class CNAMERdata(Rdata):
    """Alias record: content-provider domain -> CDN domain."""

    target: str
    rtype: ClassVar[int] = QType.CNAME

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        encode_name(writer, self.target, compress)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "CNAMERdata":
        return cls(decode_name(reader))

    def __str__(self) -> str:
        return self.target


@dataclass(frozen=True, slots=True)
class SOARdata(Rdata):
    """Start-of-authority record for served zones."""

    mname: str
    rname: str
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int
    rtype: ClassVar[int] = QType.SOA

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        encode_name(writer, self.mname, compress)
        encode_name(writer, self.rname, compress)
        for field in (self.serial, self.refresh, self.retry, self.expire,
                      self.minimum):
            writer.u32(field)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "SOARdata":
        mname = decode_name(reader)
        rname = decode_name(reader)
        return cls(mname, rname, reader.u32(), reader.u32(), reader.u32(),
                   reader.u32(), reader.u32())


@dataclass(frozen=True, slots=True)
class TXTRdata(Rdata):
    """Text record; used by the whoami diagnostic zone."""

    strings: Tuple[bytes, ...]
    rtype: ClassVar[int] = QType.TXT

    @classmethod
    def from_text(cls, *texts: str) -> "TXTRdata":
        return cls(tuple(t.encode("ascii") for t in texts))

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        if not self.strings:
            raise WireFormatError("TXT record needs at least one string")
        for chunk in self.strings:
            if len(chunk) > 255:
                raise WireFormatError("TXT chunk longer than 255 bytes")
            writer.u8(len(chunk))
            writer.write(chunk)

    @classmethod
    def decode(cls, reader: WireReader, rdlength: int) -> "TXTRdata":
        end = reader.pos + rdlength
        strings = []
        while reader.pos < end:
            length = reader.u8()
            strings.append(reader.read(length))
        if reader.pos != end:
            raise WireFormatError("TXT rdata length mismatch")
        return cls(tuple(strings))

    def __str__(self) -> str:
        return " ".join(repr(s.decode("ascii", "replace"))
                        for s in self.strings)


@dataclass(frozen=True, slots=True)
class OpaqueRdata(Rdata):
    """Uninterpreted RDATA for record types we do not model."""

    type_code: int
    payload: bytes

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        writer.write(self.payload)

    @classmethod
    def decode_opaque(cls, reader: WireReader, rtype: int,
                      rdlength: int) -> "OpaqueRdata":
        return cls(rtype, reader.read(rdlength))


def decode_rdata(reader: WireReader, rtype: int, rdlength: int) -> Rdata:
    """Decode RDATA by type, falling back to opaque passthrough.

    Enforces that the decoder consumed exactly ``rdlength`` bytes --
    a mismatch means a malformed record and must FORMERR rather than
    silently desynchronize the section parse.
    """
    end = reader.pos + rdlength
    if end > reader.pos + reader.remaining:
        raise WireFormatError("rdata extends past message end")
    decoder = Rdata.decoder_for(rtype)
    if decoder is None:
        rdata: Rdata = OpaqueRdata.decode_opaque(reader, rtype, rdlength)
    else:
        rdata = decoder.decode(reader, rdlength)
    if reader.pos != end:
        raise WireFormatError(
            f"rdata length mismatch for type {rtype}: "
            f"expected end {end}, got {reader.pos}")
    return rdata


def canonical_rdata(rdata: Rdata) -> Rdata:
    """Normalize embedded names for comparisons and cache keys."""
    if isinstance(rdata, NSRdata):
        return NSRdata(normalize_name(rdata.nsdname))
    if isinstance(rdata, CNAMERdata):
        return CNAMERdata(normalize_name(rdata.target))
    return rdata
