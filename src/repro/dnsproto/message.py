"""DNS message framing: header, question, and record sections.

Implements RFC 1035 message encode/decode with name compression plus
EDNS0 via the OPT pseudo-record.  The in-memory transport still encodes
every message to bytes and decodes on receipt, so protocol details
(compression, ECS validation, truncation of malformed input) are
exercised on every simulated query.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.dnsproto.edns import ClientSubnetOption, EdnsOptions, OptRecord
from repro.dnsproto.name import decode_name, encode_name, normalize_name
from repro.dnsproto.rdata import Rdata, decode_rdata
from repro.dnsproto.types import Opcode, QClass, QType, Rcode
from repro.dnsproto.wire import WireFormatError, WireReader, WireWriter


@dataclass(frozen=True, slots=True)
class Flags:
    """Header flag bits (RFC 1035 4.1.1)."""

    qr: bool = False
    opcode: int = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    rcode: int = Rcode.NOERROR

    def encode(self) -> int:
        value = 0
        if self.qr:
            value |= 0x8000
        value |= (self.opcode & 0xF) << 11
        if self.aa:
            value |= 0x0400
        if self.tc:
            value |= 0x0200
        if self.rd:
            value |= 0x0100
        if self.ra:
            value |= 0x0080
        value |= self.rcode & 0xF
        return value

    @classmethod
    def decode(cls, value: int) -> "Flags":
        return cls(
            qr=bool(value & 0x8000),
            opcode=(value >> 11) & 0xF,
            aa=bool(value & 0x0400),
            tc=bool(value & 0x0200),
            rd=bool(value & 0x0100),
            ra=bool(value & 0x0080),
            rcode=value & 0xF,
        )


@dataclass(frozen=True, slots=True)
class Question:
    """One entry of the question section."""

    name: str
    qtype: int = QType.A
    qclass: int = QClass.IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        encode_name(writer, self.name, compress)
        writer.u16(self.qtype)
        writer.u16(self.qclass)

    @classmethod
    def decode(cls, reader: WireReader) -> "Question":
        name = decode_name(reader)
        return cls(name, reader.u16(), reader.u16())


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One resource record with typed RDATA."""

    name: str
    rtype: int
    ttl: int
    rdata: Rdata
    rclass: int = QClass.IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl < 0 or self.ttl > 0x7FFFFFFF:
            raise WireFormatError(f"TTL out of range: {self.ttl}")

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """Copy with a different TTL (cache aging)."""
        return replace(self, ttl=ttl)

    def encode(self, writer: WireWriter,
               compress: Optional[Dict[str, int]]) -> None:
        encode_name(writer, self.name, compress)
        writer.u16(self.rtype)
        writer.u16(self.rclass)
        writer.u32(self.ttl)
        rdlength_at = writer.offset
        writer.u16(0)  # placeholder, patched below
        rdata_start = writer.offset
        self.rdata.encode(writer, compress)
        writer.patch_u16(rdlength_at, writer.offset - rdata_start)

    @classmethod
    def decode(cls, reader: WireReader) -> "ResourceRecord":
        name = decode_name(reader)
        rtype = reader.u16()
        rclass = reader.u16()
        ttl = reader.u32()
        rdlength = reader.u16()
        rdata = decode_rdata(reader, rtype, rdlength)
        return cls(name, rtype, ttl, rdata, rclass)


@dataclass
class Message:
    """A complete DNS message.

    The OPT pseudo-record lives in ``opt``, not ``additionals``; the
    codec moves it in and out of the additional section on the wire.
    """

    msg_id: int = 0
    flags: Flags = field(default_factory=Flags)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)
    opt: Optional[OptRecord] = None

    # -- EDNS / ECS convenience -------------------------------------------

    @property
    def client_subnet(self) -> Optional[ClientSubnetOption]:
        if self.opt is None:
            return None
        return self.opt.options.client_subnet

    def with_client_subnet(self, ecs: ClientSubnetOption) -> "Message":
        """Attach (or replace) the ECS option, adding EDNS if needed."""
        base = self.opt.options if self.opt else EdnsOptions()
        self.opt = OptRecord(replace(base, client_subnet=ecs))
        return self

    @property
    def question(self) -> Question:
        if not self.questions:
            raise WireFormatError("message has no question")
        return self.questions[0]

    # -- codec --------------------------------------------------------------

    def encode(self) -> bytes:
        writer = WireWriter()
        compress: Dict[str, int] = {}
        writer.u16(self.msg_id)
        writer.u16(self.flags.encode())
        writer.u16(len(self.questions))
        writer.u16(len(self.answers))
        writer.u16(len(self.authorities))
        n_additional = len(self.additionals) + (1 if self.opt else 0)
        writer.u16(n_additional)
        for question in self.questions:
            question.encode(writer, compress)
        for record in self.answers:
            record.encode(writer, compress)
        for record in self.authorities:
            record.encode(writer, compress)
        for record in self.additionals:
            record.encode(writer, compress)
        if self.opt is not None:
            self.opt.encode(writer)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        msg_id = reader.u16()
        flags = Flags.decode(reader.u16())
        qdcount = reader.u16()
        ancount = reader.u16()
        nscount = reader.u16()
        arcount = reader.u16()
        questions = [Question.decode(reader) for _ in range(qdcount)]
        answers = [ResourceRecord.decode(reader) for _ in range(ancount)]
        authorities = [ResourceRecord.decode(reader) for _ in range(nscount)]
        additionals: List[ResourceRecord] = []
        opt: Optional[OptRecord] = None
        for _ in range(arcount):
            mark = reader.pos
            name = decode_name(reader)
            rtype = reader.u16()
            if rtype == QType.OPT:
                if name:
                    raise WireFormatError("OPT owner name must be root")
                if opt is not None:
                    raise WireFormatError("duplicate OPT record")
                rclass = reader.u16()
                ttl = reader.u32()
                rdlength = reader.u16()
                opt = OptRecord.decode_body(reader, rclass, ttl, rdlength)
            else:
                reader.seek(mark)
                additionals.append(ResourceRecord.decode(reader))
        if reader.remaining:
            raise WireFormatError(
                f"{reader.remaining} trailing bytes after message")
        return cls(msg_id, flags, questions, answers, authorities,
                   additionals, opt)

    def __str__(self) -> str:
        kind = "response" if self.flags.qr else "query"
        parts = [f"{kind} id={self.msg_id} rcode={self.flags.rcode}"]
        for question in self.questions:
            parts.append(f"  ? {question.name} type={question.qtype}")
        for record in self.answers:
            parts.append(f"  = {record.name} {record.ttl}s {record.rdata}")
        ecs = self.client_subnet
        if ecs is not None:
            parts.append(f"  + {ecs}")
        return "\n".join(parts)


def make_query(
    name: str,
    qtype: int = QType.A,
    msg_id: int = 0,
    ecs: Optional[ClientSubnetOption] = None,
    recursion_desired: bool = True,
) -> Message:
    """Build a query message, optionally carrying an ECS option."""
    message = Message(
        msg_id=msg_id,
        flags=Flags(qr=False, rd=recursion_desired),
        questions=[Question(name, qtype)],
    )
    if ecs is not None:
        message.with_client_subnet(ecs)
    else:
        message.opt = OptRecord()
    return message


def make_response(
    query: Message,
    answers: Sequence[ResourceRecord] = (),
    rcode: int = Rcode.NOERROR,
    authoritative: bool = True,
    scope_prefix_len: Optional[int] = None,
    authorities: Sequence[ResourceRecord] = (),
    additionals: Sequence[ResourceRecord] = (),
) -> Message:
    """Build a response echoing the query's id, question, and ECS.

    ``scope_prefix_len`` sets the RFC 7871 SCOPE PREFIX-LENGTH when the
    query carried an ECS option; None echoes scope 0 (answer valid for
    all clients), which is what a non-ECS-aware authority would do.
    """
    response = Message(
        msg_id=query.msg_id,
        flags=Flags(qr=True, aa=authoritative, rd=query.flags.rd, ra=False,
                    rcode=rcode),
        questions=list(query.questions),
        answers=list(answers),
        authorities=list(authorities),
        additionals=list(additionals),
    )
    query_ecs = query.client_subnet
    if query_ecs is not None:
        response.with_client_subnet(
            query_ecs.for_response(
                scope_prefix_len if scope_prefix_len is not None else 0))
    else:
        response.opt = OptRecord()
    return response
