"""DNS protocol constants (RFC 1035, RFC 6891)."""

from __future__ import annotations

import enum


class QType(enum.IntEnum):
    """Resource record / query types used by the mapping system."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    TXT = 16
    AAAA = 28
    OPT = 41
    ANY = 255


class QClass(enum.IntEnum):
    """Record classes.  OPT records abuse this field for payload size."""

    IN = 1
    ANY = 255


class Opcode(enum.IntEnum):
    QUERY = 0
    STATUS = 2


class Rcode(enum.IntEnum):
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


#: EDNS0 option code for client-subnet (RFC 7871 Section 6).
EDNS_CLIENT_SUBNET = 8

#: Address family constants inside the ECS option (RFC 7871 / IANA).
ECS_FAMILY_IPV4 = 1
ECS_FAMILY_IPV6 = 2

#: Conventional maximum UDP payload advertised in OPT records.
DEFAULT_EDNS_PAYLOAD = 4096

#: Hard limits from RFC 1035.
MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
