"""Domain-name encoding and decoding with RFC 1035 compression.

Names are handled as canonical strings: lowercase, no trailing dot, the
root zone being the empty string.  The encoder compresses by pointing
at previously written name suffixes; the decoder follows pointers with
a jump budget so malicious or corrupt pointer loops terminate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dnsproto.types import MAX_LABEL_LENGTH, MAX_NAME_LENGTH
from repro.dnsproto.wire import WireFormatError, WireReader, WireWriter

#: Compression pointers are flagged by the two top bits of the length.
_POINTER_MASK = 0xC0
#: A name can never legitimately need more jumps than bytes/2.
_MAX_POINTER_JUMPS = 64


def normalize_name(name: str) -> str:
    """Canonicalize a domain name: lowercase, no trailing dot.

    DNS names are case-insensitive (RFC 1035 2.3.3), so everything in
    the resolver stack -- zone lookups, cache keys, query matching --
    uses this canonical form.

    Deliberately does NOT strip whitespace: labels may legally contain
    arbitrary bytes, and a name decoded off the wire must survive
    normalization byte-for-byte (fuzzing found that stripping a
    leading ``\\t`` label corrupts the round trip).
    """
    name = name.lower()
    if name.endswith("."):
        name = name[:-1]
    return name


def _labels(name: str) -> List[bytes]:
    name = normalize_name(name)
    if not name:
        return []
    labels = []
    for label in name.split("."):
        if not label:
            raise WireFormatError(f"empty label in name {name!r}")
        raw = label.encode("ascii", errors="strict")
        if len(raw) > MAX_LABEL_LENGTH:
            raise WireFormatError(
                f"label too long ({len(raw)} > {MAX_LABEL_LENGTH}): "
                f"{label!r}")
        labels.append(raw)
    return labels


def encode_name(
    writer: WireWriter,
    name: str,
    compress: Optional[Dict[str, int]] = None,
) -> None:
    """Write a domain name, optionally using/recording compression.

    ``compress`` maps canonical suffix strings to the message offset
    where that suffix was first written.  Pass the same dict for every
    name in a message to get cross-record compression; pass None to
    disable compression entirely.
    """
    try:
        labels = _labels(name)
    except UnicodeEncodeError as exc:
        raise WireFormatError(f"non-ASCII name {name!r}") from exc

    encoded_length = sum(len(label) + 1 for label in labels) + 1
    if encoded_length > MAX_NAME_LENGTH:
        raise WireFormatError(f"name too long: {name!r}")

    for index in range(len(labels)):
        suffix = b".".join(labels[index:]).decode("ascii")
        if compress is not None:
            target = compress.get(suffix)
            if target is not None and target <= 0x3FFF:
                writer.u16((_POINTER_MASK << 8) | target)
                return
            compress[suffix] = writer.offset
        label = labels[index]
        writer.u8(len(label))
        writer.write(label)
    writer.u8(0)


def decode_name(reader: WireReader) -> str:
    """Read a (possibly compressed) domain name from the message.

    The reader position ends just past the name in the *original*
    stream, regardless of any pointer jumps taken.
    """
    labels: List[str] = []
    jumps = 0
    return_pos: Optional[int] = None
    total_length = 1

    while True:
        pointer_start = reader.pos
        length = reader.u8()
        if length & _POINTER_MASK == _POINTER_MASK:
            # Two-byte compression pointer.
            low = reader.u8()
            target = ((length & ~_POINTER_MASK) << 8) | low
            jumps += 1
            if jumps > _MAX_POINTER_JUMPS:
                raise WireFormatError("compression pointer loop")
            if target >= pointer_start:
                # Pointers must reference strictly earlier offsets;
                # combined with the jump budget this kills loops.
                raise WireFormatError("forward compression pointer")
            if return_pos is None:
                return_pos = reader.pos
            reader.seek(target)
            continue
        if length & _POINTER_MASK:
            raise WireFormatError(f"reserved label type: {length:#x}")
        if length == 0:
            break
        total_length += length + 1
        if total_length > MAX_NAME_LENGTH:
            raise WireFormatError("decoded name too long")
        raw = reader.read(length)
        if b"." in raw:
            # A literal dot inside a label is legal on the wire but
            # inexpressible in our dotted-string canonical form (real
            # software escapes it as \046); reject rather than produce
            # a name that cannot round-trip.
            raise WireFormatError(f"dot inside label {raw!r}")
        try:
            labels.append(raw.decode("ascii").lower())
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"non-ASCII label {raw!r}") from exc

    if return_pos is not None:
        reader.seek(return_pos)
    return ".".join(labels)
