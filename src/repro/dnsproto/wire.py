"""Byte-level reader/writer for the DNS wire format."""

from __future__ import annotations


class WireFormatError(Exception):
    """Raised when a DNS message cannot be parsed or encoded.

    Servers translate this into a FORMERR response; it must never
    escape the resolver stack as a crash.
    """


class WireWriter:
    """Append-only big-endian byte writer with offset tracking.

    The current offset is exposed so the name encoder can record
    compression-pointer targets as it writes.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def offset(self) -> int:
        return len(self._buf)

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise WireFormatError(f"u8 out of range: {value}")
        self._buf.append(value)

    def u16(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise WireFormatError(f"u16 out of range: {value}")
        self._buf += value.to_bytes(2, "big")

    def u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise WireFormatError(f"u32 out of range: {value}")
        self._buf += value.to_bytes(4, "big")

    def write(self, data: bytes) -> None:
        self._buf += data

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a previously written u16 (RDLENGTH backfill)."""
        if not 0 <= value <= 0xFFFF:
            raise WireFormatError(f"u16 out of range: {value}")
        if offset + 2 > len(self._buf):
            raise WireFormatError("patch offset beyond buffer")
        self._buf[offset:offset + 2] = value.to_bytes(2, "big")

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class WireReader:
    """Bounds-checked big-endian byte reader with seekable position.

    Seeking is required by name-compression pointers, which jump to
    earlier offsets in the message.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def pos(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def seek(self, pos: int) -> None:
        if not 0 <= pos <= len(self._data):
            raise WireFormatError(f"seek out of bounds: {pos}")
        self._pos = pos

    def u8(self) -> int:
        if self.remaining < 1:
            raise WireFormatError("truncated message (u8)")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def u16(self) -> int:
        if self.remaining < 2:
            raise WireFormatError("truncated message (u16)")
        value = int.from_bytes(self._data[self._pos:self._pos + 2], "big")
        self._pos += 2
        return value

    def u32(self) -> int:
        if self.remaining < 4:
            raise WireFormatError("truncated message (u32)")
        value = int.from_bytes(self._data[self._pos:self._pos + 4], "big")
        self._pos += 4
        return value

    def read(self, length: int) -> bytes:
        if length < 0:
            raise WireFormatError(f"negative read: {length}")
        if self.remaining < length:
            raise WireFormatError("truncated message (read)")
        data = self._data[self._pos:self._pos + length]
        self._pos += length
        return data
