"""DNS wire protocol with the EDNS0 client-subnet extension.

A complete, self-contained implementation of the subset of the DNS
protocol the mapping system exercises (paper Section 2):

* RFC 1035 message framing: header, question, resource-record sections,
  domain-name compression (:mod:`repro.dnsproto.message`,
  :mod:`repro.dnsproto.name`).
* Resource records A, NS, CNAME, SOA, TXT plus opaque passthrough
  (:mod:`repro.dnsproto.rdata`).
* EDNS0 (RFC 6891) OPT pseudo-record and the client-subnet option
  (RFC 7871, the "EDNS0 client-subnet extension" the paper's end-user
  mapping is built on) in :mod:`repro.dnsproto.edns`.

Every message that crosses the simulated network is round-tripped
through this codec, so ECS scope semantics are enforced at the wire
level, not assumed.
"""

from repro.dnsproto.edns import (
    ClientSubnetOption,
    ClientSubnetV6Option,
    EdnsOptions,
    OptRecord,
)
from repro.dnsproto.message import (
    Flags,
    Message,
    Question,
    ResourceRecord,
    make_query,
    make_response,
)
from repro.dnsproto.name import decode_name, encode_name, normalize_name
from repro.dnsproto.rdata import (
    ARdata,
    CNAMERdata,
    NSRdata,
    OpaqueRdata,
    SOARdata,
    TXTRdata,
)
from repro.dnsproto.types import Opcode, QClass, QType, Rcode
from repro.dnsproto.wire import WireFormatError, WireReader, WireWriter

__all__ = [
    "ARdata",
    "CNAMERdata",
    "ClientSubnetOption",
    "ClientSubnetV6Option",
    "EdnsOptions",
    "Flags",
    "Message",
    "NSRdata",
    "Opcode",
    "OpaqueRdata",
    "OptRecord",
    "QClass",
    "QType",
    "Question",
    "Rcode",
    "ResourceRecord",
    "SOARdata",
    "TXTRdata",
    "WireFormatError",
    "WireReader",
    "WireWriter",
    "decode_name",
    "encode_name",
    "make_query",
    "make_response",
    "normalize_name",
]
