"""Windowed time-series storage over registry snapshots.

The paper's roll-out analysis (Section 4) is not a point-in-time
measurement: Akamai watched mapping distance, RTT, TTFB, and DNS query
rates move *day by day* as resolvers flipped to ECS between Mar 28 and
Apr 15, 2014.  :class:`TimeSeriesStore` is that view over the
simulator: one :class:`TimeSeries` per metric, appended once per
simulated day (or any monotone step), flattened from
:class:`~repro.obs.metrics.MetricsRegistry` snapshots plus any derived
per-step gauges a driver wants to record.

Registry counters and histograms are cumulative, so the store provides
the standard monitoring derivations to turn them into per-step views:

* :meth:`TimeSeries.delta` -- per-step differences (daily volumes from
  a cumulative counter),
* :meth:`TimeSeries.rate` -- delta divided by the step duration
  (queries per second from a per-day count),
* :meth:`TimeSeries.ewma` -- exponentially weighted moving average
  (the smoothing alerting rules evaluate against so single noisy days
  do not flap).

Exports are byte-stable: series sorted by name, floats rounded to
:data:`EXPORT_FLOAT_DECIMALS` plain Python floats, keys sorted -- the
same determinism contract as the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Decimal places for exported floats (matches ``repro.obs.tracing``).
EXPORT_FLOAT_DECIMALS = 6


def _round(value: float) -> float:
    return round(float(value), EXPORT_FLOAT_DECIMALS)


class TimeSeries:
    """One named metric sampled at monotonically increasing steps."""

    __slots__ = ("name", "help", "steps", "values")

    def __init__(self, name: str, help: str = "",
                 steps: Optional[Sequence[int]] = None,
                 values: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help = help
        self.steps: List[int] = list(steps or [])
        self.values: List[float] = [float(v) for v in (values or [])]
        if len(self.steps) != len(self.values):
            raise ValueError(f"series {name}: steps/values length mismatch")

    def __len__(self) -> int:
        return len(self.steps)

    def record(self, step: int, value: float) -> None:
        if self.steps and step <= self.steps[-1]:
            raise ValueError(
                f"series {self.name}: step {step} not after "
                f"{self.steps[-1]} (steps must be monotone)")
        if value != value:  # NaN poisons every derivation downstream
            raise ValueError(f"series {self.name}: NaN value at step {step}")
        self.steps.append(int(step))
        self.values.append(float(value))

    def last(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name}: empty")
        return self.values[-1]

    def value_at(self, step: int, default: float = 0.0) -> float:
        """Value recorded exactly at ``step`` (default if absent)."""
        try:
            return self.values[self.steps.index(step)]
        except ValueError:
            return default

    # -- derivations (each returns a new, derived-named series) ----------

    def delta(self) -> "TimeSeries":
        """Per-step differences; first point is the first raw value."""
        out = TimeSeries(f"{self.name}:delta", help=self.help)
        previous = 0.0
        for step, value in zip(self.steps, self.values):
            out.steps.append(step)
            out.values.append(value - previous)
            previous = value
        return out

    def rate(self, step_seconds: float) -> "TimeSeries":
        """Per-second rate of the per-step delta."""
        if step_seconds <= 0:
            raise ValueError("step_seconds must be positive")
        deltas = self.delta()
        out = TimeSeries(f"{self.name}:rate", help=self.help)
        out.steps = deltas.steps
        out.values = [value / step_seconds for value in deltas.values]
        return out

    def ewma(self, alpha: float = 0.3) -> "TimeSeries":
        """Exponentially weighted moving average (seeded at the first
        raw value, the standard bias-free initialisation)."""
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha out of (0, 1]: {alpha}")
        out = TimeSeries(f"{self.name}:ewma", help=self.help)
        smoothed: Optional[float] = None
        for step, value in zip(self.steps, self.values):
            smoothed = value if smoothed is None else (
                alpha * value + (1 - alpha) * smoothed)
            out.steps.append(step)
            out.values.append(smoothed)
        return out

    # -- window queries ---------------------------------------------------

    def window(self, lo: int, hi: int) -> List[float]:
        """Values with step in [lo, hi)."""
        return [value for step, value in zip(self.steps, self.values)
                if lo <= step < hi]

    def window_mean(self, lo: int, hi: int) -> float:
        values = self.window(lo, hi)
        return sum(values) / len(values) if values else 0.0

    def to_dict(self) -> Dict:
        return {
            "steps": list(self.steps),
            "values": [_round(value) for value in self.values],
        }


class TimeSeriesStore:
    """Named series, appended per step, flattened from snapshots."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> TimeSeries:
        try:
            return self._series[name]
        except KeyError:
            raise KeyError(f"unknown series {name!r}") from None

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def record(self, step: int, name: str, value: float,
               help: str = "") -> None:
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name, help)
            self._series[name] = series
        series.record(step, value)

    def capture(self, step: int, snapshot: Mapping) -> None:
        """Flatten one registry snapshot into per-metric series.

        Counters and gauges become one series each; histogram rows fan
        out into ``name.count`` / ``name.mean`` / ``name.p50`` ... --
        exactly the quantile columns the registry exports.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.record(step, name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.record(step, name, value)
        for name, row in snapshot.get("histograms", {}).items():
            for column, value in row.items():
                self.record(step, f"{name}.{column}", value)

    # -- derived access ---------------------------------------------------

    def delta(self, name: str) -> TimeSeries:
        return self.series(name).delta()

    def rate(self, name: str, step_seconds: float) -> TimeSeries:
        return self.series(name).rate(step_seconds)

    def ewma(self, name: str, alpha: float = 0.3) -> TimeSeries:
        return self.series(name).ewma(alpha)

    # -- export -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict]:
        return {name: self._series[name].to_dict()
                for name in sorted(self._series)}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def window_label_map(windows: Mapping[str, Tuple[int, int]]) -> Dict:
    """JSON-ready {label: [lo, hi)} echo of analysis windows."""
    return {label: [int(lo), int(hi)]
            for label, (lo, hi) in sorted(windows.items())}
