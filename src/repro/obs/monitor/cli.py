"""``python -m repro.obs.monitor`` -- monitored roll-out report.

Drives the seeded Section 4 roll-out scenario with a
:class:`~repro.obs.monitor.driver.RolloutMonitor` attached and emits
the deterministic ``{series, cohorts, alerts}`` report.

Usage::

    PYTHONPATH=src python -m repro.obs.monitor --seed 7 --format json
    PYTHONPATH=src python -m repro.obs.monitor --format text
    PYTHONPATH=src python -m repro.obs.monitor --sessions-per-day 40 \
        --out monitor_report.json

Two runs with the same arguments produce byte-identical output; the
golden-report suite (``tests/test_obs_monitor_cli.py``) pins the
discrete projection and regenerates with ``REGEN_GOLDEN=1``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional, Tuple

from repro.obs.monitor.driver import RolloutMonitor


def run_monitored_rollout(
    scale: str = "tiny",
    seed: int = 7,
    sessions_per_day: Optional[int] = None,
) -> Tuple["World", RolloutMonitor, "RolloutResult"]:
    """Build a world and run the scale's roll-out under a monitor."""
    from repro.experiments.scales import get_scale
    from repro.api import build_world, run_rollout

    spec = get_scale(scale)
    overrides = {"seed": seed}
    if sessions_per_day is not None:
        overrides["sessions_per_day"] = sessions_per_day
    config = dataclasses.replace(spec.rollout, **overrides)
    world = build_world(spec.world)
    monitor = RolloutMonitor.for_config(config)
    result = run_rollout(world, config, observer=monitor)
    return world, monitor, result


def render_text(report: dict) -> str:
    """Operator-facing summary of one monitor report."""
    lines: List[str] = []
    scenario = report["scenario"]
    lines.append(
        "rollout monitor  scale={scale} seed={seed} "
        "sessions_per_day={sessions_per_day} days={days}".format(
            days=report["days_observed"], **scenario))
    windows = report["windows"]
    lines.append("windows    " + "  ".join(
        f"{label}=[{lo},{hi})" for label, (lo, hi)
        in sorted(windows.items())))
    lines.append(f"series     {len(report['series'])} captured, "
                 f"{len(report['derived'])} derived")

    effects = report["cohorts"].get("effects_vs_before", {})
    after = effects.get("after", {})
    for cohort in sorted(after):
        for metric in sorted(after[cohort]):
            row = after[cohort][metric]
            ratio = row["ratio"]
            ratio_s = f"{ratio:.2f}x" if ratio is not None else "n/a"
            lines.append(
                f"effect     {cohort:<18} {metric:<24} "
                f"{row['baseline_mean']:10.1f} -> "
                f"{row['treatment_mean']:10.1f}  ({ratio_s}, "
                f"d={row['cohens_d']:.2f})")

    alerts = report["alerts"]
    lines.append(f"alerts     {len(alerts['log'])} events, "
                 f"{len(alerts['firing'])} firing at end")
    for event in alerts["log"]:
        lines.append(
            f"  day {event['step']:>3}  {event['kind']:<8} "
            f"{event['severity']:<8} {event['rule']:<28} "
            f"{event['detail']}")
    for name in alerts["firing"]:
        lines.append(f"  still firing: {name}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.scales import scale_names

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scale", default="tiny", choices=scale_names())
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--sessions-per-day", type=int, default=None,
                        help="override the scale's roll-out volume")
    parser.add_argument("--format", choices=("json", "text"),
                        default="json")
    parser.add_argument("--out", default=None,
                        help="write to this path instead of stdout")
    args = parser.parse_args(argv)
    if args.sessions_per_day is not None and args.sessions_per_day < 1:
        parser.error("need at least one session per day")

    print(f"running monitored roll-out (scale={args.scale}, "
          f"seed={args.seed})...", file=sys.stderr)
    world, monitor, result = run_monitored_rollout(
        scale=args.scale, seed=args.seed,
        sessions_per_day=args.sessions_per_day)
    scenario = {
        "scale": args.scale,
        "seed": args.seed,
        "sessions_per_day": result.config.sessions_per_day,
    }
    report = monitor.report(scenario)

    if args.format == "text":
        text = render_text(report)
    else:
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0
