from repro.obs.monitor.cli import main

if __name__ == "__main__":
    import sys as _sys

    print("note: 'python -m repro.obs.monitor' is deprecated; "
          "use 'python -m repro monitor'", file=_sys.stderr)
    raise SystemExit(main())
