"""Roll-out monitoring plane: time series, cohorts, alerts.

``repro.obs.monitor`` layers *change-over-time* observability on the
PR 2 metrics registry, reproducing the monitoring posture of the
paper's phased roll-out (Section 4): windowed per-day series
(:mod:`~repro.obs.monitor.series`), A/B cohort comparison with effect
sizes (:mod:`~repro.obs.monitor.cohorts`), declarative alerting with
hysteresis (:mod:`~repro.obs.monitor.alerts`), and the
:class:`~repro.obs.monitor.driver.RolloutMonitor` observer that wires
all three into :func:`repro.simulation.rollout.run_rollout`.

Run the seeded scenario from the command line::

    PYTHONPATH=src python -m repro.obs.monitor --seed 7 --format json
"""

from __future__ import annotations

from repro.obs.monitor.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    RegressionRule,
    StuckRule,
    ThresholdRule,
)
from repro.obs.monitor.cohorts import CohortComparator, Effect, WindowStats
from repro.obs.monitor.driver import (
    COHORT_METRICS,
    RolloutMonitor,
    default_rollout_rules,
    rollout_windows,
)
from repro.obs.monitor.series import TimeSeries, TimeSeriesStore

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "COHORT_METRICS",
    "CohortComparator",
    "Effect",
    "RegressionRule",
    "RolloutMonitor",
    "StuckRule",
    "ThresholdRule",
    "TimeSeries",
    "TimeSeriesStore",
    "WindowStats",
    "default_rollout_rules",
    "rollout_windows",
]
