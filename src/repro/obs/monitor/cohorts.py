"""A/B cohort comparison over per-step observations.

Section 4.1.1 splits clients into *high-* and *low-expectation* groups
(median client--public-LDNS distance above/below 1000 miles) and every
roll-out figure reads as an A/B comparison between those cohorts across
the before/during/after windows.  :class:`CohortComparator` is that
engine made explicit: cohorts are named streams of (step, metric,
value) observations; the comparator keeps per-step moment accumulators
(count / sum / sum of squares, never raw samples), so daily means,
window statistics, and effect sizes all come out of O(days) state no
matter how many sessions run.

Effect sizes per (metric, cohort) between two windows:

* ``ratio`` -- baseline mean over treatment mean, the paper's "~8x
  mapping-distance drop" number (Figure 13),
* ``cohens_d`` -- standardized mean difference with pooled standard
  deviation, so an alerting rule can distinguish a large-but-noisy
  shift from a genuine level change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class _Accumulator:
    """Running moments for one (cohort, metric, step) cell."""

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class WindowStats:
    """Aggregate statistics of one metric in one [lo, hi) window."""

    count: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        return self.variance ** 0.5


@dataclass(frozen=True)
class Effect:
    """Before/after effect of one metric within one cohort."""

    metric: str
    cohort: str
    baseline: WindowStats
    treatment: WindowStats
    ratio: float
    """baseline mean / treatment mean -- >1 means the metric dropped
    (the Figure 13 reading: an 8x mapping-distance drop is ratio ~8)."""
    cohens_d: float

    def to_dict(self) -> Dict:
        return {
            "baseline_mean": self.baseline.mean,
            "baseline_count": self.baseline.count,
            "treatment_mean": self.treatment.mean,
            "treatment_count": self.treatment.count,
            "ratio": self.ratio,
            "cohens_d": self.cohens_d,
        }


class CohortComparator:
    """Per-cohort, per-metric, per-step moment accumulators."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str, int], _Accumulator] = {}
        self._cohorts: set = set()
        self._metrics: set = set()

    def observe(self, step: int, cohort: str, metric: str,
                value: float) -> None:
        if value != value:  # NaN
            raise ValueError(
                f"cohort {cohort}/{metric}: NaN observation at {step}")
        key = (cohort, metric, int(step))
        cell = self._cells.get(key)
        if cell is None:
            cell = _Accumulator()
            self._cells[key] = cell
            self._cohorts.add(cohort)
            self._metrics.add(metric)
        cell.add(float(value))

    def cohorts(self) -> List[str]:
        return sorted(self._cohorts)

    def metrics(self) -> List[str]:
        return sorted(self._metrics)

    # -- aggregations -----------------------------------------------------

    def daily_mean(self, cohort: str, metric: str) -> List[Tuple[int, float]]:
        """(step, mean) series for one cohort metric."""
        out = []
        for (c, m, step), cell in self._cells.items():
            if c == cohort and m == metric:
                out.append((step, cell.mean))
        return sorted(out)

    def window_stats(self, cohort: str, metric: str,
                     lo: int, hi: int) -> WindowStats:
        """Pooled stats for all observations with step in [lo, hi)."""
        count = 0
        total = 0.0
        total_sq = 0.0
        for (c, m, step), cell in self._cells.items():
            if c == cohort and m == metric and lo <= step < hi:
                count += cell.count
                total += cell.total
                total_sq += cell.total_sq
        if not count:
            return WindowStats(count=0, mean=0.0, variance=0.0)
        mean = total / count
        variance = max(0.0, total_sq / count - mean * mean)
        return WindowStats(count=count, mean=mean, variance=variance)

    def effect(self, metric: str, cohort: str,
               baseline: Tuple[int, int],
               treatment: Tuple[int, int]) -> Effect:
        """Effect of moving from the baseline to the treatment window."""
        base = self.window_stats(cohort, metric, *baseline)
        treat = self.window_stats(cohort, metric, *treatment)
        if treat.mean > 0:
            ratio = base.mean / treat.mean
        else:
            ratio = float("inf") if base.mean > 0 else 1.0
        pooled_n = base.count + treat.count
        if pooled_n > 0:
            pooled_var = (base.count * base.variance
                          + treat.count * treat.variance) / pooled_n
        else:
            pooled_var = 0.0
        pooled_std = pooled_var ** 0.5
        if pooled_std > 0:
            cohens_d = (base.mean - treat.mean) / pooled_std
        else:
            cohens_d = 0.0
        return Effect(metric=metric, cohort=cohort, baseline=base,
                      treatment=treat, ratio=ratio, cohens_d=cohens_d)

    def compare(self, metric: str, cohort_a: str, cohort_b: str,
                window: Tuple[int, int]) -> Dict:
        """Side-by-side means of two cohorts inside one window."""
        a = self.window_stats(cohort_a, metric, *window)
        b = self.window_stats(cohort_b, metric, *window)
        return {
            "metric": metric,
            "window": [int(window[0]), int(window[1])],
            cohort_a: a.mean,
            f"{cohort_a}_count": a.count,
            cohort_b: b.mean,
            f"{cohort_b}_count": b.count,
        }

    # -- export -----------------------------------------------------------

    def to_dict(self, windows: Optional[Dict[str, Tuple[int, int]]] = None,
                round_to: int = 6) -> Dict:
        """JSON-ready daily means plus (optional) per-window effects.

        ``windows`` maps labels to [lo, hi) step ranges; when it holds
        a ``before`` entry, effects of every other window vs ``before``
        are exported per cohort and metric.
        """
        daily = {
            cohort: {
                metric: [[step, round(mean, round_to)]
                         for step, mean in self.daily_mean(cohort, metric)]
                for metric in self.metrics()
            }
            for cohort in self.cohorts()
        }
        doc: Dict = {"daily_mean": daily}
        if windows:
            doc["windows"] = {label: [int(lo), int(hi)]
                              for label, (lo, hi) in sorted(windows.items())}
            baseline = windows.get("before")
            if baseline is not None:
                effects: Dict = {}
                for label, window in sorted(windows.items()):
                    if label == "before":
                        continue
                    effects[label] = {
                        cohort: {
                            metric: _round_dict(self.effect(
                                metric, cohort, baseline, window).to_dict(),
                                round_to)
                            for metric in self.metrics()
                        }
                        for cohort in self.cohorts()
                    }
                doc["effects_vs_before"] = effects
        return doc


def _round_dict(row: Dict, round_to: int) -> Dict:
    """Round floats; non-finite values export as None (valid JSON)."""
    out = {}
    for key, value in row.items():
        if isinstance(value, float):
            if value != value or abs(value) == float("inf"):
                value = None
            else:
                value = round(value, round_to)
        out[key] = value
    return out
