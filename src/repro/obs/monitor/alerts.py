"""Declarative SLO/alert rules evaluated deterministically per step.

The production mapping system is "monitored as intensely as it
monitors the Internet" (paper Section 2.2); during the Section 4
roll-out, that monitoring is what turned daily cohort series into
*events* -- "the high-expectation group's mapping distance collapsed
on day N".  This module is that layer: a handful of declarative rule
kinds evaluated once per step against a
:class:`~repro.obs.monitor.series.TimeSeriesStore`, with hysteresis so
one noisy day neither fires nor clears an alert.

Rule kinds:

* :class:`ThresholdRule` -- value above/below a fixed bound.
* :class:`RegressionRule` -- value vs the mean of a fixed baseline
  window of the same series: ``drop`` rules fire when the value falls
  below ``baseline / factor`` (improvement *detection*, e.g. the
  Figure 13 ~8x mapping-distance drop), ``rise`` rules fire when it
  exceeds ``baseline * factor`` (regression guards, e.g. RTT creeping
  back up or the ECS query-rate surge of Figure 23).
* :class:`StuckRule` -- series unchanged for N steps (a dead pipeline
  masquerading as a healthy flat line).

Hysteresis: a rule must breach ``for_steps`` consecutive evaluations
to fire and then pass ``for_steps`` consecutive evaluations to
resolve.  Every transition appends an :class:`Alert` to the engine's
log, which is sorted by (step, rule name) by construction because
evaluation itself is deterministic and ordered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.monitor.series import TimeSeriesStore

#: Rule severities, mildest first (also the sort order in summaries).
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Alert:
    """One fire/resolve transition of one rule."""

    step: int
    rule: str
    series: str
    severity: str
    kind: str
    """``fired`` or ``resolved``."""
    value: float
    reference: float
    """The bound the value was compared against (threshold, scaled
    baseline mean, or the stuck run length)."""
    detail: str = ""

    def to_dict(self) -> Dict:
        return {
            "step": self.step,
            "rule": self.rule,
            "series": self.series,
            "severity": self.severity,
            "kind": self.kind,
            "value": round(self.value, 6),
            "reference": round(self.reference, 6),
            "detail": self.detail,
        }


class AlertRule:
    """Base rule: named check of one series with hysteresis."""

    def __init__(self, name: str, series: str, severity: str = "warning",
                 for_steps: int = 1) -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        if for_steps < 1:
            raise ValueError("for_steps must be >= 1")
        self.name = name
        self.series = series
        self.severity = severity
        self.for_steps = for_steps

    def check(self, step: int,
              store: TimeSeriesStore) -> Optional[Tuple[bool, float, float, str]]:
        """(breached, value, reference, detail), or None when the rule
        cannot be evaluated yet (series missing / baseline incomplete)."""
        raise NotImplementedError

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "series": self.series,
            "severity": self.severity,
            "for_steps": self.for_steps,
            "kind": type(self).__name__,
        }


class ThresholdRule(AlertRule):
    """Fire while the latest value is beyond a fixed bound."""

    def __init__(self, name: str, series: str, op: str, threshold: float,
                 severity: str = "warning", for_steps: int = 1) -> None:
        super().__init__(name, series, severity, for_steps)
        if op not in ("gt", "lt"):
            raise ValueError(f"op must be 'gt' or 'lt', got {op!r}")
        self.op = op
        self.threshold = float(threshold)

    def check(self, step, store):
        series = store.get(self.series)
        if series is None or not len(series):
            return None
        value = series.value_at(step, default=series.last())
        breached = (value > self.threshold if self.op == "gt"
                    else value < self.threshold)
        word = "above" if self.op == "gt" else "below"
        return (breached, value, self.threshold,
                f"{self.series}={value:.3f} {word} {self.threshold:g}")

    def describe(self):
        doc = super().describe()
        doc.update(op=self.op, threshold=self.threshold)
        return doc


class RegressionRule(AlertRule):
    """Fire when the value moves ``factor``-fold vs a baseline window.

    ``direction='drop'`` detects improvements (value below baseline
    mean / factor); ``direction='rise'`` detects regressions (value
    above baseline mean * factor).  The baseline window is a fixed
    [lo, hi) step range; the rule stays silent until the current step
    is past the window, so the baseline never includes treated days.
    """

    def __init__(self, name: str, series: str,
                 baseline_window: Tuple[int, int], factor: float,
                 direction: str = "rise", severity: str = "warning",
                 for_steps: int = 1) -> None:
        super().__init__(name, series, severity, for_steps)
        if direction not in ("drop", "rise"):
            raise ValueError(f"direction must be drop/rise: {direction!r}")
        if factor <= 1.0:
            raise ValueError("factor must exceed 1")
        lo, hi = baseline_window
        if hi <= lo:
            raise ValueError("empty baseline window")
        self.baseline_window = (int(lo), int(hi))
        self.factor = float(factor)
        self.direction = direction

    def check(self, step, store):
        lo, hi = self.baseline_window
        if step < hi:  # baseline still accumulating
            return None
        series = store.get(self.series)
        if series is None or not len(series):
            return None
        baseline = series.window_mean(lo, hi)
        value = series.value_at(step, default=series.last())
        if self.direction == "drop":
            reference = baseline / self.factor
            breached = value < reference
            verb = "dropped"
        else:
            reference = baseline * self.factor
            breached = value > reference
            verb = "rose"
        return (breached, value, reference,
                f"{self.series}={value:.3f} {verb} vs baseline "
                f"{baseline:.3f} (x{self.factor:g} bound {reference:.3f})")

    def describe(self):
        doc = super().describe()
        doc.update(baseline_window=list(self.baseline_window),
                   factor=self.factor, direction=self.direction)
        return doc


class StuckRule(AlertRule):
    """Fire when the series has not changed for ``min_steps`` steps."""

    def __init__(self, name: str, series: str, min_steps: int = 3,
                 severity: str = "critical", for_steps: int = 1) -> None:
        super().__init__(name, series, severity, for_steps)
        if min_steps < 2:
            raise ValueError("min_steps must be >= 2")
        self.min_steps = min_steps

    def check(self, step, store):
        series = store.get(self.series)
        if series is None or len(series) < self.min_steps:
            return None
        tail = series.values[-self.min_steps:]
        breached = all(value == tail[0] for value in tail)
        return (breached, tail[-1], float(self.min_steps),
                f"{self.series} unchanged for last {self.min_steps} steps"
                if breached else
                f"{self.series} still moving")

    def describe(self):
        doc = super().describe()
        doc.update(min_steps=self.min_steps)
        return doc


@dataclass
class _RuleState:
    breach_streak: int = 0
    ok_streak: int = 0
    firing: bool = False


class AlertEngine:
    """Evaluates a fixed rule set once per step; keeps the event log."""

    def __init__(self, rules: List[AlertRule]) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate rule names")
        #: Rules sorted by name so per-step evaluation order (and hence
        #: the log) is independent of construction order.
        self.rules = sorted(rules, key=lambda rule: rule.name)
        self._state: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules}
        self.log: List[Alert] = []

    def evaluate(self, step: int, store: TimeSeriesStore) -> List[Alert]:
        """Run every rule at this step; return newly logged alerts."""
        emitted: List[Alert] = []
        for rule in self.rules:
            outcome = rule.check(step, store)
            if outcome is None:
                continue
            breached, value, reference, detail = outcome
            state = self._state[rule.name]
            if breached:
                state.breach_streak += 1
                state.ok_streak = 0
                if (not state.firing
                        and state.breach_streak >= rule.for_steps):
                    state.firing = True
                    emitted.append(Alert(
                        step=step, rule=rule.name, series=rule.series,
                        severity=rule.severity, kind="fired",
                        value=value, reference=reference, detail=detail))
            else:
                state.ok_streak += 1
                state.breach_streak = 0
                if state.firing and state.ok_streak >= rule.for_steps:
                    state.firing = False
                    emitted.append(Alert(
                        step=step, rule=rule.name, series=rule.series,
                        severity=rule.severity, kind="resolved",
                        value=value, reference=reference, detail=detail))
        self.log.extend(emitted)
        return emitted

    def firing(self) -> List[str]:
        """Names of rules currently firing, sorted."""
        return sorted(name for name, state in self._state.items()
                      if state.firing)

    def to_dict(self) -> Dict:
        return {
            "rules": [rule.describe() for rule in self.rules],
            "log": [alert.to_dict() for alert in self.log],
            "firing": self.firing(),
        }
