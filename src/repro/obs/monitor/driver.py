"""Roll-out monitor: observes ``run_rollout`` day by day.

:class:`RolloutMonitor` is the object you hand to
:func:`repro.simulation.rollout.run_rollout` as ``observer``; once per
simulated day it

1. ingests the day's RUM beacons into a
   :class:`~repro.obs.monitor.cohorts.CohortComparator` (the paper's
   high/low-expectation split over public-resolver clients, plus an
   ECS-on vs control split),
2. captures the world's :class:`~repro.obs.metrics.MetricsRegistry`
   snapshot into a :class:`~repro.obs.monitor.series.TimeSeriesStore`
   together with derived per-day gauges (authoritative DNS q/s from
   the query log, edge/LDNS cache hit rates, per-cohort daily means),
3. evaluates the :class:`~repro.obs.monitor.alerts.AlertEngine`.

The default rule set (:func:`default_rollout_rules`) encodes the
Section 4 narrative as detections: ``mapping_distance_drop`` fires
when the high-expectation cohort's mapping distance collapses versus
its pre-roll-out baseline (the Figure 13 ~8x event),
``dns_qps_surge`` fires when public-resolver query rates inflate
(Figure 23), and regression guards (``ttfb_regression``,
``sessions_flatline``) stay silent unless the roll-out actually hurts.

This module deliberately imports nothing from ``repro.simulation`` --
the config and result arguments are duck-typed -- so ``repro.obs``
stays import-cycle-free under ``repro.simulation.world``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.monitor.alerts import (
    AlertEngine,
    AlertRule,
    RegressionRule,
    StuckRule,
    ThresholdRule,
)
from repro.obs.monitor.cohorts import CohortComparator
from repro.obs.monitor.series import TimeSeriesStore

SCHEMA = "monitor/v1"

#: RUM metrics tracked per cohort (a subset of repro.measurement.rum.METRICS).
COHORT_METRICS: Tuple[str, ...] = (
    "mapping_distance_miles", "rtt_ms", "ttfb_ms", "dns_ms")

#: Smoothing factor for the EWMA series exported alongside raw series.
EWMA_ALPHA = 0.3


def rollout_windows(config) -> Dict[str, Tuple[int, int]]:
    """The before/during/after day windows of a roll-out config.

    ``config`` is duck-typed on :class:`repro.simulation.rollout.
    RolloutConfig`: ``day_index``, ``rollout_start``, ``rollout_end``,
    ``n_days``.
    """
    start = config.day_index(config.rollout_start)
    end = config.day_index(config.rollout_end)
    return {
        "before": (0, start),
        "during": (start, end + 1),
        "after": (end + 1, config.n_days),
    }


def default_rollout_rules(
        windows: Dict[str, Tuple[int, int]]) -> List[AlertRule]:
    """The Section 4 monitoring rule set against a window layout.

    Cohort rules evaluate the ``:ewma``-smoothed mirrors the monitor
    maintains, so one noisy low-volume day neither fires nor clears an
    event; hysteresis (``for_steps=2``) guards the remainder.
    """
    before = windows["before"]
    high = "cohort.high_expectation"
    return [
        # The Figure 13 event: high-expectation mapping distance
        # collapses several-fold once resolvers flip to ECS.
        RegressionRule(
            "mapping_distance_drop",
            f"{high}.mapping_distance_miles:ewma",
            baseline_window=before, factor=3.0, direction="drop",
            severity="info", for_steps=2),
        RegressionRule(
            "mapping_distance_drop_low",
            "cohort.low_expectation.mapping_distance_miles:ewma",
            baseline_window=before, factor=3.0, direction="drop",
            severity="info", for_steps=2),
        # Figures 15/17: RTT roughly halves for the high group.
        RegressionRule(
            "rtt_improvement", f"{high}.rtt_ms:ewma",
            baseline_window=before, factor=1.5, direction="drop",
            severity="info", for_steps=2),
        # Figure 23: ECS inflates public-resolver query rates.
        RegressionRule(
            "dns_qps_surge", "dns.qps_public",
            baseline_window=before, factor=2.0, direction="rise",
            severity="warning", for_steps=2),
        # Guards: these should stay silent in a healthy roll-out.
        RegressionRule(
            "ttfb_regression", f"{high}.ttfb_ms:ewma",
            baseline_window=before, factor=1.5, direction="rise",
            severity="critical", for_steps=2),
        StuckRule(
            "sessions_flatline", "sessions.completed", min_steps=3,
            severity="critical"),
        ThresholdRule(
            "edge_cache_hit_rate_low", "edge.cache.hit_rate",
            op="lt", threshold=0.05, severity="warning", for_steps=3),
        # Fault plane: silent in a healthy run, fire during injected
        # outages and resolve on recovery (the acceptance property of
        # the fault-injection suite).
        ThresholdRule(
            "auth_timeout_spike", "dns.timeout_failovers",
            op="gt", threshold=0.0, severity="warning", for_steps=2),
        ThresholdRule(
            "dns_servfail", "dns.servfails",
            op="gt", threshold=0.0, severity="critical", for_steps=2),
        ThresholdRule(
            "mapping_degraded", "mapping.degraded_share",
            op="gt", threshold=0.0, severity="warning", for_steps=2),
        ThresholdRule(
            "availability_low", "availability",
            op="lt", threshold=0.99, severity="critical", for_steps=2),
    ]


#: Degradation-ladder tiers mirrored as per-day share series (kept in
#: sync with :data:`repro.core.mapmaker.service.TIERS`; duplicated here
#: so ``repro.obs`` stays import-free of ``repro.core``).
CONTROL_PLANE_TIERS: Tuple[str, ...] = (
    "fresh_eu", "stale_eu", "ns", "ns_fallback", "static_geo")

#: Extra tiers a unit-scheme world answers at (kept in sync with
#: :data:`repro.core.mapmaker.service.UNIT_TIERS`); only mirrored when
#: the world exports the ``units.total`` gauge, so legacy
#: control-plane reports stay byte-identical.
UNIT_SCHEME_TIERS: Tuple[str, ...] = ("fresh_ru", "stale_ru")


def control_plane_rules(config) -> List[AlertRule]:
    """Alert rules for a world running the split control plane.

    ``config`` is duck-typed on :class:`repro.core.mapmaker.service.
    MapMakerConfig` (``fresh_age_days``).  ``map_stale`` fires while
    the published map is older than its fresh bound -- the signature of
    a dead/hung/slow/corrupting pipeline -- and resolves when a
    publication lands.  ``mapmaker_failover`` fires the day the
    watchdog promotes the standby.
    """
    return [
        ThresholdRule(
            "map_stale", "mapmaker.map_age_days",
            op="gt", threshold=float(config.fresh_age_days),
            severity="warning", for_steps=2),
        ThresholdRule(
            "mapmaker_failover", "mapmaker.failovers_today",
            op="gt", threshold=0.0, severity="critical", for_steps=1),
    ]


def resolver_plane_rules() -> List[AlertRule]:
    """Alert rules for a world running the anycast PoP resolver plane.

    ``resolver_pop_outage`` fires while any provider PoP's anycast
    route is withdrawn and resolves on restoration;
    ``resolver_anycast_flap`` mirrors route instability; and
    ``resolver_catchment_shift`` fires while any completed session was
    delivered to a PoP other than its build-time catchment -- the
    graceful-degradation ladder's observable signature.
    """
    return [
        ThresholdRule(
            "resolver_pop_outage", "resolver.pops_down",
            op="gt", threshold=0.0, severity="warning", for_steps=1),
        ThresholdRule(
            "resolver_anycast_flap", "resolver.providers_flapping",
            op="gt", threshold=0.0, severity="warning", for_steps=1),
        ThresholdRule(
            "resolver_catchment_shift", "mapping.catchment_shift_share",
            op="gt", threshold=0.0, severity="info", for_steps=1),
    ]


class RolloutMonitor:
    """Day-by-day monitoring plane over one roll-out run."""

    def __init__(self, windows: Dict[str, Tuple[int, int]],
                 day_seconds: float = 86400.0,
                 cohort_metrics: Tuple[str, ...] = COHORT_METRICS,
                 rules: Optional[List[AlertRule]] = None) -> None:
        self.windows = dict(windows)
        self.day_seconds = day_seconds
        self.cohort_metrics = tuple(cohort_metrics)
        self.store = TimeSeriesStore()
        self.cohorts = CohortComparator()
        self.engine = AlertEngine(
            default_rollout_rules(self.windows) if rules is None
            else rules)
        self._seen_beacons = 0
        self._ewma: Dict[str, float] = {}
        self._prev_gauges: Dict[str, float] = {}
        self.days_observed = 0

    @classmethod
    def for_config(cls, config, **kwargs) -> "RolloutMonitor":
        """Build with windows/rules derived from a RolloutConfig."""
        return cls(rollout_windows(config),
                   day_seconds=getattr(config, "day_seconds", 86400.0),
                   **kwargs)

    # -- the observer protocol run_rollout drives ------------------------

    def on_day(self, day: int, world, result) -> None:
        """Called by ``run_rollout`` after each simulated day."""
        self._ingest_beacons(day, result)
        snapshot = world.obs.registry.snapshot()
        self.store.capture(day, snapshot)
        self._derive_gauges(day, snapshot, result)
        self._cohort_series(day)
        self.engine.evaluate(day, self.store)
        self.days_observed += 1

    def _ingest_beacons(self, day: int, result) -> None:
        beacons = result.rum.beacons
        for beacon in beacons[self._seen_beacons:]:
            # The paper's expectation split is defined over clients of
            # public resolvers (Section 4.1.1).
            if beacon.via_public_resolver:
                cohort = ("high_expectation" if beacon.high_expectation
                          else "low_expectation")
                self._observe_cohort(beacon, cohort)
            # ECS-on vs control: did this session's resolution actually
            # carry a client subnet end to end?
            self._observe_cohort(
                beacon, "ecs_on" if beacon.ecs_used else "control")
        self._seen_beacons = len(beacons)

    def _observe_cohort(self, beacon, cohort: str) -> None:
        for metric in self.cohort_metrics:
            self.cohorts.observe(beacon.day, cohort, metric,
                                 beacon.metric(metric))

    def _derive_gauges(self, day: int, snapshot: Dict, result) -> None:
        """Per-day gauges not directly in the registry snapshot."""
        log = result.query_log
        self.store.record(day, "dns.qps", log.bucket_rate(day),
                          help="authoritative queries/s this day")
        self.store.record(day, "dns.qps_public",
                          log.bucket_rate(day, public_only=True),
                          help="...from public resolvers")
        self.store.record(day, "dns.ecs_share", log.ecs_share(),
                          help="cumulative ECS share of auth queries")
        gauges = snapshot.get("gauges", {})
        self.store.record(
            day, "edge.cache.hit_rate",
            _ratio(gauges.get("edge.cache.hits", 0.0),
                   gauges.get("edge.cache.requests", 0.0)),
            help="cumulative edge-cache hit rate")
        self.store.record(
            day, "ldns.cache.hit_rate",
            _ratio(gauges.get("ldns.cache.hits", 0.0),
                   gauges.get("ldns.cache.lookups", 0.0)),
            help="cumulative LDNS-cache hit rate")

        # Fault/degradation plane.  The resolver fault counters are
        # cumulative gauges, so mirror their per-day deltas -- the
        # quantity the outage alert rules threshold on.
        for series, gauge, blurb in (
                ("dns.timeout_failovers", "ldns.timeout_failovers",
                 "authority UDP-timeout failovers today"),
                ("dns.servfails", "ldns.servfails",
                 "SERVFAIL answers handed to clients today"),
                ("dns.stale_served", "ldns.stale_served",
                 "serve-stale answers handed to clients today"),
                ("dns.retry_penalty_ms", "ldns.retry_penalty_ms",
                 "retry-timer backoff penalty ms charged today")):
            value = gauges.get(gauge, 0.0)
            self.store.record(day, series,
                              value - self._prev_gauges.get(gauge, 0.0),
                              help=blurb)
            self._prev_gauges[gauge] = value
        self._control_plane_series(day, snapshot, gauges)
        self._resolver_plane_series(day, snapshot, gauges, result)
        sessions = result.sessions_per_day.get(day, 0)
        failed = getattr(result, "failed_sessions_per_day",
                         {}).get(day, 0)
        degraded = getattr(result, "degraded_sessions_per_day",
                           {}).get(day, 0)
        completed = sessions - failed
        self.store.record(
            day, "availability",
            _ratio(completed, sessions) if sessions else 1.0,
            help="share of sessions that completed today")
        self.store.record(
            day, "mapping.degraded_share",
            _ratio(degraded, completed),
            help="share of completed sessions that degraded today")

    def _control_plane_series(self, day: int, snapshot: Dict,
                              gauges: Dict) -> None:
        """Derived map-publication series, for control-plane worlds.

        Presence of the ``mapmaker.map_version`` gauge is the opt-in
        signal; legacy worlds export none of these (so their reports
        stay byte-identical).  The raw ``mapmaker.map_age_days`` gauge
        is already captured as a series by the snapshot; derived here
        are the per-day failover count and the share of today's
        mapping decisions answered by each degradation-ladder tier.
        """
        if "mapmaker.map_version" not in gauges:
            return
        failovers = gauges.get("mapmaker.failovers", 0.0)
        self.store.record(
            day, "mapmaker.failovers_today",
            failovers - self._prev_gauges.get("mapmaker.failovers", 0.0),
            help="watchdog-driven standby promotions today")
        self._prev_gauges["mapmaker.failovers"] = failovers
        counters = snapshot.get("counters", {})
        tiers = CONTROL_PLANE_TIERS
        if "units.total" in gauges:
            tiers = tiers + UNIT_SCHEME_TIERS
        deltas = {}
        for tier in tiers:
            counter = f"mapping.tier.{tier}"
            value = counters.get(counter, 0.0)
            deltas[tier] = value - self._prev_gauges.get(counter, 0.0)
            self._prev_gauges[counter] = value
        total = sum(deltas.values())
        for tier in tiers:
            self.store.record(
                day, f"mapping.tier_share.{tier}",
                _ratio(deltas[tier], total),
                help=f"share of today's decisions answered at "
                     f"the {tier} tier")

    def _resolver_plane_series(self, day: int, snapshot: Dict,
                               gauges: Dict, result) -> None:
        """Derived resolver-plane series, for PoP-fleet worlds.

        Presence of the ``resolver.pops_total`` gauge is the opt-in
        signal (mirroring the control plane's gate on
        ``mapmaker.map_version``); legacy worlds export none of these,
        so their reports stay byte-identical.  The raw fleet-health
        gauges are already captured by the snapshot; derived here are
        the catchment-shift share of today's completed sessions and
        the per-day deltas of the graceful-degradation counters.
        """
        if "resolver.pops_total" not in gauges:
            return
        sessions = result.sessions_per_day.get(day, 0)
        failed = getattr(result, "failed_sessions_per_day",
                         {}).get(day, 0)
        shifted = getattr(result, "catchment_shifted_per_day",
                          {}).get(day, 0)
        self.store.record(
            day, "mapping.catchment_shift_share",
            _ratio(shifted, sessions - failed),
            help="share of today's completed sessions anycast "
                 "delivered off their build-time catchment")
        counters = snapshot.get("counters", {})
        for series, counter, blurb in (
                ("resolver.pop_failovers_today",
                 "resolver.pop_failovers",
                 "sessions re-homed to a surviving PoP today"),
                ("resolver.cold_cache_misses_today",
                 "resolver.cold_cache_misses",
                 "re-homed sessions that also missed the LDNS cache "
                 "today")):
            value = counters.get(counter, 0.0)
            self.store.record(day, series,
                              value - self._prev_gauges.get(counter, 0.0),
                              help=blurb)
            self._prev_gauges[counter] = value

    def _cohort_series(self, day: int) -> None:
        """Mirror today's cohort means into the store, raw plus an
        incrementally maintained ``:ewma`` smoothing (alert input)."""
        for cohort in self.cohorts.cohorts():
            for metric in self.cohort_metrics:
                stats = self.cohorts.window_stats(
                    cohort, metric, day, day + 1)
                if not stats.count:
                    continue
                name = f"cohort.{cohort}.{metric}"
                self.store.record(day, name, stats.mean)
                previous = self._ewma.get(name)
                smoothed = stats.mean if previous is None else (
                    EWMA_ALPHA * stats.mean
                    + (1 - EWMA_ALPHA) * previous)
                self._ewma[name] = smoothed
                self.store.record(day, f"{name}:ewma", smoothed)

    # -- report -----------------------------------------------------------

    def derived_series(self) -> Dict[str, Dict]:
        """Delta/rate views of the headline cumulative series (the
        ``:ewma`` smoothings live in the store itself, since alert
        rules evaluate them step by step)."""
        out: Dict[str, Dict] = {}
        for name in ("rollout.sessions", "rollout.requests"):
            series = self.store.get(name)
            if series is not None:
                delta = series.delta()
                out[delta.name] = delta.to_dict()
        total = self.store.get("querylog.queries")
        if total is not None:
            rate = total.rate(self.day_seconds)
            out[rate.name] = rate.to_dict()
        return out

    def report(self, scenario: Optional[Dict] = None) -> Dict:
        """The deterministic ``{series, cohorts, alerts}`` document."""
        return {
            "schema": SCHEMA,
            "scenario": dict(scenario or {}),
            "days_observed": self.days_observed,
            "windows": {label: [int(lo), int(hi)]
                        for label, (lo, hi) in sorted(self.windows.items())},
            "series": self.store.to_dict(),
            "derived": self.derived_series(),
            "cohorts": self.cohorts.to_dict(self.windows),
            "alerts": self.engine.to_dict(),
        }


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0
