"""Metrics registry: counters, gauges, and weighted histograms.

The production mapping system is monitored as intensely as it monitors
the Internet (paper Section 2.2); its evaluation (Sections 4-5) is all
demand-weighted distributions over per-query observations.  This module
is the simulator's equivalent of that monitoring plane: a
zero-dependency (stdlib + the numpy already underpinning the kernels)
:class:`MetricsRegistry` holding three instrument kinds:

* :class:`Counter` -- monotonically increasing event counts.
* :class:`Gauge` -- point-in-time values (utilization, cache sizes).
* :class:`Histogram` -- weighted samples exported as demand-weighted
  quantiles through the canonical
  :func:`repro.analysis.stats.weighted_quantiles` implementation, so a
  histogram snapshot and a figure built from the same samples agree
  bit-for-bit.

Two usage styles coexist:

* **Direct instruments** for event-driven paths (sessions, benches):
  ``registry.counter("sessions").inc()``.
* **Collectors** for component-internal state: a collector is a
  callable run at snapshot time that writes gauges into the registry,
  so hot paths keep their cheap local ints and the registry reads them
  only when someone looks (the pattern ``repro.obs.collect`` wires for
  a whole :class:`~repro.simulation.world.World`).

Snapshots are deterministic: instruments are exported sorted by name
and all floats are plain Python floats, so two identical runs produce
byte-identical JSON.

Registries also *merge* (:meth:`MetricsRegistry.merge`): the sharded
simulation engine (``repro.parallel``) runs one registry per worker
process and folds them back together.  Counters and gauges carry a
``merge`` mode -- ``"sum"`` (the default: shard-local activity adds
up) or ``"max"`` (state replicated identically in every closed
sub-world, e.g. the control plane's map version, where summing would
multiply-count).  Histograms merge exactly via their moment
accumulators (count / weighted total / weight) while the retained
samples concatenate in merge order and re-compact deterministically,
so merging shard registries in a fixed shard order yields
byte-identical snapshots regardless of how many processes ran.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import weighted_quantiles

#: Quantiles every histogram snapshot exports (the paper's box-plot
#: five, footnote 6).
EXPORT_QUANTILES: Tuple[float, ...] = (0.05, 0.25, 0.50, 0.75, 0.95)

#: Valid scalar merge modes (see module docstring).
MERGE_MODES: Tuple[str, ...] = ("sum", "max")


def _check_merge_mode(name: str, merge: str) -> str:
    if merge not in MERGE_MODES:
        raise ValueError(
            f"metric {name!r}: unknown merge mode {merge!r} "
            f"(choose from {MERGE_MODES})")
    return merge


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "help", "value", "merge")

    def __init__(self, name: str, help: str = "",
                 merge: str = "sum") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.merge = _check_merge_mode(name, merge)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """Point-in-time value; freely settable."""

    __slots__ = ("name", "help", "value", "merge")

    def __init__(self, name: str, help: str = "",
                 merge: str = "sum") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.merge = _check_merge_mode(name, merge)

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Weighted sample accumulator with quantile export.

    Samples are held exactly up to ``max_samples``; beyond that the
    sample is compacted by merging adjacent (sorted) pairs into their
    weighted midpoint, halving the footprint while preserving the
    weighted quantiles to within one merged pair.  Compaction is
    deterministic, so identical runs export identical snapshots.
    """

    __slots__ = ("name", "help", "max_samples", "count", "total",
                 "weight_total", "_values", "_weights")

    def __init__(self, name: str, help: str = "",
                 max_samples: int = 65536) -> None:
        if max_samples < 2:
            raise ValueError("histogram needs max_samples >= 2")
        self.name = name
        self.help = help
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.weight_total = 0.0
        self._values: List[float] = []
        self._weights: List[float] = []

    def observe(self, value: float, weight: float = 1.0) -> None:
        # Bad samples would silently poison every quantile export
        # downstream (NaN sorts unpredictably, inf swallows the mean),
        # so they are rejected at the door.
        if not math.isfinite(weight):
            raise ValueError(
                f"histogram {self.name}: non-finite weight (NaN/inf)")
        if weight < 0:
            raise ValueError(f"histogram {self.name}: negative weight")
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name}: non-finite observation "
                "(NaN/inf)")
        self.count += 1
        self.total += value * weight
        self.weight_total += weight
        self._values.append(float(value))
        self._weights.append(float(weight))
        if len(self._values) > self.max_samples:
            self._compact()

    def _compact(self) -> None:
        paired = sorted(zip(self._values, self._weights))
        values: List[float] = []
        weights: List[float] = []
        for index in range(0, len(paired) - 1, 2):
            (v1, w1), (v2, w2) = paired[index], paired[index + 1]
            w = w1 + w2
            values.append((v1 * w1 + v2 * w2) / w if w else (v1 + v2) / 2)
            weights.append(w)
        if len(paired) % 2:
            values.append(paired[-1][0])
            weights.append(paired[-1][1])
        self._values = values
        self._weights = weights

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        The moment accumulators (count, weighted total, total weight)
        add exactly; the retained samples concatenate in call order and
        re-compact through the same deterministic pairwise scheme
        :meth:`observe` uses, so merging a fixed sequence of histograms
        always yields the same state.  A corrupted source -- non-finite
        moments, which :meth:`observe` can never produce -- is rejected
        rather than silently poisoning every downstream quantile.
        """
        if (not math.isfinite(other.total)
                or not math.isfinite(other.weight_total)):
            raise ValueError(
                f"histogram {self.name}: refusing to merge non-finite "
                f"accumulators from {other.name!r} (NaN/inf)")
        if other.weight_total < 0:
            raise ValueError(
                f"histogram {self.name}: refusing to merge negative "
                f"weight from {other.name!r}")
        for value, weight in zip(other._values, other._weights):
            if not (math.isfinite(value) and math.isfinite(weight)):
                raise ValueError(
                    f"histogram {self.name}: non-finite sample in "
                    f"{other.name!r} (NaN/inf)")
        self.count += other.count
        self.total += other.total
        self.weight_total += other.weight_total
        self._values.extend(other._values)
        self._weights.extend(other._weights)
        while len(self._values) > self.max_samples:
            self._compact()

    def quantiles(
        self, qs: Sequence[float] = EXPORT_QUANTILES
    ) -> List[float]:
        """Demand-weighted quantiles over the retained sample."""
        if not self._values or self.weight_total <= 0:
            return [0.0 for _ in qs]
        return weighted_quantiles(self._values, self._weights, qs)

    @property
    def mean(self) -> float:
        return self.total / self.weight_total if self.weight_total else 0.0

    def snapshot(self) -> Dict[str, float]:
        row = {
            "count": self.count,
            "weight": self.weight_total,
            "mean": self.mean,
        }
        for q, value in zip(EXPORT_QUANTILES, self.quantiles()):
            row[f"p{int(round(q * 100))}"] = value
        return row


class MetricsRegistry:
    """Named instruments plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument access (get-or-create) ------------------------------

    def counter(self, name: str, help: str = "",
                merge: Optional[str] = None) -> Counter:
        self._check_free(name, self._counters)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name, help, merge=merge or "sum")
            self._counters[name] = instrument
        elif merge is not None:
            instrument.merge = _check_merge_mode(name, merge)
        return instrument

    def gauge(self, name: str, help: str = "",
              merge: Optional[str] = None) -> Gauge:
        self._check_free(name, self._gauges)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name, help, merge=merge or "sum")
            self._gauges[name] = instrument
        elif merge is not None:
            instrument.merge = _check_merge_mode(name, merge)
        return instrument

    def histogram(self, name: str, help: str = "",
                  max_samples: int = 65536) -> Histogram:
        self._check_free(name, self._histograms)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(name, help, max_samples=max_samples)
            self._histograms[name] = instrument
        return instrument

    def _check_free(self, name: str, own: Dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"different instrument kind")

    # -- collectors ------------------------------------------------------

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Add a callable run at every snapshot to refresh gauges."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    # -- merge / clone / pickling ----------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one.

        Counters and gauges combine per their ``merge`` mode (``sum``
        for shard-local activity, ``max`` for state replicated in every
        shard); histograms merge exactly through their moment
        accumulators.  Instruments missing on either side behave as the
        zero instrument -- merging an empty registry is the identity,
        and merging into an empty registry copies ``other``.  The mode
        travels with the source instrument, so a freshly created merge
        target needs no up-front declarations.  Collectors are *not*
        transferred: a merged registry is a passive aggregate, not a
        live view of any world.  Returns ``self`` for chaining.
        """
        for name in sorted(other._counters):
            source = other._counters[name]
            target = self.counter(name, source.help, merge=source.merge)
            if source.merge == "max":
                target.value = max(target.value, source.value)
            else:
                target.value += source.value
        for name in sorted(other._gauges):
            source = other._gauges[name]
            target = self.gauge(name, source.help, merge=source.merge)
            if source.merge == "max":
                target.value = max(target.value, source.value)
            else:
                target.value += source.value
        for name in sorted(other._histograms):
            source = other._histograms[name]
            target = self.histogram(name, source.help,
                                    max_samples=source.max_samples)
            target.merge(source)
        return self

    def clone(self) -> "MetricsRegistry":
        """Deep copy of every instrument, without the collectors.

        Collector-backed gauges hold whatever the last
        :meth:`collect` wrote, so call that first to capture live
        component state (the sharded engine clones once per simulated
        day to feed the monitor replay).
        """
        self.collect()
        copy = MetricsRegistry()
        for name, counter in self._counters.items():
            duplicate = copy.counter(name, counter.help,
                                     merge=counter.merge)
            duplicate.value = counter.value
        for name, gauge in self._gauges.items():
            duplicate = copy.gauge(name, gauge.help, merge=gauge.merge)
            duplicate.value = gauge.value
        for name, hist in self._histograms.items():
            duplicate = copy.histogram(name, hist.help,
                                       max_samples=hist.max_samples)
            duplicate.count = hist.count
            duplicate.total = hist.total
            duplicate.weight_total = hist.weight_total
            duplicate._values = list(hist._values)
            duplicate._weights = list(hist._weights)
        return copy

    def __getstate__(self) -> Dict:
        """Pickle support for process-pool transport.

        Collectors are closures over live component objects (a whole
        :class:`~repro.simulation.world.World`) and cannot cross a
        process boundary; shard workers run :meth:`collect` before
        shipping the registry, so the materialized gauge values travel
        while the closures stay behind.
        """
        state = self.__dict__.copy()
        state["_collectors"] = []
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)

    # -- export ----------------------------------------------------------

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter or gauge (collectors NOT run)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    def snapshot(self) -> Dict[str, Dict]:
        """Run collectors, then export every instrument, sorted."""
        self.collect()
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].snapshot()
                           for name in sorted(self._histograms)},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_lines(self) -> List[str]:
        """Human-readable one-line-per-metric rendering."""
        snap = self.snapshot()
        out: List[str] = []
        for name, value in snap["counters"].items():
            out.append(f"counter    {name:<40} {value:g}")
        for name, value in snap["gauges"].items():
            out.append(f"gauge      {name:<40} {value:g}")
        for name, row in snap["histograms"].items():
            out.append(
                f"histogram  {name:<40} n={row['count']:g} "
                f"mean={row['mean']:.3f} p50={row['p50']:.3f} "
                f"p95={row['p95']:.3f}")
        return out

    def render_prom(self) -> List[str]:
        """Prometheus text exposition (``# HELP``/``# TYPE`` + sorted
        sample lines) so external scrapers can consume the registry.

        Counters get the conventional ``_total`` suffix; histograms
        export as summaries (quantile-labelled samples plus ``_sum`` /
        ``_count``, where ``_sum`` is the demand-weighted total the
        mean derives from).  Families are sorted by metric name, so
        identical registries render byte-identical expositions.
        """
        self.collect()
        out: List[str] = []
        for name in sorted(self._counters):
            counter = self._counters[name]
            prom = _prom_name(name) + "_total"
            out.append(f"# HELP {prom} {counter.help or name}")
            out.append(f"# TYPE {prom} counter")
            out.append(f"{prom} {_prom_value(counter.value)}")
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            prom = _prom_name(name)
            out.append(f"# HELP {prom} {gauge.help or name}")
            out.append(f"# TYPE {prom} gauge")
            out.append(f"{prom} {_prom_value(gauge.value)}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            prom = _prom_name(name)
            out.append(f"# HELP {prom} {hist.help or name}")
            out.append(f"# TYPE {prom} summary")
            for q, value in zip(EXPORT_QUANTILES, hist.quantiles()):
                out.append(f'{prom}{{quantile="{q:g}"}} '
                           f"{_prom_value(value)}")
            out.append(f"{prom}_sum {_prom_value(hist.total)}")
            out.append(f"{prom}_count {_prom_value(hist.count)}")
        return out

    def reset(self) -> None:
        """Drop every instrument and collector."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._collectors.clear()


def _prom_name(name: str) -> str:
    """Registry name -> valid Prometheus metric name."""
    return name.replace(".", "_").replace("-", "_")


def _prom_value(value: float) -> str:
    """Deterministic sample rendering (ints stay integral)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")
