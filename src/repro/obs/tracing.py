"""Per-query span-tree tracing.

The paper's analysis is built from per-query logs of the production
system (Section 4.2: every resolution and every RUM beacon carries
enough context to attribute performance to a mapping decision).  The
:class:`QueryTracer` reproduces that observability: one *trace* per
client session, holding a tree of *spans* -- stub hop, LDNS recursion,
per-upstream network hops, authoritative dispatch, mapping decision,
and load-balancer pick -- each annotated with attributes (RTT, cache
outcome, ECS scope, chosen cluster).

Design constraints, in order:

* **Zero behaviour change.** Tracing observes; it never influences the
  traced code.  All simulation state (RNG draws, caches, counters) is
  identical with tracing on or off.
* **Determinism.** Span ids are sequential per trace, there are no
  wall-clock timestamps (the simulator's ``now`` is an attribute like
  any other), and exports sort keys -- so one deterministic scenario
  replayed twice produces byte-identical trace exports.
* **Bounded memory.** Finished traces live in a ring buffer of
  ``max_traces``; heavy scenarios keep the newest traces and count the
  dropped ones.
* **Cheap when idle.** With no active trace (or ``enabled=False``),
  :meth:`span` returns a shared no-op context manager: the hot DNS
  path pays one attribute check per hop.

Timeout accounting convention: a network hop whose destination never
answers carries ``timeout=True``; the querying resolver separately
burns its retry timer (``_TIMEOUT_PENALTY_MS``).  Consumers summing
span RTTs to reconstruct a resolution's latency must add that penalty
per timed-out hop -- the invariant test suite pins exactly this
identity.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

#: Decimal places floats are rounded to in exports, keeping serialized
#: traces stable and readable without losing sub-microsecond detail.
EXPORT_FLOAT_DECIMALS = 6


class Span:
    """One node of a trace tree: a named operation with attributes."""

    __slots__ = ("span_id", "name", "attrs", "children")

    def __init__(self, span_id: int, name: str, attrs: Dict) -> None:
        self.span_id = span_id
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes on this span."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with this name."""
        return [span for span in self.walk() if span.name == name]

    def first(self, name: str) -> Optional["Span"]:
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict:
        """JSON-ready form with deterministically rounded floats."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "attrs": {key: _round(value)
                      for key, value in sorted(self.attrs.items())},
            "children": [child.to_dict() for child in self.children],
        }


def _round(value):
    if isinstance(value, float):
        return round(value, EXPORT_FLOAT_DECIMALS)
    return value


class _SpanContext:
    """Context manager entering/leaving one span on the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "QueryTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracer._stack
        assert stack and stack[-1] is self._span, "unbalanced span exit"
        stack.pop()
        if not stack:
            self._tracer._finish(self._span)


class _NullSpan:
    """Shared no-op span: absorbs writes when tracing is off."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class QueryTracer:
    """Records structured per-query span trees into a ring buffer."""

    def __init__(self, enabled: bool = True, max_traces: int = 256,
                 sample_every: int = 1) -> None:
        if max_traces < 1:
            raise ValueError("need room for at least one trace")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.max_traces = max_traces
        self.sample_every = sample_every
        self.traces: List[Span] = []
        self.started = 0
        self.sampled = 0
        self.dropped = 0
        self.context: Dict[str, object] = {}
        """Ambient attributes stamped onto every subsequently started
        root span -- e.g. the fault injector records which outages are
        in force, so traces are attributable to their failure regime.
        Empty (the default) adds nothing to any trace."""
        self._stack: List[Span] = []
        self._next_span_id = 0

    # -- recording -------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while a sampled trace is open."""
        return bool(self._stack)

    def trace(self, name: str, **attrs):
        """Open a root span (one per query/session).

        Every ``sample_every``-th call is recorded; the rest return the
        shared no-op context so nested :meth:`span` calls cost one
        check.  Counting is deterministic, so sampling never perturbs
        replay.
        """
        if not self.enabled:
            return NULL_SPAN
        self.started += 1
        if (self.started - 1) % self.sample_every:
            return NULL_SPAN
        self.sampled += 1
        self._next_span_id = 0
        if self.context:
            attrs = {**attrs, **self.context}
        return _SpanContext(self, self._make_span(name, attrs))

    def span(self, name: str, **attrs):
        """Open a child span under the currently active span."""
        if not self._stack:
            return NULL_SPAN
        span = self._make_span(name, attrs)
        self._stack[-1].children.append(span)
        return _SpanContext(self, span)

    def event(self, name: str, **attrs):
        """Attach a leaf span (no children) to the active span."""
        if not self._stack:
            return NULL_SPAN
        span = self._make_span(name, attrs)
        self._stack[-1].children.append(span)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def _make_span(self, name: str, attrs: Dict) -> Span:
        span = Span(self._next_span_id, name, attrs)
        self._next_span_id += 1
        return span

    def _finish(self, root: Span) -> None:
        self.traces.append(root)
        if len(self.traces) > self.max_traces:
            del self.traces[0]
            self.dropped += 1

    # -- export ----------------------------------------------------------

    def export(self) -> List[Dict]:
        """All retained traces as JSON-ready dicts (deterministic)."""
        return [trace.to_dict() for trace in self.traces]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=True)

    def clear(self) -> None:
        self.traces.clear()
        self.started = 0
        self.sampled = 0
        self.dropped = 0
        self._stack.clear()
