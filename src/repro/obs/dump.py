"""``python -m repro.obs.dump`` -- run a scenario, dump metrics + traces.

Operator-facing observability CLI: builds a world, drives a
deterministic batch of client sessions through the full DNS + download
stack, and prints the resulting metrics snapshot plus sample per-query
traces.

Usage::

    PYTHONPATH=src python -m repro.obs.dump --scale tiny --sessions 25
    PYTHONPATH=src python -m repro.obs.dump --format text
    PYTHONPATH=src python -m repro.obs.dump --format prom   # scrapable
    PYTHONPATH=src python -m repro.obs.dump --traces 2 --out obs.json

The JSON payload is ``{"scenario": {...}, "metrics": {...},
"traces": [...]}`` with sorted keys and rounded floats, so two runs
with the same arguments emit byte-identical output -- the property the
golden-trace suite pins.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.experiments.scales import get_scale, scale_names
from repro.simulation.cli import profile_config


def run_scenario(scale: str = "tiny", sessions: int = 25, seed: int = 7,
                 ecs: bool = True, sample_every: int = 1, profile=None):
    """Build a world and drive ``sessions`` deterministic sessions.

    Returns the world, with its registry populated and its tracer
    holding one trace per sampled session.  ``profile`` (a
    :class:`repro.obs.profile.ProfileConfig`) additionally attaches a
    live phase profiler to the world's observability bundle.
    """
    from repro.simulation.session import simulate_session
    from repro.api import build_world

    spec = get_scale(scale)
    world = build_world(spec.world)
    world.obs.tracer.sample_every = sample_every
    if profile is not None:
        from repro.obs.profile import PhaseProfiler

        world.obs.profiler = PhaseProfiler(config=profile)
    if ecs:
        world.enable_ecs(world.public_ldns_ids())
    rng = random.Random(seed)
    for index in range(sessions):
        block = world.internet.pick_block(rng)
        simulate_session(world, block, now=index * 2.0, rng=rng)
    return world


def build_payload(world, scenario: dict, n_traces: int) -> dict:
    """JSON-ready dump: scenario echo, metrics snapshot, traces.

    When a live profiler is attached (``--profile``), the payload
    gains a ``profile`` section holding the *deterministic view* of
    the phase tree -- work counters and structure only -- so the dump
    keeps its byte-identical-across-runs property even while
    profiling.
    """
    traces = world.obs.tracer.export()
    if n_traces >= 0:
        traces = traces[:n_traces]
    payload = {
        "scenario": scenario,
        "metrics": world.obs.registry.snapshot(),
        "traces": traces,
    }
    profiler = world.obs.profiler
    if profiler.enabled:
        from repro.obs.profile import build_document, deterministic_view

        payload["profile"] = deterministic_view(
            build_document(profiler))
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dump", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scale", default="tiny", choices=scale_names())
    parser.add_argument("--sessions", type=int, default=25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-ecs", action="store_true",
                        help="leave every LDNS without client-subnet")
    parser.add_argument("--sample-every", type=int, default=1,
                        help="trace every Nth session")
    parser.add_argument("--traces", type=int, default=3,
                        help="traces to include (-1 = all retained)")
    parser.add_argument("--format", choices=("json", "text", "prom"),
                        default="json",
                        help="json payload, human-readable table, or "
                             "Prometheus text exposition")
    parser.add_argument("--profile", type=profile_config, nargs="?",
                        const="{}", default=None, metavar="JSON",
                        help="also profile the engine: adds the "
                             "profile_* prom families / the hotspot "
                             "table / a 'profile' json section")
    parser.add_argument("--out", default=None,
                        help="write to this path instead of stdout")
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error("need at least one session")

    print(f"running {args.sessions} sessions (scale={args.scale})...",
          file=sys.stderr)
    world = run_scenario(scale=args.scale, sessions=args.sessions,
                         seed=args.seed, ecs=not args.no_ecs,
                         sample_every=args.sample_every,
                         profile=args.profile)
    scenario = {
        "scale": args.scale,
        "sessions": args.sessions,
        "seed": args.seed,
        "ecs": not args.no_ecs,
        "sample_every": args.sample_every,
    }

    if args.format == "text":
        tracer = world.obs.tracer
        # Header first: scenario seed + trace counts, so a byte-identity
        # smoke failure is diagnosable from the CI log alone.
        lines = [
            "scenario   scale={scale} sessions={sessions} seed={seed} "
            "ecs={ecs} sample_every={sample_every}".format(**scenario),
            f"traces     retained={len(tracer.traces)} "
            f"sampled={tracer.sampled} dropped={tracer.dropped}",
        ]
        lines.extend(world.obs.registry.render_lines())
        if args.profile is not None:
            from repro.obs.profile import (hotspot_rows,
                                           render_hotspot_table)

            lines.append("")
            lines.append("engine hotspots (self wall-clock):")
            lines.extend(render_hotspot_table(hotspot_rows(
                world.obs.profiler.root, limit=args.profile.hotspots)))
        text = "\n".join(lines) + "\n"
    elif args.format == "prom":
        prom_lines = list(world.obs.registry.render_prom())
        if args.profile is not None:
            from repro.obs.profile import render_profile_prom

            prom_lines.extend(
                render_profile_prom(world.obs.profiler.root))
        text = "\n".join(prom_lines) + "\n"
    else:
        payload = build_payload(world, scenario, args.traces)
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    import sys as _sys

    print("note: 'python -m repro.obs.dump' is deprecated; "
          "use 'python -m repro dump'", file=_sys.stderr)
    raise SystemExit(main())
