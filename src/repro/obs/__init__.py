"""Observability: metrics registry + per-query tracing.

``repro.obs`` is the monitoring plane of the reproduction -- the
substrate the paper's whole evaluation rests on (per-query logs,
mapping distance, RTT/TTFB deltas, DNS query-rate inflation, Sections
4-5).  It bundles:

* :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges, and
  demand-weighted histograms (quantiles via the canonical
  :func:`repro.analysis.stats.weighted_quantiles`).
* :class:`~repro.obs.tracing.QueryTracer` -- structured per-query span
  trees (stub -> recursive -> authoritative -> mapping decision ->
  load-balancer pick), deterministic and bounded.
* :mod:`~repro.obs.collect` -- snapshot-time collectors turning
  component-internal counters into canonical registry metrics.
* ``python -m repro.obs.dump`` -- CLI that runs a scenario and dumps
  the metrics snapshot plus sample traces.

One :class:`Observability` instance is wired through a
:class:`~repro.simulation.world.World` at build time; components built
standalone fall back to a shared no-op instance whose tracer is
disabled, so instrumentation is always safe to call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.collect import register_world_collectors
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    DISABLED_PROFILER,
    NULL_PHASE,
    PhaseProfiler,
    ProfileConfig,
)
from repro.obs.tracing import NULL_SPAN, QueryTracer, Span


@dataclass
class Observability:
    """The bundle every instrumented component receives.

    ``registry`` and ``tracer`` watch the *simulated* system;
    ``profiler`` watches the *engine* itself (phase tree, self-time).
    The profiler defaults to the shared disabled instance -- safe to
    share because a disabled profiler never mutates -- and only
    ``_build_world`` swaps in a live one when the scenario opts in.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: QueryTracer = field(default_factory=QueryTracer)
    profiler: PhaseProfiler = DISABLED_PROFILER

    @classmethod
    def disabled(cls) -> "Observability":
        """An instance whose tracer never records (cheap no-op)."""
        return cls(tracer=QueryTracer(enabled=False))


#: Shared sink for components constructed without explicit wiring:
#: counters land in a registry nobody snapshots, spans are no-ops.
NOOP = Observability.disabled()

__all__ = [
    "Counter",
    "DISABLED_PROFILER",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP",
    "NULL_PHASE",
    "NULL_SPAN",
    "Observability",
    "PhaseProfiler",
    "ProfileConfig",
    "QueryTracer",
    "Span",
    "register_world_collectors",
]
