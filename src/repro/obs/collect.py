"""Snapshot-time collectors: component state -> registry gauges.

Every component in the stack keeps its own cheap local counters (a DNS
cache counts hits, a load balancer counts spillovers) -- the hot paths
never pay for centralized bookkeeping.  This module registers the
*collectors* that read those internals into canonical registry metrics
whenever someone snapshots: the single place that knows where each
number lives, so :mod:`repro.core.reporting`, ``repro.obs.dump``, and
tests all consume the same metric names instead of spelunking
component internals themselves.

Canonical metric names exported for a wired world:

====================================  =====================================
``mapping.resolutions``               DNS questions answered by mapping
``mapping.ecs_resolutions``           ... of which carried ECS
``mapping.nxdomain`` / ``no_target``  mapping error counts
``mapping.decision_cache.hits`` /
``mapping.decision_cache.misses``     per-target decision cache
``lb.decisions`` / ``lb.spillovers``  global load balancer
``ldns.cache.hits`` / ``lookups`` /
``insertions`` / ``evictions`` /
``expirations`` / ``stale_hits``      summed over the LDNS fleet
``ldns.client_queries`` /
``ldns.upstream_queries`` /
``ldns.tcp_retries`` /
``ldns.failovers`` /
``ldns.timeout_failovers`` /
``ldns.tcp_failovers`` /
``ldns.servfails`` /
``ldns.stale_served`` /
``ldns.retry_penalty_ms``             recursive resolver activity
``auth.queries`` / ``responses`` /
``truncations`` / ``tcp_queries``     authoritative servers
``network.queries`` / ``bytes``       simulated wire
``querylog.queries`` /
``querylog.ecs_queries``              authoritative query-log totals
``edge.cache.requests`` / ``hits``    edge-server content caches
``clusters.total`` / ``alive`` /
``clusters.mean_utilization``         deployment health
``measurement.rtt_lookups`` /
``measurement.memo_hits``             ping-mesh measurement service
``resolver.pops_total`` / ``
pops_healthy`` / ``pops_down`` /
``resolver.providers_flapping``       anycast PoP fleet health (only
                                      when the resolver plane is on)
====================================  =====================================
"""

from __future__ import annotations

import math

from repro.obs.metrics import MetricsRegistry


def register_world_collectors(registry: MetricsRegistry, world) -> None:
    """Wire one world-shaped object into a registry.

    ``world`` is anything exposing ``mapping``, ``deployments``,
    ``ldns_registry``, ``nameservers``, ``network``, and
    ``measurement`` -- i.e. a :class:`repro.simulation.world.World`.
    Collector gauges refresh on every snapshot, so the registry always
    reflects the live components.
    """

    def _collect(reg: MetricsRegistry) -> None:
        stats = world.mapping.stats
        reg.gauge("mapping.resolutions").set(stats.resolutions)
        reg.gauge("mapping.ecs_resolutions").set(stats.ecs_resolutions)
        reg.gauge("mapping.nxdomain").set(stats.nxdomain)
        reg.gauge("mapping.no_target").set(stats.no_target)
        reg.gauge("mapping.decision_cache.hits").set(
            stats.decision_cache_hits)
        reg.gauge("mapping.decision_cache.misses").set(
            stats.decision_cache_misses)

        glb = world.mapping.global_lb
        reg.gauge("lb.decisions").set(glb.decisions)
        reg.gauge("lb.spillovers").set(glb.spillovers)

        cache_totals = {"hits": 0, "misses": 0, "insertions": 0,
                        "evictions": 0, "expirations": 0,
                        "stale_hits": 0}
        client_queries = upstream = tcp_retries = 0
        timeout_failovers = tcp_failovers = 0
        servfails = stale_served = 0
        retry_penalty_ms = 0.0
        for ldns in world.ldns_registry.values():
            for key, value in ldns.cache.stats.as_dict().items():
                if key in cache_totals:
                    cache_totals[key] += value
            client_queries += ldns.client_queries
            upstream += ldns.upstream_queries_total
            tcp_retries += ldns.tcp_retries
            timeout_failovers += ldns.timeout_failovers
            tcp_failovers += ldns.tcp_failovers
            servfails += ldns.servfail_responses
            stale_served += ldns.stale_served
            retry_penalty_ms += getattr(ldns, "retry_penalty_ms_total",
                                        0.0)
        for key, value in cache_totals.items():
            reg.gauge(f"ldns.cache.{key}").set(value)
        reg.gauge("ldns.cache.lookups").set(
            cache_totals["hits"] + cache_totals["misses"])
        reg.gauge("ldns.client_queries").set(client_queries)
        reg.gauge("ldns.upstream_queries").set(upstream)
        reg.gauge("ldns.tcp_retries").set(tcp_retries)
        # ``failovers`` stays the historical total; the split gauges
        # distinguish UDP-timeout abandonment from TCP-retry death.
        reg.gauge("ldns.failovers").set(timeout_failovers + tcp_failovers)
        reg.gauge("ldns.timeout_failovers").set(timeout_failovers)
        reg.gauge("ldns.tcp_failovers").set(tcp_failovers)
        reg.gauge("ldns.servfails").set(servfails)
        reg.gauge("ldns.stale_served").set(stale_served)
        reg.gauge("ldns.retry_penalty_ms").set(retry_penalty_ms)

        reg.gauge("auth.queries").set(
            sum(ns.queries_received for ns in world.nameservers))
        reg.gauge("auth.responses").set(
            sum(ns.responses_sent for ns in world.nameservers))
        reg.gauge("auth.truncations").set(
            sum(ns.truncated_count for ns in world.nameservers))
        reg.gauge("auth.tcp_queries").set(
            sum(ns.tcp_queries for ns in world.nameservers))

        reg.gauge("network.queries").set(world.network.queries_sent)
        reg.gauge("network.bytes").set(world.network.bytes_sent)

        # Query-log totals (world-shaped test doubles may omit the log).
        query_log = getattr(world, "query_log", None)
        if query_log is not None:
            reg.gauge("querylog.queries").set(query_log.total_queries)
            reg.gauge("querylog.ecs_queries").set(query_log.ecs_queries)

        clusters = list(world.deployments.clusters.values())
        alive = [c for c in clusters if c.alive]
        # Deployment geometry is replicated identically in every shard
        # of a sharded run (merge=max); utilization is load-driven and
        # load splits across shards, so the mean keeps the sum default.
        reg.gauge("clusters.total", merge="max").set(len(clusters))
        reg.gauge("clusters.alive", merge="max").set(len(alive))
        # A non-finite utilization (a cluster mid-teardown under fault
        # injection) must not poison the fleet mean into NaN.
        finite = [c.utilization for c in alive
                  if math.isfinite(c.utilization)]
        reg.gauge("clusters.mean_utilization").set(
            sum(finite) / len(finite) if finite else 0.0)

        edge_requests = edge_hits = 0
        for cluster in clusters:
            for server in cluster.servers:
                edge_requests += server.cache.stats.requests
                edge_hits += server.cache.stats.hits
        reg.gauge("edge.cache.requests").set(edge_requests)
        reg.gauge("edge.cache.hits").set(edge_hits)

        measurement = world.measurement
        reg.gauge("measurement.rtt_lookups").set(
            measurement.rtt_lookups)
        reg.gauge("measurement.memo_hits").set(
            measurement.rtt_memo_hits)

        # Resolver-plane fleet health: only exported when the world
        # carries live PoP fleets, so legacy snapshots stay
        # byte-identical (gauge absence is the feature gate the
        # monitor keys off).  Fleet membership and health replay
        # identically in every shard -- merge by max.
        fleets = getattr(world, "resolver_fleets", None)
        if fleets is not None:
            reg.gauge("resolver.pops_total", merge="max").set(
                fleets.pops_total)
            reg.gauge("resolver.pops_down", merge="max").set(
                fleets.pops_down)
            reg.gauge("resolver.pops_healthy", merge="max").set(
                fleets.pops_total - fleets.pops_down)
            reg.gauge("resolver.providers_flapping", merge="max").set(
                len(fleets.flapping))

    registry.register_collector(_collect)
