"""Engine self-profiling: hierarchical phase trees, three exports.

Every observability surface so far watches the *simulated* system --
mapping distance, query rates, cache hits.  This module watches the
**engine**: where the simulator itself spends its time, phase by phase
(world build, the roll-out day loop, per-session DNS resolution, the
scorer's batch kernels, map compilation, shard plan/execute/merge).
That is the data the scale roadmap needs -- which inner loop to batch
onto the vectorized kernels next -- and what turns a bench number into
an attribution.

Two strictly separated signal families live in one tree:

* **Deterministic work counters** -- ``calls`` per phase and named
  ``work`` counters (sessions simulated, scoring pairs, map entries,
  spans emitted).  These are pure functions of the scenario spec and
  shard plan: byte-identical across runs, machines, and worker counts.
  The golden fixture pins them.
* **Wall-clock timings** -- ``wall_s`` / ``self_wall_s`` per phase.
  Reported (hotspot tables, flamegraphs, bench/v3 breakdowns), never
  golden-pinned.  The ``profile/v1`` document *declares* which fields
  are timing (``timing_fields``) and which top-level sections are
  host-dependent (``volatile_fields``), so
  :func:`deterministic_view` strips them by schema, not by test
  convention.

Design rules (shared with :mod:`repro.obs.tracing`):

* **Zero behaviour change.**  The profiler observes; it touches no
  RNG, no registry, no component state.  With profiling off,
  :meth:`PhaseProfiler.phase` returns a shared no-op context
  (:data:`NULL_PHASE`) and every existing golden fixture stays
  byte-identical.
* **Deterministic merge.**  Per-shard profiles merge by phase name in
  fixed shard order (counts sum, structure is the union); the merged
  structural view is fixed by the shard plan, so ``--workers 1`` and
  ``--workers 4`` agree byte-for-byte.
* **Three exports.**  The ``profile/v1`` JSON tree
  (:func:`build_document`), collapsed stacks for flamegraph tooling
  (:func:`collapsed_stacks` -- pipe into ``flamegraph.pl``), and a
  self-time hotspot table (:func:`hotspot_rows` /
  :func:`render_hotspot_table`), surfaced by
  ``python -m repro profile <scenario>``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Schema tag of the exported profile document.
PROFILE_SCHEMA = "profile/v1"

#: Per-node fields that carry wall-clock time.  Declared in every
#: exported document so consumers (and the determinism tests) strip
#: them by schema rather than by hard-coded knowledge.
TIMING_FIELDS: Tuple[str, ...] = ("self_wall_s", "wall_s")

#: Top-level document sections derived from timings or the host
#: (hotspot ranking, run metadata); dropped from the deterministic view.
VOLATILE_FIELDS: Tuple[str, ...] = ("hotspots", "run")

#: Decimal places for exported wall-clock seconds.
EXPORT_WALL_DECIMALS = 6

#: Name of the implicit root phase.
ROOT_PHASE = "engine"

#: Column header of the hotspot attribution table (reused by
#: ``repro.obs.dump --format text``).
HOTSPOT_HEADER = (f"{'phase':<36} {'calls':>12} {'self_s':>10} "
                  f"{'total_s':>10} {'self%':>7}")


@dataclass(frozen=True)
class ProfileConfig:
    """Declarative profiler knobs (the ``ScenarioSpec.profile`` field).

    The config rides the scenario spec into shard workers, so every
    shard profiles identically; its JSON form is the ``--profile``
    payload of the CLIs.
    """

    max_depth: Optional[int] = None
    """Deepest phase nesting recorded; scopes below it fold into their
    ancestor (calls/work attach to the deepest recorded phase).  None
    records every scope."""
    hotspots: int = 10
    """Rows in the hotspot attribution table."""

    def __post_init__(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(
                f"max_depth must be >= 1 or None: {self.max_depth}")
        if self.hotspots < 1:
            raise ValueError(f"hotspots must be >= 1: {self.hotspots}")

    def to_dict(self) -> Dict:
        return {"max_depth": self.max_depth, "hotspots": self.hotspots}

    @classmethod
    def from_dict(cls, doc: Dict) -> "ProfileConfig":
        if not isinstance(doc, dict):
            raise ValueError("a profile config is a JSON object")
        unknown = set(doc) - {"max_depth", "hotspots"}
        if unknown:
            raise ValueError(
                f"unknown profile config fields: {sorted(unknown)}")
        kwargs: Dict = {}
        if "max_depth" in doc:
            value = doc["max_depth"]
            if value is not None and not isinstance(value, int):
                raise ValueError(f"max_depth must be an integer: {value!r}")
            kwargs["max_depth"] = value
        if "hotspots" in doc:
            if not isinstance(doc["hotspots"], int):
                raise ValueError(
                    f"hotspots must be an integer: {doc['hotspots']!r}")
            kwargs["hotspots"] = doc["hotspots"]
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ProfileConfig":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not valid JSON: {exc}") from None
        return cls.from_dict(doc)


class PhaseNode:
    """One phase of the tree: a named scope with counts and wall time."""

    __slots__ = ("name", "calls", "work", "wall_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.work: Dict[str, float] = {}
        self.wall_s = 0.0
        self.children: Dict[str, "PhaseNode"] = {}

    def child(self, name: str) -> "PhaseNode":
        node = self.children.get(name)
        if node is None:
            node = PhaseNode(name)
            self.children[name] = node
        return node

    def merge(self, other: "PhaseNode") -> None:
        """Fold another node's counts (and subtree) into this one."""
        self.calls += other.calls
        self.wall_s += other.wall_s
        for key, value in other.work.items():
            self.work[key] = self.work.get(key, 0) + value
        for name, child in other.children.items():
            self.child(name).merge(child)

    def walk(self, path: Tuple[str, ...] = ()
             ) -> Iterator[Tuple[Tuple[str, ...], "PhaseNode"]]:
        """(path, node) pairs, depth-first, children in name order."""
        here = path + (self.name,)
        yield here, self
        for name in sorted(self.children):
            yield from self.children[name].walk(here)

    @property
    def self_wall_s(self) -> float:
        """Wall time not attributed to recorded children.

        Clamped at zero: in a sharded run the parent's pool wait can
        undercut the sum of worker walls (workers run concurrently),
        and merged-worker subtrees carry no wall at their graft point.
        """
        return max(0.0, self.wall_s - sum(
            child.wall_s for child in self.children.values()))


class _PhaseContext:
    """Context manager pushing/popping one phase on the profiler."""

    __slots__ = ("_profiler", "_node", "_start")

    def __init__(self, profiler: "PhaseProfiler", node: PhaseNode) -> None:
        self._profiler = profiler
        self._node = node

    def __enter__(self) -> PhaseNode:
        self._profiler._stack.append(self._node)
        self._start = time.perf_counter()
        return self._node

    def __exit__(self, exc_type, exc, tb) -> None:
        self._node.wall_s += time.perf_counter() - self._start
        stack = self._profiler._stack
        assert stack and stack[-1] is self._node, "unbalanced phase exit"
        stack.pop()


class _NullPhase:
    """Shared no-op phase: absorbs scopes when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_PHASE = _NullPhase()


class PhaseProfiler:
    """Records a hierarchical phase tree for one engine run."""

    def __init__(self, enabled: bool = True,
                 config: Optional[ProfileConfig] = None) -> None:
        self.enabled = enabled
        self.config = config or ProfileConfig()
        self.root = PhaseNode(ROOT_PHASE)
        self._stack: List[PhaseNode] = [self.root]

    # -- recording -------------------------------------------------------

    def phase(self, name: str):
        """Open (or re-enter) a named phase under the current scope.

        Re-entering a name under the same parent accumulates into the
        same node (``calls`` counts entries), so loops produce one row
        per phase, not one per iteration.
        """
        if not self.enabled:
            return NULL_PHASE
        depth = self.config.max_depth
        if depth is not None and len(self._stack) > depth:
            return NULL_PHASE
        node = self._stack[-1].child(name)
        node.calls += 1
        return _PhaseContext(self, node)

    def count(self, name: str, amount: float = 1) -> None:
        """Add to a named work counter on the innermost open phase
        (the root when no phase is open).  Work counters are the
        deterministic half of the profile: only ever counts of work
        performed, never durations."""
        if not self.enabled:
            return
        work = self._stack[-1].work
        work[name] = work.get(name, 0) + amount

    # -- merge -----------------------------------------------------------

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's whole tree into this one."""
        self.root.merge(other.root)

    def graft(self, name: str, other: "PhaseProfiler") -> None:
        """Adopt another profiler's tree as one child phase.

        The sharded engine grafts each worker's profile (root and all)
        under ``shard.workers``: the adopted node's ``calls`` counts
        grafted profiles, its children/work are the merged worker
        trees.  Graft in fixed shard order so float accumulation --
        and hence every exported byte -- is order-stable.
        """
        node = self._stack[-1].child(name)
        node.calls += 1
        # A root node accrues no wall of its own (no phase scope ever
        # closes over it), so credit the adopted subtree's total: the
        # graft parent's self-time then reads as genuine coordination
        # overhead, not the workers' compute re-billed to it.
        node.wall_s += other.root.wall_s + sum(
            child.wall_s for child in other.root.children.values())
        for key, value in other.root.work.items():
            node.work[key] = node.work.get(key, 0) + value
        for child_name, child in other.root.children.items():
            node.child(child_name).merge(child)


#: Shared disabled profiler for components wired without one (the
#: :data:`repro.obs.NOOP` pattern): never records, safe to share.
DISABLED_PROFILER = PhaseProfiler(enabled=False)


# -- export: profile/v1 ------------------------------------------------------

def export_tree(node: PhaseNode) -> Dict:
    """JSON-ready node: sorted work keys, name-sorted children."""
    return {
        "name": node.name,
        "calls": node.calls,
        "work": {key: _export_number(node.work[key])
                 for key in sorted(node.work)},
        "wall_s": round(node.wall_s, EXPORT_WALL_DECIMALS),
        "self_wall_s": round(node.self_wall_s, EXPORT_WALL_DECIMALS),
        "children": [export_tree(node.children[name])
                     for name in sorted(node.children)],
    }


def _export_number(value: float):
    if isinstance(value, float) and value == int(value):
        return int(value)
    return value


def build_document(profiler: PhaseProfiler, scenario: Optional[Dict] = None,
                   run_info: Optional[Dict] = None) -> Dict:
    """The full ``profile/v1`` document for one run."""
    tree = export_tree(profiler.root)
    return {
        "schema": PROFILE_SCHEMA,
        "timing_fields": list(TIMING_FIELDS),
        "volatile_fields": list(VOLATILE_FIELDS),
        "scenario": scenario or {},
        "run": run_info or {},
        "tree": tree,
        "hotspots": hotspot_rows(profiler.root,
                                 limit=profiler.config.hotspots),
    }


def deterministic_view(doc: Dict) -> Dict:
    """The structural half of a document: work counters and tree shape.

    Strips exactly what the document itself declares volatile: every
    ``timing_fields`` entry from every tree node, and every
    ``volatile_fields`` top-level section.  What remains is a pure
    function of the scenario spec and shard plan -- the bytes the
    golden fixture and the cross-worker-count equality tests pin.
    """
    timing = set(doc.get("timing_fields", TIMING_FIELDS))
    volatile = set(doc.get("volatile_fields", VOLATILE_FIELDS))

    def _strip(node: Dict) -> Dict:
        out = {key: value for key, value in node.items()
               if key not in timing and key != "children"}
        out["children"] = [_strip(child) for child in node["children"]]
        return out

    view = {key: value for key, value in doc.items()
            if key not in volatile and key != "tree"}
    view["tree"] = _strip(doc["tree"])
    return view


def deterministic_json(doc: Dict) -> str:
    """Canonical bytes of the deterministic view (for ``cmp``)."""
    return json.dumps(deterministic_view(doc), indent=2,
                      sort_keys=True) + "\n"


# -- export: collapsed stacks (flamegraph) -----------------------------------

def collapsed_stacks(root: PhaseNode) -> List[str]:
    """Flamegraph-ready collapsed stacks: ``a;b;c <self-microseconds>``.

    One line per phase path with integer self-time values, the format
    ``flamegraph.pl`` and speedscope ingest directly.  Zero-self-time
    phases are kept: structure is part of the signal.
    """
    lines: List[str] = []
    for path, node in root.walk():
        lines.append(f"{';'.join(path)} "
                     f"{int(round(node.self_wall_s * 1e6))}")
    return lines


# -- export: hotspot attribution ---------------------------------------------

def hotspot_rows(root: PhaseNode, limit: int = 10) -> List[Dict]:
    """Self-time attribution, aggregated by phase name.

    The same phase name can occur at several tree positions (e.g.
    ``session`` under both the serial day loop and a grafted worker
    subtree); hotspot accounting charges the *name*, which is what an
    optimization targets.  Sorted by self time descending, name
    ascending on ties.
    """
    totals: Dict[str, Dict] = {}
    for path, node in root.walk():
        row = totals.setdefault(node.name, {
            "phase": node.name, "calls": 0,
            "self_wall_s": 0.0, "wall_s": 0.0})
        row["calls"] += node.calls
        row["self_wall_s"] += node.self_wall_s
        row["wall_s"] += node.wall_s
    del totals[ROOT_PHASE]["wall_s"], totals[ROOT_PHASE]["self_wall_s"]
    totals[ROOT_PHASE]["self_wall_s"] = root.self_wall_s
    totals[ROOT_PHASE]["wall_s"] = root.wall_s
    total_self = sum(row["self_wall_s"] for row in totals.values())
    rows = sorted(totals.values(),
                  key=lambda row: (-row["self_wall_s"], row["phase"]))
    out = []
    for row in rows[:limit]:
        out.append({
            "phase": row["phase"],
            "calls": row["calls"],
            "self_wall_s": round(row["self_wall_s"],
                                 EXPORT_WALL_DECIMALS),
            "wall_s": round(row["wall_s"], EXPORT_WALL_DECIMALS),
            "self_share": round(row["self_wall_s"] / total_self, 4)
            if total_self > 0 else 0.0,
        })
    return out


def render_hotspot_table(rows: Sequence[Dict]) -> List[str]:
    """The hotspot table as fixed-width text lines (header included)."""
    lines = [HOTSPOT_HEADER]
    for row in rows:
        lines.append(
            f"{row['phase']:<36} {row['calls']:>12,} "
            f"{row['self_wall_s']:>10.3f} {row['wall_s']:>10.3f} "
            f"{row['self_share']:>6.1%}")
    return lines


# -- export: prometheus + bench integration ----------------------------------

def render_profile_prom(root: PhaseNode) -> List[str]:
    """The ``profile_*`` counter families for Prometheus exposition.

    Only the deterministic work counters export (calls per phase path,
    named work totals): a scraped profile family is byte-stable across
    identical runs, like every other prom family the registry renders.
    """
    calls: List[str] = []
    work: List[str] = []
    for path, node in root.walk():
        label = ";".join(path)
        calls.append(f'profile_phase_calls_total{{phase="{label}"}} '
                     f"{node.calls}")
        for key in sorted(node.work):
            work.append(
                f'profile_phase_work_total{{phase="{label}",'
                f'unit="{key}"}} {_export_number(node.work[key])}')
    out = [
        "# HELP profile_phase_calls_total engine phase entry count",
        "# TYPE profile_phase_calls_total counter",
    ]
    out.extend(calls)
    out.append("# HELP profile_phase_work_total "
               "engine phase work counters")
    out.append("# TYPE profile_phase_work_total counter")
    out.extend(work)
    return out


def flatten_phases(root: PhaseNode) -> Dict[str, Dict]:
    """Per-phase breakdown keyed by ``;``-joined path (bench/v3).

    The root node itself is omitted (its path would name every run the
    same); every recorded phase below it gets one row.
    """
    out: Dict[str, Dict] = {}
    for path, node in root.walk():
        if len(path) < 2:
            continue
        out[";".join(path[1:])] = {
            "calls": node.calls,
            "work": {key: _export_number(node.work[key])
                     for key in sorted(node.work)},
            "wall_s": round(node.wall_s, EXPORT_WALL_DECIMALS),
            "self_wall_s": round(node.self_wall_s,
                                 EXPORT_WALL_DECIMALS),
        }
    return out


# -- CLI: python -m repro profile --------------------------------------------

def _profile_config(text: str) -> ProfileConfig:
    """argparse type for ``--profile``: malformed payloads are usage
    errors (exit code 2), never a mid-run stack trace."""
    try:
        return ProfileConfig.from_json(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad profile config: {exc}") from None


def main(argv: Optional[List[str]] = None) -> int:
    # Function-scope imports: the module itself stays stdlib-only so
    # ``repro.obs`` can import it without cycles.
    from repro.bench.perf_report import host_fingerprint
    from repro.experiments.scales import get_scale, scale_names
    from repro.simulation.cli import positive_int

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Profile the engine itself over one scenario: "
                    "phase tree, flamegraph stacks, hotspot table.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="formats:\n"
               "  text           hotspot attribution table (default)\n"
               "  json           the full profile/v1 document\n"
               "  deterministic  structural view only (byte-identical\n"
               "                 across runs and --workers counts)\n"
               "  collapsed      flamegraph collapsed stacks; render\n"
               "                 with: ... --format collapsed "
               "| flamegraph.pl > profile.svg")
    parser.add_argument("scenario",
                        help="scale name to profile (tiny/small/...)")
    parser.add_argument("--workers", type=positive_int, default=1,
                        help="worker processes (deterministic view is "
                             "byte-identical for any count)")
    parser.add_argument("--shards", type=positive_int, default=None,
                        help="shard count of the deterministic plan "
                             "(default 8)")
    parser.add_argument("--sessions", type=positive_int, default=None,
                        help="override the scale's sessions/day")
    parser.add_argument("--profile", type=_profile_config,
                        default=None, metavar="JSON",
                        help='profiler config overrides, e.g. '
                             '\'{"hotspots": 5, "max_depth": 4}\'')
    parser.add_argument("--format",
                        choices=("text", "json", "deterministic",
                                 "collapsed"),
                        default="text")
    parser.add_argument("--out", default=None,
                        help="write to this path instead of stdout")
    args = parser.parse_args(argv)
    if args.scenario not in scale_names():
        parser.error(f"unknown scenario {args.scenario!r}; choose from "
                     f"{', '.join(scale_names())}")

    from dataclasses import replace

    from repro.api import ScenarioSpec, run
    from repro.parallel import DEFAULT_SHARDS

    config = args.profile or ProfileConfig()
    scale = get_scale(args.scenario)
    rollout = scale.rollout
    if args.sessions is not None:
        rollout = replace(rollout, sessions_per_day=args.sessions)
    n_shards = args.shards or DEFAULT_SHARDS
    spec = ScenarioSpec(world=scale.world, rollout=rollout,
                        monitor=False, profile=config)
    print(f"profiling {args.scenario}: "
          f"{rollout.sessions_per_day:,} sessions/day x "
          f"{rollout.n_days} day(s), {n_shards} shards on "
          f"{args.workers} worker(s)...", file=sys.stderr)
    sharded = run(spec, workers=args.workers, shards=n_shards)
    doc = build_document(
        sharded.profiler,
        scenario={
            "scenario": args.scenario,
            "sessions_per_day": rollout.sessions_per_day,
            "n_days": rollout.n_days,
            "n_shards": n_shards,
            "profile": config.to_dict(),
        },
        run_info={"workers": args.workers,
                  "host": host_fingerprint()})

    if args.format == "json":
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    elif args.format == "deterministic":
        text = deterministic_json(doc)
    elif args.format == "collapsed":
        text = "\n".join(collapsed_stacks(sharded.profiler.root)) + "\n"
    else:
        lines = [
            "profile    scenario={scenario} sessions/day="
            "{sessions_per_day} days={n_days} shards={n_shards}".format(
                **doc["scenario"]),
            f"run        workers={args.workers}",
            "",
        ]
        lines.extend(render_hotspot_table(doc["hotspots"]))
        text = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
