"""Shard planning: a deterministic partition of the client population.

The paper's mapping system scales by partitioning the address space
into units that can be processed independently (the map units of
Section 5; Gursun's prefix clustering makes the same move for
measurement).  The simulator's analog: split the client /24 blocks
into ``n_shards`` *closed sub-populations* by hashing each block's
prefix address through the SplitMix64 finalizer.  The partition is a
pure function of (prefix, n_shards) -- independent of block order,
world scale, Python hash randomization, and, critically, of how many
worker processes execute the shards.

Closed-world invariant: a shard owns its blocks' *sessions*, but every
shard worker rebuilds the full world from the same spec, so shared
infrastructure -- published maps, the fault schedule, the ECS roll-out
timeline, name servers, cluster geometry -- is replicated identically
everywhere.  Only client-driven activity differs per shard, and that
is exactly the part the merge algebra can add back together.

Per-day load: the serial engine draws ``sessions_today`` sessions from
the global demand distribution.  Sharded, each shard must know its
quota without coordinating, so the planner apportions the global count
across shards by demand share with the largest-remainder method --
deterministic, exact (quotas always sum to the global count), and
stable under worker count.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

#: Default shard count.  Fixed independently of ``workers`` so the
#: shard plan -- and therefore every merged report byte -- is identical
#: whether 1, 2, or 16 processes execute it.
DEFAULT_SHARDS = 8

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(value: int) -> int:
    """The SplitMix64 finalizer (the simulator's shared PRNG idiom:
    the latency model, the network loss stream, and the chaos plane all
    hash through these constants)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def shard_of_prefix(prefix_addr: int, n_shards: int) -> int:
    """Which shard owns the client block at this prefix address."""
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    return _mix64(prefix_addr) % n_shards


def apportion(total: int, shares: Sequence[float]) -> List[int]:
    """Split ``total`` integer units across ``shares`` exactly.

    Largest-remainder apportionment: each bucket gets the floor of its
    proportional quota, then leftover units go to the largest
    fractional parts (ties broken by lower index).  Deterministic, and
    the result always sums to ``total``.
    """
    if total < 0:
        raise ValueError(f"cannot apportion a negative total: {total}")
    weight = sum(shares)
    if weight <= 0:
        # No demand anywhere: dump everything in bucket 0 so the total
        # is conserved (only reachable with a degenerate world).
        return [total] + [0] * (len(shares) - 1) if shares else []
    quotas = [total * share / weight for share in shares]
    floors = [int(quota) for quota in quotas]
    remainder = total - sum(floors)
    by_fraction = sorted(range(len(shares)),
                         key=lambda i: (floors[i] - quotas[i], i))
    for i in by_fraction[:remainder]:
        floors[i] += 1
    return floors


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one world's client blocks into shards."""

    n_shards: int
    block_indices: Tuple[Tuple[int, ...], ...]
    """Per shard: indices into ``internet.blocks``, ascending."""
    demands: Tuple[float, ...]
    """Per shard: total client demand owned."""

    # Derived per-shard pickers, built lazily (the plan is computed
    # inside every worker, so nothing here crosses a process boundary).
    _cum_demand: List[List[float]] = field(
        default_factory=list, repr=False, compare=False)

    @property
    def total_demand(self) -> float:
        return sum(self.demands)

    def sessions_for_day(self, sessions_today: int) -> List[int]:
        """Per-shard session quotas for one day's global count."""
        return apportion(sessions_today, self.demands)

    def shard_cum_demand(self, shard: int,
                         blocks: Sequence) -> List[float]:
        """Cumulative demand over the shard's own blocks (for the
        shard-local demand-weighted block pick)."""
        while len(self._cum_demand) < self.n_shards:
            self._cum_demand.append([])
        cached = self._cum_demand[shard]
        if not cached and self.block_indices[shard]:
            running = 0.0
            for index in self.block_indices[shard]:
                running += blocks[index].demand
                cached.append(running)
        return cached

    def pick_block(self, shard: int, blocks: Sequence, rng):
        """Demand-weighted block pick *within* one shard.

        Mirrors :meth:`repro.topology.internet.Internet.pick_block`
        (one uniform draw, bisect over cumulative demand) restricted to
        the shard's own blocks.
        """
        indices = self.block_indices[shard]
        if not indices:
            raise ValueError(f"shard {shard} owns no client blocks")
        cum = self.shard_cum_demand(shard, blocks)
        target = rng.random() * cum[-1]
        position = bisect.bisect_right(cum, target)
        return blocks[indices[min(position, len(indices) - 1)]]


def plan_shards(internet, n_shards: int = DEFAULT_SHARDS) -> ShardPlan:
    """Partition a built Internet's client blocks into shards.

    Pure function of (block prefixes, demands, n_shards): every worker
    process recomputes the identical plan from its own copy of the
    world, so no plan state ever needs to cross a process boundary.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    members: List[List[int]] = [[] for _ in range(n_shards)]
    demands = [0.0] * n_shards
    for index, block in enumerate(internet.blocks):
        shard = shard_of_prefix(block.prefix.network, n_shards)
        members[shard].append(index)
        demands[shard] += block.demand
    return ShardPlan(
        n_shards=n_shards,
        block_indices=tuple(tuple(m) for m in members),
        demands=tuple(demands),
    )
