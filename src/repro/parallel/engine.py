"""The sharded roll-out engine: shard workers, pool, merge, replay.

Execution model
---------------

``run_sharded(spec, workers=N, n_shards=K)`` splits the *client
population* of one :class:`~repro.api.ScenarioSpec` into ``K`` closed
sub-worlds (:mod:`repro.parallel.plan`) and executes them on up to
``N`` processes.  Each shard worker

1. rebuilds the **full** world from the spec -- worlds are pure
   functions of their seeds, so infrastructure (clusters, name
   servers, LDNS fleet, fault schedule, control plane) is replicated
   identically in every shard;
2. replays the exact roll-out timeline (fault steps, control-plane
   ticks, ECS tranche flips) while simulating **only its own blocks'
   sessions**, drawn from a shard-local RNG seeded by
   ``f"{seed}:shard:{index}"`` and paced by the shard's
   largest-remainder session quota for each day;
3. returns its registry, beacons, query log, traces, and -- when a
   monitor is attached -- one registry clone per simulated day.

The parent merges everything in fixed shard order
(:mod:`repro.parallel.merge`) and *replays the monitor* over the
merged per-day registries, so alert rules evaluate the same global
per-day signals they see in a serial monitored run.

Determinism contract
--------------------

``workers`` only sizes the process pool; the shard plan (and hence
every random draw) is fixed by ``n_shards``.  ``workers=1`` executes
the same shards serially in-process, so reports are **byte-identical**
across worker counts.  The legacy serial engine (``workers=None`` at
the API layer) draws from one global RNG and remains the reference for
existing golden fixtures; the sharded engine is its own determinism
domain.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.measurement.querylog import QueryLog
from repro.measurement.rum import RumBeacon, RumCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import DISABLED_PROFILER, PhaseProfiler
from repro.parallel.merge import (
    merge_profiles,
    merge_query_logs,
    merge_registries,
    merge_rum,
    merge_traces,
    sum_day_dicts,
)
from repro.parallel.plan import (
    DEFAULT_SHARDS,
    ShardPlan,
    apportion,
    plan_shards,
)

DAY_SECONDS = 86400.0


@dataclass
class ShardOutput:
    """Everything one shard worker ships back to the parent."""

    shard: int
    registry: MetricsRegistry
    rum: RumCollector
    query_log: QueryLog
    traces: List[Dict]
    trace_counts: Dict[str, int]
    sessions_per_day: Dict[int, int]
    requests_per_day: Dict[int, int]
    failed_per_day: Dict[int, int]
    degraded_per_day: Dict[int, int]
    catchment_shifted_per_day: Dict[int, int]
    ecs_resolvers_per_day: Dict[int, int]
    high_expectation: List[str]
    medians: Dict[str, float]
    day_registries: Dict[int, MetricsRegistry] = field(
        default_factory=dict)
    day_query_cums: Dict[int, Tuple[int, int]] = field(
        default_factory=dict)
    profiler: Optional[PhaseProfiler] = None
    """The shard's engine phase profile, when ``spec.profile`` opted
    in (phase trees pickle across the process boundary)."""


def _shard_worker(payload: Tuple) -> ShardOutput:
    """Run one shard end to end (executes inside a pool process).

    A near-verbatim mirror of the serial day loop in
    :func:`repro.simulation.rollout._run_rollout`; the deltas are
    marked ``SHARD:`` -- the shard-local RNG, the apportioned session
    quota, and the shard-restricted block pick.  Everything else
    (fault steps, control-plane ticks, ECS flips, instrument writes)
    replays the identical timeline in every shard.
    """
    (spec, shard, n_shards, capture_days, keep_beacons,
     pair_tracking) = payload
    # Imported here, not at module top: ``repro.api`` reaches into
    # this package (lazily), and function-scope imports keep the edge
    # acyclic in both directions.
    from repro.cdn.server import DAILY_LOAD_RETENTION
    from repro.faults import FaultInjector
    from repro.simulation.world import _build_world
    from repro.simulation.rollout import (
        classify_expectation_groups,
        split_expectation_groups,
    )
    from repro.simulation.session import simulate_session
    from repro.topology.traffic import DayTraffic, day_weight

    from repro.api import _resolver_policies_for

    profiler = (PhaseProfiler(config=spec.profile)
                if spec.profile is not None else None)
    # SHARD: each worker sees 1/n_shards of the demand, so observed
    # load scales back up by n_shards to keep the utilization signal
    # (and hence scoring penalties) aligned across worker counts.
    world = _build_world(config=spec.world, policy=spec.policy,
                         control_plane=spec.control_plane,
                         unit_scheme=spec.unit_scheme,
                         load_feedback=spec.load_feedback,
                         load_scale=float(n_shards),
                         profiler=profiler,
                         resolver_policies=_resolver_policies_for(spec))
    prof = world.obs.profiler
    config = spec.rollout
    injector = FaultInjector(world, spec.faults) if spec.faults else None
    plan = plan_shards(world.internet, n_shards)
    traffic = spec.traffic if spec.traffic else None
    if traffic is not None:
        blocks = world.internet.blocks
        shard_blocks = [[blocks[i] for i in plan.block_indices[s]]
                        for s in range(n_shards)]

    # SHARD: one independent RNG per shard, seeded by (seed, shard).
    # String seeds hash through SHA-512 inside random.Random, so the
    # stream is stable across platforms and hash randomization.
    rng = random.Random(f"{config.seed}:shard:{shard}")

    with prof.phase("rollout.classify"):
        medians = classify_expectation_groups(world)
    high_expectation, _ = split_expectation_groups(
        medians, config.expectation_threshold_miles)

    world.disable_all_ecs()
    if pair_tracking:
        world.query_log.enable_pair_tracking()
    public_ids = world.public_ldns_ids()

    registry = world.obs.registry
    rum = RumCollector()
    output = ShardOutput(
        shard=shard, registry=registry, rum=rum,
        query_log=world.query_log, traces=[], trace_counts={},
        sessions_per_day={}, requests_per_day={}, failed_per_day={},
        degraded_per_day={}, catchment_shifted_per_day={},
        ecs_resolvers_per_day={},
        high_expectation=sorted(high_expectation), medians=medians)

    for day in range(config.n_days):
        with prof.phase("rollout.day"):
            if injector is not None:
                with prof.phase("faults.step"):
                    injector.step(day)
            if world.load_tracker is not None:
                with prof.phase("loadfeedback.observe"):
                    world.load_tracker.observe_day(world.deployments,
                                                   registry)
            world.deployments.decay_load(DAILY_LOAD_RETENTION)
            if world.control_plane is not None:
                with prof.phase("control_plane.tick"):
                    world.control_plane.tick(day)

            fraction = config.rollout_fraction(day)
            n_enabled = int(round(fraction * len(public_ids)))
            world.enable_ecs(public_ids[:n_enabled],
                             source_prefix_len=config.ecs_source_len)
            output.ecs_resolvers_per_day[day] = world.ecs_enabled_count()
            registry.gauge("rollout.day", merge="max").set(day)
            registry.gauge("rollout.ecs_resolvers", merge="max").set(
                output.ecs_resolvers_per_day[day])

            # SHARD: the global volume formula, apportioned by demand.
            month = day // 30
            sessions_global = int(round(
                config.sessions_per_day
                * (1.0 + config.monthly_growth * month)))
            if traffic is not None:
                # Volume scales by the *global* multiplier (identical in
                # every worker), then apportions by surge-weighted shard
                # demand so a shard holding the surging geo gets the extra
                # sessions.
                global_view = DayTraffic(traffic, day, world.internet.blocks)
                sessions_global = max(1, int(round(
                    sessions_global * global_view.volume_multiplier)))
                weights = [day_weight(traffic, day, shard_blocks[s])
                           for s in range(n_shards)]
                quota = apportion(sessions_global, weights)[shard]
                day_traffic = DayTraffic(traffic, day, shard_blocks[shard])
            else:
                quota = plan.sessions_for_day(sessions_global)[shard]
                day_traffic = None
            spacing = DAY_SECONDS / quota if quota else DAY_SECONDS

            requests_today = 0
            failed_today = 0
            degraded_today = 0
            shifted_today = 0
            for index in range(quota):
                now = day * DAY_SECONDS + index * spacing + rng.uniform(
                    0, spacing * 0.5)
                # SHARD: demand-weighted pick within this shard's blocks.
                if day_traffic is not None:
                    block = day_traffic.pick_block(rng)
                    provider = day_traffic.pick_provider(rng, world.catalog)
                    session = simulate_session(world, block, now, rng,
                                               provider=provider)
                else:
                    block = plan.pick_block(shard, world.internet.blocks, rng)
                    session = simulate_session(world, block, now, rng)
                requests_today += session.requests
                if session.failed:
                    failed_today += 1
                    continue
                if session.degraded:
                    degraded_today += 1
                if session.catchment_shifted:
                    shifted_today += 1
                if keep_beacons:
                    rum.record(RumBeacon(
                        day=day,
                        block=block.prefix,
                        country=block.country,
                        domain=session.domain,
                        high_expectation=block.country in high_expectation,
                        via_public_resolver=session.via_public_resolver,
                        dns_ms=session.dns_ms,
                        rtt_ms=session.rtt_ms,
                        ttfb_ms=session.ttfb_ms,
                        download_ms=session.download_ms,
                        mapping_distance_miles=(
                            session.mapping_distance_miles),
                        server_ip=session.server_ip,
                        ecs_used=session.ecs_used,
                    ))
            output.sessions_per_day[day] = quota
            output.requests_per_day[day] = requests_today
            output.failed_per_day[day] = failed_today
            output.degraded_per_day[day] = degraded_today
            output.catchment_shifted_per_day[day] = shifted_today
            prof.count("sessions", quota)
            prof.count("requests", requests_today)
            registry.counter("rollout.sessions").inc(quota)
            registry.counter("rollout.requests").inc(requests_today)
            if failed_today:
                registry.counter("rollout.failed_sessions").inc(failed_today)

            if capture_days:
                # One instrument-only clone per day feeds the parent's
                # monitor replay; clone() runs the collectors first, so
                # collector-backed gauges hold end-of-day component state.
                output.day_registries[day] = registry.clone()
                output.day_query_cums[day] = (
                    world.query_log.total_queries,
                    world.query_log.ecs_queries)

    if injector is not None:
        injector.finish()

    # Materialize collector gauges one last time, then detach the
    # world: only the registry's instrument state crosses the process
    # boundary (``MetricsRegistry.__getstate__`` drops collectors).
    registry.collect()
    tracer = world.obs.tracer
    output.traces = tracer.export()
    output.trace_counts = {"started": tracer.started,
                           "sampled": tracer.sampled,
                           "dropped": tracer.dropped}
    prof.count("spans_emitted", tracer.sampled)
    output.profiler = profiler
    return output


# -- replay views ------------------------------------------------------------

class _QueryLogView:
    """Per-day window over the merged query log.

    ``bucket_rate`` delegates (buckets are keyed by day, so later days
    never leak into earlier reads); ``ecs_share`` is overridden with
    the day's *cumulative-to-date* totals -- the value the serial
    monitor sees mid-run, which the finished merged log can no longer
    answer by itself.
    """

    def __init__(self, log: QueryLog, total: int, ecs: int) -> None:
        self._log = log
        self._total = total
        self._ecs = ecs

    def bucket_rate(self, bucket: int, public_only: bool = False) -> float:
        return self._log.bucket_rate(bucket, public_only)

    def ecs_share(self) -> float:
        return self._ecs / self._total if self._total else 0.0


class _RumView:
    """The merged beacon list truncated to days <= the replay day."""

    def __init__(self, beacons: List[RumBeacon]) -> None:
        self.beacons = beacons


class _ReplayResult:
    """What the monitor reads from ``result`` during replay, scoped to
    one day: day-keyed dicts pass through whole (lookups are by day),
    while the beacon list and cumulative query totals are windows."""

    def __init__(self, merged, rum_view, query_view) -> None:
        self.rum = rum_view
        self.query_log = query_view
        self.sessions_per_day = merged.sessions_per_day
        self.failed_sessions_per_day = merged.failed_sessions_per_day
        self.degraded_sessions_per_day = merged.degraded_sessions_per_day
        self.catchment_shifted_per_day = merged.catchment_shifted_per_day


class _WorldView:
    """The one attribute path the monitor reads: ``world.obs.registry``."""

    class _Obs:
        def __init__(self, registry: MetricsRegistry) -> None:
            self.registry = registry

    def __init__(self, registry: MetricsRegistry) -> None:
        self.obs = self._Obs(registry)


# -- the merged run ----------------------------------------------------------

@dataclass
class ShardedRun:
    """A completed sharded scenario: merged outputs, replayed monitor.

    The sharded sibling of :class:`repro.api.ScenarioRun`.  There is no
    single live ``world`` (each worker's world died with its process);
    the merged registry and trace export stand in for the world-level
    observability surfaces.
    """

    spec: object
    result: object
    monitor: Optional[object]
    registry: MetricsRegistry
    traces: List[Dict]
    trace_counts: Dict[str, int]
    n_shards: int
    workers: int
    shard_sessions: List[int]
    """Total sessions simulated per shard (the load-split record)."""
    profiler: Optional[PhaseProfiler] = None
    """The merged engine phase profile (parent plan/execute/merge
    phases with every worker tree grafted under ``shard.workers``),
    when ``spec.profile`` opted in."""

    def report(self, scenario: Optional[Dict] = None) -> Dict:
        """The monitor's deterministic report document."""
        if self.monitor is None:
            raise ValueError(
                "scenario ran without a monitor (spec.monitor=False)")
        return self.monitor.report(scenario if scenario is not None
                                   else self.spec.describe())


def _validate_parallelism(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be a positive integer, "
                         f"got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def run_sharded(spec=None, *, workers: int = 1,
                n_shards: int = DEFAULT_SHARDS,
                keep_beacons: bool = True,
                pair_tracking: bool = True) -> ShardedRun:
    """Execute one scenario sharded across worker processes.

    ``keep_beacons`` / ``pair_tracking`` exist for the bench harness:
    at millions of sessions per day the beacon list and pair-row log
    dominate memory and inter-process transfer without affecting the
    wall-clock being measured.  Leave both True for report-producing
    runs.
    """
    from repro.api import ScenarioSpec, _monitor_for_spec

    spec = spec or ScenarioSpec()
    workers = _validate_parallelism(workers, "workers")
    n_shards = _validate_parallelism(n_shards, "n_shards")
    if spec.policy is not None:
        raise ValueError(
            "sharded execution rebuilds the world in each worker and "
            "cannot ship a live policy object; pass policy=None (the "
            "default mapping) or run serially (workers=None)")

    profiler = (PhaseProfiler(config=spec.profile)
                if spec.profile is not None else None)
    prof = profiler if profiler is not None else DISABLED_PROFILER

    capture_days = spec.monitor
    with prof.phase("shard.plan"):
        prof.count("shards", n_shards)
        payloads = [(spec, shard, n_shards, capture_days, keep_beacons,
                     pair_tracking) for shard in range(n_shards)]
    with prof.phase("shard.execute"):
        if workers == 1:
            outputs = [_shard_worker(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(
                    max_workers=min(workers, n_shards)) as pool:
                futures = [pool.submit(_shard_worker, payload)
                           for payload in payloads]
                outputs = [future.result() for future in futures]
        # Worker trees graft in fixed shard order, so the merged
        # profile -- structure *and* float accumulation -- is
        # independent of pool scheduling.
        merge_profiles(prof, [out.profiler for out in outputs])

    # -- merge, in fixed shard order --------------------------------------
    from repro.simulation.rollout import RolloutResult

    first = outputs[0]
    with prof.phase("shard.merge"):
        result = RolloutResult(
            config=spec.rollout,
            rum=merge_rum([out.rum for out in outputs]),
            query_log=merge_query_logs(
                [out.query_log for out in outputs]),
            sessions_per_day=sum_day_dicts(
                out.sessions_per_day for out in outputs),
            requests_per_day=sum_day_dicts(
                out.requests_per_day for out in outputs),
            failed_sessions_per_day=sum_day_dicts(
                out.failed_per_day for out in outputs),
            degraded_sessions_per_day=sum_day_dicts(
                out.degraded_per_day for out in outputs),
            catchment_shifted_per_day=sum_day_dicts(
                out.catchment_shifted_per_day for out in outputs),
            ecs_resolvers_per_day=dict(first.ecs_resolvers_per_day),
            high_expectation_countries=list(first.high_expectation),
            median_public_distance=dict(first.medians),
        )
        registry = merge_registries([out.registry for out in outputs])
        traces = merge_traces([out.traces for out in outputs])
        trace_counts = {
            key: sum(out.trace_counts.get(key, 0) for out in outputs)
            for key in ("started", "sampled", "dropped")}

        monitor = None
        if spec.monitor:
            monitor = _monitor_for_spec(spec)
            _replay_monitor(monitor, spec, outputs, result)

    return ShardedRun(
        spec=spec, result=result, monitor=monitor, registry=registry,
        traces=traces, trace_counts=trace_counts, n_shards=n_shards,
        workers=workers,
        shard_sessions=[sum(out.sessions_per_day.values())
                        for out in outputs],
        profiler=profiler)


def _replay_monitor(monitor, spec, outputs: List[ShardOutput],
                    result) -> None:
    """Drive the monitor over merged per-day registries.

    The serial engine calls ``monitor.on_day`` with the live world
    after each day; here every shard captured a registry clone per day,
    so the replay merges the clones for day *d* (fixed shard order) and
    presents them behind the same observer interface.  Beacons arrive
    through a day-truncated window of the merged day-sorted list, and
    the query log's cumulative ECS share is reconstructed from per-day
    (total, ecs) checkpoints summed across shards.
    """
    completed_cum = 0
    for day in range(spec.rollout.n_days):
        day_registry = merge_registries(
            [out.day_registries[day] for out in outputs])
        total = sum(out.day_query_cums[day][0] for out in outputs)
        ecs = sum(out.day_query_cums[day][1] for out in outputs)
        completed_cum += (result.sessions_per_day.get(day, 0)
                          - result.failed_sessions_per_day.get(day, 0))
        view = _ReplayResult(
            result,
            rum_view=_RumView(result.rum.beacons[:completed_cum]),
            query_view=_QueryLogView(result.query_log, total, ecs))
        monitor.on_day(day, _WorldView(day_registry), view)
