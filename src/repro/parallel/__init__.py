"""Sharded multi-process simulation with deterministic merge.

The session loop is the simulator's wall-clock ceiling: the vectorized
kernels cover mapping and scoring, but one Python process still walks
every client session of every simulated day in sequence.  This package
partitions the *client population* into closed sub-worlds (shards),
runs them across worker processes, and merges their outputs back into
one report -- byte-identical no matter how many workers ran, because
the unit of determinism is the shard plan, not the process count.

* :mod:`repro.parallel.plan` -- the deterministic prefix partitioner
  and the per-day session apportionment.
* :mod:`repro.parallel.engine` -- the shard worker, the process pool,
  and the monitor replay over merged per-day registries.
* :mod:`repro.parallel.merge` -- the merge algebra for everything a
  shard produces (registries, RUM beacons, query logs, traces).

Entry points: ``repro.api.run(spec, workers=N)``,
``repro.api.run_rollout(..., workers=N)``, and the CLIs
(``python -m repro sim rollout --workers N``,
``python -m repro soak --workers N``).
"""

from repro.parallel.plan import (
    DEFAULT_SHARDS,
    ShardPlan,
    apportion,
    plan_shards,
    shard_of_prefix,
)
from repro.parallel.engine import ShardedRun, run_sharded

__all__ = [
    "DEFAULT_SHARDS",
    "ShardPlan",
    "ShardedRun",
    "apportion",
    "plan_shards",
    "run_sharded",
    "shard_of_prefix",
]
