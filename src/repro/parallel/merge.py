"""The merge algebra: shard outputs -> one global result.

Everything a shard produces is mergeable without raw coordination,
each through its own algebra, always folding in fixed shard order
(0, 1, ..., n_shards-1) so float accumulation order -- and therefore
every exported byte -- is identical no matter how many processes ran:

* **registries** -- :meth:`repro.obs.metrics.MetricsRegistry.merge`
  (counters/gauges per their ``sum``/``max`` merge mode, histograms
  via moment accumulators);
* **RUM beacons** -- concatenate in shard order, stable-sort by day:
  the ``(day, shard, arrival)`` ordering incremental consumers need;
* **query logs** -- :meth:`repro.measurement.querylog.QueryLog.merge`
  (totals and per-bucket counts add, pair rows concatenate);
* **traces** -- span trees concatenate in shard order (each tree is
  already internally ordered by its per-trace span ids);
* **per-day tallies** -- plain integer sums;
* **phase profiles** -- worker trees graft under the parent's
  ``shard.workers`` phase (calls/work sum by phase name, structure is
  the union -- fixed by the shard plan, so the merged structural view
  is byte-identical for any worker count).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.measurement.querylog import QueryLog
from repro.measurement.rum import RumCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler


def merge_registries(
        registries: Sequence[MetricsRegistry]) -> MetricsRegistry:
    """Fold shard registries, in order, into a fresh one."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged


def merge_rum(collectors: Sequence[RumCollector]) -> RumCollector:
    """Fold shard beacon collectors into one, day-ordered."""
    merged = RumCollector()
    for collector in collectors:
        merged.merge(collector)
    return merged


def merge_query_logs(logs: Sequence[QueryLog]) -> QueryLog:
    """Fold shard query logs into a fresh one.

    Every shard watches the same authoritative/public endpoint sets
    (shards replicate the full infrastructure), so the merged log
    copies them from the first shard.
    """
    if not logs:
        return QueryLog(authoritative_ips=set())
    first = logs[0]
    merged = QueryLog(
        authoritative_ips=set(first.authoritative_ips),
        public_resolver_ips=set(first.public_resolver_ips),
        bucket_seconds=first.bucket_seconds,
    )
    if first._pair_tracking:
        merged.enable_pair_tracking()
    for log in logs:
        merged.merge(log)
    return merged


def merge_traces(exports: Sequence[List[Dict]]) -> List[Dict]:
    """Concatenate shard trace exports in shard order."""
    merged: List[Dict] = []
    for export in exports:
        merged.extend(export)
    return merged


def merge_profiles(
        parent: PhaseProfiler,
        profilers: Sequence[Optional[PhaseProfiler]]) -> None:
    """Graft worker phase profiles under the parent's current scope.

    Each worker tree lands under one ``shard.workers`` node (its
    ``calls`` counts grafted shards); matching phases sum their calls
    and work counters.  Folding in fixed shard order keeps wall-clock
    float accumulation -- and hence every exported byte of the timing
    view too -- independent of pool scheduling.
    """
    for profiler in profilers:
        if profiler is not None:
            parent.graft("shard.workers", profiler)


def sum_day_dicts(dicts: Iterable[Dict[int, int]]) -> Dict[int, int]:
    """Per-day integer tallies, summed across shards, day-sorted."""
    totals: Dict[int, int] = {}
    for per_day in dicts:
        for day, value in per_day.items():
            totals[day] = totals.get(day, 0) + value
    return {day: totals[day] for day in sorted(totals)}
