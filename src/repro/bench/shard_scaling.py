"""Worker-scaling bench for the sharded engine (``repro.parallel``).

Times the sharded day loop at the ``large`` scale -- 2^20 (~1.05M)
client-block sessions in one simulated day -- across a curve of worker
counts, and writes a ``bench/v3`` snapshot with one bench per worker
count plus explicit scaling ratios::

    PYTHONPATH=src python -m repro.bench.shard_scaling --out BENCH_PR6.json
    PYTHONPATH=src python -m repro.bench.shard_scaling --sessions 5000 \
        --workers 1,2            # quick smoke on a laptop

The snapshot records the measuring host's CPU budget next to the
numbers: scaling ratios are *host-relative*, and on a single-core
container the multi-worker configurations mostly measure process-pool
overhead and scheduler slack, not parallel headroom.  The regress gate never compares these
``large/*`` keys against older ``BENCH_*.json`` files (they exist only
from PR 6 on; the gate intersects key sets), so the curve documents
capacity without gating on the CI host's core count.

The beacon list and pair-row tracking are disabled for the timed runs:
at this volume they dominate memory and inter-process transfer without
touching the day-loop wall-clock under test (the determinism tests
cover them at small volume).

The timed curve itself runs *unprofiled* (numbers stay comparable to
older snapshots); a separate single-worker pass with the engine
self-profiler on (:mod:`repro.obs.profile`) supplies the ``phases``
breakdown and the ``hotspots`` attribution table.  ``--no-profile``
skips that pass.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.api import ScenarioSpec
from repro.bench.perf_report import host_fingerprint
from repro.experiments.scales import get_scale
from repro.obs.profile import ProfileConfig, flatten_phases, hotspot_rows
from repro.parallel import DEFAULT_SHARDS, run_sharded

SCHEMA = "bench/v3"

DEFAULT_WORKERS = (1, 2, 4)


def scaling_spec(sessions: Optional[int] = None) -> ScenarioSpec:
    """The benched scenario: the ``large`` scale, monitor off."""
    scale = get_scale("large")
    rollout = scale.rollout
    if sessions is not None:
        rollout = replace(rollout, sessions_per_day=sessions)
    return ScenarioSpec(world=scale.world, rollout=rollout,
                        monitor=False)


def run_curve(spec: ScenarioSpec, workers_list: List[int],
              n_shards: int = DEFAULT_SHARDS) -> Dict[int, Dict]:
    """Time ``run_sharded`` once per worker count, same spec/plan."""
    curve: Dict[int, Dict] = {}
    for workers in workers_list:
        print(f"  workers={workers} (shards={n_shards})...",
              file=sys.stderr)
        start = time.perf_counter()
        sharded = run_sharded(spec, workers=workers, n_shards=n_shards,
                              keep_beacons=False, pair_tracking=False)
        wall = time.perf_counter() - start
        sessions = sum(sharded.shard_sessions)
        curve[workers] = {
            "wall_s": round(wall, 6),
            "calls": sessions,
            "scale": "large",
            "workers": workers,
            "n_shards": n_shards,
            "sessions_per_s": round(sessions / wall, 1),
        }
        print(f"  workers={workers}: {wall:9.2f}s  "
              f"({sessions:,} sessions, "
              f"{curve[workers]['sessions_per_s']:,.0f}/s)",
              file=sys.stderr)
    return curve


def attribution_pass(spec: ScenarioSpec,
                     n_shards: int = DEFAULT_SHARDS,
                     hotspots: int = 10) -> Dict:
    """One profiled single-worker run: the self-time attribution.

    Returns the ``phases`` / ``hotspots`` payload sections; the
    hotspot rows name the phases the next optimization PR should
    target (the acceptance check reads the top entries).
    """
    print("  attribution pass (workers=1, profiled)...",
          file=sys.stderr)
    profiled = replace(spec, profile=ProfileConfig(hotspots=hotspots))
    sharded = run_sharded(profiled, workers=1, n_shards=n_shards,
                          keep_beacons=False, pair_tracking=False)
    root = sharded.profiler.root
    return {
        "phases": flatten_phases(root),
        "hotspots": hotspot_rows(root, limit=hotspots),
    }


def build_payload(curve: Dict[int, Dict],
                  attribution: Optional[Dict] = None) -> Dict:
    """The ``bench/v3`` document for one scaling run."""
    benches = {f"large/shard_day_loop_w{workers}": row
               for workers, row in sorted(curve.items())}
    speedups: Dict[str, float] = {}
    baseline = curve.get(1)
    if baseline is not None:
        for workers, row in sorted(curve.items()):
            if workers == 1:
                continue
            speedups[f"large/shard_scaling_w{workers}"] = round(
                baseline["wall_s"] / max(row["wall_s"], 1e-9), 3)
    payload = {
        "schema": SCHEMA,
        "benches": benches,
        "speedups": speedups,
        "host": host_fingerprint(),
    }
    if attribution is not None:
        payload.update(attribution)
    return payload


def _workers_list(text: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}") from None
    if not values or any(value < 1 for value in values):
        raise argparse.ArgumentTypeError(
            f"worker counts must be positive, got {text!r}")
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR6.json",
                        help="output JSON path")
    parser.add_argument("--workers", type=_workers_list,
                        default=list(DEFAULT_WORKERS),
                        help="comma-separated worker counts "
                             "(default 1,2,4)")
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="shard count of the deterministic plan")
    parser.add_argument("--sessions", type=int, default=None,
                        help="override sessions/day (smoke runs; the "
                             "committed snapshot uses the large "
                             "scale's 2^20)")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the profiled attribution pass "
                             "(payload omits phases/hotspots)")
    args = parser.parse_args(argv)

    spec = scaling_spec(args.sessions)
    print(f"shard-scaling bench: "
          f"{spec.rollout.sessions_per_day:,} sessions/day x "
          f"{spec.rollout.n_days} day(s)", file=sys.stderr)
    curve = run_curve(spec, args.workers, n_shards=args.shards)
    attribution = (None if args.no_profile
                   else attribution_pass(spec, n_shards=args.shards))
    payload = build_payload(curve, attribution)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    for name, ratio in payload["speedups"].items():
        print(f"  {name:40s} {ratio:6.2f}x", file=sys.stderr)
    if attribution is not None:
        from repro.obs.profile import render_hotspot_table

        print("hotspots (profiled workers=1 pass):", file=sys.stderr)
        for line in render_hotspot_table(attribution["hotspots"]):
            print(f"  {line}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
