"""Performance-trajectory harness.

:mod:`repro.bench.perf_report` times the hot paths (vectorized and
scalar-reference) and writes a ``BENCH_*.json`` snapshot so each PR can
diff wall-clock against its predecessors.
"""
