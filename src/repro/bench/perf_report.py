"""Perf-trajectory harness: time the hot paths, write ``BENCH_*.json``.

Run as::

    PYTHONPATH=src python -m repro.bench.perf_report [--scales tiny,small]
                                                     [--out BENCH_PR2.json]

Output schema ``bench/v3`` (v2 plus the host fingerprint and the
per-phase breakdown from the engine self-profiler)::

    {"schema": "bench/v3",
     "benches":  {bench_name: {"wall_s": ..., "calls": ..., "scale": ...}},
     "speedups": {bench_base: scalar_wall / batch_wall},
     "host":     {"cpus": ..., "platform": ..., "python": ...},
     "phases":   {"<scale>;<bench>": {"calls", "work", "wall_s",
                                      "self_wall_s"}},
     "metrics":  <registry snapshot: bench.runs counter, wall_s histogram>,
     "traces":   [per-bench span trees with wall_s/calls attributes]}

``calls`` is the number of elementary operations the bench performed
(scalar-equivalent pair evaluations, blocks assigned, targets
scored...), so per-call cost is comparable across scales and PRs even
when absolute workloads change.

Paired benches -- ``X_scalar`` (the per-pair reference implementation,
the pre-vectorization hot path) and ``X_batch`` (the
:mod:`repro.net.batch` kernels) -- run the *same workload*, so their
``wall_s`` ratio is the speedup vectorization delivers (exported in
``speedups``), and the ``_scalar`` rows double as the "before" numbers
for future PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cdn.deployments import build_deployments
from repro.core.measurement import (
    MeasurementService,
    TargetGrid,
    build_ping_targets,
    nearest_target_id,
)
from repro.core.policies import MapTarget
from repro.core.scoring import Scorer
from repro.experiments import fig25
from repro.experiments.scales import get_scale
from repro.net import batch
from repro.net.geometry import great_circle_miles
from repro.net.latency import LatencyModel
from repro.obs import Observability
from repro.obs.profile import PhaseProfiler, flatten_phases
from repro.topology.internet import Internet, build_internet

BenchResult = Dict[str, float]

SCHEMA = "bench/v3"


def host_fingerprint() -> Dict:
    """Where these numbers were measured (wall-clock is host-relative).

    The canonical fingerprint every ``BENCH_*.json`` and profile
    document embeds; :mod:`repro.bench.regress` warns when adjacent
    trajectory entries were recorded on different hosts.
    """
    affinity = (len(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity") else None)
    return {
        "cpus": os.cpu_count(),
        "cpus_available": affinity,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _timed(fn: Callable[[], int]) -> Tuple[float, int]:
    start = time.perf_counter()
    calls = fn()
    return time.perf_counter() - start, calls


class PerfReport:
    def __init__(self, obs: Optional[Observability] = None) -> None:
        self.results: Dict[str, BenchResult] = {}
        self.obs = obs if obs is not None else Observability()
        # Every bench also records as a phase (scale -> bench name), so
        # the payload carries the same per-phase breakdown shape the
        # engine profiler exports and the regress gate rates.
        self.profiler = PhaseProfiler()

    def bench(self, name: str, scale: str, fn: Callable[[], int]) -> None:
        with self.obs.tracer.trace("bench", bench=name,
                                   scale=scale) as span:
            with self.profiler.phase(scale), \
                    self.profiler.phase(name):
                wall, calls = _timed(fn)
                self.profiler.count("calls", calls)
            span.set(wall_s=wall, calls=calls)
        self.obs.registry.counter("bench.runs").inc()
        self.obs.registry.histogram("bench.wall_s").observe(wall)
        # Bench names are namespaced by scale so one report can hold
        # the same bench at several scales.
        self.results[f"{scale}/{name}"] = {
            "wall_s": round(wall, 6), "calls": calls, "scale": scale}
        print(f"  {name:44s} {wall:9.3f}s  ({calls:,} calls)",
              file=sys.stderr)

    def speedups(self) -> Dict[str, float]:
        """``scalar/batch`` wall ratio per paired bench base name."""
        out: Dict[str, float] = {}
        for name in sorted(self.results):
            if not name.endswith("_batch"):
                continue
            scalar = self.results.get(name[:-6] + "_scalar")
            if scalar is None:
                continue
            out[name[:-6]] = round(
                scalar["wall_s"] / max(self.results[name]["wall_s"],
                                       1e-9), 3)
        return out


def build_payload(report: PerfReport) -> Dict:
    """The full ``bench/v3`` document for one harness run."""
    return {
        "schema": SCHEMA,
        "benches": report.results,
        "speedups": report.speedups(),
        "host": host_fingerprint(),
        "phases": flatten_phases(report.profiler.root),
        "metrics": report.obs.registry.snapshot(),
        "traces": report.obs.tracer.export(),
    }


def write_report(report: PerfReport, path: str) -> Dict:
    payload = build_payload(report)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def _fig25_inputs(internet: Internet, spec):
    universe = build_deployments(
        spec.universe_size, internet.geodb, seed=31,
        host_ases=list(internet.ases.values()))
    clusters = list(universe.clusters.values())
    targets, _ = build_ping_targets(internet, spec.n_targets)
    return clusters, targets


def run_scale(report: PerfReport, scale: str) -> None:
    print(f"[{scale}]", file=sys.stderr)
    spec = get_scale(scale)
    model = LatencyModel()

    # -- world build (topology generation + ping-target selection) -----
    holder: List[Internet] = []

    def _build() -> int:
        holder.append(build_internet(spec.internet, seed=2014))
        return len(holder[-1].blocks)

    report.bench("world_build", scale, _build)
    internet = holder[-1]

    clusters, targets = _fig25_inputs(internet, spec.fig25)
    columns = internet.block_columns()

    # -- fig25 RTT matrix: scalar reference vs shared batch kernel -----
    n_pairs = len(clusters) * len(targets)

    def _rtt_scalar() -> int:
        for cluster in clusters:
            for target in targets:
                model.base_rtt_ms(cluster.geo, cluster.asn,
                                  target.geo, target.asn)
        return n_pairs

    def _rtt_batch() -> int:
        lat_c, lon_c = batch.geo_columns([c.geo for c in clusters])
        lat_t, lon_t = batch.geo_columns([t.geo for t in targets])
        batch.rtt_matrix(lat_c, lon_c, [c.asn for c in clusters],
                         lat_t, lon_t, [t.asn for t in targets],
                         params=model.params)
        return n_pairs

    report.bench("fig25_rtt_matrix_scalar", scale, _rtt_scalar)
    report.bench("fig25_rtt_matrix_batch", scale, _rtt_batch)

    # -- block -> ping-target assignment -------------------------------
    n_blocks = len(internet.blocks)
    grid = TargetGrid(targets)

    def _assign_scalar() -> int:
        for block in internet.blocks:
            nearest_target_id(block.geo, block.asn, targets)
        return n_blocks

    def _assign_batch() -> int:
        grid.nearest_bulk(columns.lat, columns.lon, columns.asn)
        return n_blocks

    report.bench("ping_target_assignment_scalar", scale, _assign_scalar)
    report.bench("ping_target_assignment_batch", scale, _assign_batch)

    # -- batch scoring (cluster x target score matrix) ------------------
    measurement = MeasurementService(internet.geodb, model)
    scorer = Scorer(measurement)
    map_targets = [MapTarget(geo=t.geo, asn=t.asn) for t in targets]
    n_scores = len(clusters) * len(map_targets)

    def _score_scalar() -> int:
        for cluster in clusters:
            for target in map_targets:
                scorer.score(cluster, target)
        return n_scores

    def _score_batch() -> int:
        scorer.score_targets(clusters, map_targets)
        return n_scores

    report.bench("score_targets_scalar", scale, _score_scalar)
    measurement.flush()
    report.bench("score_targets_batch", scale, _score_batch)

    # -- end-to-end fig25 experiment ------------------------------------
    def _fig25_run() -> int:
        fig25.run(scale)
        return spec.fig25.n_client_samples * spec.fig25.n_runs

    report.bench("fig25_experiment", scale, _fig25_run)


def run_kernel_micro(report: PerfReport, n_a: int = 400,
                     n_b: int = 2000) -> None:
    """Kernel microbenchmarks on synthetic point sets (scale-free).

    ``n_a``/``n_b`` size the point sets; tests shrink them for speed.
    """
    print("[micro]", file=sys.stderr)
    rng = np.random.default_rng(7)
    lat_a = rng.uniform(-60, 70, n_a)
    lon_a = rng.uniform(-180, 180, n_a)
    lat_b = rng.uniform(-60, 70, n_b)
    lon_b = rng.uniform(-180, 180, n_b)
    asn_a = rng.integers(100, 2400, n_a)
    asn_b = rng.integers(100, 2400, n_b)
    from repro.net.geometry import GeoPoint
    points_a = [GeoPoint(lat, lon) for lat, lon in zip(lat_a, lon_a)]
    points_b = [GeoPoint(lat, lon) for lat, lon in zip(lat_b, lon_b)]
    n_pairs = n_a * n_b

    def _hav_scalar() -> int:
        for pa in points_a:
            for pb in points_b:
                great_circle_miles(pa, pb)
        return n_pairs

    def _hav_batch() -> int:
        batch.haversine_matrix_miles(lat_a, lon_a, lat_b, lon_b)
        return n_pairs

    report.bench("haversine_matrix_scalar", "micro", _hav_scalar)
    report.bench("haversine_matrix_batch", "micro", _hav_batch)

    model = LatencyModel()

    def _peer_scalar() -> int:
        for a in asn_a:
            for b in asn_b:
                model.peering_penalty_ms(int(a), int(b))
        return n_pairs

    def _peer_batch() -> int:
        batch.peering_penalty_matrix(asn_a, asn_b, model.params)
        return n_pairs

    report.bench("peering_penalty_scalar", "micro", _peer_scalar)
    report.bench("peering_penalty_batch", "micro", _peer_batch)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scales", default="tiny,small",
                        help="comma-separated scale names")
    parser.add_argument("--out", default="BENCH_PR2.json",
                        help="output JSON path")
    parser.add_argument("--skip-micro", action="store_true",
                        help="skip the kernel microbenchmarks")
    args = parser.parse_args(argv)

    report = PerfReport()
    if not args.skip_micro:
        run_kernel_micro(report)
    for scale in [s.strip() for s in args.scales.split(",") if s.strip()]:
        run_scale(report, scale)

    payload = write_report(report, args.out)
    print(f"wrote {args.out} ({len(report.results)} benches)",
          file=sys.stderr)

    # Speedup summary for the paired scalar/batch benches.
    for base, speedup in payload["speedups"].items():
        print(f"  {base:48s} {speedup:8.1f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
