"""``python -m repro.bench.regress`` -- perf-trajectory regression gate.

Compares successive ``BENCH_*.json`` files (the per-PR perf reports
written by :mod:`repro.bench.perf_report`) and fails when a paired
scalar/batch speedup regresses beyond a tolerance -- the check that
catches "someone un-vectorized a hot path" before it merges.

Usage::

    PYTHONPATH=src python -m repro.bench.regress BENCH_PR1.json \
        BENCH_PR2.json BENCH_PR3.json
    PYTHONPATH=src python -m repro.bench.regress --tolerance 0.5 ...
    PYTHONPATH=src python -m repro.bench.regress --format json ...

For every adjacent pair of files, each speedup present in both is
compared: a bench regresses when ``new < old * (1 - tolerance)``.
Exit status is non-zero iff any comparison regresses.  All three
schema generations load transparently -- the PR 1 flat schema
(speedups derived from ``*_scalar``/``*_batch`` wall times),
``bench/v2`` (explicit ``speedups`` map), and ``bench/v3`` (v2 plus a
host fingerprint and the engine self-profiler's per-phase breakdown)
-- so the whole checked-in trajectory is comparable.

``bench/v3`` files additionally gate **per-phase throughput**: every
``phases`` row with enough self-time becomes a ``phase/<path>`` rate
(calls per self-second) in the comparison map, so a future PR that
quietly slows one engine phase trips the same gate as an
un-vectorized kernel.  Phase keys only exist from v3 on; against
older files the intersection is empty and the comparison is vacuous.

Two reports measured on different hosts are still compared -- the
trajectory spans CI runners by design -- but the gate *warns*
(non-fatally, in the report body) when adjacent entries carry
different host fingerprints or CPU counts, so a surprising ratio can
be read with the right suspicion.

Tolerance guidance: wall-clock speedups are noisy across machines --
the checked-in trajectory spans CI runners -- so the CI gate runs with
a loose tolerance (0.6) to catch collapses (a vectorized path falling
back to scalar shows up as a 10-50x speedup dropping to ~1x), while
the default (0.2) suits same-machine before/after comparisons.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

#: A speedup below ``old * (1 - DEFAULT_TOLERANCE)`` is a regression.
DEFAULT_TOLERANCE = 0.2

#: Phases with less self-time than this are too noisy to rate: a
#: near-zero denominator turns scheduler jitter into phantom
#: regressions.  Such phases simply emit no ``phase/`` key (absent
#: keys never compare).
MIN_PHASE_SELF_S = 0.05


@dataclass(frozen=True)
class Comparison:
    """One speedup compared across two successive reports."""

    bench: str
    old_path: str
    new_path: str
    old_speedup: float
    new_speedup: float
    threshold: float
    regressed: bool

    @property
    def ratio(self) -> float:
        return self.new_speedup / self.old_speedup if self.old_speedup \
            else float("inf")

    def to_dict(self) -> Dict:
        return {
            "bench": self.bench,
            "old": self.old_path,
            "new": self.new_path,
            "old_speedup": round(self.old_speedup, 3),
            "new_speedup": round(self.new_speedup, 3),
            "threshold": round(self.threshold, 3),
            "ratio": round(self.ratio, 3),
            "regressed": self.regressed,
        }


def derive_speedups(benches: Dict[str, Dict]) -> Dict[str, float]:
    """``scalar/batch`` wall ratios from paired bench rows (the same
    pairing rule :meth:`repro.bench.perf_report.PerfReport.speedups`
    applies at report time)."""
    out: Dict[str, float] = {}
    for name in sorted(benches):
        if not name.endswith("_batch"):
            continue
        scalar = benches.get(name[:-6] + "_scalar")
        if scalar is None:
            continue
        out[name[:-6]] = round(
            scalar["wall_s"] / max(benches[name]["wall_s"], 1e-9), 3)
    return out


def derive_phase_rates(phases: Dict[str, Dict]) -> Dict[str, float]:
    """``phase/<path>`` throughput rates from a ``bench/v3`` breakdown.

    Rate is ``calls`` per second of *self* wall time -- the per-phase
    analogue of a speedup (higher is better, a collapse gates).
    Phases below :data:`MIN_PHASE_SELF_S` of self-time or without
    calls are skipped.
    """
    out: Dict[str, float] = {}
    for path in sorted(phases):
        row = phases[path]
        calls = row.get("calls", 0)
        self_s = row.get("self_wall_s", 0.0)
        if calls > 0 and self_s >= MIN_PHASE_SELF_S:
            out[f"phase/{path}"] = round(calls / self_s, 3)
    return out


def _load_doc(path: str):
    with open(path) as handle:
        return json.load(handle)


def load_speedups(path: str) -> Dict[str, float]:
    """Speedups from one bench file, whatever its schema generation.

    ``bench/v2``+ documents carry an explicit ``speedups`` map (v3
    adds ``phase/`` throughput rates next to it); the PR 1 flat schema
    (bench name -> row) gets them derived from its wall times.
    """
    doc = _load_doc(path)
    if isinstance(doc, dict) and "speedups" in doc:
        out = dict(doc["speedups"])
        out.update(derive_phase_rates(doc.get("phases", {})))
        return out
    if isinstance(doc, dict) and "benches" in doc:
        return derive_speedups(doc["benches"])
    return derive_speedups(doc)


def host_warnings(paths: List[str]) -> List[str]:
    """Non-fatal cross-host warnings for adjacent trajectory entries.

    Flags adjacent pairs recorded on different platforms or CPU
    budgets, and pairs where exactly one side carries a fingerprint at
    all (pre-v3 files have none: comparable, but blindly so).
    """
    hosts = []
    for path in paths:
        doc = _load_doc(path)
        hosts.append(doc.get("host") if isinstance(doc, dict) else None)
    warnings: List[str] = []
    for index in range(len(paths) - 1):
        old_host, new_host = hosts[index], hosts[index + 1]
        old_path, new_path = paths[index], paths[index + 1]
        if old_host is None and new_host is None:
            continue
        if old_host is None or new_host is None:
            missing = old_path if old_host is None else new_path
            warnings.append(
                f"{old_path} -> {new_path}: no host fingerprint in "
                f"{missing}; ratios compare blind across hosts")
            continue
        for key in ("cpus", "cpus_available", "platform"):
            if old_host.get(key) != new_host.get(key):
                warnings.append(
                    f"{old_path} -> {new_path}: recorded on different "
                    f"hosts ({key}: {old_host.get(key)!r} -> "
                    f"{new_host.get(key)!r}); wall-clock ratios are "
                    f"host-relative")
                break
    return warnings


def compare_pair(old_path: str, new_path: str,
                 tolerance: float) -> List[Comparison]:
    """Compare every speedup present in both files, sorted by name."""
    old = load_speedups(old_path)
    new = load_speedups(new_path)
    out: List[Comparison] = []
    for bench in sorted(set(old) & set(new)):
        threshold = old[bench] * (1.0 - tolerance)
        out.append(Comparison(
            bench=bench, old_path=old_path, new_path=new_path,
            old_speedup=old[bench], new_speedup=new[bench],
            threshold=threshold,
            regressed=new[bench] < threshold))
    return out


def compare_trajectory(paths: List[str],
                       tolerance: float) -> List[Comparison]:
    """Adjacent-pair comparisons across a whole BENCH_* trajectory."""
    out: List[Comparison] = []
    for old_path, new_path in zip(paths, paths[1:]):
        out.extend(compare_pair(old_path, new_path, tolerance))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="BENCH_*.json files, oldest first")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup loss per step "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)
    if len(args.files) < 2:
        parser.error("need at least two bench files to compare")
    if not 0 <= args.tolerance < 1:
        parser.error("tolerance must be in [0, 1)")

    comparisons = compare_trajectory(args.files, args.tolerance)
    regressions = [c for c in comparisons if c.regressed]
    warnings = host_warnings(args.files)

    if args.format == "json":
        print(json.dumps({
            "tolerance": args.tolerance,
            "comparisons": [c.to_dict() for c in comparisons],
            "regressions": len(regressions),
            "warnings": warnings,
        }, indent=2, sort_keys=True))
    else:
        for c in comparisons:
            marker = "REGRESSED" if c.regressed else "ok"
            print(f"{marker:>9}  {c.bench:44s} "
                  f"{c.old_speedup:8.2f}x -> {c.new_speedup:8.2f}x  "
                  f"(floor {c.threshold:.2f}x)  "
                  f"[{c.old_path} -> {c.new_path}]")
        for warning in warnings:
            print(f"  warning: {warning}")
        print(f"{len(comparisons)} comparisons, "
              f"{len(regressions)} regressions, "
              f"{len(warnings)} host warnings "
              f"(tolerance {args.tolerance:.0%})")
    if regressions:
        print("perf regression detected: speedups fell beyond "
              f"{args.tolerance:.0%} of the previous report",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
