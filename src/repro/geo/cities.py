"""City gazetteer: the geographic universe of the synthetic Internet.

Every client block, LDNS deployment, CDN deployment, and origin in the
simulator lives in (or near) one of these cities.  Coordinates are
approximate city-centre values; ``weight`` is roughly the metro
population in millions and drives where client demand is generated.

The country set intentionally covers the 25 countries the paper's
Figures 6, 8, and 9 break out (IN TR VN MX BR ID AU RU IT JP US MY CA DE
FR GB NL AR TH CH ES HK KR SG TW) plus enough others for a realistic
global demand mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.net.geometry import GeoPoint


@dataclass(frozen=True, slots=True)
class City:
    """One city in the gazetteer."""

    name: str
    country: str
    """ISO 3166-1 alpha-2 country code."""
    geo: GeoPoint
    weight: float
    """Approximate metro population in millions (demand weight)."""
    continent: str
    """Two-letter continent code: NA SA EU AS OC AF."""


def _c(name: str, country: str, lat: float, lon: float,
       weight: float, continent: str) -> City:
    return City(name, country, GeoPoint(lat, lon), weight, continent)


# name, country, lat, lon, metro-millions, continent
WORLD_CITIES: Tuple[City, ...] = (
    # --- United States ---
    _c("New York", "US", 40.71, -74.01, 19.8, "NA"),
    _c("Los Angeles", "US", 34.05, -118.24, 13.2, "NA"),
    _c("Chicago", "US", 41.88, -87.63, 9.5, "NA"),
    _c("Dallas", "US", 32.78, -96.80, 7.6, "NA"),
    _c("Houston", "US", 29.76, -95.37, 7.1, "NA"),
    _c("Washington", "US", 38.91, -77.04, 6.3, "NA"),
    _c("Miami", "US", 25.76, -80.19, 6.1, "NA"),
    _c("Philadelphia", "US", 39.95, -75.17, 6.2, "NA"),
    _c("Atlanta", "US", 33.75, -84.39, 6.0, "NA"),
    _c("Phoenix", "US", 33.45, -112.07, 4.9, "NA"),
    _c("Boston", "US", 42.36, -71.06, 4.9, "NA"),
    _c("San Francisco", "US", 37.77, -122.42, 4.7, "NA"),
    _c("Seattle", "US", 47.61, -122.33, 4.0, "NA"),
    _c("Minneapolis", "US", 44.98, -93.27, 3.7, "NA"),
    _c("San Diego", "US", 32.72, -117.16, 3.3, "NA"),
    _c("Denver", "US", 39.74, -104.99, 3.0, "NA"),
    _c("St. Louis", "US", 38.63, -90.20, 2.8, "NA"),
    _c("Portland", "US", 45.52, -122.68, 2.5, "NA"),
    _c("Charlotte", "US", 35.23, -80.84, 2.7, "NA"),
    _c("Salt Lake City", "US", 40.76, -111.89, 1.2, "NA"),
    _c("Kansas City", "US", 39.10, -94.58, 2.2, "NA"),
    _c("Anchorage", "US", 61.22, -149.90, 0.4, "NA"),
    _c("Honolulu", "US", 21.31, -157.86, 1.0, "NA"),
    # --- Canada ---
    _c("Toronto", "CA", 43.65, -79.38, 6.2, "NA"),
    _c("Montreal", "CA", 45.50, -73.57, 4.3, "NA"),
    _c("Vancouver", "CA", 49.28, -123.12, 2.6, "NA"),
    _c("Calgary", "CA", 51.05, -114.07, 1.5, "NA"),
    _c("Ottawa", "CA", 45.42, -75.70, 1.4, "NA"),
    _c("Winnipeg", "CA", 49.90, -97.14, 0.8, "NA"),
    _c("Halifax", "CA", 44.65, -63.58, 0.5, "NA"),
    # --- Mexico ---
    _c("Mexico City", "MX", 19.43, -99.13, 21.8, "NA"),
    _c("Guadalajara", "MX", 20.66, -103.35, 5.3, "NA"),
    _c("Monterrey", "MX", 25.69, -100.32, 5.0, "NA"),
    _c("Tijuana", "MX", 32.51, -117.04, 2.2, "NA"),
    _c("Cancun", "MX", 21.16, -86.85, 0.9, "NA"),
    _c("Merida", "MX", 20.97, -89.62, 1.2, "NA"),
    # --- Brazil ---
    _c("Sao Paulo", "BR", -23.55, -46.63, 21.7, "SA"),
    _c("Rio de Janeiro", "BR", -22.91, -43.17, 13.1, "SA"),
    _c("Belo Horizonte", "BR", -19.92, -43.94, 6.0, "SA"),
    _c("Brasilia", "BR", -15.79, -47.88, 4.6, "SA"),
    _c("Porto Alegre", "BR", -30.03, -51.23, 4.3, "SA"),
    _c("Recife", "BR", -8.05, -34.88, 4.1, "SA"),
    _c("Fortaleza", "BR", -3.72, -38.54, 4.0, "SA"),
    _c("Salvador", "BR", -12.97, -38.50, 3.9, "SA"),
    _c("Curitiba", "BR", -25.43, -49.27, 3.7, "SA"),
    _c("Manaus", "BR", -3.12, -60.02, 2.6, "SA"),
    # --- Argentina ---
    _c("Buenos Aires", "AR", -34.60, -58.38, 15.2, "SA"),
    _c("Cordoba", "AR", -31.42, -64.18, 1.6, "SA"),
    _c("Rosario", "AR", -32.95, -60.64, 1.5, "SA"),
    _c("Mendoza", "AR", -32.89, -68.84, 1.2, "SA"),
    # --- Other South America ---
    _c("Santiago", "CL", -33.45, -70.67, 7.1, "SA"),
    _c("Lima", "PE", -12.05, -77.04, 10.7, "SA"),
    _c("Bogota", "CO", 4.71, -74.07, 10.8, "SA"),
    _c("Medellin", "CO", 6.25, -75.56, 4.0, "SA"),
    _c("Caracas", "VE", 10.48, -66.90, 2.9, "SA"),
    _c("Quito", "EC", -0.18, -78.47, 2.0, "SA"),
    _c("Montevideo", "UY", -34.90, -56.19, 1.8, "SA"),
    # --- United Kingdom ---
    _c("London", "GB", 51.51, -0.13, 14.3, "EU"),
    _c("Manchester", "GB", 53.48, -2.24, 2.8, "EU"),
    _c("Birmingham", "GB", 52.49, -1.89, 2.6, "EU"),
    _c("Glasgow", "GB", 55.86, -4.25, 1.7, "EU"),
    _c("Leeds", "GB", 53.80, -1.55, 1.9, "EU"),
    # --- Germany ---
    _c("Berlin", "DE", 52.52, 13.40, 4.5, "EU"),
    _c("Frankfurt", "DE", 50.11, 8.68, 2.7, "EU"),
    _c("Munich", "DE", 48.14, 11.58, 2.9, "EU"),
    _c("Hamburg", "DE", 53.55, 9.99, 2.6, "EU"),
    _c("Cologne", "DE", 50.94, 6.96, 2.2, "EU"),
    _c("Stuttgart", "DE", 48.78, 9.18, 1.9, "EU"),
    # --- France ---
    _c("Paris", "FR", 48.86, 2.35, 12.6, "EU"),
    _c("Lyon", "FR", 45.76, 4.84, 2.3, "EU"),
    _c("Marseille", "FR", 43.30, 5.37, 1.9, "EU"),
    _c("Toulouse", "FR", 43.60, 1.44, 1.4, "EU"),
    _c("Lille", "FR", 50.63, 3.07, 1.2, "EU"),
    # --- Italy ---
    _c("Milan", "IT", 45.46, 9.19, 4.3, "EU"),
    _c("Rome", "IT", 41.90, 12.50, 4.4, "EU"),
    _c("Naples", "IT", 40.85, 14.27, 3.1, "EU"),
    _c("Turin", "IT", 45.07, 7.69, 1.7, "EU"),
    _c("Palermo", "IT", 38.12, 13.36, 1.0, "EU"),
    # --- Spain ---
    _c("Madrid", "ES", 40.42, -3.70, 6.7, "EU"),
    _c("Barcelona", "ES", 41.39, 2.17, 5.6, "EU"),
    _c("Valencia", "ES", 39.47, -0.38, 1.6, "EU"),
    _c("Seville", "ES", 37.39, -5.98, 1.5, "EU"),
    # --- Netherlands ---
    _c("Amsterdam", "NL", 52.37, 4.90, 2.5, "EU"),
    _c("Rotterdam", "NL", 51.92, 4.48, 1.8, "EU"),
    _c("Eindhoven", "NL", 51.44, 5.47, 0.8, "EU"),
    # --- Switzerland ---
    _c("Zurich", "CH", 47.38, 8.54, 1.4, "EU"),
    _c("Geneva", "CH", 46.20, 6.14, 0.6, "EU"),
    _c("Basel", "CH", 47.56, 7.59, 0.6, "EU"),
    # --- Rest of Europe ---
    _c("Brussels", "BE", 50.85, 4.35, 2.1, "EU"),
    _c("Vienna", "AT", 48.21, 16.37, 1.9, "EU"),
    _c("Warsaw", "PL", 52.23, 21.01, 3.1, "EU"),
    _c("Krakow", "PL", 50.06, 19.94, 1.4, "EU"),
    _c("Prague", "CZ", 50.08, 14.44, 1.3, "EU"),
    _c("Budapest", "HU", 47.50, 19.04, 1.8, "EU"),
    _c("Bucharest", "RO", 44.43, 26.10, 1.8, "EU"),
    _c("Sofia", "BG", 42.70, 23.32, 1.3, "EU"),
    _c("Athens", "GR", 37.98, 23.73, 3.2, "EU"),
    _c("Lisbon", "PT", 38.72, -9.14, 2.9, "EU"),
    _c("Dublin", "IE", 53.35, -6.26, 1.4, "EU"),
    _c("Stockholm", "SE", 59.33, 18.07, 2.4, "EU"),
    _c("Gothenburg", "SE", 57.71, 11.97, 1.0, "EU"),
    _c("Oslo", "NO", 59.91, 10.75, 1.6, "EU"),
    _c("Copenhagen", "DK", 55.68, 12.57, 2.1, "EU"),
    _c("Helsinki", "FI", 60.17, 24.94, 1.5, "EU"),
    _c("Kyiv", "UA", 50.45, 30.52, 3.0, "EU"),
    # --- Russia ---
    _c("Moscow", "RU", 55.76, 37.62, 17.1, "EU"),
    _c("Saint Petersburg", "RU", 59.93, 30.34, 5.4, "EU"),
    _c("Novosibirsk", "RU", 55.03, 82.92, 1.6, "AS"),
    _c("Yekaterinburg", "RU", 56.84, 60.61, 1.5, "AS"),
    _c("Kazan", "RU", 55.80, 49.11, 1.3, "EU"),
    _c("Vladivostok", "RU", 43.12, 131.89, 0.6, "AS"),
    _c("Samara", "RU", 53.20, 50.15, 1.2, "EU"),
    # --- Turkey ---
    _c("Istanbul", "TR", 41.01, 28.98, 15.0, "EU"),
    _c("Ankara", "TR", 39.93, 32.86, 5.1, "AS"),
    _c("Izmir", "TR", 38.42, 27.13, 3.0, "AS"),
    _c("Antalya", "TR", 36.90, 30.70, 1.2, "AS"),
    _c("Gaziantep", "TR", 37.07, 37.38, 1.7, "AS"),
    # --- India ---
    _c("Delhi", "IN", 28.61, 77.21, 29.4, "AS"),
    _c("Mumbai", "IN", 19.08, 72.88, 20.4, "AS"),
    _c("Kolkata", "IN", 22.57, 88.36, 14.9, "AS"),
    _c("Bangalore", "IN", 12.97, 77.59, 11.4, "AS"),
    _c("Chennai", "IN", 13.08, 80.27, 10.5, "AS"),
    _c("Hyderabad", "IN", 17.39, 78.49, 9.7, "AS"),
    _c("Ahmedabad", "IN", 23.02, 72.57, 7.7, "AS"),
    _c("Pune", "IN", 18.52, 73.86, 6.5, "AS"),
    _c("Surat", "IN", 21.17, 72.83, 6.0, "AS"),
    _c("Jaipur", "IN", 26.91, 75.79, 3.9, "AS"),
    _c("Lucknow", "IN", 26.85, 80.95, 3.5, "AS"),
    _c("Kanpur", "IN", 26.45, 80.33, 3.0, "AS"),
    _c("Nagpur", "IN", 21.15, 79.09, 2.9, "AS"),
    _c("Kochi", "IN", 9.93, 76.27, 2.1, "AS"),
    _c("Guwahati", "IN", 26.14, 91.74, 1.1, "AS"),
    # --- China (demand context; not in paper's top-25 breakdown) ---
    _c("Beijing", "CN", 39.90, 116.41, 20.4, "AS"),
    _c("Shanghai", "CN", 31.23, 121.47, 26.3, "AS"),
    _c("Guangzhou", "CN", 23.13, 113.26, 13.3, "AS"),
    _c("Shenzhen", "CN", 22.54, 114.06, 12.4, "AS"),
    _c("Chengdu", "CN", 30.57, 104.07, 9.1, "AS"),
    _c("Wuhan", "CN", 30.59, 114.31, 8.4, "AS"),
    # --- Japan ---
    _c("Tokyo", "JP", 35.68, 139.69, 37.4, "AS"),
    _c("Osaka", "JP", 34.69, 135.50, 19.2, "AS"),
    _c("Nagoya", "JP", 35.18, 136.91, 9.5, "AS"),
    _c("Fukuoka", "JP", 33.59, 130.40, 2.6, "AS"),
    _c("Sapporo", "JP", 43.06, 141.35, 2.7, "AS"),
    _c("Sendai", "JP", 38.27, 140.87, 2.3, "AS"),
    # --- South Korea ---
    _c("Seoul", "KR", 37.57, 126.98, 25.5, "AS"),
    _c("Busan", "KR", 35.18, 129.08, 3.4, "AS"),
    _c("Incheon", "KR", 37.46, 126.71, 2.9, "AS"),
    _c("Daegu", "KR", 35.87, 128.60, 2.4, "AS"),
    # --- Taiwan ---
    _c("Taipei", "TW", 25.03, 121.57, 7.0, "AS"),
    _c("Kaohsiung", "TW", 22.63, 120.30, 2.8, "AS"),
    _c("Taichung", "TW", 24.15, 120.67, 2.8, "AS"),
    # --- Hong Kong / Singapore ---
    _c("Hong Kong", "HK", 22.32, 114.17, 7.5, "AS"),
    _c("Singapore", "SG", 1.35, 103.82, 5.7, "AS"),
    # --- Southeast Asia ---
    _c("Jakarta", "ID", -6.21, 106.85, 34.5, "AS"),
    _c("Surabaya", "ID", -7.26, 112.75, 6.5, "AS"),
    _c("Bandung", "ID", -6.92, 107.61, 8.1, "AS"),
    _c("Medan", "ID", 3.59, 98.67, 4.6, "AS"),
    _c("Makassar", "ID", -5.15, 119.43, 1.7, "AS"),
    _c("Bangkok", "TH", 13.76, 100.50, 16.9, "AS"),
    _c("Chiang Mai", "TH", 18.79, 98.98, 1.2, "AS"),
    _c("Khon Kaen", "TH", 16.43, 102.84, 0.5, "AS"),
    _c("Kuala Lumpur", "MY", 3.14, 101.69, 7.9, "AS"),
    _c("Penang", "MY", 5.42, 100.33, 2.5, "AS"),
    _c("Johor Bahru", "MY", 1.49, 103.74, 1.8, "AS"),
    _c("Ho Chi Minh City", "VN", 10.82, 106.63, 13.3, "AS"),
    _c("Hanoi", "VN", 21.03, 105.85, 8.1, "AS"),
    _c("Da Nang", "VN", 16.05, 108.22, 1.2, "AS"),
    _c("Manila", "PH", 14.60, 120.98, 13.5, "AS"),
    _c("Cebu", "PH", 10.32, 123.89, 2.9, "AS"),
    # --- Middle East / Africa ---
    _c("Dubai", "AE", 25.20, 55.27, 3.3, "AS"),
    _c("Riyadh", "SA", 24.71, 46.68, 7.0, "AS"),
    _c("Tel Aviv", "IL", 32.09, 34.78, 4.0, "AS"),
    _c("Cairo", "EG", 30.04, 31.24, 20.5, "AF"),
    _c("Lagos", "NG", 6.52, 3.38, 14.4, "AF"),
    _c("Nairobi", "KE", -1.29, 36.82, 4.7, "AF"),
    _c("Johannesburg", "ZA", -26.20, 28.05, 9.6, "AF"),
    _c("Cape Town", "ZA", -33.92, 18.42, 4.6, "AF"),
    _c("Casablanca", "MA", 33.57, -7.59, 3.7, "AF"),
    # --- Oceania ---
    _c("Sydney", "AU", -33.87, 151.21, 5.3, "OC"),
    _c("Melbourne", "AU", -37.81, 144.96, 5.1, "OC"),
    _c("Brisbane", "AU", -27.47, 153.03, 2.5, "OC"),
    _c("Perth", "AU", -31.95, 115.86, 2.1, "OC"),
    _c("Adelaide", "AU", -34.93, 138.60, 1.4, "OC"),
    _c("Auckland", "NZ", -36.85, 174.76, 1.7, "OC"),
    _c("Wellington", "NZ", -41.29, 174.78, 0.4, "OC"),
)


@lru_cache(maxsize=1)
def cities_by_country() -> Dict[str, List[City]]:
    """Group the gazetteer by ISO country code."""
    grouped: Dict[str, List[City]] = {}
    for city in WORLD_CITIES:
        grouped.setdefault(city.country, []).append(city)
    return grouped


@lru_cache(maxsize=1)
def city_index() -> Dict[str, City]:
    """Index the gazetteer by city name (names are unique)."""
    index = {city.name: city for city in WORLD_CITIES}
    if len(index) != len(WORLD_CITIES):
        raise AssertionError("duplicate city names in gazetteer")
    return index


def total_weight() -> float:
    """Sum of all city weights (for normalizing demand shares)."""
    return sum(city.weight for city in WORLD_CITIES)
