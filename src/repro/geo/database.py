"""EdgeScape-analog geolocation database.

Maps any IPv4 address to a :class:`GeoRecord` carrying latitude,
longitude, city, country, continent, and autonomous system number, via
longest-prefix matching over registered prefixes (exactly the interface
the paper attributes to EdgeScape in Sections 2.2 and 3.1).

The database is *populated from the topology generator's ground truth*,
so by default it acts as a perfect oracle -- which matches how the paper
uses EdgeScape (as the reference location source, not as a system under
test).  ``error_miles`` can inject bounded location error for
sensitivity studies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

from repro.net.geometry import GeoPoint, displace
from repro.net.ipv4 import Prefix
from repro.net.trie import RadixTrie


@dataclass(frozen=True, slots=True)
class GeoRecord:
    """Geolocation answer for an IP address."""

    geo: GeoPoint
    city: str
    country: str
    continent: str
    asn: int


class GeoDatabase:
    """Longest-prefix-match IP geolocation database."""

    def __init__(self) -> None:
        self._trie: RadixTrie[GeoRecord] = RadixTrie()

    def __len__(self) -> int:
        return len(self._trie)

    def register(self, prefix: Prefix, record: GeoRecord) -> None:
        """Register (or overwrite) the record for a prefix."""
        self._trie.insert(prefix, record)

    def lookup(self, addr: int) -> Optional[GeoRecord]:
        """Geolocate a single address; None if no covering prefix."""
        return self._trie.lookup(addr)

    def lookup_prefix(self, prefix: Prefix) -> Optional[GeoRecord]:
        """Geolocate a block by its first address.

        The mapping system geolocates /24 client blocks this way: blocks
        are allocated so that one block never straddles two locations.
        """
        return self._trie.lookup(prefix.network)

    def items(self) -> Iterator[Tuple[Prefix, GeoRecord]]:
        """All registered (prefix, record) pairs in address order."""
        return self._trie.items()

    def with_error(self, error_miles: float, seed: int = 0) -> "GeoDatabase":
        """A copy of this database with bounded random location error.

        Each record's coordinates are displaced by a uniformly random
        bearing and a distance uniform in ``[0, error_miles]``.  Country,
        AS, and city labels are left intact (registry data is far more
        reliable than lat/lon in practice).
        """
        if error_miles < 0:
            raise ValueError("error_miles must be >= 0")
        rng = random.Random(seed)
        out = GeoDatabase()
        for prefix, record in self.items():
            out.register(prefix, replace(record, geo=displace(
                record.geo, rng.uniform(0, error_miles),
                rng.uniform(0, 2 * math.pi))))
        return out
