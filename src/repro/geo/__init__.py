"""Geolocation: city gazetteer and the EdgeScape-analog IP geo database.

The paper relies on Akamai's EdgeScape database to map any IP to
latitude/longitude, country, and autonomous system (Section 3.1).  In the
simulator the topology generator *assigns* each prefix a location, and
:class:`repro.geo.GeoDatabase` exposes those assignments through the same
query interface EdgeScape provides, via longest-prefix matching.
"""

from repro.geo.cities import City, WORLD_CITIES, cities_by_country, city_index
from repro.geo.database import GeoDatabase, GeoRecord

__all__ = [
    "City",
    "GeoDatabase",
    "GeoRecord",
    "WORLD_CITIES",
    "cities_by_country",
    "city_index",
]
