"""The resolver stack: stub, recursive LDNS, authoritative, transport.

These components speak real DNS wire format to each other through an
in-memory network with simulated latency:

* :mod:`repro.dnssrv.transport` -- the network: registered endpoints,
  per-hop latency from the geolocation database, query accounting.
* :mod:`repro.dnssrv.cache` -- the ECS-aware recursive cache with
  RFC 7871 scope semantics (one entry per answer scope, not per name).
* :mod:`repro.dnssrv.authoritative` -- authoritative server framework:
  static zones, a whoami zone (NetSession's client--LDNS discovery
  trick), and a pluggable answer source for the mapping system.
* :mod:`repro.dnssrv.recursive` -- the LDNS: recursion, CNAME chasing,
  TTL bookkeeping, and optional EDNS0 client-subnet forwarding.
* :mod:`repro.dnssrv.stub` -- the client-side stub resolver.
"""

from repro.dnssrv.authoritative import (
    AuthoritativeServer,
    AnswerSource,
    StaticZone,
    WhoAmIZone,
    ZoneAnswer,
)
from repro.dnssrv.cache import CacheEntry, CacheStats, EcsAwareCache
from repro.dnssrv.recursive import RecursionResult, RecursiveResolver
from repro.dnssrv.stub import Resolution, StubResolver
from repro.dnssrv.transport import AuthorityDirectory, Network, QuerySink

__all__ = [
    "AnswerSource",
    "AuthoritativeServer",
    "AuthorityDirectory",
    "CacheEntry",
    "CacheStats",
    "EcsAwareCache",
    "Network",
    "QuerySink",
    "RecursionResult",
    "RecursiveResolver",
    "Resolution",
    "StaticZone",
    "StubResolver",
    "WhoAmIZone",
    "ZoneAnswer",
]
