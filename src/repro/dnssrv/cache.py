"""ECS-aware recursive resolver cache (RFC 7871 Section 7.3.1).

The crux of the paper's scaling analysis (Section 5.2) is that an ECS
cache stores *one entry per answer scope per name*, while a classic
cache stores one entry per name.  This module implements those
semantics exactly:

* An answer with SCOPE PREFIX-LENGTH 0 is a *global* entry: it matches
  every client (the non-ECS legacy behaviour).
* An answer with SCOPE /y matches only clients whose address shares its
  first y bits with the query address ("the cached resolution is only
  valid for the IP block for which it was provided", paper Section 2.1).
* Entries expire at their TTL; later lookups return records aged to the
  remaining TTL.
* On lookup, the longest matching scope wins (most specific answer).

A popular domain queried by clients in k distinct answer scopes thus
occupies k entries and generates up to k upstream queries per TTL --
the mechanism behind the paper's 8x query-rate increase (Figure 23).

Internally entries are held per (name, type) in a dict keyed by scope,
with the set of scope lengths tracked per name, so a lookup costs one
dict probe per distinct scope length in use (one, in the common case)
rather than a scan over all cached blocks of a popular name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dnsproto.message import ResourceRecord
from repro.net.ipv4 import Prefix, prefix_of


@dataclass
class CacheEntry:
    """One cached answer with its validity scope.

    ``rcode`` supports negative caching (RFC 2308): an NXDOMAIN or
    NODATA answer is stored with empty records and the error code, so
    repeated queries for missing names do not hammer the authority.
    """

    scope: Optional[Prefix]
    """None = global entry (valid for any client); otherwise the RFC
    7871 scope block the answer is valid for."""
    records: Tuple[ResourceRecord, ...]
    stored_at: float
    expires_at: float
    rcode: int = 0

    @property
    def negative(self) -> bool:
        return self.rcode != 0 or not self.records

    def matches(self, client_addr: Optional[int]) -> bool:
        if self.scope is None:
            return True
        if client_addr is None:
            return False
        return self.scope.contains(client_addr)

    def alive(self, now: float) -> bool:
        return now < self.expires_at

    def aged_records(self, now: float) -> Tuple[ResourceRecord, ...]:
        """Records with TTLs reduced by the time spent in cache."""
        elapsed = max(0, int(now - self.stored_at))
        return tuple(
            record.with_ttl(max(0, record.ttl - elapsed))
            for record in self.records
        )

    def stale_records(self, ttl: int) -> Tuple[ResourceRecord, ...]:
        """Expired records revived under a short serve-stale TTL
        (RFC 8767 recommends clients not cache them for long)."""
        return tuple(record.with_ttl(ttl) for record in self.records)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    stale_hits: int = 0
    """Lookups answered from an expired entry inside the serve-stale
    window (RFC 8767); these are *not* counted as hits."""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Flat metric view (consumed by the observability collectors).

        Invariant: ``hits + misses == lookups`` always -- every lookup
        is classified exactly once (the invariant test suite drives
        randomized workloads at this).
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "stale_hits": self.stale_hits,
        }


class _NameSlot:
    """Entries for one (name, type): scope-keyed dict + length index."""

    __slots__ = ("entries", "lengths")

    def __init__(self) -> None:
        self.entries: Dict[Optional[Prefix], CacheEntry] = {}
        self.lengths: Dict[int, int] = {}

    def put(self, entry: CacheEntry) -> bool:
        """Insert/replace; returns True if a new slot was used."""
        is_new = entry.scope not in self.entries
        self.entries[entry.scope] = entry
        if is_new and entry.scope is not None:
            self.lengths[entry.scope.length] = self.lengths.get(
                entry.scope.length, 0) + 1
        return is_new

    def remove(self, scope: Optional[Prefix]) -> bool:
        entry = self.entries.pop(scope, None)
        if entry is None:
            return False
        if scope is not None:
            count = self.lengths.get(scope.length, 0) - 1
            if count <= 0:
                self.lengths.pop(scope.length, None)
            else:
                self.lengths[scope.length] = count
        return True

    def best_match(self, client_addr: Optional[int],
                   now: float) -> Tuple[Optional[CacheEntry], List]:
        """Most specific live match plus any expired entries found."""
        expired: List = []
        best: Optional[CacheEntry] = None
        if client_addr is not None:
            for length in sorted(self.lengths, reverse=True):
                scope = prefix_of(client_addr, length)
                entry = self.entries.get(scope)
                if entry is None:
                    continue
                if not entry.alive(now):
                    expired.append(scope)
                    continue
                best = entry
                break
        if best is None:
            entry = self.entries.get(None)
            if entry is not None:
                if entry.alive(now):
                    best = entry
                else:
                    expired.append(None)
        return best, expired


@dataclass
class EcsAwareCache:
    """Cache keyed by (qname, qtype) with per-scope entries."""

    max_entries: int = 100_000
    serve_stale_window: float = 0.0
    """Seconds past expiry an entry may still be served stale (RFC
    8767 "Serve Stale Data to Improve DNS Resiliency").  0 disables
    serve-stale entirely: expired entries are pruned on sight, the
    pre-fault-injection behaviour."""
    stats: CacheStats = field(default_factory=CacheStats)
    _store: Dict[Tuple[str, int], _NameSlot] = field(default_factory=dict)
    _size: int = 0

    def __len__(self) -> int:
        return self._size

    def lookup(
        self,
        qname: str,
        qtype: int,
        client_addr: Optional[int],
        now: float,
    ) -> Optional[CacheEntry]:
        """Most specific live entry matching this client, or None."""
        slot = self._store.get((qname, qtype))
        if slot is None:
            self.stats.misses += 1
            return None
        best, expired = slot.best_match(client_addr, now)
        for scope in expired:
            entry = slot.entries.get(scope)
            if (entry is not None and self.serve_stale_window > 0
                    and now < entry.expires_at + self.serve_stale_window):
                # Keep the expired entry around as a stale fallback
                # until the serve-stale window closes.
                continue
            if slot.remove(scope):
                self._size -= 1
                self.stats.expirations += 1
        if not slot.entries:
            del self._store[(qname, qtype)]
        if best is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return best

    def lookup_stale(
        self,
        qname: str,
        qtype: int,
        client_addr: Optional[int],
        now: float,
    ) -> Optional[CacheEntry]:
        """Most specific *expired* positive entry still inside the
        serve-stale window (RFC 8767), or None.

        Called only after upstreams failed -- fresh data is always
        preferred, so this never shadows :meth:`lookup`.  Negative
        entries are never served stale (there is nothing to serve).
        """
        if self.serve_stale_window <= 0:
            return None
        slot = self._store.get((qname, qtype))
        if slot is None:
            return None

        def usable(entry: CacheEntry) -> bool:
            return (not entry.negative
                    and entry.expires_at <= now
                    < entry.expires_at + self.serve_stale_window)

        best: Optional[CacheEntry] = None
        if client_addr is not None:
            for length in sorted(slot.lengths, reverse=True):
                scope = prefix_of(client_addr, length)
                entry = slot.entries.get(scope)
                if entry is not None and usable(entry):
                    best = entry
                    break
        if best is None:
            entry = slot.entries.get(None)
            if entry is not None and usable(entry):
                best = entry
        if best is not None:
            self.stats.stale_hits += 1
        return best

    def store(
        self,
        qname: str,
        qtype: int,
        scope: Optional[Prefix],
        records: Tuple[ResourceRecord, ...],
        ttl: int,
        now: float,
        rcode: int = 0,
    ) -> CacheEntry:
        """Insert an answer; replaces any entry with the same scope."""
        if ttl < 0:
            raise ValueError(f"negative TTL: {ttl}")
        entry = CacheEntry(
            scope=scope,
            records=records,
            stored_at=now,
            expires_at=now + ttl,
            rcode=rcode,
        )
        slot = self._store.setdefault((qname, qtype), _NameSlot())
        if slot.put(entry):
            self._size += 1
        self.stats.insertions += 1
        if self._size > self.max_entries:
            self._evict(now)
        return entry

    def entries_for(self, qname: str, qtype: int) -> List[CacheEntry]:
        """All entries currently held for a name (live or expired)."""
        slot = self._store.get((qname, qtype))
        return list(slot.entries.values()) if slot else []

    def scope_count(self, qname: str, qtype: int, now: float) -> int:
        """Number of live entries (distinct scopes) for one name.

        This is the quantity Figure 24's query-inflation factor is
        driven by.
        """
        slot = self._store.get((qname, qtype))
        if slot is None:
            return 0
        return sum(1 for e in slot.entries.values() if e.alive(now))

    def flush(self) -> None:
        self._store.clear()
        self._size = 0

    # -- internals -----------------------------------------------------

    def _evict(self, now: float) -> None:
        """Drop expired entries; then earliest-expiring while over."""
        for key in list(self._store):
            slot = self._store[key]
            dead = [scope for scope, entry in slot.entries.items()
                    if not entry.alive(now)]
            for scope in dead:
                slot.remove(scope)
                self._size -= 1
                self.stats.expirations += 1
            if not slot.entries:
                del self._store[key]
        while self._size > self.max_entries and self._store:
            victim_key, victim_scope, _ = min(
                ((key, scope, entry.expires_at)
                 for key, slot in self._store.items()
                 for scope, entry in slot.entries.items()),
                key=lambda item: item[2],
            )
            slot = self._store[victim_key]
            slot.remove(victim_scope)
            self._size -= 1
            self.stats.evictions += 1
            if not slot.entries:
                del self._store[victim_key]


def client_subnet_of(addr: int, source_prefix_len: int = 24) -> Prefix:
    """The block a privacy-respecting LDNS advertises for a client."""
    return prefix_of(addr, source_prefix_len)
