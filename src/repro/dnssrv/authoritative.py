"""Authoritative DNS servers.

Three answer sources are provided:

* :class:`StaticZone` -- fixed records (content-provider zones that
  CNAME onto the CDN, test fixtures).
* :class:`WhoAmIZone` -- answers with the *querying resolver's* address
  in a TXT record.  This is the trick NetSession clients use to learn
  their LDNS ("dig whoami.akamai.net", paper Section 3.1): the client
  asks its LDNS, the LDNS asks us, and we reflect the LDNS's source IP
  back down the chain.
* :class:`AnswerSource` -- protocol implemented by the mapping system:
  given the question and the ECS option (if any), return server IPs and
  an answer scope.

The server is transport-facing: it decodes wire bytes, dispatches, and
encodes responses, answering FORMERR/SERVFAIL instead of crashing on
bad input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Tuple

from repro.dnsproto.edns import ClientSubnetOption
from repro.dnsproto.message import (
    Flags,
    Message,
    ResourceRecord,
    make_response,
)  # Flags used for FORMERR and truncation replies
from repro.dnsproto.name import normalize_name
from repro.dnsproto.rdata import TXTRdata
from repro.dnsproto.types import QType, Rcode
from repro.dnsproto.wire import WireFormatError
from repro.net.ipv4 import format_ipv4
from repro.obs import NOOP, Observability


@dataclass
class ZoneAnswer:
    """What an answer source returns for one question."""

    records: Tuple[ResourceRecord, ...] = ()
    rcode: int = Rcode.NOERROR
    scope_prefix_len: Optional[int] = None
    """RFC 7871 scope to attach when the query carried ECS.  None means
    'not client-specific' and is sent as scope 0."""


class AnswerSource(Protocol):
    """Pluggable zone logic (the mapping system implements this)."""

    def answer(
        self,
        qname: str,
        qtype: int,
        ecs: Optional[ClientSubnetOption],
        src_ip: int,
        now: float,
    ) -> ZoneAnswer: ...


@dataclass
class StaticZone:
    """A zone answering from a fixed record set."""

    records: Dict[Tuple[str, int], Tuple[ResourceRecord, ...]] = field(
        default_factory=dict)
    names: set = field(default_factory=set)

    def add(self, record: ResourceRecord) -> "StaticZone":
        key = (record.name, record.rtype)
        self.records[key] = self.records.get(key, ()) + (record,)
        self.names.add(record.name)
        return self

    def answer(self, qname: str, qtype: int,
               ecs: Optional[ClientSubnetOption], src_ip: int,
               now: float) -> ZoneAnswer:
        qname = normalize_name(qname)
        exact = self.records.get((qname, qtype))
        if exact:
            return ZoneAnswer(records=exact)
        # CNAME applies regardless of qtype (RFC 1034 3.6.2).
        cname = self.records.get((qname, QType.CNAME))
        if cname and qtype != QType.CNAME:
            return ZoneAnswer(records=cname)
        if qname in self.names:
            return ZoneAnswer(rcode=Rcode.NOERROR)  # NODATA
        return ZoneAnswer(rcode=Rcode.NXDOMAIN)


@dataclass
class WhoAmIZone:
    """Reflects the querying resolver's identity.

    The TXT answer carries the source IP of the query we received --
    i.e. the LDNS's IP when the query arrived via a recursive.  TTL is
    zero so the answer is never cached and always reflects the current
    resolver.
    """

    zone_name: str = "whoami.cdn.example"

    def answer(self, qname: str, qtype: int,
               ecs: Optional[ClientSubnetOption], src_ip: int,
               now: float) -> ZoneAnswer:
        qname = normalize_name(qname)
        if qname != normalize_name(self.zone_name):
            return ZoneAnswer(rcode=Rcode.NXDOMAIN)
        texts = [f"resolver={format_ipv4(src_ip)}"]
        if ecs is not None:
            texts.append(f"ecs={ecs.prefix}")
        record = ResourceRecord(qname, QType.TXT, 0,
                                TXTRdata.from_text(*texts))
        return ZoneAnswer(records=(record,))


class AuthoritativeServer:
    """One authoritative name-server deployment.

    Dispatches questions to the answer source for the longest matching
    zone suffix.  Counts every query it serves (total and per source
    address) -- the raw data behind Figures 2, 23, and 24.
    """

    #: UDP payload limit for queries without EDNS0 (RFC 1035).
    CLASSIC_UDP_LIMIT = 512

    def __init__(self, ip: int, server_name: str = "ns.cdn.example",
                 obs: Optional[Observability] = None) -> None:
        self._ip = ip
        self.obs = obs if obs is not None else NOOP
        self.server_name = server_name
        self._zones: Dict[str, AnswerSource] = {}
        self.alive = True
        self.queries_received = 0
        self.responses_sent = 0
        self.formerr_count = 0
        self.truncated_count = 0
        self.tcp_queries = 0

    @property
    def ip(self) -> int:
        return self._ip

    def attach_zone(self, zone: str, source: AnswerSource) -> None:
        self._zones[normalize_name(zone)] = source

    def zone_for(self, qname: str) -> Optional[AnswerSource]:
        labels = normalize_name(qname).split(".")
        for start in range(len(labels)):
            source = self._zones.get(".".join(labels[start:]))
            if source is not None:
                return source
        return self._zones.get("")

    def fail(self) -> None:
        """Take the server down (queries time out)."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def handle_query(self, wire: bytes, src_ip: int, now: float,
                     tcp: bool = False) -> Optional[bytes]:
        if not self.alive:
            return None  # querier times out
        self.queries_received += 1
        if tcp:
            self.tcp_queries += 1
        with self.obs.profiler.phase("dns.authoritative"), \
                self.obs.tracer.span("authoritative",
                                     server=self.server_name) as span:
            try:
                query = Message.decode(wire)
            except WireFormatError:
                self.formerr_count += 1
                span.set(rcode=int(Rcode.FORMERR))
                return self._formerr(wire)
            if query.flags.qr or not query.questions:
                self.formerr_count += 1
                span.set(rcode=int(Rcode.FORMERR))
                return make_response(query, rcode=Rcode.FORMERR,
                                     authoritative=False).encode()
            question = query.question
            source = self.zone_for(question.name)
            if source is None:
                response = make_response(query, rcode=Rcode.REFUSED,
                                         authoritative=False)
            else:
                answer = source.answer(question.name, question.qtype,
                                       query.client_subnet, src_ip, now)
                response = make_response(
                    query,
                    answers=answer.records,
                    rcode=answer.rcode,
                    scope_prefix_len=answer.scope_prefix_len,
                )
            self.responses_sent += 1
            span.set(rcode=int(response.flags.rcode),
                     answers=len(response.answers))
            encoded = response.encode()
            if not tcp and len(encoded) > self._udp_limit(query):
                # RFC 1035 4.2.1: signal truncation; the resolver
                # retries over TCP.  The truncated reply carries no
                # answers (the common conservative server behaviour).
                self.truncated_count += 1
                span.set(truncated=True)
                truncated = make_response(query, rcode=Rcode.NOERROR)
                truncated.flags = Flags(
                    qr=True, aa=response.flags.aa, tc=True,
                    rd=query.flags.rd, rcode=Rcode.NOERROR)
                return truncated.encode()
            return encoded

    def _udp_limit(self, query: Message) -> int:
        if query.opt is not None:
            return max(query.opt.options.payload_size,
                       self.CLASSIC_UDP_LIMIT)
        return self.CLASSIC_UDP_LIMIT

    @staticmethod
    def _formerr(wire: bytes) -> Optional[bytes]:
        """Best-effort FORMERR echoing the query id if parseable."""
        if len(wire) < 2:
            return None
        msg_id = int.from_bytes(wire[:2], "big")
        return Message(msg_id=msg_id,
                       flags=Flags(qr=True, rcode=Rcode.FORMERR)).encode()
