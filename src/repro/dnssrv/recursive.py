"""The recursive resolver (LDNS).

Implements the behaviour of the paper's "local DNS server": answer from
cache when possible, otherwise query the authoritative server for the
zone and cache the result -- with full EDNS0 client-subnet semantics
when ECS is enabled:

* Outgoing queries carry a truncated ``/ecs_source_len`` prefix of the
  client's address (conventionally /24, "a prefix longer than /24 is
  discouraged to retain client's privacy", paper footnote 4).
* Responses are cached under the *scope* the authoritative returned:
  scope 0 answers are shared by all clients, scope /y answers only by
  clients in the same /y block.  One popular name can therefore occupy
  many cache entries -- the paper's query-inflation mechanism.

CNAME chains are chased iteratively (content-provider domains CNAME
onto CDN domains, Section 2.2), each link resolved through the same
cache machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dnsproto.edns import ClientSubnetOption
from repro.dnsproto.message import (
    Message,
    ResourceRecord,
    make_query,
    make_response,
)
from repro.dnsproto.name import normalize_name
from repro.dnsproto.rdata import CNAMERdata
from repro.dnsproto.types import QType, Rcode
from repro.dnsproto.wire import WireFormatError
from repro.dnssrv.cache import EcsAwareCache
from repro.dnssrv.transport import AuthorityDirectory, Network
from repro.net.ipv4 import Prefix, prefix_of
from repro.obs import NOOP, NULL_SPAN, Observability

_MAX_CNAME_CHAIN = 8
_DEFAULT_NEGATIVE_TTL = 30
#: Extra wait burned on a server that never answers (retry timer).
#: Retries against the same server back off exponentially from here.
_TIMEOUT_PENALTY_MS = 400.0
#: TTL stamped on answers revived from an expired cache entry
#: (RFC 8767 Section 5 recommends a short value).
_STALE_TTL = 30


@dataclass
class RecursionResult:
    """Outcome of one client resolution at the LDNS."""

    records: Tuple[ResourceRecord, ...]
    rcode: int
    cache_hit: bool
    """True when no upstream query was needed at all."""
    upstream_queries: int
    upstream_rtt_ms: float
    """Total time spent talking to authoritative servers."""
    stale: bool = False
    """True when any step was answered from an expired cache entry
    because every authority was unreachable (RFC 8767 serve-stale)."""

    @property
    def addresses(self) -> List[int]:
        """A-record addresses in answer order."""
        return [record.rdata.address for record in self.records
                if record.rtype == QType.A]


@dataclass
class _StepResult:
    records: Tuple[ResourceRecord, ...]
    rcode: int
    hit: bool
    queries: int
    rtt_ms: float
    stale: bool = False


class RecursiveResolver:
    """One LDNS deployment with an ECS-aware cache."""

    def __init__(
        self,
        ip: int,
        network: Network,
        directory: AuthorityDirectory,
        ecs_enabled: bool = False,
        ecs_source_len: int = 24,
        cache: Optional[EcsAwareCache] = None,
        name: str = "ldns",
        obs: Optional[Observability] = None,
        max_retries: int = 1,
    ) -> None:
        if not 0 < ecs_source_len <= 32:
            raise ValueError(f"bad ECS source length {ecs_source_len}")
        if max_retries < 0:
            raise ValueError(f"negative max_retries: {max_retries}")
        self._ip = ip
        self.obs = obs if obs is not None else NOOP
        self.name = name
        self.network = network
        self.directory = directory
        self.ecs_enabled = ecs_enabled
        self.ecs_source_len = ecs_source_len
        self.ecs_stripped = False
        """Fault-injection flag: the resolver silently drops the ECS
        option it would otherwise send (the stripping behaviour public
        resolvers exhibit in the wild)."""
        self.ecs_whitelisted = True
        """Provider ECS policy: whether the CDN's authorities are on
        this operator's ECS whitelist.  Revoked (set False) either by
        an :class:`~repro.topology.resolvers.EcsPolicy` with
        ``whitelist_enabled=False`` or by an ``ecs_whitelist_revoke``
        fault.  Distinct from ``ecs_stripped`` so overlapping strip
        and revoke faults revert independently."""
        self.ecs_scope_ceiling = 32
        """Provider ECS policy: the finest client prefix this operator
        reveals.  The effective source length is
        ``min(ecs_source_len, ecs_scope_ceiling)``; the default of 32
        never narrows, reproducing pre-policy behaviour exactly."""
        self.alive = True
        """False during an injected LDNS blackout: the resolver stops
        answering on the wire and stubs must fail over."""
        self.max_retries = max_retries
        """Re-queries against one server before failing over to the
        next authority in the ranking (exponential backoff)."""
        self.cache = cache if cache is not None else EcsAwareCache()
        self.client_queries = 0
        self.upstream_queries_total = 0
        self.tcp_retries = 0
        self.timeout_failovers = 0
        self.tcp_failovers = 0
        self.servfail_responses = 0
        self.stale_served = 0
        self.retry_penalty_ms_total = 0.0
        """Cumulative retry-timer backoff charged while re-querying
        unresponsive authorities (the latency cost of outages that
        never shows up in per-hop RTT)."""
        self._next_id = 1
        # Server ranking memo per zone: delegation data and RTT
        # rankings are long-lived, so real resolvers stick with the
        # fastest server too (and fail over down the ranking).
        self._server_ranking: dict = {}

    @property
    def ip(self) -> int:
        return self._ip

    @property
    def failovers(self) -> int:
        """Total abandonments of an authority, either because it timed
        out on UDP (``timeout_failovers``) or because the TCP retry
        after truncation also died (``tcp_failovers``).  The split
        counters distinguish the two RFC-distinct paths."""
        return self.timeout_failovers + self.tcp_failovers

    @property
    def _ecs_active(self) -> bool:
        """ECS is actually sent: enabled, whitelisted, not stripped."""
        return (self.ecs_enabled and self.ecs_whitelisted
                and not self.ecs_stripped)

    @property
    def _effective_source_len(self) -> int:
        """The source prefix actually sent, after the policy ceiling."""
        return min(self.ecs_source_len, self.ecs_scope_ceiling)

    def fail(self) -> None:
        """Blackout: stop answering client queries on the wire."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # -- client-facing API ------------------------------------------------

    def resolve(self, qname: str, qtype: int, client_ip: int,
                now: float) -> RecursionResult:
        """Resolve a name on behalf of a client, chasing CNAMEs."""
        self.client_queries += 1
        qname = normalize_name(qname)
        all_records: List[ResourceRecord] = []
        total_queries = 0
        total_rtt = 0.0
        every_step_hit = True
        any_stale = False
        rcode = Rcode.NOERROR

        with self.obs.profiler.phase("dns.recursive"), \
                self.obs.tracer.span("recursive", resolver=self.name,
                                     qname=qname) as span:
            current = qname
            for _ in range(_MAX_CNAME_CHAIN):
                step = self._resolve_step(current, qtype, client_ip, now)
                total_queries += step.queries
                total_rtt += step.rtt_ms
                every_step_hit = every_step_hit and step.hit
                any_stale = any_stale or step.stale
                rcode = step.rcode
                all_records.extend(step.records)
                if step.rcode != Rcode.NOERROR:
                    break
                target = _cname_target(step.records, current)
                if target is None or qtype == QType.CNAME:
                    break
                if _has_answer(step.records, target, qtype):
                    break
                current = target
            span.set(cache_hit=every_step_hit, rcode=int(rcode),
                     upstream_queries=total_queries,
                     upstream_rtt_ms=total_rtt)
            if any_stale:
                span.set(stale=True)
        if rcode == Rcode.SERVFAIL:
            self.servfail_responses += 1
        return RecursionResult(
            records=tuple(all_records),
            rcode=rcode,
            cache_hit=every_step_hit,
            upstream_queries=total_queries,
            upstream_rtt_ms=total_rtt,
            stale=any_stale,
        )

    def handle_query(self, wire: bytes, src_ip: int, now: float,
                     tcp: bool = False) -> Optional[bytes]:
        """DNS endpoint interface for stub resolvers on the wire."""
        if not self.alive:
            return None  # blackout: the client's query times out
        try:
            query = Message.decode(wire)
        except WireFormatError:
            return None
        if not query.questions:
            return make_response(query, rcode=Rcode.FORMERR,
                                 authoritative=False).encode()
        question = query.question
        result = self.resolve(question.name, question.qtype, src_ip, now)
        response = make_response(query, answers=result.records,
                                 rcode=result.rcode, authoritative=False)
        response.flags = response.flags.__class__(
            qr=True, aa=False, rd=query.flags.rd, ra=True,
            rcode=result.rcode)
        return response.encode()

    # -- internals ----------------------------------------------------------

    def _resolve_step(self, qname: str, qtype: int, client_ip: int,
                      now: float) -> _StepResult:
        cache_addr = client_ip if self._ecs_active else None
        with self.obs.tracer.span("step", qname=qname) as span:
            entry = self.cache.lookup(qname, qtype, cache_addr, now)
            if entry is not None:
                span.set(cache="hit",
                         scope=(str(entry.scope)
                                if entry.scope is not None else None))
                return _StepResult(records=entry.aged_records(now),
                                   rcode=entry.rcode, hit=True, queries=0,
                                   rtt_ms=0.0)
            span.set(cache="miss")
            return self._query_upstream(qname, qtype, client_ip, now,
                                        span)

    def _query_upstream(self, qname: str, qtype: int, client_ip: int,
                        now: float, span=NULL_SPAN) -> _StepResult:
        authority = self.directory.authority_for(qname)
        if authority is None:
            return _StepResult((), Rcode.SERVFAIL, False, 0, 0.0)
        zone, server_ips = authority
        ranking = self._server_ranking.get(zone)
        if ranking is None:
            ranking = sorted(
                server_ips,
                key=lambda ip: self.network.rtt_ms(self._ip, ip))
            self._server_ranking[zone] = ranking

        ecs: Optional[ClientSubnetOption] = None
        if self._ecs_active:
            ecs = ClientSubnetOption(
                prefix_of(client_ip, self._effective_source_len))
            span.set(ecs_source=str(ecs.prefix))

        total_rtt = 0.0
        queries = 0
        for server_ip in ranking:
            response = None
            for attempt in range(1 + self.max_retries):
                query = make_query(qname, qtype, msg_id=self._take_id(),
                                   ecs=ecs)
                hop = self.network.query(self._ip, server_ip, query, now)
                self.upstream_queries_total += 1
                queries += 1
                if hop.response is not None:
                    total_rtt += hop.rtt_ms
                    response = hop.response
                    break
                # Timed out: burn an exponentially backed-off retry
                # timer, then re-query the same server (RFC 1035
                # suggests retrying before abandoning an authority).
                penalty = _TIMEOUT_PENALTY_MS * (2.0 ** attempt)
                hop.span.set(penalty_ms=penalty)
                self.retry_penalty_ms_total += penalty
                total_rtt += hop.rtt_ms + penalty
            if response is None:
                # Retry budget exhausted: this authority is dead, fail
                # over to the next one in the ranking.
                self.timeout_failovers += 1
                continue
            if response.flags.tc:
                # Answer did not fit in UDP: retry this server over
                # TCP (RFC 1035 4.2.2).
                self.tcp_retries += 1
                tcp_hop = self.network.query(self._ip, server_ip, query,
                                             now, tcp=True)
                self.upstream_queries_total += 1
                queries += 1
                total_rtt += tcp_hop.rtt_ms
                if tcp_hop.response is None:
                    self.tcp_failovers += 1
                    tcp_hop.span.set(penalty_ms=_TIMEOUT_PENALTY_MS)
                    self.retry_penalty_ms_total += _TIMEOUT_PENALTY_MS
                    total_rtt += _TIMEOUT_PENALTY_MS
                    continue
                response = tcp_hop.response
            return self._process_response(qname, qtype, client_ip,
                                          response, now, queries,
                                          total_rtt, span)
        # Every authority is unreachable.  Degrade before failing: an
        # expired cache entry inside the serve-stale window keeps the
        # client alive with slightly old data (RFC 8767).
        stale = self.cache.lookup_stale(
            qname, qtype,
            client_ip if self._ecs_active else None, now)
        if stale is not None:
            self.stale_served += 1
            span.set(stale=True)
            return _StepResult(stale.stale_records(_STALE_TTL),
                               Rcode.NOERROR, False, queries, total_rtt,
                               stale=True)
        return _StepResult((), Rcode.SERVFAIL, False, queries, total_rtt)

    def _process_response(self, qname: str, qtype: int, client_ip: int,
                          response: Message, now: float, queries: int,
                          total_rtt: float,
                          span=NULL_SPAN) -> _StepResult:
        rcode = response.flags.rcode
        scope = self._scope_for(response, client_ip)
        span.set(scope=str(scope) if scope is not None else None)
        if rcode == Rcode.NXDOMAIN or (
                rcode == Rcode.NOERROR and not response.answers):
            # Negative caching (RFC 2308): remember that the name does
            # not exist / has no data so misses do not hammer the
            # authority.
            self.cache.store(qname, qtype, scope, (),
                             _DEFAULT_NEGATIVE_TTL, now, rcode=rcode)
            return _StepResult((), rcode, False, queries, total_rtt)
        if rcode != Rcode.NOERROR:
            # Transient server errors are not cached.
            return _StepResult((), rcode, False, queries, total_rtt)
        records = tuple(response.answers)
        ttl = min(r.ttl for r in records)
        self.cache.store(qname, qtype, scope, records, ttl, now)
        return _StepResult(records, Rcode.NOERROR, False, queries,
                           total_rtt)

    def _scope_for(self, response: Message,
                   client_ip: int) -> Optional[Prefix]:
        """Cache scope per RFC 7871 Section 7.3.1."""
        if not self.ecs_enabled:
            return None
        resp_ecs = response.client_subnet
        if resp_ecs is None:
            # Authority ignored ECS: answer is client-independent.
            return None
        scope_len = min(resp_ecs.scope_prefix_len,
                        self._effective_source_len)
        if scope_len == 0:
            return None
        return prefix_of(client_ip, scope_len)

    def _take_id(self) -> int:
        msg_id = self._next_id
        self._next_id = (self._next_id + 1) % 0x10000 or 1
        return msg_id


def _cname_target(records: Tuple[ResourceRecord, ...],
                  qname: str) -> Optional[str]:
    for record in records:
        if record.rtype == QType.CNAME and record.name == qname:
            assert isinstance(record.rdata, CNAMERdata)
            return record.rdata.target
    return None


def _has_answer(records: Tuple[ResourceRecord, ...], name: str,
                qtype: int) -> bool:
    return any(r.name == name and r.rtype == qtype for r in records)
