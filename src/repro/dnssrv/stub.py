"""Client-side stub resolver.

The stub is what runs on the paper's "client": it forwards every query
to a configured LDNS and measures how long the resolution took.  The
DNS-lookup component of the RUM navigation timing (paper Section 4.2)
comes from here:

``dns_time = rtt(client, LDNS) + time the LDNS spent on recursion``

A cache hit at the LDNS costs the client only the first term -- which
is why the client--LDNS distance matters even when mapping is perfect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dnsproto.message import ResourceRecord
from repro.dnsproto.types import QType, Rcode
from repro.dnssrv.recursive import RecursiveResolver
from repro.dnssrv.transport import Network


@dataclass(frozen=True, slots=True)
class Resolution:
    """What the client learned from one DNS lookup."""

    records: Tuple[ResourceRecord, ...]
    rcode: int
    dns_time_ms: float
    ldns_cache_hit: bool
    upstream_queries: int

    @property
    def addresses(self) -> List[int]:
        return [record.rdata.address for record in self.records
                if record.rtype == QType.A]

    @property
    def ok(self) -> bool:
        return self.rcode == Rcode.NOERROR and bool(self.addresses)


class StubResolver:
    """A client's resolver: one client IP, one (or more) LDNS."""

    def __init__(self, client_ip: int, network: Network) -> None:
        self.client_ip = client_ip
        self.network = network

    def resolve(
        self,
        qname: str,
        ldns: RecursiveResolver,
        now: float,
        qtype: int = QType.A,
    ) -> Resolution:
        """Resolve through the given LDNS, measuring elapsed time."""
        client_hop_ms = self.network.rtt_ms(self.client_ip, ldns.ip)
        self.network.obs.tracer.event("stub.hop", ldns=ldns.name,
                                      rtt_ms=client_hop_ms)
        result = ldns.resolve(qname, qtype, self.client_ip, now)
        return Resolution(
            records=result.records,
            rcode=result.rcode,
            dns_time_ms=client_hop_ms + result.upstream_rtt_ms,
            ldns_cache_hit=result.cache_hit,
            upstream_queries=result.upstream_queries,
        )
