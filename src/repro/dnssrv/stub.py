"""Client-side stub resolver.

The stub is what runs on the paper's "client": it forwards every query
to a configured LDNS and measures how long the resolution took.  The
DNS-lookup component of the RUM navigation timing (paper Section 4.2)
comes from here:

``dns_time = rtt(client, LDNS) + time the LDNS spent on recursion``

A cache hit at the LDNS costs the client only the first term -- which
is why the client--LDNS distance matters even when mapping is perfect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dnsproto.message import ResourceRecord
from repro.dnsproto.types import QType, Rcode
from repro.dnssrv.recursive import RecursiveResolver
from repro.dnssrv.transport import Network

#: Time a stub waits on a dead LDNS before trying its fallback.
LDNS_TIMEOUT_MS = 1000.0


@dataclass(frozen=True, slots=True)
class Resolution:
    """What the client learned from one DNS lookup."""

    records: Tuple[ResourceRecord, ...]
    rcode: int
    dns_time_ms: float
    ldns_cache_hit: bool
    upstream_queries: int
    failed_over: bool = False
    """True when the configured LDNS was dark and the stub retried
    through its fallback resolver (after burning the timeout)."""
    stale: bool = False
    """True when the answer came from an expired cache entry served
    under RFC 8767 serve-stale."""

    @property
    def addresses(self) -> List[int]:
        return [record.rdata.address for record in self.records
                if record.rtype == QType.A]

    @property
    def ok(self) -> bool:
        return self.rcode == Rcode.NOERROR and bool(self.addresses)


class StubResolver:
    """A client's resolver: one client IP, one (or more) LDNS."""

    def __init__(self, client_ip: int, network: Network) -> None:
        self.client_ip = client_ip
        self.network = network

    def resolve(
        self,
        qname: str,
        ldns: RecursiveResolver,
        now: float,
        qtype: int = QType.A,
        fallback: Optional[RecursiveResolver] = None,
    ) -> Resolution:
        """Resolve through the given LDNS, measuring elapsed time.

        If the LDNS is dark (an injected blackout) the stub burns
        :data:`LDNS_TIMEOUT_MS` and retries through ``fallback`` --
        the behaviour of clients configured with a public resolver as
        secondary.  No fallback (or a dead one) means SERVFAIL.
        """
        with self.network.obs.profiler.phase("dns.stub"):
            return self._resolve(qname, ldns, now, qtype, fallback)

    def _resolve(
        self,
        qname: str,
        ldns: RecursiveResolver,
        now: float,
        qtype: int,
        fallback: Optional[RecursiveResolver],
    ) -> Resolution:
        client_hop_ms = self.network.rtt_ms(self.client_ip, ldns.ip)
        if not getattr(ldns, "alive", True):
            self.network.obs.tracer.event(
                "stub.hop", ldns=ldns.name, rtt_ms=client_hop_ms,
                timeout=True, penalty_ms=LDNS_TIMEOUT_MS)
            burned = client_hop_ms + LDNS_TIMEOUT_MS
            if fallback is None or not getattr(fallback, "alive", True):
                return Resolution(
                    records=(), rcode=Rcode.SERVFAIL,
                    dns_time_ms=burned, ldns_cache_hit=False,
                    upstream_queries=0, failed_over=True)
            inner = self._resolve(qname, fallback, now, qtype, None)
            return Resolution(
                records=inner.records,
                rcode=inner.rcode,
                dns_time_ms=burned + inner.dns_time_ms,
                ldns_cache_hit=inner.ldns_cache_hit,
                upstream_queries=inner.upstream_queries,
                failed_over=True,
                stale=inner.stale,
            )
        self.network.obs.tracer.event("stub.hop", ldns=ldns.name,
                                      rtt_ms=client_hop_ms)
        result = ldns.resolve(qname, qtype, self.client_ip, now)
        return Resolution(
            records=result.records,
            rcode=result.rcode,
            dns_time_ms=client_hop_ms + result.upstream_rtt_ms,
            ldns_cache_hit=result.cache_hit,
            upstream_queries=result.upstream_queries,
            stale=result.stale,
        )
