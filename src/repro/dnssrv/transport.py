"""In-memory DNS transport with simulated latency.

The :class:`Network` routes encoded DNS messages between registered
endpoints.  Every hop pays the latency model's RTT for the two IPs
involved (geolocated through the topology's geo database), and every
message is round-tripped through the wire codec, so the protocol layer
is exercised for real -- a resolver bug that produces malformed wire
data surfaces as a FORMERR here, exactly as it would on the Internet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.dnsproto.message import Message
from repro.dnsproto.name import normalize_name
from repro.geo.database import GeoDatabase
from repro.net.ipv4 import format_ipv4
from repro.net.latency import LatencyModel
from repro.obs import NOOP, NULL_SPAN, Observability


class DnsEndpoint(Protocol):
    """Anything that can be registered on the network and answer DNS.

    ``tcp`` distinguishes the retry-over-TCP path (RFC 1035 4.2.2):
    servers apply UDP payload limits only when it is False.  Returning
    None models an unresponsive endpoint (the querier times out).
    """

    @property
    def ip(self) -> int: ...

    def handle_query(self, wire: bytes, src_ip: int, now: float,
                     tcp: bool = False) -> Optional[bytes]: ...


class QuerySink(Protocol):
    """Observer of queries arriving at an endpoint (query accounting)."""

    def record_query(self, now: float, dst_ip: int, src_ip: int,
                     message: Message) -> None: ...


@dataclass(frozen=True)
class LinkImpairment:
    """A degraded network path: inflated latency plus packet loss.

    Loss is decided by a deterministic counter-driven hash (no RNG
    state shared with the rest of the simulation), so an impaired run
    replays byte-identically under the same schedule.
    """

    latency_factor: float = 1.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_factor < 1.0:
            raise ValueError(
                f"latency_factor must be >= 1: {self.latency_factor}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): "
                             f"{self.loss_rate}")


@dataclass
class HopResult:
    """Outcome of one query/response exchange over the network."""

    response: Optional[Message]
    rtt_ms: float
    span: object = NULL_SPAN
    """The (already closed) trace span of this hop, so callers can
    annotate it after the fact -- e.g. the retry-timer penalty a
    recursive charges for a timeout."""


class Network:
    """Registry of endpoints plus a latency oracle between them."""

    def __init__(
        self,
        geodb: GeoDatabase,
        latency_model: Optional[LatencyModel] = None,
        rtt_override: Optional[Callable[[int, int], float]] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self._geodb = geodb
        self._latency = latency_model or LatencyModel()
        self._rtt_override = rtt_override
        self.obs = obs if obs is not None else NOOP
        self._endpoints: Dict[int, DnsEndpoint] = {}
        self._sinks: List[QuerySink] = []
        self.queries_sent = 0
        self.bytes_sent = 0
        self.packets_lost = 0
        # RTT memo keyed by /24 pairs: latency is a pure function of
        # the two geo records, and geo granularity is the /24 block.
        self._rtt_cache: Dict[Tuple[int, int], float] = {}
        # Fault injection: per-endpoint link impairments.  The loss
        # counter only advances while an impairment with loss is
        # active, so healthy runs replay byte-identically.
        self._impairments: Dict[int, LinkImpairment] = {}
        self._loss_counter = 0

    def impair(self, ip: int, latency_factor: float = 1.0,
               loss_rate: float = 0.0) -> None:
        """Degrade every hop to or from ``ip`` (fault injection)."""
        self._impairments[ip] = LinkImpairment(
            latency_factor=latency_factor, loss_rate=loss_rate)

    def clear_impairment(self, ip: int) -> None:
        self._impairments.pop(ip, None)

    def _loss_draw(self) -> float:
        """Deterministic uniform [0,1) stream for packet-loss coin
        flips (SplitMix64 over a private counter)."""
        self._loss_counter += 1
        z = (self._loss_counter * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return ((z ^ (z >> 31)) >> 11) / float(1 << 53)

    def register(self, endpoint: DnsEndpoint) -> None:
        existing = self._endpoints.get(endpoint.ip)
        if existing is not None and existing is not endpoint:
            raise ValueError(
                f"endpoint IP collision at {format_ipv4(endpoint.ip)}")
        self._endpoints[endpoint.ip] = endpoint

    def add_sink(self, sink: QuerySink) -> None:
        self._sinks.append(sink)

    def endpoint(self, ip: int) -> Optional[DnsEndpoint]:
        return self._endpoints.get(ip)

    def rtt_ms(self, src_ip: int, dst_ip: int) -> float:
        """RTT between two addresses, via override or geolocation."""
        if self._rtt_override is not None:
            return self._rtt_override(src_ip, dst_ip)
        key = (src_ip >> 8, dst_ip >> 8)
        cached = self._rtt_cache.get(key)
        if cached is not None:
            return cached
        src = self._geodb.lookup(src_ip)
        dst = self._geodb.lookup(dst_ip)
        if src is None or dst is None:
            raise KeyError(
                f"cannot geolocate {format_ipv4(src_ip)} -> "
                f"{format_ipv4(dst_ip)}")
        rtt = self._latency.base_rtt_ms(src.geo, src.asn, dst.geo, dst.asn)
        self._rtt_cache[key] = rtt
        return rtt

    def query(self, src_ip: int, dst_ip: int, message: Message,
              now: float, tcp: bool = False) -> HopResult:
        """Send a query and wait for the response (synchronous hop).

        A TCP hop costs an extra round trip (the handshake) on top of
        the query/response exchange.  Raises :class:`KeyError` for an
        unregistered destination -- a wiring bug in the simulation,
        not a protocol condition.
        """
        endpoint = self._endpoints.get(dst_ip)
        if endpoint is None:
            raise KeyError(
                f"no DNS endpoint at {format_ipv4(dst_ip)}")
        wire = message.encode()
        self.queries_sent += 1
        self.bytes_sent += len(wire)
        for sink in self._sinks:
            sink.record_query(now, dst_ip, src_ip, message)
        rtt = self.rtt_ms(src_ip, dst_ip)
        if tcp:
            rtt *= 2.0  # SYN/SYN-ACK before the query can be sent
        impairment = None
        if self._impairments:
            impairment = (self._impairments.get(dst_ip)
                          or self._impairments.get(src_ip))
        lost = False
        if impairment is not None:
            rtt *= impairment.latency_factor
            lost = (impairment.loss_rate > 0
                    and self._loss_draw() < impairment.loss_rate)
        # The hop span wraps the destination's handling, so spans the
        # endpoint opens (authoritative dispatch, mapping decision)
        # nest under this hop in the trace tree.
        with self.obs.tracer.span("hop", dst=format_ipv4(dst_ip),
                                  tcp=tcp) as hop:
            if lost:
                self.packets_lost += 1
                response_wire = None
                hop.set(lost=True)
            else:
                response_wire = endpoint.handle_query(wire, src_ip, now,
                                                      tcp=tcp)
            hop.set(rtt_ms=rtt, timeout=response_wire is None)
        if response_wire is None:
            return HopResult(response=None, rtt_ms=rtt, span=hop)
        self.bytes_sent += len(response_wire)
        return HopResult(response=Message.decode(response_wire),
                         rtt_ms=rtt, span=hop)


class AuthorityDirectory:
    """Maps domain suffixes to the authoritative servers for the zone.

    Stands in for the delegation walk a real recursive performs from
    the root: the simulator's recursives consult this directory instead
    of resolving NS chains, which is faithful enough because delegation
    data is long-lived and cached in practice.

    Multiple server IPs per zone are supported; the recursive picks the
    lowest-RTT one, mirroring real resolvers' server-selection
    behaviour (and the paper's observation that Akamai delegates each
    LDNS to a nearby name server, Section 2.2).
    """

    def __init__(self) -> None:
        self._zones: Dict[str, List[int]] = {}

    def delegate(self, zone: str, server_ips: List[int]) -> None:
        if not server_ips:
            raise ValueError(f"zone {zone!r} needs at least one server")
        self._zones[normalize_name(zone)] = list(server_ips)

    def authority_for(self, name: str) -> Optional[Tuple[str, List[int]]]:
        """Longest-suffix zone match: (zone, server IPs) or None."""
        name = normalize_name(name)
        labels = name.split(".") if name else []
        for start in range(len(labels)):
            zone = ".".join(labels[start:])
            servers = self._zones.get(zone)
            if servers:
                return zone, servers
        root = self._zones.get("")
        if root:
            return "", root
        return None

    def zones(self) -> List[str]:
        return sorted(self._zones)
