"""Figure 15: daily mean RTT through the roll-out.

Paper: high-expectation mean RTT halves (200 -> 100 ms); modest
improvement for the low-expectation group.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.rollout_figs import daily_mean_figure

EXPERIMENT_ID = "fig15"
TITLE = "Daily mean round-trip time (public-resolver clients)"
PAPER_CLAIM = "high-expectation mean RTT drops ~2x (200 -> 100 ms)"


def run(scale: str) -> ExperimentResult:
    return daily_mean_figure(
        EXPERIMENT_ID, TITLE, PAPER_CLAIM, scale,
        metric="rtt_ms",
        min_improvement_factor=1.5,
    )
