"""Figure 2: client requests served vs DNS queries resolved.

Paper context figure: the mapping system resolves ~1.6M DNS queries per
second while clients issue ~30M content requests per second -- one DNS
resolution (cached and shared downstream) fans out into many content
requests.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, ratio
from repro.experiments.shared import get_dnsload

EXPERIMENT_ID = "fig02"
TITLE = "Client requests vs DNS queries at the mapping system"
PAPER_CLAIM = ("client content requests outnumber DNS queries by more "
               "than an order of magnitude (30M rps vs 1.6M qps), "
               "because resolutions are cached and shared")


def run(scale: str) -> ExperimentResult:
    art = get_dnsload(scale)
    window = art.window_seconds

    request_rate = art.requests_before / window
    query_rate = art.rate_before_total
    request_rate_after = art.requests_after / window
    query_rate_after = art.rate_after_total

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, scale=scale,
        paper_claim=PAPER_CLAIM,
        rows=[
            {"period": "pre-ECS", "client_requests_per_s": request_rate,
             "dns_queries_per_s": query_rate,
             "requests_per_query": ratio(request_rate, query_rate)},
            {"period": "post-ECS", "client_requests_per_s":
                request_rate_after,
             "dns_queries_per_s": query_rate_after,
             "requests_per_query": ratio(request_rate_after,
                                         query_rate_after)},
        ],
    )
    result.summary = {
        "requests_per_query_pre": ratio(request_rate, query_rate),
        "requests_per_query_post": ratio(request_rate_after,
                                         query_rate_after),
    }
    result.check(
        "requests far outnumber authoritative queries",
        request_rate > 10 * query_rate,
        f"{request_rate:.1f} req/s vs {query_rate:.2f} q/s "
        "(paper: ~19x)")
    result.check(
        "fan-out shrinks when ECS fragments the cache",
        ratio(request_rate_after, query_rate_after) < ratio(
            request_rate, query_rate),
        "per-query fan-out drops after ECS (more queries for the same "
        "requests)")
    return result
