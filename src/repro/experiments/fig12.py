"""Figure 12: RUM measurements per month, by expectation group.

Paper: 33-58M qualified (public-resolver) measurements per month
Jan-Jun 2014, increasing over time, split into high/low expectation
country groups.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.shared import get_rollout

EXPERIMENT_ID = "fig12"
TITLE = "RUM measurements per month (public-resolver clients)"
PAPER_CLAIM = ("measurement volume grows month over month; both "
               "expectation groups contribute every month")


def run(scale: str) -> ExperimentResult:
    rollout = get_rollout(scale)
    counts = rollout.rum.monthly_counts(rollout.config.start_date,
                                        via_public=True)

    months = sorted({month for month, _ in counts})
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, scale=scale,
        paper_claim=PAPER_CLAIM)
    totals = []
    for month in months:
        high = counts.get((month, True), 0)
        low = counts.get((month, False), 0)
        totals.append(high + low)
        result.rows.append({"month": month, "high_expectation": high,
                            "low_expectation": low, "total": high + low})

    result.summary = {
        "months": len(months),
        "first_month_total": totals[0] if totals else 0,
        "last_month_total": totals[-1] if totals else 0,
    }
    # Compare only full months (the timeline may start/end mid-month).
    full = totals[1:-1] if len(totals) > 3 else totals
    result.check(
        "volume grows over the period",
        len(full) >= 2 and full[-1] > full[0],
        f"full-month totals {full}")
    result.check(
        "both groups present every month",
        all(counts.get((m, True), 0) > 0 and counts.get((m, False), 0) > 0
            for m in months),
        "high and low expectation measurements in every month")
    return result
